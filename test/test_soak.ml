(* Soak test: a long seeded trace over a populated society, checked
   against global invariants rather than per-request expectations.

   Invariants after ~1000 mixed actions (plus attacks):
   - no request ever produced an unexpected status (5xx/4xx other than
     the sanctioned 403/429);
   - every export of a user's data went to the owner or through one of
     their declassifiers (spot-checked: no client body carries another
     user's planted canary unless befriended);
   - the audit log accounts for every perimeter refusal;
   - the filesystem never contains a bottom-labeled copy of a canary. *)

open W5_difc
open W5_http
open W5_platform
open W5_workload

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let canary user = "CANARY-" ^ user ^ "-END"

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* The noninterference spot check, reusable per platform: no
   bottom-labeled file anywhere may contain one of [needles] — every
   copy of protected bytes (including ones a transfer agent imported
   from a peer provider) must carry a secrecy label. *)
let bare_canary_paths platform needles =
  let fs = W5_os.Kernel.fs (Platform.kernel platform) in
  let rec walk path bad =
    match W5_os.Fs.stat fs path with
    | Error _ -> bad
    | Ok st -> (
        match st.W5_os.Fs.kind with
        | W5_os.Fs.Directory -> (
            match W5_os.Fs.readdir fs path with
            | Error _ -> bad
            | Ok (names, _) ->
                List.fold_left
                  (fun bad name ->
                    walk (if path = "/" then "/" ^ name else path ^ "/" ^ name) bad)
                  bad names)
        | W5_os.Fs.Regular -> (
            match W5_os.Fs.read fs path with
            | Error _ -> bad
            | Ok (data, labels) ->
                if
                  Label.is_empty labels.Flow.secrecy
                  && List.exists (contains data) needles
                then path :: bad
                else bad))
  in
  walk "/" []

let test_soak ~seed () =
  let society =
    Populate.build ~seed ~users:12 ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:2 ()
  in
  let platform = society.Populate.platform in
  (* plant a canary in every profile *)
  List.iter
    (fun user ->
      let account = Platform.account_exn platform user in
      match
        Platform.write_user_record platform account ~file:"profile"
          (W5_store.Record.of_fields [ ("user", user); ("canary", canary user) ])
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed: %s" (W5_os.Os_error.to_string e))
    society.Populate.users;
  (* malicious apps in the mix, enabled by everyone *)
  let mal = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  List.iter
    (fun user ->
      match Platform.enable_app platform ~user ~app:"mal/thief" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    society.Populate.users;
  (* the long mixed trace *)
  let rng = Rng.create ~seed:(seed + 1) in
  let actions =
    Trace.generate rng ~society ~mix:Trace.read_heavy ~length:800
  in
  let outcome = Trace.replay society actions in
  check int_c "no unexpected failures" 0 outcome.Trace.failed;
  check bool_c "mostly served" true (outcome.Trace.ok > 400);
  (* interleave thief probes from every user against random targets *)
  let clients =
    List.map (fun u -> (u, Populate.login society u)) society.Populate.users
  in
  List.iter
    (fun (user, client) ->
      let target = Rng.pick rng society.Populate.users in
      if target <> user then
        ignore (Client.get client "/app/mal/thief" ~params:[ ("target", target) ]))
    clients;
  (* INVARIANT: nobody ever saw a canary that is not their own, unless
     its owner's friends-only declassifier approved them *)
  let friends_of user =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"friends" with
    | Ok r -> W5_store.Record.get_list r "friends"
    | Error _ -> []
  in
  List.iter
    (fun (viewer, client) ->
      List.iter
        (fun owner ->
          if viewer <> owner && not (List.mem viewer (friends_of owner)) then
            check bool_c
              (Printf.sprintf "%s never saw %s's canary" viewer owner)
              false
              (Client.saw client (canary owner)))
        society.Populate.users)
    clients;
  (* INVARIANT: no bottom-labeled file anywhere contains a canary *)
  check (Alcotest.list Alcotest.string) "no unlabeled canary copies" []
    (bare_canary_paths platform (List.map canary society.Populate.users));
  (* INVARIANT: the audit log recorded at least one export denial per
     thief probe that got a 403 *)
  let export_denials =
    List.length
      (List.filter
         (fun e ->
           match e.W5_os.Audit.event with
           | W5_os.Audit.Export_attempted { decision = Error _; _ } -> true
           | _ -> false)
         (W5_os.Audit.entries (W5_os.Kernel.audit (Platform.kernel platform))))
  in
  check bool_c "export denials recorded" true (export_denials > 0);
  (* the society is still fully functional afterwards *)
  let u0 = List.hd society.Populate.users in
  let c = Populate.login society u0 in
  let r = Client.get c "/app/core/social" ~params:[ ("user", u0) ] in
  check int_c "still serving" 200 (Response.status_code r.Response.status)

(* ---- faulty federation soak ----

   Three providers gossip one roaming user's records while a seeded
   fault plan drops, delays, duplicates, and crashes their messages.
   Concurrent edits keep landing mid-fault; once the schedule drains
   the mesh must converge, and no provider may ever end up holding a
   bottom-labeled copy of the canary — retries, write-ahead intent
   replays, and duplicate deliveries all travel the same labeled path
   as clean syncs. *)

let ok_str = function Ok v -> v | Error e -> Alcotest.fail e

let test_faulty_federation_soak ~seed () =
  let user = "zoe" in
  let mesh = W5_federation.Peer.create () in
  List.iter
    (fun name ->
      let platform = Platform.create () in
      (match Platform.signup platform ~user ~password:"pw" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ok_str (W5_federation.Peer.add_provider mesh ~name platform))
    [ "east"; "west"; "south" ];
  let plan =
    W5_fault.Fault.of_seed ~drops:6 ~delays:2 ~duplicates:2 ~crashes:2 ~seed ()
  in
  (* the link handshake itself can crash; links are only recorded once
     every pair succeeds, so retrying is safe *)
  let rec link attempt =
    match
      W5_federation.Peer.link_user ~faults:plan mesh ~user
        ~files:[ "profile"; "notes" ]
    with
    | Ok () -> ()
    | Error _ when attempt < 6 -> link (attempt + 1)
    | Error e -> Alcotest.failf "link_user: %s" e
  in
  link 1;
  let providers = W5_federation.Peer.providers mesh in
  let write_on (name, platform) ~file fields =
    let account = Platform.account_exn platform user in
    match
      Platform.write_user_record platform account ~file
        (W5_store.Record.of_fields fields)
    with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "write on %s: %s" name (W5_os.Os_error.to_string e)
  in
  write_on (List.hd providers) ~file:"profile"
    [ ("user", user); ("canary", canary user) ];
  (* concurrent edits under fire: every round two providers write, then
     the mesh gossips; crashed rounds are tolerated and retried *)
  let crashes = ref 0 in
  let n = List.length providers in
  for round = 1 to 12 do
    let pick i = List.nth providers ((round + i) mod n) in
    write_on (pick 0) ~file:"notes"
      [ ("user", user); (Printf.sprintf "round%d" round, canary user) ];
    write_on (pick 1) ~file:"notes"
      [ ("user", user); (Printf.sprintf "echo%d" round, canary user) ];
    match W5_federation.Peer.sync_round mesh ~user with
    | Ok _ -> ()
    | Error _ -> incr crashes
  done;
  (* settle: drain the rest of the schedule (consultations advance it
     even when no fault fires) and gossip to a fixed point *)
  let rec settle budget =
    if budget = 0 then Alcotest.fail "faulty mesh did not converge"
    else
      match W5_federation.Peer.sync_round mesh ~user with
      | Error _ ->
          incr crashes;
          settle (budget - 1)
      | Ok 0
        when W5_fault.Fault.pending plan = 0
             && W5_federation.Peer.converged mesh ~user ->
          ()
      | Ok _ -> settle (budget - 1)
  in
  settle 40;
  check int_c "schedule drained" 0 (W5_fault.Fault.pending plan);
  (* the invariant the whole exercise exists for: no provider holds an
     unlabeled copy of the canary, no matter which faulty path the
     bytes took to get there *)
  List.iter
    (fun (name, platform) ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "no unlabeled canary on %s" name)
        []
        (bare_canary_paths platform [ canary user ]))
    providers;
  (* and every replica agrees on the final notes *)
  let note (_, platform) =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"notes" with
    | Ok r -> W5_store.Record.encode r
    | Error e -> Alcotest.failf "read notes: %s" (W5_os.Os_error.to_string e)
  in
  match providers with
  | first :: rest ->
      List.iter
        (fun p -> check Alcotest.string "replicas agree" (note first) (note p))
        rest
  | [] -> assert false

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "soak: 800-action trace + attacks (seed %d)" seed)
        `Slow (test_soak ~seed))
    [ 1234; 777; 31337 ]
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "soak: faulty 3-provider federation (seed %d)" seed)
          `Slow
          (test_faulty_federation_soak ~seed))
      [ 42; 9001 ]
