(* Soak test: a long seeded trace over a populated society, checked
   against global invariants rather than per-request expectations.

   Invariants after ~1000 mixed actions (plus attacks):
   - no request ever produced an unexpected status (5xx/4xx other than
     the sanctioned 403/429);
   - every export of a user's data went to the owner or through one of
     their declassifiers (spot-checked: no client body carries another
     user's planted canary unless befriended);
   - the audit log accounts for every perimeter refusal;
   - the filesystem never contains a bottom-labeled copy of a canary. *)

open W5_difc
open W5_http
open W5_platform
open W5_workload

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let canary user = "CANARY-" ^ user ^ "-END"

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* The noninterference spot check, reusable per platform: no
   bottom-labeled file anywhere may contain one of [needles] — every
   copy of protected bytes (including ones a transfer agent imported
   from a peer provider) must carry a secrecy label. *)
let bare_canary_paths platform needles =
  let fs = W5_os.Kernel.fs (Platform.kernel platform) in
  let rec walk path bad =
    match W5_os.Fs.stat fs path with
    | Error _ -> bad
    | Ok st -> (
        match st.W5_os.Fs.kind with
        | W5_os.Fs.Directory -> (
            match W5_os.Fs.readdir fs path with
            | Error _ -> bad
            | Ok (names, _) ->
                List.fold_left
                  (fun bad name ->
                    walk (if path = "/" then "/" ^ name else path ^ "/" ^ name) bad)
                  bad names)
        | W5_os.Fs.Regular -> (
            match W5_os.Fs.read fs path with
            | Error _ -> bad
            | Ok (data, labels) ->
                if
                  Label.is_empty labels.Flow.secrecy
                  && List.exists (contains data) needles
                then path :: bad
                else bad))
  in
  walk "/" []

let test_soak ~seed () =
  let society =
    Populate.build ~seed ~users:12 ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:2 ()
  in
  let platform = society.Populate.platform in
  (* plant a canary in every profile *)
  List.iter
    (fun user ->
      let account = Platform.account_exn platform user in
      match
        Platform.write_user_record platform account ~file:"profile"
          (W5_store.Record.of_fields [ ("user", user); ("canary", canary user) ])
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed: %s" (W5_os.Os_error.to_string e))
    society.Populate.users;
  (* malicious apps in the mix, enabled by everyone *)
  let mal = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  List.iter
    (fun user ->
      match Platform.enable_app platform ~user ~app:"mal/thief" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    society.Populate.users;
  (* the long mixed trace *)
  let rng = Rng.create ~seed:(seed + 1) in
  let actions =
    Trace.generate rng ~society ~mix:Trace.read_heavy ~length:800
  in
  let outcome = Trace.replay society actions in
  check int_c "no unexpected failures" 0 outcome.Trace.failed;
  check bool_c "mostly served" true (outcome.Trace.ok > 400);
  (* interleave thief probes from every user against random targets *)
  let clients =
    List.map (fun u -> (u, Populate.login society u)) society.Populate.users
  in
  List.iter
    (fun (user, client) ->
      let target = Rng.pick rng society.Populate.users in
      if target <> user then
        ignore (Client.get client "/app/mal/thief" ~params:[ ("target", target) ]))
    clients;
  (* INVARIANT: nobody ever saw a canary that is not their own, unless
     its owner's friends-only declassifier approved them *)
  let friends_of user =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"friends" with
    | Ok r -> W5_store.Record.get_list r "friends"
    | Error _ -> []
  in
  List.iter
    (fun (viewer, client) ->
      List.iter
        (fun owner ->
          if viewer <> owner && not (List.mem viewer (friends_of owner)) then
            check bool_c
              (Printf.sprintf "%s never saw %s's canary" viewer owner)
              false
              (Client.saw client (canary owner)))
        society.Populate.users)
    clients;
  (* INVARIANT: no bottom-labeled file anywhere contains a canary *)
  check (Alcotest.list Alcotest.string) "no unlabeled canary copies" []
    (bare_canary_paths platform (List.map canary society.Populate.users));
  (* INVARIANT: the audit log recorded at least one export denial per
     thief probe that got a 403 *)
  let export_denials =
    List.length
      (List.filter
         (fun e ->
           match e.W5_os.Audit.event with
           | W5_os.Audit.Export_attempted { decision = Error _; _ } -> true
           | _ -> false)
         (W5_os.Audit.entries (W5_os.Kernel.audit (Platform.kernel platform))))
  in
  check bool_c "export denials recorded" true (export_denials > 0);
  (* the society is still fully functional afterwards *)
  let u0 = List.hd society.Populate.users in
  let c = Populate.login society u0 in
  let r = Client.get c "/app/core/social" ~params:[ ("user", u0) ] in
  check int_c "still serving" 200 (Response.status_code r.Response.status)

(* ---- faulty federation soak ----

   Three providers gossip one roaming user's records while a seeded
   fault plan drops, delays, duplicates, and crashes their messages.
   Concurrent edits keep landing mid-fault; once the schedule drains
   the mesh must converge, and no provider may ever end up holding a
   bottom-labeled copy of the canary — retries, write-ahead intent
   replays, and duplicate deliveries all travel the same labeled path
   as clean syncs. *)

let ok_str = function Ok v -> v | Error e -> Alcotest.fail e

let test_faulty_federation_soak ~seed () =
  let user = "zoe" in
  let mesh = W5_federation.Peer.create () in
  List.iter
    (fun name ->
      let platform = Platform.create () in
      (match Platform.signup platform ~user ~password:"pw" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ok_str (W5_federation.Peer.add_provider mesh ~name platform))
    [ "east"; "west"; "south" ];
  let plan =
    W5_fault.Fault.of_seed ~drops:6 ~delays:2 ~duplicates:2 ~crashes:2 ~seed ()
  in
  (* the link handshake itself can crash; links are only recorded once
     every pair succeeds, so retrying is safe *)
  let rec link attempt =
    match
      W5_federation.Peer.link_user ~faults:plan mesh ~user
        ~files:[ "profile"; "notes" ]
    with
    | Ok () -> ()
    | Error _ when attempt < 6 -> link (attempt + 1)
    | Error e -> Alcotest.failf "link_user: %s" e
  in
  link 1;
  let providers = W5_federation.Peer.providers mesh in
  let write_on (name, platform) ~file fields =
    let account = Platform.account_exn platform user in
    match
      Platform.write_user_record platform account ~file
        (W5_store.Record.of_fields fields)
    with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "write on %s: %s" name (W5_os.Os_error.to_string e)
  in
  write_on (List.hd providers) ~file:"profile"
    [ ("user", user); ("canary", canary user) ];
  (* concurrent edits under fire: every round two providers write, then
     the mesh gossips; crashed rounds are tolerated and retried *)
  let crashes = ref 0 in
  let n = List.length providers in
  for round = 1 to 12 do
    let pick i = List.nth providers ((round + i) mod n) in
    write_on (pick 0) ~file:"notes"
      [ ("user", user); (Printf.sprintf "round%d" round, canary user) ];
    write_on (pick 1) ~file:"notes"
      [ ("user", user); (Printf.sprintf "echo%d" round, canary user) ];
    match W5_federation.Peer.sync_round mesh ~user with
    | Ok _ -> ()
    | Error _ -> incr crashes
  done;
  (* settle: drain the rest of the schedule (consultations advance it
     even when no fault fires) and gossip to a fixed point *)
  let rec settle budget =
    if budget = 0 then Alcotest.fail "faulty mesh did not converge"
    else
      match W5_federation.Peer.sync_round mesh ~user with
      | Error _ ->
          incr crashes;
          settle (budget - 1)
      | Ok 0
        when W5_fault.Fault.pending plan = 0
             && W5_federation.Peer.converged mesh ~user ->
          ()
      | Ok _ -> settle (budget - 1)
  in
  settle 40;
  check int_c "schedule drained" 0 (W5_fault.Fault.pending plan);
  (* the invariant the whole exercise exists for: no provider holds an
     unlabeled copy of the canary, no matter which faulty path the
     bytes took to get there *)
  List.iter
    (fun (name, platform) ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "no unlabeled canary on %s" name)
        []
        (bare_canary_paths platform [ canary user ]))
    providers;
  (* and every replica agrees on the final notes *)
  let note (_, platform) =
    let account = Platform.account_exn platform user in
    match Platform.read_user_record platform account ~file:"notes" with
    | Ok r -> W5_store.Record.encode r
    | Error e -> Alcotest.failf "read notes: %s" (W5_os.Os_error.to_string e)
  in
  match providers with
  | first :: rest ->
      List.iter
        (fun p -> check Alcotest.string "replicas agree" (note first) (note p))
        rest
  | [] -> assert false

(* ---- scheduled soak: heavy traffic through the interleaving
   scheduler ----

   The Soak harness admits a whole wave of requests — authenticated,
   routed, throttled, spawned — before a seeded scheduler interleaves
   all the in-flight application processes at syscall granularity.
   These tests pin the harness's own invariants: real concurrency
   (1000+ simultaneously in-flight requests, preemption actually
   happening), zero cross-user canary leaks under interleaving, and
   same-seed determinism down to the byte. *)

let test_scheduled_soak_heavy () =
  let _, s = Soak.run Soak.default_config in
  check int_c "all requests admitted" s.Soak.s_requests s.Soak.s_submitted;
  check bool_c "1000+ requests in flight at once" true
    (s.Soak.s_peak_in_flight >= 1000);
  check bool_c "scheduler really interleaved" true (s.Soak.s_preemptions > 0);
  check bool_c "deep run queue" true (s.Soak.s_max_runq >= 1000);
  check int_c "no unexpected statuses" 0 s.Soak.s_failed;
  (* targets are uniform over all 50 users and the friend graph is
     sparse, so most cross-user views are sanctioned 403s — the
     denials ARE the enforcement being exercised under load *)
  check bool_c "plenty served" true (s.Soak.s_ok >= s.Soak.s_requests / 10);
  check bool_c "enforcement exercised" true (s.Soak.s_forbidden > 0);
  check int_c "no cross-user canary leaks" 0 s.Soak.s_canary_leaks;
  check int_c "no unlabeled canary copies" 0 s.Soak.s_unlabeled_canaries;
  check int_c "no processes lost to quotas" 0 s.Soak.s_killed

let small_config ~seed =
  { Soak.default_config with Soak.seed; users = 20; requests = 300 }

let test_scheduled_soak_deterministic ~seed () =
  let p1, s1 = Soak.run (small_config ~seed) in
  let p2, s2 = Soak.run (small_config ~seed) in
  (* same seed: byte-identical audit log + store state (tag ids modulo
     the process-global counter offset), and an identical summary *)
  check Alcotest.string "byte-identical state fingerprints"
    (Soak.fingerprint p1.Populate.platform)
    (Soak.fingerprint p2.Populate.platform);
  check Alcotest.string "identical rendered summaries" (Soak.render s1)
    (Soak.render s2);
  check Alcotest.string "identical digests" s1.Soak.s_digest s2.Soak.s_digest;
  check int_c "no leaks either run" 0 (s1.Soak.s_canary_leaks + s2.Soak.s_canary_leaks)

(* mid-run fault injection: after the first wave, the provider
   throttles the front door AND joins a faulty federation mesh; sync
   rounds run under fire between the remaining waves. Load keeps
   flowing; denials stay sanctioned (429, not 5xx); the canary that
   gossips to the remote provider keeps its labels the whole way. *)
let test_scheduled_soak_mid_run_faults ~seed () =
  let mesh = W5_federation.Peer.create () in
  let plan =
    W5_fault.Fault.of_seed ~drops:4 ~delays:2 ~duplicates:2 ~crashes:1 ~seed ()
  in
  let roamer = ref None in
  let sync_crashes = ref 0 in
  let between_waves w (society : Populate.society) =
    let platform = society.Populate.platform in
    if w = 0 then begin
      Platform.set_rate_limit platform
        (Some (Rate_limit.create ~capacity:3 ~refill_per_tick:0 ()));
      let user = List.hd society.Populate.users in
      let remote = Platform.create () in
      (match Platform.signup remote ~user ~password:"pw" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ok_str (W5_federation.Peer.add_provider mesh ~name:"home" platform);
      ok_str (W5_federation.Peer.add_provider mesh ~name:"away" remote);
      let rec link attempt =
        match
          W5_federation.Peer.link_user ~faults:plan mesh ~user
            ~files:[ "profile" ]
        with
        | Ok () -> ()
        | Error _ when attempt < 6 -> link (attempt + 1)
        | Error e -> Alcotest.failf "link_user: %s" e
      in
      link 1;
      roamer := Some (user, remote)
    end
    else
      match !roamer with
      | None -> ()
      | Some (user, _) ->
          (* a mid-run edit, so the between-wave gossip pushes real
             transfers through the fault schedule *)
          let account = Platform.account_exn platform user in
          (match
             Platform.write_user_record platform account ~file:"profile"
               (W5_store.Record.of_fields
                  [
                    ("user", user);
                    ("canary", canary user);
                    (Printf.sprintf "wave%d" w, canary user);
                  ])
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "mid-run write: %s" (W5_os.Os_error.to_string e));
          for _ = 1 to 4 do
            match W5_federation.Peer.sync_round mesh ~user with
            | Ok _ -> ()
            | Error _ -> incr sync_crashes
          done
  in
  let cfg =
    {
      Soak.default_config with
      Soak.seed;
      users = 16;
      requests = 360;
      waves = 3;
      quantum = 3;
    }
  in
  let society, s = Soak.run ~between_waves cfg in
  let platform = society.Populate.platform in
  (* the throttle bit mid-run: later waves got sanctioned 429s *)
  check bool_c "mid-run throttle took effect" true (s.Soak.s_throttled > 0);
  check bool_c "first wave still served" true (s.Soak.s_ok > 0);
  check int_c "no unexpected statuses under faults" 0 s.Soak.s_failed;
  (* throttling is the user's problem, not an availability breach *)
  let kernel = Platform.kernel platform in
  check bool_c "SLO not breached by throttling" false
    (W5_obs.Health.Slo.breached (Gateway.slo_of platform)
       ~now:(W5_os.Kernel.tick kernel));
  check int_c "no leaks under faults" 0 s.Soak.s_canary_leaks;
  check int_c "no unlabeled copies under faults" 0 s.Soak.s_unlabeled_canaries;
  (* settle the faulty mesh and check the roamed canary stayed labeled *)
  match !roamer with
  | None -> Alcotest.fail "fault injection never ran"
  | Some (user, remote) ->
      (* settle on convergence; faults whose slot never saw a transfer
         are allowed to stay pending (the soak may legitimately finish
         before the whole plan fires) *)
      let rec settle budget =
        if budget = 0 then Alcotest.fail "faulty mesh did not converge"
        else
          match W5_federation.Peer.sync_round mesh ~user with
          | Error _ ->
              incr sync_crashes;
              settle (budget - 1)
          | Ok 0 when W5_federation.Peer.converged mesh ~user -> ()
          | Ok _ -> settle (budget - 1)
      in
      settle 40;
      check (Alcotest.list Alcotest.string) "no unlabeled canary on remote" []
        (Soak.unlabeled_canary_paths remote ~needles:[ Soak.canary user ])

(* quota kill mid-request: a CPU hog admitted alongside normal
   traffic dies to its quota inside the drain. The gateway answers
   429, the kill and the quota hit are audited (the killed process's
   audit batch flushed), neighbours are unharmed, and the SLO ledger
   treats the 429 as served — not as an availability breach. *)
let test_scheduled_quota_kill ~seed () =
  let society =
    Populate.build ~seed ~users:6 ~friends_per_user:2 ~photos_per_user:1
      ~blog_posts_per_user:1 ()
  in
  let platform = society.Populate.platform in
  let mal = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev:mal);
  let u0 = List.hd society.Populate.users in
  (match Platform.enable_app platform ~user:u0 ~app:"mal/hog" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let jar_of user =
    let client = Populate.login society user in
    match Client.cookies client with
    | [] -> Headers.empty
    | jar ->
        Headers.set Headers.empty "Cookie"
          (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) jar))
  in
  let pendings =
    List.map
      (fun user ->
        let target =
          if user = u0 then "/app/mal/hog"
          else "/app/core/social?user=" ^ user
        in
        ( user,
          Gateway.submit platform
            (Request.make ~headers:(jar_of user) ~client:user Request.GET
               target) ))
      society.Populate.users
  in
  W5_os.Sched.drain
    (W5_os.Sched.create ~quantum:2
       ~policy:(W5_os.Sched.Seeded seed)
       (Platform.kernel platform));
  List.iter
    (fun (user, pending) ->
      let r = Gateway.conclude platform pending in
      if user = u0 then
        check int_c "hog request answered 429" 429
          (Response.status_code r.Response.status)
      else
        check int_c
          (Printf.sprintf "neighbour %s unharmed" user)
          200
          (Response.status_code r.Response.status))
    pendings;
  let entries =
    W5_os.Audit.entries (W5_os.Kernel.audit (Platform.kernel platform))
  in
  let kinds =
    List.map (fun e -> W5_os.Audit.event_kind e.W5_os.Audit.event) entries
  in
  check bool_c "quota hit audited" true (List.mem "quota_hit" kinds);
  check bool_c "kill audited" true
    (List.exists
       (fun e ->
         match e.W5_os.Audit.event with
         | W5_os.Audit.Killed { reason } ->
             String.length reason >= 5 && String.sub reason 0 5 = "quota"
         | _ -> false)
       entries);
  let now = W5_os.Kernel.tick (Platform.kernel platform) in
  let slo = Gateway.slo_of platform in
  check bool_c "429 does not breach the SLO" false
    (W5_obs.Health.Slo.breached slo ~now);
  check bool_c "slo saw the traffic" true
    (List.exists
       (fun (row : W5_obs.Health.Slo.row) -> row.W5_obs.Health.Slo.sr_total > 0)
       (W5_obs.Health.Slo.report slo ~now))

(* CI runs the scheduled soak under a run-derived seed so every
   pipeline explores a fresh interleaving (same pattern as
   W5_FAULT_SEED in test_fault). *)
let env_seeds =
  match Option.bind (Sys.getenv_opt "W5_SOAK_SEED") int_of_string_opt with
  | Some seed ->
      Printf.printf "test_soak: W5_SOAK_SEED=%d\n%!" seed;
      [ seed ]
  | None -> []

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "soak: 800-action trace + attacks (seed %d)" seed)
        `Slow (test_soak ~seed))
    [ 1234; 777; 31337 ]
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "soak: faulty 3-provider federation (seed %d)" seed)
          `Slow
          (test_faulty_federation_soak ~seed))
      [ 42; 9001 ]
  @ [
      Alcotest.test_case "scheduled soak: 1200 concurrent requests" `Slow
        test_scheduled_soak_heavy;
    ]
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "scheduled soak: same seed, same bytes (seed %d)"
             seed)
          `Slow
          (test_scheduled_soak_deterministic ~seed))
      ([ 42 ] @ env_seeds)
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "scheduled soak: mid-run faults (seed %d)" seed)
          `Slow
          (test_scheduled_soak_mid_run_faults ~seed))
      ([ 7 ] @ env_seeds)
  @ List.map
      (fun seed ->
        Alcotest.test_case
          (Printf.sprintf "scheduled soak: quota kill mid-request (seed %d)"
             seed)
          `Slow
          (test_scheduled_quota_kill ~seed))
      ([ 5 ] @ env_seeds)
