(* Tests for the bench-baseline schema and regression comparator:
   encode/parse round-trips, directory IO, threshold semantics
   (including the exact edge), structural findings, and the telemetry
   rule extended to perf tooling output. *)

open W5_obs

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let entry ?(runs = 3000) ?(r2 = 0.999) name ns =
  { Baseline.e_name = name; e_runs = runs; e_ns = ns; e_r2 = r2 }

let base_group =
  Baseline.make_group ~name:"e2e-request"
    [ entry "denied-view" 9000.0; entry "allowed-view" 12000.0 ]

(* ---- schema ---- *)

let test_roundtrip () =
  match Baseline.of_json (Baseline.to_json base_group) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok g ->
      check string_c "group name survives" "e2e-request" g.Baseline.g_name;
      check int_c "entry count" 2 (List.length g.Baseline.g_entries);
      (* make_group sorts, so the round-trip is byte-stable *)
      check string_c "re-encoding is byte-identical"
        (Baseline.to_json base_group)
        (Baseline.to_json g);
      check string_c "entries sorted by name" "allowed-view"
        (List.hd g.Baseline.g_entries).Baseline.e_name

let test_sanitizes_non_finite () =
  let g =
    Baseline.make_group ~name:"g" [ entry ~r2:Float.nan "a" Float.infinity ]
  in
  match g.Baseline.g_entries with
  | [ e ] ->
      check bool_c "ns sanitized" true (e.Baseline.e_ns = 0.0);
      check bool_c "r2 sanitized" true (e.Baseline.e_r2 = 0.0);
      check bool_c "emitted JSON parses back" true
        (Result.is_ok (Baseline.of_json (Baseline.to_json g)))
  | _ -> Alcotest.fail "expected one entry"

let test_rejects_bad_json () =
  check bool_c "garbage rejected" true
    (Result.is_error (Baseline.of_json "not json"));
  check bool_c "missing fields rejected" true
    (Result.is_error (Baseline.of_json "{\"group\":\"g\"}"));
  check bool_c "wrong schema version rejected" true
    (Result.is_error
       (Baseline.of_json
          "{\"schema_version\":99,\"group\":\"g\",\"results\":[]}"));
  check bool_c "trailing bytes rejected" true
    (Result.is_error
       (Baseline.of_json
          "{\"schema_version\":1,\"group\":\"g\",\"results\":[]}x"))

let test_dir_roundtrip () =
  let dir = "baseline-dir-test" in
  let groups =
    [
      Baseline.make_group ~name:"zeta" [ entry "a" 10.0 ];
      Baseline.make_group ~name:"alpha" [ entry "b" 20.0 ];
    ]
  in
  Baseline.save_dir ~dir groups;
  (match Baseline.load_dir dir with
  | Error e -> Alcotest.failf "load_dir failed: %s" e
  | Ok loaded ->
      check
        (Alcotest.list string_c)
        "groups load sorted by name" [ "alpha"; "zeta" ]
        (List.map (fun g -> g.Baseline.g_name) loaded));
  check bool_c "files named BENCH_<group>.json" true
    (Sys.file_exists (Filename.concat dir "BENCH_alpha.json"))

(* ---- comparison ---- *)

let diff ?threshold ?names_only ~fresh () =
  Baseline.compare_runs ?threshold ?names_only ~baseline:[ base_group ]
    ~fresh ()

let test_clean_run_is_quiet () =
  let fresh =
    [
      Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 9100.0; entry "allowed-view" 11900.0 ];
    ]
  in
  let findings = diff ~fresh () in
  check int_c "no findings" 0 (List.length findings);
  check bool_c "no regression" false (Baseline.has_regression findings);
  check bool_c "text says ok" true
    (contains (Baseline.render_text findings) "no change beyond thresholds")

let test_regression_detected () =
  let fresh =
    [
      Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 20000.0; entry "allowed-view" 12000.0 ];
    ]
  in
  let findings = diff ~fresh () in
  check bool_c "regression flagged" true (Baseline.has_regression findings);
  (match findings with
  | [ Baseline.Regression { name; base_ns; fresh_ns; _ } ] ->
      check string_c "right test" "denied-view" name;
      check bool_c "values carried" true
        (base_ns = 9000.0 && fresh_ns = 20000.0)
  | _ -> Alcotest.fail "expected exactly one regression");
  check bool_c "text verdict" true
    (contains (Baseline.render_text findings) "perf: REGRESSION");
  check bool_c "json verdict" true
    (contains (Baseline.render_json findings) "\"regression\":true")

let test_threshold_edge_is_strict () =
  (* default threshold 0.5: exactly base * 1.5 is NOT a regression,
     one ns over is *)
  let at_edge =
    [ Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 13500.0; entry "allowed-view" 12000.0 ] ]
  in
  check int_c "exact edge passes" 0 (List.length (diff ~fresh:at_edge ()));
  let over =
    [ Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 13501.0; entry "allowed-view" 12000.0 ] ]
  in
  check bool_c "just over fails" true
    (Baseline.has_regression (diff ~fresh:over ()))

let test_improvement_reported_not_failed () =
  let fresh =
    [ Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 3000.0; entry "allowed-view" 12000.0 ] ]
  in
  let findings = diff ~fresh () in
  (match findings with
  | [ Baseline.Improvement { name; _ } ] ->
      check string_c "right test" "denied-view" name
  | _ -> Alcotest.fail "expected exactly one improvement");
  check bool_c "improvements don't fail the gate" false
    (Baseline.has_regression findings)

let test_missing_group_and_test_fail () =
  check bool_c "vanished group fails" true
    (Baseline.has_regression (diff ~fresh:[] ()));
  let fresh =
    [ Baseline.make_group ~name:"e2e-request" [ entry "denied-view" 9000.0 ] ]
  in
  let findings = diff ~fresh () in
  (match findings with
  | [ Baseline.Missing_test { name; _ } ] ->
      check string_c "right test" "allowed-view" name
  | _ -> Alcotest.fail "expected exactly one missing test");
  check bool_c "vanished test fails" true (Baseline.has_regression findings)

let test_new_entries_informational () =
  let fresh =
    [
      Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 9000.0; entry "allowed-view" 12000.0;
          entry "brand-new" 5.0 ];
      Baseline.make_group ~name:"novel-group" [ entry "x" 1.0 ];
    ]
  in
  let findings = diff ~fresh () in
  check int_c "both novelties reported" 2 (List.length findings);
  check bool_c "novelty does not fail the gate" false
    (Baseline.has_regression findings);
  check bool_c "text suggests re-recording" true
    (contains (Baseline.render_text findings) "re-record")

let test_group_threshold_override () =
  (* label-ops tolerates 2x (threshold 1.0) where the default would
     have flagged *)
  let baseline = [ Baseline.make_group ~name:"label-ops" [ entry "join" 100.0 ] ] in
  let fresh = [ Baseline.make_group ~name:"label-ops" [ entry "join" 190.0 ] ] in
  check int_c "1.9x within label-ops threshold" 0
    (List.length (Baseline.compare_runs ~baseline ~fresh ()));
  let worse = [ Baseline.make_group ~name:"label-ops" [ entry "join" 210.0 ] ] in
  check bool_c "2.1x still fails" true
    (Baseline.has_regression (Baseline.compare_runs ~baseline ~fresh:worse ()))

let test_sub_ns_skipped () =
  let baseline = [ Baseline.make_group ~name:"g" [ entry "x" 0.4 ] ] in
  let fresh = [ Baseline.make_group ~name:"g" [ entry "x" 0.9 ] ] in
  check int_c "sub-ns estimates incomparable" 0
    (List.length (Baseline.compare_runs ~baseline ~fresh ()))

let test_names_only_mode () =
  (* a 10x slowdown is invisible to the structural gate... *)
  let fresh =
    [ Baseline.make_group ~name:"e2e-request"
        [ entry "denied-view" 90000.0; entry "allowed-view" 120000.0 ] ]
  in
  check int_c "values ignored" 0
    (List.length (diff ~names_only:true ~fresh ()));
  (* ...but a vanished test is not *)
  let dropped =
    [ Baseline.make_group ~name:"e2e-request" [ entry "denied-view" 9000.0 ] ]
  in
  check bool_c "structure still enforced" true
    (Baseline.has_regression (diff ~names_only:true ~fresh:dropped ()))

(* ---- skeleton + telemetry rule ---- *)

let test_schema_skeleton () =
  let skeleton = Baseline.schema_skeleton [ base_group ] in
  check bool_c "names the file" true (contains skeleton "BENCH_e2e-request.json");
  check bool_c "lists tests" true (contains skeleton "  denied-view");
  check bool_c "values absent" false (contains skeleton "9000")

let canary = "W5-CANARY-bf1083-do-not-export"

let test_no_user_bytes_in_perf_output () =
  (* Bench names are code-chosen constants; even if a payload-bearing
     name slipped into a baseline file, diff output must carry only
     what the schema defines. Render every output over normal groups
     and assert the canary (absent from the input) can't appear. *)
  let fresh =
    [ Baseline.make_group ~name:"e2e-request" [ entry "denied-view" 99000.0 ] ]
  in
  let findings = diff ~fresh () in
  List.iter
    (fun (name, rendered) ->
      check bool_c (name ^ " is payload-free") false (contains rendered canary))
    [
      ("diff text", Baseline.render_text findings);
      ("diff json", Baseline.render_json findings);
      ("skeleton", Baseline.schema_skeleton [ base_group ]);
      ("baseline json", Baseline.to_json base_group);
    ]

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_roundtrip;
    Alcotest.test_case "non-finite sanitized" `Quick test_sanitizes_non_finite;
    Alcotest.test_case "bad json rejected" `Quick test_rejects_bad_json;
    Alcotest.test_case "directory round-trip" `Quick test_dir_roundtrip;
    Alcotest.test_case "clean run is quiet" `Quick test_clean_run_is_quiet;
    Alcotest.test_case "regression detected" `Quick test_regression_detected;
    Alcotest.test_case "threshold edge strict" `Quick
      test_threshold_edge_is_strict;
    Alcotest.test_case "improvement informational" `Quick
      test_improvement_reported_not_failed;
    Alcotest.test_case "missing group/test fail" `Quick
      test_missing_group_and_test_fail;
    Alcotest.test_case "new entries informational" `Quick
      test_new_entries_informational;
    Alcotest.test_case "per-group threshold" `Quick
      test_group_threshold_override;
    Alcotest.test_case "sub-ns skipped" `Quick test_sub_ns_skipped;
    Alcotest.test_case "names-only mode" `Quick test_names_only_mode;
    Alcotest.test_case "schema skeleton" `Quick test_schema_skeleton;
    Alcotest.test_case "no user bytes in perf output" `Quick
      test_no_user_bytes_in_perf_output;
  ]
