(* Tests for the code-search stack (experiment E5): dependency graph,
   PageRank, editors, composite search scoring. *)

open W5_difc
open W5_platform
open W5_rank

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ---- depgraph ---- *)

let test_depgraph_basics () =
  let g = Depgraph.create () in
  Depgraph.add_edge g ~src:"a" ~dst:"b";
  Depgraph.add_edge g ~src:"a" ~dst:"c";
  Depgraph.add_edge g ~src:"b" ~dst:"c";
  Depgraph.add_edge g ~src:"a" ~dst:"b" (* duplicate: idempotent *);
  check int_c "nodes" 3 (Depgraph.node_count g);
  check int_c "edges" 3 (Depgraph.edge_count g);
  check (Alcotest.list string_c) "succ a" [ "b"; "c" ] (Depgraph.successors g "a");
  check (Alcotest.list string_c) "pred c" [ "a"; "b" ] (Depgraph.predecessors g "c");
  check int_c "in c" 2 (Depgraph.in_degree g "c");
  check int_c "out c" 0 (Depgraph.out_degree g "c");
  check bool_c "mem" true (Depgraph.mem g "a");
  check bool_c "not mem" false (Depgraph.mem g "zz")

let test_depgraph_union () =
  let g1 = Depgraph.of_edges [ ("a", "b") ] in
  let g2 = Depgraph.of_edges [ ("b", "c") ] in
  let u = Depgraph.union g1 g2 in
  check int_c "union nodes" 3 (Depgraph.node_count u);
  check int_c "union edges" 2 (Depgraph.edge_count u)

(* ---- pagerank ---- *)

let sum scores = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 scores

let test_pagerank_empty_and_single () =
  check int_c "empty" 0 (List.length (Pagerank.compute (Depgraph.create ())));
  let g = Depgraph.create () in
  Depgraph.add_node g "solo";
  match Pagerank.compute g with
  | [ ("solo", s) ] -> check bool_c "solo mass" true (abs_float (s -. 1.0) < 1e-6)
  | _ -> Alcotest.fail "expected one node"

let test_pagerank_sink_dominates () =
  (* everyone imports "lib"; lib imports nothing *)
  let g = Depgraph.of_edges [ ("a", "lib"); ("b", "lib"); ("c", "lib") ] in
  let scores = Pagerank.compute g in
  (match scores with
  | (top, _) :: _ -> check string_c "lib on top" "lib" top
  | [] -> Alcotest.fail "no scores");
  check bool_c "sums to one" true (abs_float (sum scores -. 1.0) < 1e-6)

let test_pagerank_symmetric_cycle () =
  let g = Depgraph.of_edges [ ("a", "b"); ("b", "c"); ("c", "a") ] in
  let scores = Pagerank.compute g in
  let values = List.map snd scores in
  match values with
  | [ x; y; z ] ->
      check bool_c "cycle is uniform" true
        (abs_float (x -. y) < 1e-9 && abs_float (y -. z) < 1e-9)
  | _ -> Alcotest.fail "expected three scores"

let test_pagerank_convergence_measure () =
  let g = Depgraph.of_edges [ ("a", "b"); ("b", "a"); ("c", "a") ] in
  let iterations = Pagerank.iterations_to_converge g in
  check bool_c "converges" true (iterations > 0 && iterations < 200)

let arb_graph =
  QCheck.make
    ~print:(fun edges ->
      String.concat ","
        (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))
    QCheck.Gen.(list_size (1 -- 30) (pair (0 -- 9) (0 -- 9)))

let prop_pagerank_sums_to_one =
  QCheck.Test.make ~name:"pagerank sums to 1 on random graphs" ~count:100
    arb_graph (fun int_edges ->
      let edges =
        List.map
          (fun (a, b) -> ("n" ^ string_of_int a, "n" ^ string_of_int b))
          int_edges
      in
      let scores = Pagerank.compute (Depgraph.of_edges edges) in
      abs_float (sum scores -. 1.0) < 1e-6)

let prop_pagerank_positive =
  QCheck.Test.make ~name:"pagerank scores are positive" ~count:100 arb_graph
    (fun int_edges ->
      let edges =
        List.map
          (fun (a, b) -> ("n" ^ string_of_int a, "n" ^ string_of_int b))
          int_edges
      in
      List.for_all (fun (_, s) -> s > 0.0)
        (Pagerank.compute (Depgraph.of_edges edges)))

(* ---- editors ---- *)

let test_editor () =
  let e = Editor.create "ziff-davis" in
  check string_c "name" "ziff-davis" (Editor.name e);
  Editor.endorse e ~app:"a/good" ~reason:"audited 2026-06";
  check bool_c "endorsed" true (Editor.endorsed e ~app:"a/good");
  check (Alcotest.option string_c) "reason" (Some "audited 2026-06")
    (Editor.endorsement_reason e ~app:"a/good");
  Editor.flag_antisocial e ~app:"a/hoarder" ~reason:"proprietary format";
  check bool_c "flagged" true (Editor.flagged e ~app:"a/hoarder");
  check bool_c "others clean" false (Editor.flagged e ~app:"a/good");
  Editor.subscribe e ~user:"u1";
  Editor.subscribe e ~user:"u1";
  Editor.subscribe e ~user:"u2";
  check int_c "subscribers dedup" 2 (Editor.subscriber_count e);
  check bool_c "reputation grows" true (Editor.reputation e > 0.0)

(* ---- code search ---- *)

let handler ctx (_ : App_registry.env) = ignore (W5_os.Syscall.respond ctx "ok")

let registry_with_structure () =
  let registry = App_registry.create () in
  let dev name = Principal.make Principal.Developer name in
  let publish ~dev:d ~name ?(imports = []) ?(source = App_registry.Open_source "src") () =
    match
      App_registry.publish registry ~dev:d ~name ~version:"1.0" ~source ~imports
        handler
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "publish: %s" e
  in
  let base = dev "base" and appdev = dev "apps" in
  publish ~dev:base ~name:"stdlib" ();
  publish ~dev:appdev ~name:"photo" ~imports:[ "base/stdlib" ] ();
  publish ~dev:appdev ~name:"blog" ~imports:[ "base/stdlib" ] ();
  publish ~dev:appdev ~name:"island" ~source:App_registry.Closed_binary ();
  registry

let test_search_ranks_imported_lib_first () =
  let registry = registry_with_structure () in
  let results = Code_search.score_all registry in
  (match Code_search.rank_of results "base/stdlib" with
  | Some rank -> check int_c "stdlib first" 1 rank
  | None -> Alcotest.fail "stdlib missing");
  (* every registered app appears *)
  check int_c "all apps" 4 (List.length results)

let test_search_query_filter () =
  let registry = registry_with_structure () in
  let results = Code_search.search registry ~query:"PHOTO" in
  check int_c "one hit" 1 (List.length results);
  check string_c "hit" "apps/photo" (List.hd results).Code_search.app_id

let test_search_editor_influence () =
  let registry = registry_with_structure () in
  let editor = Editor.create "reviewer" in
  List.iter (fun u -> Editor.subscribe editor ~user:u) [ "a"; "b"; "c"; "d" ];
  (* flagging stdlib sinks it below the apps despite pagerank *)
  Editor.flag_antisocial editor ~app:"base/stdlib" ~reason:"proprietary";
  let results = Code_search.score_all ~editors:[ editor ] registry in
  (match Code_search.rank_of results "base/stdlib" with
  | Some rank -> check bool_c "flag sinks" true (rank > 1)
  | None -> Alcotest.fail "stdlib missing");
  let flagged =
    List.find (fun r -> r.Code_search.app_id = "base/stdlib") results
  in
  check (Alcotest.list string_c) "flagged_by" [ "reviewer" ]
    flagged.Code_search.flagged_by;
  (* endorsing island lifts it *)
  let before = Code_search.rank_of (Code_search.score_all registry) "apps/island" in
  Editor.endorse editor ~app:"apps/island" ~reason:"fine";
  let after =
    Code_search.rank_of (Code_search.score_all ~editors:[ editor ] registry) "apps/island"
  in
  match (before, after) with
  | Some b, Some a -> check bool_c "endorsement lifts" true (a < b)
  | _ -> Alcotest.fail "island missing"

let test_search_popularity () =
  let registry = registry_with_structure () in
  List.iter (fun _ -> App_registry.record_install registry "apps/blog")
    (List.init 50 Fun.id);
  let results = Code_search.score_all registry in
  match
    (Code_search.rank_of results "apps/blog", Code_search.rank_of results "apps/photo")
  with
  | Some blog, Some photo -> check bool_c "installs lift blog" true (blog < photo)
  | _ -> Alcotest.fail "apps missing"

let test_auditable_marker () =
  let registry = registry_with_structure () in
  let results = Code_search.score_all registry in
  let find id = List.find (fun r -> r.Code_search.app_id = id) results in
  check bool_c "open source auditable" true (find "apps/photo").Code_search.auditable;
  check bool_c "binary not" false (find "apps/island").Code_search.auditable

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "depgraph basics" `Quick test_depgraph_basics;
    Alcotest.test_case "depgraph union" `Quick test_depgraph_union;
    Alcotest.test_case "pagerank trivial graphs" `Quick
      test_pagerank_empty_and_single;
    Alcotest.test_case "pagerank sink dominates" `Quick
      test_pagerank_sink_dominates;
    Alcotest.test_case "pagerank symmetric cycle" `Quick
      test_pagerank_symmetric_cycle;
    Alcotest.test_case "pagerank convergence" `Quick
      test_pagerank_convergence_measure;
    Alcotest.test_case "editor" `Quick test_editor;
    Alcotest.test_case "search ranks imported lib first" `Quick
      test_search_ranks_imported_lib_first;
    Alcotest.test_case "search query filter" `Quick test_search_query_filter;
    Alcotest.test_case "search editor influence" `Quick
      test_search_editor_influence;
    Alcotest.test_case "search popularity" `Quick test_search_popularity;
    Alcotest.test_case "auditable marker" `Quick test_auditable_marker;
  ]
  @ qsuite [ prop_pagerank_sums_to_one; prop_pagerank_positive ]

(* ---- HITS (the ranking ablation) ---- *)

let test_hits_empty_and_basics () =
  let empty = Hits.compute (Depgraph.create ()) in
  check int_c "empty" 0 (List.length empty.Hits.authority);
  (* everyone imports lib: lib is the authority, importers are hubs *)
  let g = Depgraph.of_edges [ ("a", "lib"); ("b", "lib"); ("c", "lib") ] in
  let scores = Hits.compute g in
  (match scores.Hits.authority with
  | (top, _) :: _ -> check string_c "lib is the authority" "lib" top
  | [] -> Alcotest.fail "no authorities");
  check bool_c "lib is no hub" true
    (Hits.hub_of scores "lib" < Hits.hub_of scores "a");
  check bool_c "importers are hubs" true
    (Hits.hub_of scores "a" > 0.0 && Hits.authority_of scores "a" < 1e-9)

let test_hits_agrees_with_pagerank_on_star () =
  (* on a simple star both rankings put the hub-of-imports first *)
  let g = Depgraph.of_edges [ ("a", "lib"); ("b", "lib"); ("c", "lib"); ("c", "a") ] in
  let pr = Pagerank.compute g in
  let hits = Hits.compute g in
  let pr_top = fst (List.hd pr) in
  let hits_top = fst (List.hd hits.Hits.authority) in
  check string_c "same winner" pr_top hits_top

let prop_hits_scores_bounded =
  QCheck.Test.make ~name:"hits scores lie in [0,1]" ~count:100 arb_graph
    (fun int_edges ->
      let edges =
        List.map
          (fun (a, b) -> ("n" ^ string_of_int a, "n" ^ string_of_int b))
          int_edges
      in
      let scores = Hits.compute (Depgraph.of_edges edges) in
      List.for_all (fun (_, s) -> s >= -1e-9 && s <= 1.0 +. 1e-9)
        (scores.Hits.authority @ scores.Hits.hub))

let suite =
  suite
  @ [
      Alcotest.test_case "hits basics" `Quick test_hits_empty_and_basics;
      Alcotest.test_case "hits vs pagerank on star" `Quick
        test_hits_agrees_with_pagerank_on_star;
    ]
  @ qsuite [ prop_hits_scores_bounded ]

(* ---- additional rank coverage ---- *)

let test_depgraph_self_loop () =
  let g = Depgraph.of_edges [ ("a", "a") ] in
  check int_c "one node" 1 (Depgraph.node_count g);
  check int_c "one edge" 1 (Depgraph.edge_count g);
  (* pagerank still behaves *)
  let scores = Pagerank.compute g in
  check bool_c "sum" true (abs_float (sum scores -. 1.0) < 1e-6)

let test_pagerank_dangling_mass () =
  (* two nodes, one dangling: mass still sums to 1 *)
  let g = Depgraph.create () in
  Depgraph.add_node g "dangling";
  Depgraph.add_edge g ~src:"src" ~dst:"dangling";
  let scores = Pagerank.compute g in
  check bool_c "sum with dangling" true (abs_float (sum scores -. 1.0) < 1e-6);
  check bool_c "dangling accumulates" true
    (Pagerank.score_of scores "dangling" > Pagerank.score_of scores "src");
  check bool_c "score_of missing" true (Pagerank.score_of scores "ghost" = 0.0)

let test_rank_of_missing () =
  let registry = registry_with_structure () in
  let results = Code_search.score_all registry in
  check (Alcotest.option int_c) "missing app" None
    (Code_search.rank_of results "no/app")

let test_search_empty_query_returns_all () =
  let registry = registry_with_structure () in
  check int_c "all" 4 (List.length (Code_search.search registry ~query:""))

let test_hits_authority_of_missing () =
  let scores = Hits.compute (Depgraph.of_edges [ ("a", "b") ]) in
  check bool_c "missing is zero" true (Hits.authority_of scores "zz" = 0.0);
  check bool_c "hub of missing" true (Hits.hub_of scores "zz" = 0.0)

let suite =
  suite
  @ [
      Alcotest.test_case "depgraph self loop" `Quick test_depgraph_self_loop;
      Alcotest.test_case "pagerank dangling mass" `Quick test_pagerank_dangling_mass;
      Alcotest.test_case "rank_of missing" `Quick test_rank_of_missing;
      Alcotest.test_case "search empty query" `Quick test_search_empty_query_returns_all;
      Alcotest.test_case "hits missing nodes" `Quick test_hits_authority_of_missing;
    ]

let test_pagerank_damping_extremes () =
  let g = Depgraph.of_edges [ ("a", "hub"); ("b", "hub"); ("c", "hub") ] in
  (* damping 0: pure teleportation, uniform scores *)
  let uniform = Pagerank.compute ~damping:0.0 g in
  let values = List.map snd uniform in
  (match values with
  | v :: rest -> check bool_c "uniform at damping 0" true
      (List.for_all (fun x -> abs_float (x -. v) < 1e-9) rest)
  | [] -> Alcotest.fail "no scores");
  (* high damping concentrates mass on the hub *)
  let concentrated = Pagerank.compute ~damping:0.99 g in
  check bool_c "hub dominates at damping .99" true
    (Pagerank.score_of concentrated "hub" > 0.5)

let test_editor_missing_reason () =
  let e = Editor.create "quiet" in
  check (Alcotest.option string_c) "no reason" None
    (Editor.endorsement_reason e ~app:"x/y");
  check int_c "zero subscribers" 0 (Editor.subscriber_count e);
  check bool_c "zero reputation" true (Editor.reputation e = 0.0);
  check
    (Alcotest.list (Alcotest.pair string_c string_c))
    "empty lists" [] (Editor.endorsements e @ Editor.flags e)

let suite =
  suite
  @ [
      Alcotest.test_case "pagerank damping extremes" `Quick
        test_pagerank_damping_extremes;
      Alcotest.test_case "editor missing reason" `Quick test_editor_missing_reason;
    ]

(* ---- the editors app over HTTP ---- *)

let test_editor_app () =
  let platform = Platform.create () in
  let e1 = Editor.create "weekly" and e2 = Editor.create "monthly" in
  Editor.endorse e1 ~app:"a/good" ~reason:"audited";
  Editor.flag_antisocial e1 ~app:"a/bad" ~reason:"proprietary";
  let dev = Principal.make Principal.Developer "provider" in
  (match Editor_app.publish platform ~dev ~editors:[ e1; e2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Platform.signup platform ~user:"fan" ~password:"pw" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let anon = W5_http.Client.make (W5_platform.Gateway.handler platform) in
  (* the index and detail pages are public *)
  let r = W5_http.Client.get anon "/app/provider/editors" in
  check int_c "index" 200 (W5_http.Response.status_code r.W5_http.Response.status);
  check bool_c "lists both" true
    (W5_http.Client.saw anon "weekly" && W5_http.Client.saw anon "monthly");
  let r = W5_http.Client.get anon "/app/provider/editors" ~params:[ ("editor", "weekly") ] in
  check int_c "detail" 200 (W5_http.Response.status_code r.W5_http.Response.status);
  check bool_c "endorsement shown" true (W5_http.Client.saw anon "a/good");
  check bool_c "flag shown" true (W5_http.Client.saw anon "a/bad");
  (* subscribing needs a login and moves reputation *)
  let r =
    W5_http.Client.post anon "/app/provider/editors"
      ~form:[ ("action", "subscribe"); ("editor", "weekly") ]
  in
  check bool_c "anon cannot subscribe" true (W5_http.Client.saw anon "please log in");
  ignore r;
  let fan = W5_http.Client.make ~name:"fan" (W5_platform.Gateway.handler platform) in
  ignore (W5_http.Client.post fan "/login" ~form:[ ("user", "fan"); ("pass", "pw") ]);
  (match Platform.enable_app platform ~user:"fan" ~app:"provider/editors" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let before = Editor.reputation e1 in
  let r =
    W5_http.Client.post fan "/app/provider/editors"
      ~form:[ ("action", "subscribe"); ("editor", "weekly") ]
  in
  check int_c "subscribed" 200 (W5_http.Response.status_code r.W5_http.Response.status);
  check bool_c "reputation grew" true (Editor.reputation e1 > before)

let suite = suite @ [ Alcotest.test_case "editor app" `Quick test_editor_app ]

(* ---- dangling endpoints (regression) ----

   Removing a node leaves references to it inside other nodes'
   successor sets (Depgraph.remove_node is O(1) by design). PageRank
   and HITS used to crash on such ids with Not_found; they must drop
   them instead, matching score_of's lenient default. *)

let dangling_graph () =
  let g = Depgraph.of_edges [ ("a", "b"); ("a", "gone"); ("b", "gone") ] in
  Depgraph.remove_node g "gone";
  g

let test_pagerank_dangling_endpoint () =
  let g = dangling_graph () in
  check bool_c "gone is gone" false (Depgraph.mem g "gone");
  check (Alcotest.list string_c) "successor still dangling" [ "b"; "gone" ]
    (Depgraph.successors g "a");
  let scores = Pagerank.compute g in
  check int_c "scores for remaining nodes" 2 (List.length scores);
  check bool_c "mass sums to one" true (abs_float (sum scores -. 1.0) < 1e-6);
  check bool_c "unknown id scores zero" true
    (Pagerank.score_of scores "gone" = 0.0)

let test_hits_dangling_endpoint () =
  let g = dangling_graph () in
  let scores = Hits.compute g in
  check int_c "authority list covers nodes" 2 (List.length scores.Hits.authority);
  check bool_c "a is the hub" true (Hits.hub_of scores "a" > 0.0);
  check bool_c "unknown id scores zero" true
    (Hits.authority_of scores "gone" = 0.0)

let suite =
  suite
  @ [
      Alcotest.test_case "pagerank dangling endpoint" `Quick
        test_pagerank_dangling_endpoint;
      Alcotest.test_case "hits dangling endpoint" `Quick
        test_hits_dangling_endpoint;
    ]
