(* Non-interference, end to end: randomly generated adversarial
   applications — arbitrary sequences of syscalls — are uploaded,
   executed for a non-owner viewer, and their response pushed through
   the real perimeter. The property: the secret marker never reaches
   any client except the data's owner (no declassifier is installed).

   This is the reproduction's load-bearing property test: it does not
   know *how* a program might try to leak, only that whatever it does
   compose out of the public API must not work. *)

open W5_difc
open W5_http
open W5_platform

(* The adversary's instruction set. [acc] is the program's private
   accumulator (a plain OCaml string — inside the process, everything
   is fair game). *)
type op =
  | Read_secret_taint
  | Read_secret_strict
  | Copy_to_public of int      (* create /apps/drop-<n> with bottom labels *)
  | Copy_to_tainted of int     (* create a file labeled with current taint *)
  | Read_back of int           (* taint-read a previously written file *)
  | Try_declassify
  | Try_set_bottom
  | Add_noise                  (* append innocuous data *)
  | Respond_now
  | Spawn_and_message          (* launder through a child process *)
  | Call_declassifier          (* invoke the owner's gate directly *)
  | Rename_secret of int       (* try to move the secret file somewhere public *)

let op_name = function
  | Read_secret_taint -> "read_taint"
  | Read_secret_strict -> "read_strict"
  | Copy_to_public n -> Printf.sprintf "copy_pub_%d" n
  | Copy_to_tainted n -> Printf.sprintf "copy_taint_%d" n
  | Read_back n -> Printf.sprintf "read_back_%d" n
  | Try_declassify -> "declassify"
  | Try_set_bottom -> "set_bottom"
  | Add_noise -> "noise"
  | Respond_now -> "respond"
  | Spawn_and_message -> "spawn_message"
  | Call_declassifier -> "call_gate"
  | Rename_secret n -> Printf.sprintf "rename_%d" n

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, return Read_secret_taint);
        (2, return Read_secret_strict);
        (2, map (fun n -> Copy_to_public (n mod 4)) (0 -- 3));
        (2, map (fun n -> Copy_to_tainted (n mod 4)) (0 -- 3));
        (2, map (fun n -> Read_back (n mod 4)) (0 -- 3));
        (2, return Try_declassify);
        (2, return Try_set_bottom);
        (1, return Add_noise);
        (2, return Respond_now);
        (2, return Spawn_and_message);
        (2, return Call_declassifier);
        (2, map (fun n -> Rename_secret (n mod 4)) (0 -- 3));
      ])

let arb_program =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map op_name ops))
    QCheck.Gen.(list_size (1 -- 15) gen_op)

let secret_marker = "XSECRETX"

(* Interpret a program as an app handler. All failures are swallowed:
   a real adversary would also ignore errors and push on. *)
let adversary_handler program target_user ctx (_ : App_registry.env) =
  let open W5_os in
  let acc = ref "start:" in
  let drop_path n = Printf.sprintf "/apps/drop-%d-%d" (Syscall.pid ctx) n in
  let secret_path = "/users/" ^ target_user ^ "/profile" in
  let interpret = function
    | Read_secret_taint -> (
        match Syscall.read_file_taint ctx secret_path with
        | Ok data -> acc := !acc ^ data
        | Error _ -> ())
    | Read_secret_strict -> (
        match Syscall.read_file ctx secret_path with
        | Ok data -> acc := !acc ^ data
        | Error _ -> ())
    | Copy_to_public n ->
        ignore
          (Syscall.create_file ctx (drop_path n) ~labels:Flow.bottom ~data:!acc)
    | Copy_to_tainted n ->
        ignore
          (Syscall.create_file ctx (drop_path n)
             ~labels:(Syscall.my_labels ctx)
             ~data:!acc)
    | Read_back n -> (
        match Syscall.read_file_taint ctx (drop_path n) with
        | Ok data -> acc := !acc ^ "|" ^ data
        | Error _ -> ())
    | Try_declassify ->
        Label.iter
          (fun tag -> ignore (Syscall.declassify_self ctx tag))
          (Syscall.my_labels ctx).Flow.secrecy
    | Try_set_bottom -> ignore (Syscall.set_labels ctx Flow.bottom)
    | Add_noise -> acc := !acc ^ "noise"
    | Respond_now -> ignore (Syscall.respond ctx !acc)
    | Spawn_and_message -> (
        (* classic laundering attempt: hand the loot to a child and
           have the child respond with lower labels *)
        match
          Syscall.spawn ctx ~name:"mule" ~labels:Flow.bottom (fun _ -> ())
        with
        | Ok mule -> (
            match Syscall.send ctx ~to_:mule.W5_os.Proc.pid !acc with
            | Ok () -> ()
            | Error _ -> ())
        | Error _ -> ())
    | Rename_secret n ->
        ignore (Syscall.rename ctx ~src:secret_path ~dst:(drop_path n));
        ignore
          (Syscall.rename ctx ~src:secret_path
             ~dst:(Printf.sprintf "/apps/grab-%d" n))
    | Call_declassifier -> (
        (* ask the owner's own gate to launder the accumulator *)
        let gate =
          Declassifier.gate_name ~owner:target_user ~name:"friends"
        in
        match
          Syscall.invoke_gate ctx gate
            ~arg:(Declassifier.encode_arg ~viewer:(Some "mallory") ~data:!acc)
        with
        | Ok (Some (out, _)) -> acc := !acc ^ "|" ^ out
        | Ok None | Error _ -> ())
  in
  List.iter interpret program;
  ignore (Syscall.respond ctx !acc)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= hn && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* One arena per case: alice owns the marker, mallory runs the app. *)
let run_case ?(with_declassifier = false) program =
  let platform = Platform.create () in
  let alice =
    match Platform.signup platform ~user:"alice" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  ignore
    (Platform.write_user_record platform alice ~file:"profile"
       (W5_store.Record.of_fields [ ("ssn", secret_marker) ]));
  if with_declassifier then
    (* a real friends-only gate exists, but mallory is no friend: the
       adversary may invoke it all it wants *)
    ignore
      (Declassifier.install_and_authorize platform ~account:alice
         ~name:"friends" Declassifier.friends_only);
  ignore (Platform.signup platform ~user:"mallory" ~password:"pw");
  let dev = Principal.make Principal.Developer "adv" in
  (match
     App_registry.publish (Platform.registry platform) ~dev ~name:"adv"
       ~version:"1.0"
       (adversary_handler program "alice")
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Platform.enable_app platform ~user:"mallory" ~app:"adv/adv" with
  | Ok () -> ()
  | Error e -> failwith e);
  let mallory = Client.make ~name:"mallory" (Gateway.handler platform) in
  ignore (Client.post mallory "/login" ~form:[ ("user", "mallory"); ("pass", "pw") ]);
  ignore (Client.get mallory "/app/adv/adv");
  let anon = Client.make (Gateway.handler platform) in
  ignore (Client.get anon "/app/adv/adv");
  (* the oracle: nothing any outside client ever received contains the
     marker *)
  List.for_all
    (fun client ->
      List.for_all
        (fun body -> not (contains body secret_marker))
        (Client.last_bodies client))
    [ mallory; anon ]

let prop_no_exfiltration =
  QCheck.Test.make ~name:"random adversaries cannot exfiltrate" ~count:250
    arb_program (fun program -> run_case program)

let prop_no_exfiltration_with_gate =
  QCheck.Test.make
    ~name:"random adversaries cannot abuse an installed declassifier"
    ~count:250 arb_program (fun program ->
      run_case ~with_declassifier:true program)

(* The sanity half: the same machinery does deliver the marker to its
   owner, so the property above is not vacuously true. *)
let test_owner_still_sees_data () =
  let program = [ Read_secret_taint; Respond_now ] in
  let platform = Platform.create () in
  let alice =
    match Platform.signup platform ~user:"alice" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  ignore
    (Platform.write_user_record platform alice ~file:"profile"
       (W5_store.Record.of_fields [ ("ssn", secret_marker) ]));
  let dev = Principal.make Principal.Developer "adv" in
  (match
     App_registry.publish (Platform.registry platform) ~dev ~name:"adv"
       ~version:"1.0"
       (adversary_handler program "alice")
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match Platform.enable_app platform ~user:"alice" ~app:"adv/adv" with
  | Ok () -> ()
  | Error e -> failwith e);
  let owner = Client.make ~name:"alice" (Gateway.handler platform) in
  ignore (Client.post owner "/login" ~form:[ ("user", "alice"); ("pass", "pw") ]);
  ignore (Client.get owner "/app/adv/adv");
  Alcotest.(check bool)
    "owner receives own secret" true (Client.saw owner secret_marker)

let suite =
  [ Alcotest.test_case "owner still sees data" `Quick test_owner_still_sees_data ]
  @ [
      QCheck_alcotest.to_alcotest prop_no_exfiltration;
      QCheck_alcotest.to_alcotest prop_no_exfiltration_with_gate;
    ]

(* ---- the perimeter as a decision procedure ----

   For arbitrary commingled payloads and arbitrary friend lists, the
   perimeter must agree exactly with the declarative rule:

     export allowed  <=>  for every foreign tag on the payload, the
                          viewer is in that tag's owner's friend list

   (with friends_only installed for every owner). This pins down the
   perimeter's semantics, not just single examples. *)

let prop_perimeter_matches_semantics =
  let arb =
    QCheck.make
      ~print:(fun (taint_a, taint_b, fa, fb, viewer) ->
        Printf.sprintf "taintA=%b taintB=%b friendsA=%d friendsB=%d viewer=%d"
          taint_a taint_b fa fb viewer)
      QCheck.Gen.(
        tup5 bool bool (0 -- 3) (0 -- 3) (0 -- 2))
  in
  QCheck.Test.make ~name:"perimeter agrees with declarative friend rule"
    ~count:80 arb (fun (taint_a, taint_b, friends_a, friends_b, viewer_idx) ->
      let platform = Platform.create () in
      let signup u =
        match Platform.signup platform ~user:u ~password:"pw" with
        | Ok a -> a
        | Error e -> failwith e
      in
      let alice = signup "alice" and bob = signup "bobby" in
      let viewers = [ "alice"; "bobby"; "carol" ] in
      ignore (signup "carol");
      let viewer_name = List.nth viewers viewer_idx in
      let viewer = Platform.find_account platform viewer_name in
      (* friend lists are a 2-bit mask: bit0 = alice-side viewer?, we
         simply use subsets of the viewer pool *)
      let subsets = [ []; [ "alice" ]; [ "bobby" ]; [ "alice"; "bobby"; "carol" ] ] in
      let set_friends (account : Account.t) subset =
        match
          Platform.write_user_record platform account ~file:"friends"
            (W5_store.Record.set_list W5_store.Record.empty "friends" subset)
        with
        | Ok () -> ()
        | Error e -> failwith (W5_os.Os_error.to_string e)
      in
      set_friends alice (List.nth subsets friends_a);
      set_friends bob (List.nth subsets friends_b);
      List.iter
        (fun account ->
          ignore
            (Declassifier.install_and_authorize platform ~account
               ~name:"friends" Declassifier.friends_only))
        [ alice; bob ];
      let secrecy =
        List.filter_map Fun.id
          [
            (if taint_a then Some alice.Account.secret_tag else None);
            (if taint_b then Some bob.Account.secret_tag else None);
          ]
      in
      let labels = Flow.make ~secrecy:(Label.of_list secrecy) () in
      let allowed_for owner_name subset (account : Account.t) tainted =
        (not tainted)
        || viewer_name = owner_name
        || (match viewer with
           | Some (v : Account.t) ->
               Account.owns_tag v account.Account.secret_tag
           | None -> false)
        || List.mem viewer_name subset
      in
      let expected =
        allowed_for "alice" (List.nth subsets friends_a) alice taint_a
        && allowed_for "bobby" (List.nth subsets friends_b) bob taint_b
      in
      let actual =
        match Perimeter.export platform ~viewer ~data:"payload" ~labels () with
        | Ok _ -> true
        | Error _ -> false
      in
      expected = actual)

let suite =
  suite @ [ QCheck_alcotest.to_alcotest prop_perimeter_matches_semantics ]

(* a third arena: the victim has read protection on — the adversary
   should fail even earlier (at the read), and still never leak *)
let prop_no_exfiltration_read_protected =
  QCheck.Test.make
    ~name:"random adversaries vs a read-protected victim" ~count:150
    arb_program (fun program ->
      let platform = Platform.create () in
      let alice =
        match Platform.signup platform ~user:"alice" ~password:"pw" with
        | Ok a -> a
        | Error e -> failwith e
      in
      ignore (Platform.enable_read_protection platform alice);
      ignore
        (Platform.write_user_record platform alice ~file:"profile"
           (W5_store.Record.of_fields [ ("ssn", secret_marker) ]));
      ignore (Platform.signup platform ~user:"mallory" ~password:"pw");
      let dev = Principal.make Principal.Developer "adv" in
      (match
         App_registry.publish (Platform.registry platform) ~dev ~name:"adv"
           ~version:"1.0"
           (adversary_handler program "alice")
       with
      | Ok _ -> ()
      | Error e -> failwith e);
      (match Platform.enable_app platform ~user:"mallory" ~app:"adv/adv" with
      | Ok () -> ()
      | Error e -> failwith e);
      let mallory = Client.make ~name:"mallory" (Gateway.handler platform) in
      ignore
        (Client.post mallory "/login" ~form:[ ("user", "mallory"); ("pass", "pw") ]);
      ignore (Client.get mallory "/app/adv/adv");
      List.for_all
        (fun body -> not (contains body secret_marker))
        (Client.last_bodies mallory))

let suite =
  suite @ [ QCheck_alcotest.to_alcotest prop_no_exfiltration_read_protected ]

(* ---- arena 4: attacking a group wall ----

   The group's restricted tag means a non-member adversary should fail
   at the *read*; even programs that somehow accumulate the payload
   (e.g. via the group gate) must never deliver the marker to the
   non-member's browser. *)

let group_marker = "XGROUPSECRETX"

let group_adversary program ctx (_ : App_registry.env) =
  let open W5_os in
  let acc = ref "start:" in
  let wall = "/groups/cabal/post" in
  let interpret = function
    | Read_secret_taint | Read_secret_strict -> (
        match Syscall.read_file_taint ctx wall with
        | Ok data -> acc := !acc ^ data
        | Error _ -> ())
    | Copy_to_public n | Copy_to_tainted n -> (
        ignore n;
        match
          Syscall.create_file ctx
            (Printf.sprintf "/apps/gdrop-%d" (Syscall.pid ctx))
            ~labels:Flow.bottom ~data:!acc
        with
        | Ok () | Error _ -> ())
    | Read_back _ | Add_noise -> acc := !acc ^ "noise"
    | Try_declassify ->
        Label.iter
          (fun tag -> ignore (Syscall.declassify_self ctx tag))
          (Syscall.my_labels ctx).Flow.secrecy
    | Try_set_bottom -> ignore (Syscall.set_labels ctx Flow.bottom)
    | Respond_now -> ignore (Syscall.respond ctx !acc)
    | Spawn_and_message | Call_declassifier | Rename_secret _ -> (
        (* abuse the group's own gate *)
        match
          Syscall.invoke_gate ctx "declass/alice/group-cabal"
            ~arg:(Declassifier.encode_arg ~viewer:(Some "mallory") ~data:!acc)
        with
        | Ok (Some (out, _)) -> acc := !acc ^ out
        | Ok None | Error _ -> ())
  in
  List.iter interpret program;
  ignore (W5_os.Syscall.respond ctx !acc)

let prop_group_wall_safe =
  QCheck.Test.make ~name:"random adversaries cannot raid a group" ~count:150
    arb_program (fun program ->
      let platform = Platform.create () in
      let signup u =
        match Platform.signup platform ~user:u ~password:"pw" with
        | Ok a -> a
        | Error e -> failwith e
      in
      let alice = signup "alice" in
      ignore (signup "mallory");
      let group =
        match Group.create platform ~founder:alice ~name:"cabal" with
        | Ok g -> g
        | Error e -> failwith e
      in
      (match Group.post platform group ~author:alice ~id:"post" ~body:group_marker with
      | Ok () -> ()
      | Error e -> failwith (W5_os.Os_error.to_string e));
      let dev = Principal.make Principal.Developer "adv" in
      (match
         App_registry.publish (Platform.registry platform) ~dev ~name:"adv"
           ~version:"1.0" (group_adversary program)
       with
      | Ok _ -> ()
      | Error e -> failwith e);
      (match Platform.enable_app platform ~user:"mallory" ~app:"adv/adv" with
      | Ok () -> ()
      | Error e -> failwith e);
      let mallory = Client.make ~name:"mallory" (Gateway.handler platform) in
      ignore
        (Client.post mallory "/login" ~form:[ ("user", "mallory"); ("pass", "pw") ]);
      ignore (Client.get mallory "/app/adv/adv");
      List.for_all
        (fun body -> not (contains body group_marker))
        (Client.last_bodies mallory))

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_group_wall_safe ]

(* ---- arena 5: noninterference under interleaving ----

   Alice (high) and mallory (low) drive concurrent request streams
   through the gateway's scheduled-admission path: every request is
   admitted before any application code runs, then a seeded scheduler
   interleaves all the in-flight processes at syscall granularity.
   Whatever the interleaving, mallory's entire observed byte stream
   must be independent of alice's differently-labeled data: the same
   adversary program run against two different secrets — and against
   two different scheduler seeds — must hand mallory byte-identical
   responses (tag ids modulo renaming: the process-global tag counter
   offsets between in-process runs). *)

(* erase the numeric part of every [#N] token: tag ids differ across
   in-process runs only by a uniform counter offset *)
let strip_tag_ids text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (if text.[!i] = '#' then begin
       Buffer.add_char buf '#';
       incr i;
       while !i < n && text.[!i] >= '0' && text.[!i] <= '9' do
         incr i
       done
     end
     else begin
       Buffer.add_char buf text.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

(* alice's fixed, read-only stream: look at her own profile. It never
   mutates shared state, so the only way it could reach mallory's
   stream is a label-check leak. *)
let benign_self_handler ctx (_ : App_registry.env) =
  let open W5_os in
  match Syscall.read_file_taint ctx "/users/alice/profile" with
  | Ok data -> ignore (Syscall.respond ctx data)
  | Error _ -> ignore (Syscall.respond ctx "no-profile")

(* Run both streams concurrently; returns (mallory's concatenated
   normalized stream, alice's concatenated stream). *)
let interleaved_run ~seed ~secret program =
  let platform = Platform.create () in
  let alice =
    match Platform.signup platform ~user:"alice" ~password:"pw" with
    | Ok a -> a
    | Error e -> failwith e
  in
  ignore
    (Platform.write_user_record platform alice ~file:"profile"
       (W5_store.Record.of_fields [ ("ssn", secret) ]));
  ignore (Platform.signup platform ~user:"mallory" ~password:"pw");
  let dev = Principal.make Principal.Developer "adv" in
  let publish name handler =
    match
      App_registry.publish (Platform.registry platform) ~dev ~name
        ~version:"1.0" handler
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  publish "adv" (adversary_handler program "alice");
  publish "self" benign_self_handler;
  (match Platform.enable_app platform ~user:"mallory" ~app:"adv/adv" with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Platform.enable_app platform ~user:"alice" ~app:"adv/self" with
  | Ok () -> ()
  | Error e -> failwith e);
  let login user =
    let client = Client.make ~name:user (Gateway.handler platform) in
    ignore (Client.post client "/login" ~form:[ ("user", user); ("pass", "pw") ]);
    match Client.cookies client with
    | [] -> Headers.empty
    | jar ->
        Headers.set Headers.empty "Cookie"
          (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) jar))
  in
  let alice_jar = login "alice" and mallory_jar = login "mallory" in
  (* admit both streams in full, interleave, then conclude in
     admission order *)
  let pendings =
    List.concat_map
      (fun _ ->
        [
          ( "alice",
            Gateway.submit platform
              (Request.make ~headers:alice_jar ~client:"alice" Request.GET
                 "/app/adv/self") );
          ( "mallory",
            Gateway.submit platform
              (Request.make ~headers:mallory_jar ~client:"mallory" Request.GET
                 "/app/adv/adv") );
        ])
      [ 1; 2; 3 ]
  in
  W5_os.Sched.drain
    (W5_os.Sched.create ~quantum:2 ~policy:(W5_os.Sched.Seeded seed)
       (Platform.kernel platform));
  let stream_of who =
    String.concat "\n--\n"
      (List.filter_map
         (fun (viewer, pending) ->
           if viewer = who then
             Some (Gateway.conclude platform pending).Response.body
           else None)
         pendings)
  in
  (* conclusion order is the admission order either way; concluding
     alice's first is harmless because all processes already ran *)
  (strip_tag_ids (stream_of "mallory"), stream_of "alice")

let arb_interleaved_case =
  QCheck.make
    ~print:(fun (ops, seed) ->
      Printf.sprintf "seed=%d prog=%s" seed
        (String.concat ";" (List.map op_name ops)))
    QCheck.Gen.(pair (list_size (1 -- 15) gen_op) (0 -- 1000000))

let prop_interleaved_noninterference =
  QCheck.Test.make
    ~name:"concurrent streams cannot influence each other (any seed)"
    ~count:60 arb_interleaved_case (fun (program, seed) ->
      let m1, a1 = interleaved_run ~seed ~secret:(secret_marker ^ "1") program in
      let m2, _ = interleaved_run ~seed ~secret:(secret_marker ^ "2") program in
      let m3, _ =
        interleaved_run ~seed:(seed + 1) ~secret:(secret_marker ^ "1") program
      in
      (* mallory's view is invariant under alice's secret... *)
      m1 = m2
      (* ...and under the interleaving itself *)
      && m1 = m3
      (* ...and never contains the secret *)
      && (not (contains m1 secret_marker))
      (* non-vacuity: alice's own concurrent stream does see her data *)
      && contains a1 secret_marker)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_interleaved_noninterference ]
