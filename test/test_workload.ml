(* Tests for the workload substrate: PRNG determinism, society
   generation invariants, and trace generation/replay. *)

open W5_workload

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let test_rng_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  let xs = List.init 50 (fun _ -> Rng.next a) in
  let ys = List.init 50 (fun _ -> Rng.next b) in
  check bool_c "same stream" true (xs = ys);
  let c = Rng.create ~seed:124 in
  let zs = List.init 50 (fun _ -> Rng.next c) in
  check bool_c "different seed differs" false (xs = zs)

let test_rng_ranges () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun _ ->
      let v = Rng.int rng 10 in
      check bool_c "bounded" true (v >= 0 && v < 10))
    (List.init 200 Fun.id);
  let s = Rng.string rng ~length:16 in
  check int_c "length" 16 (String.length s);
  (match Rng.pick rng [ 1; 2; 3 ] with 1 | 2 | 3 -> () | _ -> Alcotest.fail "pick");
  match Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted"

let test_rng_weighted_and_sample () =
  let rng = Rng.create ~seed:9 in
  (* weight 0 entries never picked *)
  List.iter
    (fun _ ->
      match Rng.pick_weighted rng [ ("never", 0); ("always", 5) ] with
      | "always" -> ()
      | _ -> Alcotest.fail "zero-weight picked")
    (List.init 100 Fun.id);
  let sample = Rng.sample rng 3 [ 1; 2; 3; 4; 5 ] in
  check int_c "sample size" 3 (List.length sample);
  check int_c "distinct" 3 (List.length (List.sort_uniq compare sample));
  check int_c "oversample clamps" 2 (List.length (Rng.sample rng 10 [ 1; 2 ]))

let test_friend_graph_symmetric () =
  let rng = Rng.create ~seed:3 in
  let users = List.init 10 Populate.user_name in
  let graph = Populate.random_friend_graph rng ~users ~friends_per_user:3 in
  let friends_of u = Option.value (List.assoc_opt u graph) ~default:[] in
  List.iter
    (fun (u, friends) ->
      check bool_c (u ^ " not self-friend") false (List.mem u friends);
      List.iter
        (fun f ->
          check bool_c (u ^ "<->" ^ f ^ " symmetric") true
            (List.mem u (friends_of f)))
        friends)
    graph

let test_society_build_invariants () =
  let society =
    Populate.build ~seed:5 ~users:5 ~friends_per_user:2 ~photos_per_user:1
      ~blog_posts_per_user:1 ()
  in
  check int_c "users" 5 (List.length society.Populate.users);
  (* everyone can log in and list their own photo *)
  let u = List.hd society.Populate.users in
  let c = Populate.login society u in
  let r =
    W5_http.Client.get c
      ("/app/" ^ society.Populate.photo_id)
      ~params:[ ("action", "list"); ("user", u) ]
  in
  check int_c "photo list" 200 (W5_http.Response.status_code r.W5_http.Response.status);
  check bool_c "photo seeded" true (W5_http.Client.saw c "p00")

let test_trace_generate_and_replay () =
  let society =
    Populate.build ~seed:6 ~users:6 ~friends_per_user:2 ~photos_per_user:1
      ~blog_posts_per_user:1 ()
  in
  let rng = Rng.create ~seed:99 in
  let actions = Trace.generate rng ~society ~mix:Trace.read_heavy ~length:120 in
  check int_c "length" 120 (List.length actions);
  (* deterministic from the seed *)
  let rng2 = Rng.create ~seed:99 in
  let actions2 = Trace.generate rng2 ~society ~mix:Trace.read_heavy ~length:120 in
  check bool_c "deterministic" true (actions = actions2);
  let outcome = Trace.replay society actions in
  check int_c "all executed" 120 outcome.Trace.total;
  check int_c "accounted" 120
    (outcome.Trace.ok + outcome.Trace.forbidden + outcome.Trace.throttled
   + outcome.Trace.failed);
  check int_c "no unexpected failures" 0 outcome.Trace.failed;
  check bool_c "reads mostly succeed or are refused" true
    (outcome.Trace.ok > 0 && outcome.Trace.forbidden > 0)

let test_fill_dependency_graph () =
  let platform = W5_platform.Platform.create () in
  let ids = Populate.fill_dependency_graph ~seed:2 platform ~modules:20 ~imports_per_module:2 in
  check int_c "all published" 20 (List.length ids);
  let graph = W5_rank.Code_search.graph_of_registry (W5_platform.Platform.registry platform) in
  check int_c "nodes incl. targets" 20 (W5_rank.Depgraph.node_count graph);
  check bool_c "has edges" true (W5_rank.Depgraph.edge_count graph > 0)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng weighted and sample" `Quick test_rng_weighted_and_sample;
    Alcotest.test_case "friend graph symmetric" `Quick test_friend_graph_symmetric;
    Alcotest.test_case "society build invariants" `Quick test_society_build_invariants;
    Alcotest.test_case "trace generate and replay" `Quick test_trace_generate_and_replay;
    Alcotest.test_case "fill dependency graph" `Quick test_fill_dependency_graph;
  ]

(* ---- trace mixes and action rendering ---- *)

let test_trace_mixes_differ () =
  let society =
    Populate.build ~seed:8 ~users:4 ~friends_per_user:1 ~photos_per_user:1
      ~blog_posts_per_user:1 ()
  in
  let writes actions =
    List.length
      (List.filter
         (function
           | Trace.Upload_photo _ | Trace.Post_blog _ | Trace.Add_friend _ ->
               true
           | Trace.View_profile _ | Trace.List_photos _ | Trace.Read_blog _ ->
               false)
         actions)
  in
  let rng = Rng.create ~seed:10 in
  let heavy = Trace.generate rng ~society ~mix:Trace.write_heavy ~length:300 in
  let rng = Rng.create ~seed:10 in
  let light = Trace.generate rng ~society ~mix:Trace.read_heavy ~length:300 in
  check bool_c "write-heavy writes more" true (writes heavy > writes light);
  check bool_c "read-heavy mostly reads" true (writes light < 100)

let test_action_pp () =
  let rendered =
    Format.asprintf "%a" Trace.pp_action
      (Trace.View_profile { viewer = "a"; target = "b" })
  in
  check bool_c "mentions both" true
    (String.length rendered > 0
    && String.length rendered >= String.length "a views b's profile")

let test_rng_float_and_bool () =
  let rng = Rng.create ~seed:77 in
  List.iter
    (fun _ ->
      let f = Rng.float rng 2.0 in
      check bool_c "float bounded" true (f >= 0.0 && f < 2.0))
    (List.init 100 Fun.id);
  (* both boolean values appear over 100 draws *)
  let draws = List.init 100 (fun _ -> Rng.bool rng) in
  check bool_c "both bools" true (List.mem true draws && List.mem false draws);
  (* shuffle preserves elements *)
  let xs = [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list int_c) "shuffle is a permutation" xs
    (List.sort compare (Rng.shuffle rng xs))

(* ---- scripted soak golden ----

   The committed file is the output of `w5 soak` (defaults): a whole
   1200-request trace admitted at once and interleaved by the seeded
   scheduler. Byte-equality against it proves the interleaving is
   deterministic across processes, not just within one. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_soak_golden () =
  let _, s = Soak.run Soak.default_config in
  let golden =
    read_file
      (List.find Sys.file_exists [ "golden/soak.txt"; "test/golden/soak.txt" ])
  in
  check Alcotest.string "byte-for-byte against the committed summary" golden
    (Soak.render s)

let suite =
  suite
  @ [
      Alcotest.test_case "trace mixes differ" `Quick test_trace_mixes_differ;
      Alcotest.test_case "action pp" `Quick test_action_pp;
      Alcotest.test_case "rng float/bool/shuffle" `Quick test_rng_float_and_bool;
      Alcotest.test_case "soak summary golden byte-for-byte" `Slow
        test_soak_golden;
    ]
