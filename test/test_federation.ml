(* Tests for multi-provider federation (experiment E6): vector clocks,
   conflict merges, and full cross-platform synchronization through
   the user-granted import/export privileges. *)

open W5_store
open W5_platform
open W5_federation

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok_s = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (W5_os.Os_error.to_string e)

(* ---- vector clocks ---- *)

let test_vector_clock_basics () =
  let c = Vector_clock.zero in
  check int_c "zero" 0 (Vector_clock.get c ~node:"a");
  let c = Vector_clock.tick (Vector_clock.tick c ~node:"a") ~node:"a" in
  check int_c "ticked" 2 (Vector_clock.get c ~node:"a");
  let c = Vector_clock.set c ~node:"b" 7 in
  check int_c "set" 7 (Vector_clock.get c ~node:"b")

let test_vector_clock_orderings () =
  let a1 = Vector_clock.tick Vector_clock.zero ~node:"a" in
  let b1 = Vector_clock.tick Vector_clock.zero ~node:"b" in
  let both = Vector_clock.merge a1 b1 in
  check bool_c "equal" true (Vector_clock.compare_clocks a1 a1 = Vector_clock.Equal);
  check bool_c "before" true (Vector_clock.compare_clocks a1 both = Vector_clock.Before);
  check bool_c "after" true (Vector_clock.compare_clocks both b1 = Vector_clock.After);
  check bool_c "concurrent" true
    (Vector_clock.compare_clocks a1 b1 = Vector_clock.Concurrent)

let test_vector_clock_encoding () =
  let c = Vector_clock.set (Vector_clock.set Vector_clock.zero ~node:"b" 2) ~node:"a" 5 in
  check string_c "encode sorted" "a:5,b:2" (Vector_clock.encode c);
  check bool_c "roundtrip" true (Vector_clock.equal c (Vector_clock.decode "a:5,b:2"));
  check bool_c "zero entries dropped" true
    (Vector_clock.equal Vector_clock.zero (Vector_clock.decode "a:0"));
  check bool_c "garbage dropped" true
    (Vector_clock.equal Vector_clock.zero (Vector_clock.decode "nonsense"))

let arb_clock =
  QCheck.make
    ~print:Vector_clock.encode
    QCheck.Gen.(
      map
        (fun entries ->
          List.fold_left
            (fun acc (n, v) ->
              Vector_clock.set acc ~node:("n" ^ string_of_int n) (abs v mod 10))
            Vector_clock.zero entries)
        (list_size (0 -- 5) (pair (0 -- 4) (0 -- 9))))

let prop_merge_commutative =
  QCheck.Test.make ~name:"vc merge commutative" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      Vector_clock.equal (Vector_clock.merge a b) (Vector_clock.merge b a))

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"vc merge dominates both" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let m = Vector_clock.merge a b in
      let not_after c =
        match Vector_clock.compare_clocks c m with
        | Vector_clock.Before | Vector_clock.Equal -> true
        | Vector_clock.After | Vector_clock.Concurrent -> false
      in
      not_after a && not_after b)

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"vc encode roundtrip" ~count:300 arb_clock (fun c ->
      Vector_clock.equal c (Vector_clock.decode (Vector_clock.encode c)))

(* compare/merge laws: compare_clocks is a partial order whose least
   upper bound is merge *)

let leq a b =
  match Vector_clock.compare_clocks a b with
  | Vector_clock.Before | Vector_clock.Equal -> true
  | Vector_clock.After | Vector_clock.Concurrent -> false

let prop_order_antisymmetric =
  QCheck.Test.make ~name:"vc order antisymmetric" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      (not (leq a b && leq b a)) || Vector_clock.equal a b)

let prop_merge_is_lub =
  QCheck.Test.make ~name:"vc merge is the least upper bound" ~count:300
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      (* any common upper bound dominates the merge *)
      (not (leq a c && leq b c)) || leq (Vector_clock.merge a b) c)

let prop_vc_merge_idempotent =
  QCheck.Test.make ~name:"vc merge idempotent" ~count:300 arb_clock (fun c ->
      Vector_clock.equal c (Vector_clock.merge c c))

(* ---- conflict merge ---- *)

let test_conflict_merge () =
  let ra = Record.of_fields [ ("name", "alice"); ("friends", "bob,carol") ] in
  let rb = Record.of_fields [ ("name", "alice"); ("friends", "dave"); ("bio", "hi") ] in
  let m = Conflict.merge ra rb in
  check (Alcotest.option string_c) "list union" (Some "bob,carol,dave")
    (Record.get m "friends");
  check (Alcotest.option string_c) "one-sided kept" (Some "hi") (Record.get m "bio");
  check (Alcotest.option string_c) "same value" (Some "alice") (Record.get m "name")

let test_conflict_scalar_deterministic () =
  let ra = Record.of_fields [ ("color", "red") ] in
  let rb = Record.of_fields [ ("color", "blue") ] in
  let m1 = Conflict.merge ra rb and m2 = Conflict.merge rb ra in
  check bool_c "symmetric" true (Record.get m1 "color" = Record.get m2 "color");
  check (Alcotest.option string_c) "lexicographic winner" (Some "red")
    (Record.get m1 "color")

let arb_small_record =
  QCheck.make
    ~print:(fun r -> Format.asprintf "%a" Record.pp r)
    QCheck.Gen.(
      map Record.of_fields
        (list_size (0 -- 5)
           (pair
              (oneofl [ "a"; "b"; "friends"; "x_list" ])
              (string_size (0 -- 5) ~gen:(map Char.chr (97 -- 122))))))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"conflict merge idempotent" ~count:300 arb_small_record
    (fun r ->
      (* merge is set-like on fields: merging r with itself keeps the
         first binding of each key *)
      let m = Conflict.merge r r in
      List.for_all (fun key -> Record.get m key = Record.get r key) (Record.keys r))

(* ---- cross-platform sync ---- *)

let make_side name =
  { Sync.platform = Platform.create (); provider_name = name }

let setup_linked_user () =
  let a = make_side "prov-a" and b = make_side "prov-b" in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  let link =
    ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile"; "friends" ] ())
  in
  (a, b, link)

let profile_field side field =
  let account = Platform.account_exn side.Sync.platform "zoe" in
  let r, _ = ok_os (Sync.export_record side.Sync.platform account ~file:"profile") in
  Record.get r field

let test_sync_initial_mirror () =
  let a, b, link = setup_linked_user () in
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  (* both replicas already hold a seeded profile, so the first round
     goes through the merge path; pick a value that wins the
     deterministic scalar merge against the seeded "zoe" *)
  ignore
    (ok_os
       (Platform.write_user_record a.Sync.platform account_a ~file:"profile"
          (Record.of_fields [ ("user", "zoe"); ("display", "zoe-prime") ])));
  let stats = ok_s (Sync.sync link) in
  check bool_c "something moved" true (stats.Sync.a_to_b + stats.Sync.merged > 0);
  check (Alcotest.option string_c) "mirrored" (Some "zoe-prime")
    (profile_field b "display");
  check bool_c "converged" true (Sync.converged link)

let test_sync_idempotent_when_converged () =
  let _, _, link = setup_linked_user () in
  ignore (ok_s (Sync.sync link));
  let stats = ok_s (Sync.sync link) in
  check int_c "no copies" 0 (stats.Sync.a_to_b + stats.Sync.b_to_a + stats.Sync.merged)

let test_sync_propagates_updates_both_ways () =
  let a, b, link = setup_linked_user () in
  ignore (ok_s (Sync.sync link));
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  ignore
    (ok_os
       (Platform.write_user_record b.Sync.platform account_b ~file:"friends"
          (Record.of_fields [ ("friends", "newpal") ])));
  let stats = ok_s (Sync.sync link) in
  check bool_c "b to a" true (stats.Sync.b_to_a >= 1);
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  let r, _ = ok_os (Sync.export_record a.Sync.platform account_a ~file:"friends") in
  check (Alcotest.list string_c) "propagated" [ "newpal" ] (Record.get_list r "friends")

let test_sync_merges_concurrent_edits () =
  let a, b, link = setup_linked_user () in
  ignore (ok_s (Sync.sync link));
  let edit side friends =
    let account = Platform.account_exn side.Sync.platform "zoe" in
    ignore
      (ok_os
         (Platform.write_user_record side.Sync.platform account ~file:"friends"
            (Record.of_fields [ ("friends", friends) ])))
  in
  edit a "ann";
  edit b "ben";
  let stats = ok_s (Sync.sync link) in
  check bool_c "merged" true (stats.Sync.merged >= 1);
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  let r, _ = ok_os (Sync.export_record a.Sync.platform account_a ~file:"friends") in
  let friends = Record.get_list r "friends" in
  check bool_c "union has both" true (List.mem "ann" friends && List.mem "ben" friends);
  check bool_c "replicas equal" true (Sync.converged link)

let test_sync_requires_both_accounts () =
  let a = make_side "pa" and b = make_side "pb" in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"solo" ~password:"pw"));
  match Sync.establish ~a ~b ~user:"solo" ~files:[ "profile" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "linked a missing account"

let test_export_respects_grants () =
  (* Strip the account's own capabilities to model a user who never
     granted the transfer app anything: export must fail, not leak. *)
  let a = make_side "pa" in
  let account = ok_s (Platform.signup a.Sync.platform ~user:"nogrant" ~password:"pw") in
  let saved = account.Account.caps in
  account.Account.caps <- W5_difc.Capability.Set.empty;
  (match Sync.export_record a.Sync.platform account ~file:"profile" with
  | Error e ->
      check bool_c "denied" true (W5_os.Os_error.is_denied e)
  | Ok _ -> Alcotest.fail "export without grant succeeded");
  account.Account.caps <- saved

let test_add_file_and_accessors () =
  let _, _, link = setup_linked_user () in
  check string_c "user" "zoe" (Sync.user link);
  check int_c "two files" 2 (List.length (Sync.files link));
  Sync.add_file link "dating_metric";
  Sync.add_file link "dating_metric";
  check int_c "dedup" 3 (List.length (Sync.files link))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "vector clock basics" `Quick test_vector_clock_basics;
    Alcotest.test_case "vector clock orderings" `Quick
      test_vector_clock_orderings;
    Alcotest.test_case "vector clock encoding" `Quick test_vector_clock_encoding;
    Alcotest.test_case "conflict merge" `Quick test_conflict_merge;
    Alcotest.test_case "conflict scalar deterministic" `Quick
      test_conflict_scalar_deterministic;
    Alcotest.test_case "sync initial mirror" `Quick test_sync_initial_mirror;
    Alcotest.test_case "sync idempotent" `Quick test_sync_idempotent_when_converged;
    Alcotest.test_case "sync propagates both ways" `Quick
      test_sync_propagates_updates_both_ways;
    Alcotest.test_case "sync merges concurrent edits" `Quick
      test_sync_merges_concurrent_edits;
    Alcotest.test_case "sync requires both accounts" `Quick
      test_sync_requires_both_accounts;
    Alcotest.test_case "export respects grants" `Quick test_export_respects_grants;
    Alcotest.test_case "link accessors" `Quick test_add_file_and_accessors;
  ]
  @ qsuite
      [
        prop_merge_commutative;
        prop_merge_upper_bound;
        prop_order_antisymmetric;
        prop_merge_is_lub;
        prop_vc_merge_idempotent;
        prop_encode_roundtrip;
        prop_merge_idempotent;
      ]

(* ---- provider meshes (Peer) ---- *)

let mesh_with_user n =
  let mesh = Peer.create () in
  List.iter
    (fun i ->
      let name = Printf.sprintf "prov%d" i in
      let platform = Platform.create () in
      ignore (ok_s (Platform.signup platform ~user:"zoe" ~password:"pw"));
      ignore (ok_s (Peer.add_provider mesh ~name platform)))
    (List.init n Fun.id);
  ignore (ok_s (Peer.link_user mesh ~user:"zoe" ~files:[ "profile" ]));
  mesh

let test_peer_mesh_basics () =
  let mesh = Peer.create () in
  let p = Platform.create () in
  ignore (ok_s (Peer.add_provider mesh ~name:"a" p));
  (match Peer.add_provider mesh ~name:"a" (Platform.create ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate provider name");
  check bool_c "lookup" true (Peer.provider mesh ~name:"a" <> None);
  (* linking needs two providers with the account *)
  ignore (ok_s (Platform.signup p ~user:"solo" ~password:"pw"));
  match Peer.link_user mesh ~user:"solo" ~files:[ "profile" ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "linked with a single replica"

let test_peer_mesh_converges () =
  let mesh = mesh_with_user 4 in
  check (Alcotest.list string_c) "linked" [ "zoe" ] (Peer.linked_users mesh);
  (* divergent edits on every provider *)
  List.iteri
    (fun i (_, platform) ->
      let account = Platform.account_exn platform "zoe" in
      ignore
        (ok_os
           (Platform.write_user_record platform account ~file:"profile"
              (Record.of_fields
                 [ ("user", "zoe"); (Printf.sprintf "field%d" i, "x") ]))))
    (Peer.providers mesh);
  let rounds = ok_s (Peer.sync_until_converged mesh ~user:"zoe") in
  check bool_c "few rounds" true (rounds <= 4);
  check bool_c "converged" true (Peer.converged mesh ~user:"zoe");
  (* all four fields survived on every provider *)
  List.iter
    (fun (_, platform) ->
      let account = Platform.account_exn platform "zoe" in
      let r, _ = ok_os (Sync.export_record platform account ~file:"profile") in
      List.iter
        (fun i ->
          check bool_c (Printf.sprintf "field%d present" i) true
            (Record.mem r (Printf.sprintf "field%d" i)))
        [ 0; 1; 2; 3 ])
    (Peer.providers mesh)

let test_peer_gossip_propagates_single_edit () =
  let mesh = mesh_with_user 3 in
  ignore (ok_s (Peer.sync_until_converged mesh ~user:"zoe"));
  let _, first = List.hd (Peer.providers mesh) in
  let account = Platform.account_exn first "zoe" in
  ignore
    (ok_os
       (Platform.write_user_record first account ~file:"profile"
          (Record.of_fields [ ("user", "zoe"); ("motto", "propagate-me") ])));
  ignore (ok_s (Peer.sync_until_converged mesh ~user:"zoe"));
  List.iter
    (fun (name, platform) ->
      let account = Platform.account_exn platform "zoe" in
      let r, _ = ok_os (Sync.export_record platform account ~file:"profile") in
      check (Alcotest.option string_c) (name ^ " has motto") (Some "propagate-me")
        (Record.get r "motto"))
    (Peer.providers mesh)

let suite =
  suite
  @ [
      Alcotest.test_case "peer mesh basics" `Quick test_peer_mesh_basics;
      Alcotest.test_case "peer mesh converges" `Quick test_peer_mesh_converges;
      Alcotest.test_case "peer gossip propagates" `Quick
        test_peer_gossip_propagates_single_edit;
    ]

(* ---- directory mirroring ---- *)

let test_sync_directory () =
  let a, b, link = setup_linked_user () in
  ignore (ok_s (Sync.sync link));
  Sync.add_directory link "photos";
  check (Alcotest.list string_c) "dirs" [ "photos" ] (Sync.directories link);
  (* zoe uploads photos on side A only *)
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  ignore (ok_os (Platform.user_mkdir a.Sync.platform account_a ~dir:"photos"));
  List.iter
    (fun (id, pix) ->
      ignore
        (ok_os
           (Platform.write_user_record a.Sync.platform account_a
              ~file:("photos/" ^ id)
              (Record.of_fields [ ("pixels", pix) ]))))
    [ ("p1", "AAA"); ("p2", "BBB") ];
  let stats = ok_s (Sync.sync link) in
  check bool_c "photos copied" true (stats.Sync.a_to_b >= 2);
  (* both photos exist on side B with the same bytes *)
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  List.iter
    (fun (id, pix) ->
      let r, _ =
        ok_os (Sync.export_record b.Sync.platform account_b ~file:("photos/" ^ id))
      in
      check (Alcotest.option string_c) (id ^ " mirrored") (Some pix)
        (Record.get r "pixels"))
    [ ("p1", "AAA"); ("p2", "BBB") ];
  check bool_c "converged incl. photos" true (Sync.converged link);
  (* a later upload on side B flows back *)
  ignore
    (ok_os
       (Platform.write_user_record b.Sync.platform account_b
          ~file:"photos/p3"
          (Record.of_fields [ ("pixels", "CCC") ])));
  let stats = ok_s (Sync.sync link) in
  check bool_c "new photo back" true (stats.Sync.b_to_a >= 1);
  let r, _ =
    ok_os (Sync.export_record a.Sync.platform account_a ~file:"photos/p3")
  in
  check (Alcotest.option string_c) "p3 on A" (Some "CCC") (Record.get r "pixels")

let suite =
  suite
  @ [ Alcotest.test_case "sync directory" `Quick test_sync_directory ]

(* ---- whole-account migration (data portability, §1) ---- *)

let seeded_platform_with_zoe () =
  let platform = Platform.create () in
  let account = ok_s (Platform.signup platform ~user:"zoe" ~password:"pw") in
  ignore
    (ok_os
       (Platform.write_user_record platform account ~file:"profile"
          (Record.of_fields [ ("user", "zoe"); ("bio", "sailor") ])));
  ignore (ok_os (Platform.user_mkdir platform account ~dir:"photos"));
  List.iter
    (fun (id, pix) ->
      ignore
        (ok_os
           (Platform.write_user_record platform account
              ~file:("photos/" ^ id)
              (Record.of_fields [ ("pixels", pix) ]))))
    [ ("p1", "AAA"); ("p2", "BBB") ];
  (platform, account)

let test_migrate_account () =
  let old_platform, old_account = seeded_platform_with_zoe () in
  let new_platform = Platform.create () in
  let new_account = ok_s (Platform.signup new_platform ~user:"zoe" ~password:"pw2") in
  let moved =
    ok_os
      (Migrate.migrate_account ~from_platform:old_platform
         ~from_account:old_account ~to_platform:new_platform
         ~to_account:new_account ())
  in
  (* profile + friends (seeded) + 2 photos *)
  check bool_c "several files moved" true (moved >= 4);
  (* the data is there, under the NEW account's labels *)
  let r = ok_os (Platform.read_user_record new_platform new_account ~file:"profile") in
  check (Alcotest.option string_c) "bio" (Some "sailor") (Record.get r "bio");
  let r =
    ok_os (Platform.read_user_record new_platform new_account ~file:"photos/p2")
  in
  check (Alcotest.option string_c) "photo" (Some "BBB") (Record.get r "pixels");
  (* labels on the new platform belong to the new account *)
  let labels =
    ok_os
      (Platform.with_ctx new_platform ~name:"peek" (fun ctx ->
           W5_os.Syscall.stat ctx "/users/zoe/photos/p2"))
  in
  check bool_c "new tag" true
    (W5_difc.Label.mem new_account.Account.secret_tag
       labels.W5_os.Fs.labels.W5_difc.Flow.secrecy);
  check bool_c "old tag absent" false
    (W5_difc.Label.mem old_account.Account.secret_tag
       labels.W5_os.Fs.labels.W5_difc.Flow.secrecy)

let test_export_requires_grants () =
  let platform, account = seeded_platform_with_zoe () in
  let saved = account.Account.caps in
  account.Account.caps <- W5_difc.Capability.Set.empty;
  (match Migrate.export_bundle platform account with
  | Error e -> check bool_c "denied" true (W5_os.Os_error.is_denied e)
  | Ok _ -> Alcotest.fail "exported without grants");
  account.Account.caps <- saved

let test_bundle_encoding () =
  let platform, account = seeded_platform_with_zoe () in
  let bundle = ok_os (Migrate.export_bundle platform account) in
  check bool_c "deterministic order" true
    (let paths = List.map (fun e -> e.Migrate.rel_path) bundle in
     paths = List.sort String.compare paths);
  match Migrate.decode_bundle (Migrate.encode_bundle bundle) with
  | Ok decoded -> check bool_c "roundtrip" true (decoded = bundle)
  | Error e -> Alcotest.failf "decode: %s" e

let suite =
  suite
  @ [
      Alcotest.test_case "migrate account" `Quick test_migrate_account;
      Alcotest.test_case "export requires grants" `Quick test_export_requires_grants;
      Alcotest.test_case "bundle encoding" `Quick test_bundle_encoding;
    ]

(* ---- one-way mirror mode ---- *)

let test_mirror_mode () =
  let a = make_side "primary" and b = make_side "backup" in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  let link =
    ok_s
      (Sync.establish ~mode:Sync.Mirror_a_to_b ~a ~b ~user:"zoe"
         ~files:[ "profile" ] ())
  in
  let write side value =
    let account = Platform.account_exn side.Sync.platform "zoe" in
    ignore
      (ok_os
         (Platform.write_user_record side.Sync.platform account ~file:"profile"
            (Record.of_fields [ ("user", "zoe"); ("v", value) ])))
  in
  write a "primary-1";
  ignore (ok_s (Sync.sync link));
  check (Alcotest.option string_c) "backup tracks primary" (Some "primary-1")
    (profile_field b "v");
  (* a rogue edit on the backup is overwritten at the next round *)
  write b "backup-graffiti";
  write a "primary-2";
  ignore (ok_s (Sync.sync link));
  check (Alcotest.option string_c) "primary wins" (Some "primary-2")
    (profile_field b "v");
  check (Alcotest.option string_c) "primary untouched" (Some "primary-2")
    (profile_field a "v")

let suite =
  suite @ [ Alcotest.test_case "mirror mode" `Quick test_mirror_mode ]

(* ---- conflict field heuristics ---- *)

let test_is_list_field () =
  check bool_c "friends" true (Conflict.is_list_field "friends");
  check bool_c "entries" true (Conflict.is_list_field "entries");
  check bool_c "suffix" true (Conflict.is_list_field "tags_list");
  check bool_c "plain" false (Conflict.is_list_field "name");
  check bool_c "empty" false (Conflict.is_list_field "")

let test_merge_values_directly () =
  check string_c "same" "x" (Conflict.merge_values ~key:"k" "x" "x");
  check string_c "lexicographic" "zebra" (Conflict.merge_values ~key:"k" "apple" "zebra");
  check string_c "list union" "a,b,c" (Conflict.merge_values ~key:"friends" "a,b" "b,c");
  check string_c "empty list side" "a" (Conflict.merge_values ~key:"friends" "a" "")

let suite =
  suite
  @ [
      Alcotest.test_case "is_list_field" `Quick test_is_list_field;
      Alcotest.test_case "merge_values" `Quick test_merge_values_directly;
    ]

(* ---- takeout over HTTP ---- *)

let test_takeout_app () =
  let platform, account = seeded_platform_with_zoe () in
  ignore account;
  let dev = W5_difc.Principal.make W5_difc.Principal.Developer "provider" in
  ignore (ok_s (Migrate.publish_takeout_app platform ~dev));
  ignore (ok_s (Platform.enable_app platform ~user:"zoe" ~app:"provider/takeout"));
  let zoe = W5_http.Client.make ~name:"zoe" (Gateway.handler platform) in
  ignore
    (W5_http.Client.post zoe "/login" ~form:[ ("user", "zoe"); ("pass", "pw") ]);
  let r = W5_http.Client.get zoe "/app/provider/takeout" in
  check int_c "bundle served to owner" 200
    (W5_http.Response.status_code r.W5_http.Response.status);
  (* the body round-trips as a bundle containing her photos *)
  (match Migrate.decode_bundle r.W5_http.Response.body with
  | Ok bundle ->
      check bool_c "photos in bundle" true
        (List.exists (fun e -> e.Migrate.rel_path = "photos/p1") bundle)
  | Error e -> Alcotest.failf "decode: %s" e);
  (* another user cannot pull zoe's bundle: the app exports the
     *viewer's* data, so mallory just gets mallory's *)
  ignore (ok_s (Platform.signup platform ~user:"mallory" ~password:"pw"));
  ignore (ok_s (Platform.enable_app platform ~user:"mallory" ~app:"provider/takeout"));
  let mallory = W5_http.Client.make ~name:"mallory" (Gateway.handler platform) in
  ignore
    (W5_http.Client.post mallory "/login" ~form:[ ("user", "mallory"); ("pass", "pw") ]);
  let r = W5_http.Client.get mallory "/app/provider/takeout" in
  check int_c "mallory gets own bundle" 200
    (W5_http.Response.status_code r.W5_http.Response.status);
  check bool_c "no zoe data inside" false
    (W5_http.Client.saw mallory "sailor")

let suite =
  suite @ [ Alcotest.test_case "takeout app" `Quick test_takeout_app ]

(* ---- sync of a read-protected account ---- *)

let test_sync_read_protected_account () =
  let a = make_side "rp-a" and b = make_side "rp-b" in
  let account_a = ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw") in
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (Platform.enable_read_protection a.Sync.platform account_a);
  ignore
    (ok_os
       (Platform.write_user_record a.Sync.platform account_a ~file:"profile"
          (Record.of_fields [ ("user", "zoe"); ("locked", "yes") ])));
  let link = ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile" ] ()) in
  ignore (ok_s (Sync.sync link));
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  let r, _ = ok_os (Sync.export_record b.Sync.platform account_b ~file:"profile") in
  check (Alcotest.option string_c) "mirrored through the restricted tag"
    (Some "yes") (Record.get r "locked")

let suite =
  suite
  @ [
      Alcotest.test_case "sync read-protected account" `Quick
        test_sync_read_protected_account;
    ]

(* ---- deletion propagation ---- *)

let test_sync_propagates_deletion () =
  let a, b, link = setup_linked_user () in
  Sync.add_directory link "photos";
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  ignore (ok_os (Platform.user_mkdir a.Sync.platform account_a ~dir:"photos"));
  ignore
    (ok_os
       (Platform.write_user_record a.Sync.platform account_a
          ~file:"photos/doomed"
          (Record.of_fields [ ("pixels", "X") ])));
  ignore (ok_s (Sync.sync link));
  (* the photo is on both sides *)
  ignore (ok_os (Sync.export_record b.Sync.platform account_b ~file:"photos/doomed"));
  (* zoe deletes it on A; the deletion propagates instead of the file
     being resurrected from B *)
  ignore (ok_os (Platform.delete_user_file a.Sync.platform account_a ~file:"photos/doomed"));
  let stats = ok_s (Sync.sync link) in
  check bool_c "deletion moved" true (stats.Sync.a_to_b >= 1);
  (match Sync.export_record b.Sync.platform account_b ~file:"photos/doomed" with
  | Error (W5_os.Os_error.Not_found _) -> ()
  | Ok _ -> Alcotest.fail "file resurrected on B"
  | Error e -> Alcotest.failf "wrong error: %s" (W5_os.Os_error.to_string e));
  (* a later round does not resurrect it on A either *)
  ignore (ok_s (Sync.sync link));
  match Sync.export_record a.Sync.platform account_a ~file:"photos/doomed" with
  | Error (W5_os.Os_error.Not_found _) -> ()
  | Ok _ -> Alcotest.fail "file resurrected on A"
  | Error e -> Alcotest.failf "wrong error: %s" (W5_os.Os_error.to_string e)

let test_delete_vs_edit_conflict () =
  let a, b, link = setup_linked_user () in
  Sync.add_directory link "photos";
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  ignore (ok_os (Platform.user_mkdir a.Sync.platform account_a ~dir:"photos"));
  ignore
    (ok_os
       (Platform.write_user_record a.Sync.platform account_a ~file:"photos/p"
          (Record.of_fields [ ("pixels", "v1") ])));
  ignore (ok_s (Sync.sync link));
  (* concurrently: A deletes, B edits *)
  ignore (ok_os (Platform.delete_user_file a.Sync.platform account_a ~file:"photos/p"));
  ignore
    (ok_os
       (Platform.write_user_record b.Sync.platform account_b ~file:"photos/p"
          (Record.of_fields [ ("pixels", "v2-edited") ])));
  ignore (ok_s (Sync.sync link));
  (* the edit wins: the file is back on A with B's content *)
  let r, _ = ok_os (Sync.export_record a.Sync.platform account_a ~file:"photos/p") in
  check (Alcotest.option string_c) "edit wins" (Some "v2-edited")
    (Record.get r "pixels")

(* regression: a file listed in sync_files that also appears under an
   add_directory expansion used to be worked twice per round, double
   counting it in the stats (copy + spurious unchanged) *)
let test_file_in_files_and_dir_counted_once () =
  let a = make_side "pa" and b = make_side "pb" in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  let link = ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "photos/p1" ] ()) in
  Sync.add_directory link "photos";
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  ignore (ok_os (Platform.user_mkdir a.Sync.platform account_a ~dir:"photos"));
  List.iter
    (fun (file, pixels) ->
      ignore
        (ok_os
           (Platform.write_user_record a.Sync.platform account_a ~file
              (Record.of_fields [ ("pixels", pixels) ]))))
    [ ("photos/p1", "one"); ("photos/p2", "two") ];
  let stats = ok_s (Sync.sync link) in
  check int_c "each file copied once" 2 stats.Sync.a_to_b;
  check int_c "no spurious unchanged for the dup" 0 stats.Sync.unchanged;
  check int_c "worklist size = distinct files" 2
    (stats.Sync.a_to_b + stats.Sync.b_to_a + stats.Sync.merged
   + stats.Sync.unchanged + stats.Sync.timed_out)

let suite =
  suite
  @ [
      Alcotest.test_case "sync propagates deletion" `Quick
        test_sync_propagates_deletion;
      Alcotest.test_case "delete vs edit conflict" `Quick
        test_delete_vs_edit_conflict;
      Alcotest.test_case "file in files+dir worked once" `Quick
        test_file_in_files_and_dir_counted_once;
    ]

let test_peer_errors () =
  let mesh = Peer.create () in
  (match Peer.sync_round mesh ~user:"nobody" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "synced an unlinked user");
  check bool_c "unlinked not converged" false (Peer.converged mesh ~user:"nobody");
  check (Alcotest.list string_c) "no linked users" [] (Peer.linked_users mesh)

let test_vector_clock_pp () =
  let c = Vector_clock.set Vector_clock.zero ~node:"n" 3 in
  check string_c "pp = encode" (Vector_clock.encode c)
    (Format.asprintf "%a" Vector_clock.pp c)

let suite =
  suite
  @ [
      Alcotest.test_case "peer errors" `Quick test_peer_errors;
      Alcotest.test_case "vector clock pp" `Quick test_vector_clock_pp;
    ]

let test_import_idempotent_overwrite () =
  let old_platform, old_account = seeded_platform_with_zoe () in
  let new_platform = Platform.create () in
  let new_account = ok_s (Platform.signup new_platform ~user:"zoe" ~password:"pw") in
  let bundle = ok_os (Migrate.export_bundle old_platform old_account) in
  let first = ok_os (Migrate.import_bundle new_platform new_account bundle) in
  let second = ok_os (Migrate.import_bundle new_platform new_account bundle) in
  check int_c "same count both times" first second;
  (* content unchanged after the second import *)
  let r = ok_os (Platform.read_user_record new_platform new_account ~file:"profile") in
  check (Alcotest.option string_c) "bio intact" (Some "sailor") (Record.get r "bio")

let suite =
  suite
  @ [
      Alcotest.test_case "import idempotent overwrite" `Quick
        test_import_idempotent_overwrite;
    ]

(* ---- convergence under random edit/sync interleavings ---- *)

let prop_sync_always_converges =
  let arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ""
          (List.map (function 0 -> "A" | 1 -> "B" | _ -> "S") ops))
      QCheck.Gen.(list_size (1 -- 12) (0 -- 2))
  in
  QCheck.Test.make ~name:"random edit/sync interleavings converge" ~count:60
    arb (fun ops ->
      let a = make_side "qa" and b = make_side "qb" in
      let ok' = function Ok v -> v | Error e -> failwith e in
      ignore (ok' (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
      ignore (ok' (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
      let link = ok' (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile" ] ()) in
      let counter = ref 0 in
      let edit side tag =
        incr counter;
        let account = Platform.account_exn side.Sync.platform "zoe" in
        match
          Platform.write_user_record side.Sync.platform account ~file:"profile"
            (Record.of_fields
               [ ("user", "zoe"); ("rev-" ^ tag, string_of_int !counter) ])
        with
        | Ok () -> ()
        | Error e -> failwith (W5_os.Os_error.to_string e)
      in
      List.iter
        (fun op ->
          match op with
          | 0 -> edit a "a"
          | 1 -> edit b "b"
          | _ -> ignore (Sync.sync link))
        ops;
      (* quiesce: two rounds settle any in-flight merge *)
      ignore (Sync.sync link);
      ignore (Sync.sync link);
      Sync.converged link
      &&
      (* and a further round moves nothing *)
      match Sync.sync link with
      | Ok stats ->
          stats.Sync.a_to_b = 0 && stats.Sync.b_to_a = 0 && stats.Sync.merged = 0
      | Error _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_sync_always_converges ]

let test_migrate_read_protected_account () =
  let old_platform = Platform.create () in
  let old_account =
    ok_s (Platform.signup old_platform ~user:"zoe" ~password:"pw")
  in
  ignore (Platform.enable_read_protection old_platform old_account);
  ignore
    (ok_os
       (Platform.write_user_record old_platform old_account ~file:"profile"
          (Record.of_fields [ ("user", "zoe"); ("vault", "LOCKED-DATA") ])));
  let new_platform = Platform.create () in
  let new_account = ok_s (Platform.signup new_platform ~user:"zoe" ~password:"pw") in
  let moved =
    ok_os
      (Migrate.migrate_account ~from_platform:old_platform
         ~from_account:old_account ~to_platform:new_platform
         ~to_account:new_account ())
  in
  check bool_c "moved" true (moved >= 2);
  let r = ok_os (Platform.read_user_record new_platform new_account ~file:"profile") in
  check (Alcotest.option string_c) "protected data moved" (Some "LOCKED-DATA")
    (Record.get r "vault")

let suite =
  suite
  @ [
      Alcotest.test_case "migrate read-protected account" `Quick
        test_migrate_read_protected_account;
    ]
