(* Cross-provider tracing and federation health: the scripted
   3-provider scenario behind `w5 trace --federated` and `w5 health`.

   The golden tests pin the exact bytes the two commands print — the
   scenario runs on logical clocks and scripted fault plans, so any
   drift is a real behavior change, not noise. The QCheck property
   runs the same mesh under seeded (arbitrary) fault plans and checks
   that the merged forest is always well-formed: every recorded span
   appears exactly once, same-provider nesting respects that
   provider's clock, and every reattached remote continuation really
   points at the span it hangs under. The canary sweep proves the
   whole telemetry surface carries no user bytes: the synchronized
   records contain planted canary strings and no rendering — trace
   text/json/dot, health, SLO — may ever contain them. *)

open W5_obs
open W5_federation

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs in _build/default/test; dune exec leaves the cwd
   at the workspace root. *)
let golden_path name =
  List.find Sys.file_exists [ "golden/" ^ name; "test/golden/" ^ name ]

(* One scripted run shared by the golden and canary tests — the
   scenario is deterministic, so sharing is safe and keeps the suite
   fast. *)
let scripted = lazy (Scenario.run ())

(* Byte-for-byte what `w5 trace --federated` prints (bin/w5 adds the
   same header around Trace_merge.to_text). *)
let federated_trace_text outcome =
  let forest = Trace_merge.merge outcome.Scenario.spans in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "federated trace: %s over %s (scripted faults on east~south)\n"
       Scenario.user
       (String.concat ", " Scenario.providers));
  List.iter
    (fun note -> Buffer.add_string buf (note ^ "\n"))
    outcome.Scenario.round_notes;
  Buffer.add_string buf
    (Printf.sprintf "merged spans: %d\n\n" (Trace_merge.span_count forest));
  Buffer.add_string buf (Trace_merge.to_text forest);
  Buffer.contents buf

(* Byte-for-byte what `w5 health` prints. *)
let health_text outcome =
  let mesh = outcome.Scenario.mesh in
  Health.render (Peer.health mesh) ~now:outcome.Scenario.health_now
  ^ "\n"
  ^ Health.Slo.render outcome.Scenario.slo ~now:outcome.Scenario.slo_now

let test_golden_trace () =
  let outcome = Lazy.force scripted in
  check string_c "byte-for-byte against the committed trace"
    (read_file (golden_path "trace_federated.txt"))
    (federated_trace_text outcome)

let test_golden_health () =
  let outcome = Lazy.force scripted in
  check string_c "byte-for-byte against the committed health report"
    (read_file (golden_path "health.txt"))
    (health_text outcome)

(* The scripted story, asserted structurally (so a legitimate golden
   refresh still has to preserve the narrative): retries with backoff,
   a crash_after_apply fault, the write-ahead recovery, and a Degraded
   verdict for the faulted edge with a breached SLO route. *)
let test_scripted_story () =
  let outcome = Lazy.force scripted in
  let text = federated_trace_text outcome in
  check bool_c "retry spans visible" true (contains text "sync.retry");
  check bool_c "drop faults visible" true (contains text "action=drop");
  check bool_c "crash fault visible" true
    (contains text "action=crash_after_apply");
  check bool_c "write-ahead recovery visible" true
    (contains text "sync.recover");
  check bool_c "cross-provider hops visible" true (contains text "(hop from");
  let h = Peer.health outcome.Scenario.mesh in
  let rows = Health.report h ~now:outcome.Scenario.health_now in
  let state_of observer peer =
    match
      List.find_opt
        (fun r ->
          r.Health.r_observer = observer && r.Health.r_peer = peer)
        rows
    with
    | Some r -> r.Health.r_state
    | None -> Alcotest.failf "no health row for %s -> %s" observer peer
  in
  check string_c "faulted edge degraded" "degraded"
    (Health.state_name (state_of "east" "south"));
  check string_c "clean edge healthy" "healthy"
    (Health.state_name (state_of "east" "west"));
  check bool_c "broken app breached its error budget" true
    (Health.Slo.breached outcome.Scenario.slo ~now:outcome.Scenario.slo_now);
  check int_c "degraded maps to exit 2" 2 (Health.severity Health.Degraded)

(* ---- canary sweep: no user bytes anywhere in the telemetry ---- *)

let test_canary_sweep () =
  let outcome = Lazy.force scripted in
  let forest = Trace_merge.merge outcome.Scenario.spans in
  let surfaces =
    [
      ("trace text", Trace_merge.to_text forest);
      ("trace json", Trace_merge.to_json forest);
      ("trace dot", Trace_merge.to_dot forest);
      ("health", health_text outcome);
    ]
  in
  List.iter
    (fun (name, body) ->
      check bool_c (name ^ " has spans or rows") true (String.length body > 0);
      List.iter
        (fun canary ->
          check bool_c
            (Printf.sprintf "%s leaks %s" name canary)
            false (contains body canary);
          (* even a prefix of the canary marker would be a leak *)
          check bool_c (name ^ " leaks a canary fragment") false
            (contains body "CANARY-"))
        Scenario.canaries)
    surfaces

(* ---- merged-forest well-formedness under arbitrary fault plans ---- *)

let rec count_spans (span : Span.t) =
  1 + List.fold_left (fun n c -> n + count_spans c) 0 span.Span.children

let input_span_count spans_by_provider =
  List.fold_left
    (fun n (_, spans) ->
      n + List.fold_left (fun n s -> n + count_spans s) 0 spans)
    0 spans_by_provider

(* Walk every parent/child edge of the forest. Local children live on
   their parent's clock; reattached remote continuations must carry a
   context naming exactly the span they hang under, and the handoff
   tick must fall inside the parent span's lifetime. *)
let check_edges forest =
  let rec go parent =
    List.iter
      (fun child ->
        (match child.Trace_merge.node_remote with
        | None ->
            if child.Trace_merge.node_provider <> parent.Trace_merge.node_provider
            then
              Alcotest.failf "local child crossed providers: %s under %s"
                child.Trace_merge.node_provider
                parent.Trace_merge.node_provider;
            let p = parent.Trace_merge.node_span
            and c = child.Trace_merge.node_span in
            if
              c.Span.start_tick < p.Span.start_tick
              || c.Span.end_tick > p.Span.end_tick
            then
              Alcotest.failf "child %s [t%d..t%d] outside parent %s [t%d..t%d]"
                c.Span.span_name c.Span.start_tick c.Span.end_tick
                p.Span.span_name p.Span.start_tick p.Span.end_tick
        | Some ctx ->
            if ctx.Trace_context.parent_origin <> parent.Trace_merge.node_provider
            then
              Alcotest.failf "hop parent origin %s but attached under %s"
                ctx.Trace_context.parent_origin
                parent.Trace_merge.node_provider;
            if
              ctx.Trace_context.parent_span
              <> parent.Trace_merge.node_span.Span.span_id
            then
              Alcotest.failf "hop parent span #%d but attached under #%d"
                ctx.Trace_context.parent_span
                parent.Trace_merge.node_span.Span.span_id;
            let p = parent.Trace_merge.node_span in
            if
              ctx.Trace_context.origin_tick < p.Span.start_tick
              || ctx.Trace_context.origin_tick > p.Span.end_tick
            then
              Alcotest.failf "handoff @t%d outside parent [t%d..t%d]"
                ctx.Trace_context.origin_tick p.Span.start_tick p.Span.end_tick);
        go child)
      parent.Trace_merge.node_children
  in
  List.iter go forest

let prop_merged_forest_well_formed =
  QCheck.Test.make ~name:"seeded scenario merges into a well-formed forest"
    ~count:12
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let outcome = Scenario.run_seeded ~seed in
      let forest = Trace_merge.merge outcome.Scenario.spans in
      (* conservation: merging moves subtrees, it never drops or
         duplicates a span (a cycle would also break this count by
         making the fold diverge) *)
      if
        Trace_merge.span_count forest
        <> input_span_count outcome.Scenario.spans
      then QCheck.Test.fail_report "span count changed across merge";
      check_edges forest;
      (* the canary must survive arbitrary fault plans too *)
      List.iter
        (fun (name, body) ->
          if contains body "CANARY-" then
            QCheck.Test.fail_report (name ^ " leaked user bytes"))
        [
          ("text", Trace_merge.to_text forest);
          ("json", Trace_merge.to_json forest);
        ];
      true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "golden federated trace byte-for-byte" `Quick
      test_golden_trace;
    Alcotest.test_case "golden health report byte-for-byte" `Quick
      test_golden_health;
    Alcotest.test_case "scripted story: faults, recovery, verdicts" `Quick
      test_scripted_story;
    Alcotest.test_case "canary sweep over every telemetry surface" `Quick
      test_canary_sweep;
  ]
  @ qsuite [ prop_merged_forest_well_formed ]
