(* End-to-end scenarios through the HTTP front-end: the experiment
   rows E1/E2 (boilerplate privacy + declassifiers) of DESIGN.md. *)

open W5_difc
open W5_http
open W5_platform

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let setup () =
  let platform = Platform.create () in
  let dev = Principal.make Principal.Developer "sdev" in
  (match W5_apps.Social_app.publish platform ~dev with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "publish failed: %s" e);
  let signup user =
    match Platform.signup platform ~user ~password:(user ^ "-pw") with
    | Ok account -> account
    | Error e -> Alcotest.failf "signup %s failed: %s" user e
  in
  let alice = signup "alice" in
  let bob = signup "bob" in
  let charlie = signup "charlie" in
  (platform, alice, bob, charlie)

let login_client platform user =
  let client = Client.make ~name:user (Gateway.handler platform) in
  let response =
    Client.post client "/login"
      ~form:[ ("user", user); ("pass", user ^ "-pw") ]
  in
  check bool_c (user ^ " login ok") true (Response.is_success response);
  client

let app_id = "sdev/social"

let enable_and_delegate platform user =
  (match Platform.enable_app platform ~user ~app:app_id with
  | Ok () -> ()
  | Error e -> Alcotest.failf "enable failed: %s" e);
  let account = Platform.account_exn platform user in
  Policy.delegate_write account.Account.policy app_id

let test_owner_sees_own_profile () =
  let platform, _alice, _bob, _charlie = setup () in
  enable_and_delegate platform "alice";
  let alice = login_client platform "alice" in
  let response = Client.get alice ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "status" 200 (Response.status_code response.Response.status);
  check bool_c "profile shown" true (Client.saw alice "alice")

let test_friend_declassifier_allows_friend () =
  let platform, alice_acct, _bob, _charlie = setup () in
  enable_and_delegate platform "alice";
  enable_and_delegate platform "bob";
  enable_and_delegate platform "charlie";
  (* Alice marks a recognizable secret and befriends Bob. *)
  let alice = login_client platform "alice" in
  let r =
    Client.post alice ("/app/" ^ app_id)
      ~form:
        [ ("action", "set_profile"); ("field", "music"); ("value", "SECRET-JAZZ") ]
  in
  check int_c "set_profile" 200 (Response.status_code r.Response.status);
  let r =
    Client.post alice ("/app/" ^ app_id)
      ~form:[ ("action", "add_friend"); ("friend", "bob") ]
  in
  check int_c "add_friend" 200 (Response.status_code r.Response.status);
  ignore
    (Declassifier.install_and_authorize platform ~account:alice_acct
       ~name:"friends" Declassifier.friends_only);
  (* Bob (a friend) sees the page; Charlie does not; anonymous does not. *)
  let bob = login_client platform "bob" in
  let r = Client.get bob ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "bob status" 200 (Response.status_code r.Response.status);
  check bool_c "bob sees secret" true (Client.saw bob "SECRET-JAZZ");
  let charlie = login_client platform "charlie" in
  let r = Client.get charlie ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "charlie status" 403 (Response.status_code r.Response.status);
  check bool_c "charlie blind" false (Client.saw charlie "SECRET-JAZZ");
  let anon = Client.make (Gateway.handler platform) in
  let r = Client.get anon ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "anon status" 403 (Response.status_code r.Response.status);
  check bool_c "anon blind" false (Client.saw anon "SECRET-JAZZ")

let test_boilerplate_blocks_without_declassifier () =
  let platform, _alice, _bob, _charlie = setup () in
  enable_and_delegate platform "alice";
  enable_and_delegate platform "bob";
  let alice = login_client platform "alice" in
  let _ =
    Client.post alice ("/app/" ^ app_id)
      ~form:[ ("action", "add_friend"); ("friend", "bob") ]
  in
  (* No declassifier installed: even the friend is refused. *)
  let bob = login_client platform "bob" in
  let r = Client.get bob ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "bob refused" 403 (Response.status_code r.Response.status)

let suite =
  [
    Alcotest.test_case "owner sees own profile" `Quick
      test_owner_sees_own_profile;
    Alcotest.test_case "friends-only declassifier" `Quick
      test_friend_declassifier_allows_friend;
    Alcotest.test_case "boilerplate blocks non-owner" `Quick
      test_boilerplate_blocks_without_declassifier;
  ]

(* ---- signup + invitation flow over HTTP ---- *)

let test_signup_over_http () =
  let platform, _, _, _ = setup () in
  let client = Client.make ~name:"newbie" (Gateway.handler platform) in
  let r =
    Client.post client "/signup" ~form:[ ("user", "newbie"); ("pass", "pw") ]
  in
  check int_c "signup" 200 (Response.status_code r.Response.status);
  check bool_c "session cookie set" true
    (List.mem_assoc Session.cookie_name (Client.cookies client));
  (* duplicate signup rejected *)
  let other = Client.make (Gateway.handler platform) in
  let r = Client.post other "/signup" ~form:[ ("user", "newbie"); ("pass", "x") ] in
  check int_c "duplicate" 400 (Response.status_code r.Response.status)

let test_invitation_flow () =
  let platform, _, _, _ = setup () in
  let bob = login_client platform "bob" in
  (* not yet enabled: the gateway shows the invitation, not the app *)
  let r = Client.get bob ("/app/" ^ app_id) ~params:[ ("user", "bob") ] in
  check int_c "prompt" 200 (Response.status_code r.Response.status);
  check bool_c "invited" true (Client.saw bob "accept the invitation");
  (* one click *)
  let r = Client.post bob "/enable" ~form:[ ("app", app_id) ] in
  check int_c "enabled" 200 (Response.status_code r.Response.status);
  let account = Platform.account_exn platform "bob" in
  Policy.delegate_write account.Account.policy app_id;
  let r = Client.get bob ("/app/" ^ app_id) ~params:[ ("user", "bob") ] in
  check bool_c "app now runs" true (Client.saw bob "bob's profile" || Client.saw bob "friends");
  ignore r;
  (* install counter ticked exactly once *)
  check int_c "installs" 1 (App_registry.installs (Platform.registry platform) app_id)

(* ---- version pinning (E11) ---- *)

let test_version_pinning () =
  let platform, _, _, _ = setup () in
  let dev = Principal.make Principal.Developer "vdev" in
  let handler_v tag ctx (_ : App_registry.env) =
    ignore (W5_os.Syscall.respond ctx ("version-" ^ tag))
  in
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"tool"
       ~version:"1.0" (handler_v "one"));
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"tool"
       ~version:"2.0" (handler_v "two"));
  (match Platform.enable_app platform ~user:"alice" ~app:"vdev/tool" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let alice = login_client platform "alice" in
  (* latest by default *)
  let _ = Client.get alice "/app/vdev/tool" in
  check bool_c "latest" true (Client.saw alice "version-two");
  (* explicit query parameter *)
  let _ = Client.get alice "/app/vdev/tool" ~params:[ ("version", "1.0") ] in
  check bool_c "explicit" true (Client.saw alice "version-one");
  (* sticky pin via settings *)
  let _ =
    Client.get alice "/settings"
      ~params:[ ("action", "pin"); ("app", "vdev/tool"); ("version", "1.0") ]
  in
  let r = Client.get alice "/app/vdev/tool" in
  check string_c "pinned" "version-one" r.Response.body

(* ---- client-side script filtering (E9) ---- *)

let test_javascript_stripped_by_default () =
  let platform, _, _, _ = setup () in
  let dev = Principal.make Principal.Developer "jsdev" in
  let handler ctx (_ : App_registry.env) =
    ignore
      (W5_os.Syscall.respond ctx
         "<p>fine</p><script>steal(document.cookie)</script>")
  in
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"shiny"
       ~version:"1.0" handler);
  (match Platform.enable_app platform ~user:"alice" ~app:"jsdev/shiny" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let alice = login_client platform "alice" in
  let r = Client.get alice "/app/jsdev/shiny" in
  check int_c "served" 200 (Response.status_code r.Response.status);
  check bool_c "script stripped" false (Client.saw alice "<script>");
  check bool_c "content kept" true (Client.saw alice "<p>fine</p>");
  (* opting in keeps the script (MashupOS-style relaxation) *)
  let _ =
    Client.get alice "/settings" ~params:[ ("action", "allow_js"); ("value", "on") ]
  in
  let r = Client.get alice "/app/jsdev/shiny" in
  check bool_c "script kept after opt-in" true
    (let body = r.Response.body in
     String.length body >= 8
     &&
     let rec scan i =
       i + 8 <= String.length body
       && (String.sub body i 8 = "<script>" || scan (i + 1))
     in
     scan 0)

(* ---- read protection end to end (E4) ---- *)

let test_read_protection_end_to_end () =
  let platform, alice_acct, _, _ = setup () in
  enable_and_delegate platform "alice";
  let tag = Platform.enable_read_protection platform alice_acct in
  ignore tag;
  let dev = Principal.make Principal.Developer "snoopdev" in
  let handler ctx (_ : App_registry.env) =
    match W5_os.Syscall.read_file_taint ctx "/users/alice/profile" with
    | Ok data -> ignore (W5_os.Syscall.respond ctx ("GOT:" ^ data))
    | Error e ->
        ignore (W5_os.Syscall.respond ctx ("DENIED:" ^ W5_os.Os_error.to_string e))
  in
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"snoop"
       ~version:"1.0" handler);
  List.iter
    (fun user ->
      match Platform.enable_app platform ~user ~app:"snoopdev/snoop" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ "alice"; "bob" ];
  (* without a read grant the app cannot even open the file *)
  let bob = login_client platform "bob" in
  let _ = Client.get bob "/app/snoopdev/snoop" in
  check bool_c "read denied" true (Client.saw bob "DENIED:");
  (* alice grants the app read: it reads, but export to bob is still
     impossible *)
  Policy.grant_read alice_acct.Account.policy "snoopdev/snoop";
  let bob2 = login_client platform "bob" in
  let r = Client.get bob2 "/app/snoopdev/snoop" in
  check int_c "export still refused" 403 (Response.status_code r.Response.status);
  (* alice, with the grant, gets her own data back *)
  Policy.grant_read alice_acct.Account.policy "snoopdev/snoop";
  let alice = login_client platform "alice" in
  let _ = Client.get alice "/app/snoopdev/snoop" in
  check bool_c "owner reads" true (Client.saw alice "GOT:")

(* ---- fork + one-click migration (E11) ---- *)

let test_fork_and_migrate () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let alice = login_client platform "alice" in
  let _ =
    Client.post alice ("/app/" ^ app_id)
      ~form:[ ("action", "set_profile"); ("field", "motto"); ("value", "carpe-diem") ]
  in
  (* an independent developer forks the open-source social app *)
  let forker = Principal.make Principal.Developer "indie" in
  (match
     App_registry.fork (Platform.registry platform) ~new_dev:forker
       ~from_id:app_id ~name:"social-plus" ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* alice switches by checking a box; her data is already there *)
  (match Platform.enable_app platform ~user:"alice" ~app:"indie/social-plus" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let r =
    Client.get alice "/app/indie/social-plus" ~params:[ ("user", "alice") ]
  in
  check int_c "fork serves" 200 (Response.status_code r.Response.status);
  check bool_c "same data, zero re-upload" true (Client.saw alice "carpe-diem")

(* ---- developer debugging via the audit log (§3.5) ---- *)

let test_audit_route_shows_denials () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "bob";
  let dev = Principal.make Principal.Developer "buggydev" in
  let handler ctx (_ : App_registry.env) =
    (* bug: tries to write somewhere it cannot *)
    ignore
      (W5_os.Syscall.write_file ctx "/users/alice/profile" ~data:"oops");
    ignore (W5_os.Syscall.respond ctx "done")
  in
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"buggy"
       ~version:"1.0" handler);
  (match Platform.enable_app platform ~user:"bob" ~app:"buggydev/buggy" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bob = login_client platform "bob" in
  let _ = Client.get bob "/app/buggydev/buggy" in
  let r = Client.get bob "/audit" in
  check int_c "audit served" 200 (Response.status_code r.Response.status);
  check bool_c "denial listed" true (Client.saw bob "fs.write");
  (* the audit page never carries user data *)
  check bool_c "no data in audit" false (Client.saw bob "oops")

let test_home_and_404 () =
  let platform, _, _, _ = setup () in
  let client = Client.make (Gateway.handler platform) in
  let r = Client.get client "/" in
  check int_c "home" 200 (Response.status_code r.Response.status);
  check bool_c "lists app" true (Client.saw client app_id);
  let r = Client.get client "/no/such/route" in
  check int_c "404" 404 (Response.status_code r.Response.status);
  let r = Client.get client "/app/ghost/app" in
  check int_c "ghost app 404" 404 (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "signup over http" `Quick test_signup_over_http;
      Alcotest.test_case "invitation flow" `Quick test_invitation_flow;
      Alcotest.test_case "version pinning" `Quick test_version_pinning;
      Alcotest.test_case "javascript stripped by default" `Quick
        test_javascript_stripped_by_default;
      Alcotest.test_case "read protection end to end" `Quick
        test_read_protection_end_to_end;
      Alcotest.test_case "fork and migrate" `Quick test_fork_and_migrate;
      Alcotest.test_case "audit route shows denials" `Quick
        test_audit_route_shows_denials;
      Alcotest.test_case "home and 404" `Quick test_home_and_404;
    ]

(* ---- virtual hosts (DNS front-end, §2) ---- *)

let test_dns_virtual_hosts () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let dns = Platform.enable_dns platform ~zone:"w5.example" in
  let host = Dns.app_host dns ~app_id:app_id in
  let alice = login_client platform "alice" in
  (* the same app, reached through its vanity hostname *)
  let r =
    Client.get alice "/"
      ~params:[ ("user", "alice") ]
  in
  ignore r;
  (* Client has no host support; craft the request directly *)
  let account = Platform.account_exn platform "alice" in
  ignore account;
  let request =
    Request.make
      ~headers:(Headers.set Headers.empty "Host" host)
      Request.GET "/?user=alice"
  in
  let response = Gateway.handler platform request in
  (* anonymous via vhost: the profile is refused (alice's tag), which
     proves the app ran *)
  check int_c "vhost routed to app" 403
    (Response.status_code response.Response.status);
  (* an unknown host falls through to the path router *)
  let request =
    Request.make
      ~headers:(Headers.set Headers.empty "Host" "unknown.w5.example")
      Request.GET "/"
  in
  let response = Gateway.handler platform request in
  check int_c "unknown host -> front end" 200
    (Response.status_code response.Response.status)

let suite =
  suite
  @ [ Alcotest.test_case "dns virtual hosts" `Quick test_dns_virtual_hosts ]

(* ---- session lifecycle and error paths over HTTP ---- *)

let test_logout_and_bad_login () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let alice = login_client platform "alice" in
  let r = Client.get alice ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "logged in works" 200 (Response.status_code r.Response.status);
  let r = Client.get alice "/logout" in
  check int_c "logout" 200 (Response.status_code r.Response.status);
  (* the session is gone: now anonymous, alice's own page is refused *)
  let r = Client.get alice ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "post-logout anonymous" 403 (Response.status_code r.Response.status);
  (* bad credentials *)
  let c = Client.make (Gateway.handler platform) in
  let r = Client.post c "/login" ~form:[ ("user", "alice"); ("pass", "wrong") ] in
  check int_c "bad login" 401 (Response.status_code r.Response.status);
  let r = Client.post c "/login" ~form:[ ("user", "alice") ] in
  check int_c "missing field" 400 (Response.status_code r.Response.status)

let test_module_failure_surfaces () =
  (* an app whose chosen module does not exist reports the failure but
     does not crash the platform *)
  let platform, alice_acct, _, _ = setup () in
  let dev = Principal.make Principal.Developer "pdev" in
  (match W5_apps.Photo_app.publish platform ~dev with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Platform.enable_app platform ~user:"alice" ~app:"pdev/photos" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Policy.delegate_write alice_acct.Account.policy "pdev/photos";
  Policy.choose_module alice_acct.Account.policy ~slot:"photo.crop"
    ~module_id:"ghost/crop";
  let alice = login_client platform "alice" in
  ignore
    (Client.post alice "/app/pdev/photos"
       ~form:[ ("action", "upload"); ("id", "p"); ("data", "DATA") ]);
  let r =
    Client.get alice "/app/pdev/photos"
      ~params:[ ("action", "view"); ("user", "alice"); ("id", "p") ]
  in
  check int_c "still a page" 200 (Response.status_code r.Response.status);
  check bool_c "error explained" true (Client.saw alice "crop module failed");
  (* and the platform still serves the next request *)
  let r = Client.get alice "/app/pdev/photos" ~params:[ ("action", "list") ] in
  check int_c "alive" 200 (Response.status_code r.Response.status)

let test_enable_unknown_app_rejected () =
  let platform, _, _, _ = setup () in
  let alice = login_client platform "alice" in
  let r = Client.post alice "/enable" ~form:[ ("app", "ghost/app") ] in
  check int_c "rejected" 400 (Response.status_code r.Response.status);
  let r = Client.post alice "/enable" ~form:[] in
  check int_c "missing param" 400 (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "logout and bad login" `Quick test_logout_and_bad_login;
      Alcotest.test_case "module failure surfaces" `Quick
        test_module_failure_surfaces;
      Alcotest.test_case "enable unknown app rejected" `Quick
        test_enable_unknown_app_rejected;
    ]

let test_audit_filter_param () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "bob";
  (* produce two distinct denial kinds *)
  let dev = Principal.make Principal.Developer "fdev" in
  let handler ctx (_ : App_registry.env) =
    ignore (W5_os.Syscall.write_file ctx "/users/alice/profile" ~data:"x");
    ignore (W5_os.Syscall.read_file ctx "/users/alice/profile");
    ignore (W5_os.Syscall.respond ctx "ok")
  in
  ignore
    (App_registry.publish (Platform.registry platform) ~dev ~name:"noisy"
       ~version:"1.0" handler);
  (match Platform.enable_app platform ~user:"bob" ~app:"fdev/noisy" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let bob = login_client platform "bob" in
  ignore (Client.get bob "/app/fdev/noisy");
  let c = Client.make (Gateway.handler platform) in
  let r = Client.get c "/audit" ~params:[ ("filter", "fs.write") ] in
  check int_c "filtered" 200 (Response.status_code r.Response.status);
  check bool_c "writes shown" true (Client.saw c "fs.write");
  check bool_c "reads filtered out" false (Client.saw c "fs.read")

let suite =
  suite @ [ Alcotest.test_case "audit filter param" `Quick test_audit_filter_param ]

let test_me_dashboard () =
  let platform, alice_acct, _, _ = setup () in
  enable_and_delegate platform "alice";
  Policy.choose_module alice_acct.Account.policy ~slot:"photo.crop"
    ~module_id:"devA/crop";
  let alice = login_client platform "alice" in
  let r = Client.get alice "/me" in
  check int_c "dashboard" 200 (Response.status_code r.Response.status);
  check bool_c "shows enabled app" true (Client.saw alice app_id);
  check bool_c "shows module choice" true (Client.saw alice "devA/crop");
  check bool_c "shows js default" true (Client.saw alice "stripped");
  (* anonymous has no dashboard *)
  let anon = Client.make (Gateway.handler platform) in
  let r = Client.get anon "/me" in
  check int_c "anon" 401 (Response.status_code r.Response.status)

let test_session_expiry_platform () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let alice = login_client platform "alice" in
  let r = Client.get alice ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "fresh session works" 200 (Response.status_code r.Response.status);
  (* time passes (the request above advanced the kernel clock);
     expiring with max_age 0 drops everything older than "now" *)
  ignore (Platform.expire_sessions platform ~max_age:0);
  let r = Client.get alice ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "expired session is anonymous" 403
    (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "me dashboard" `Quick test_me_dashboard;
      Alcotest.test_case "session expiry via platform" `Quick
        test_session_expiry_platform;
    ]

(* ---- read protection + declassifier interplay ---- *)

let test_read_protected_profile_via_declassifier () =
  let platform, alice_acct, _, _ = setup () in
  enable_and_delegate platform "alice";
  enable_and_delegate platform "bob";
  enable_and_delegate platform "charlie";
  ignore (Platform.enable_read_protection platform alice_acct);
  (* with read protection on, even alice's own app sessions need the
     read grant before the app can touch her data at all *)
  let alice = login_client platform "alice" in
  let r =
    Client.post alice ("/app/" ^ app_id)
      ~form:[ ("action", "set_profile"); ("field", "blood_type"); ("value", "AB-NEG") ]
  in
  ignore r;
  check bool_c "app cannot even serve the owner without the grant" false
    (Client.saw alice "profile updated: blood_type");
  Policy.grant_read alice_acct.Account.policy app_id;
  ignore
    (Client.post alice ("/app/" ^ app_id)
       ~form:[ ("action", "set_profile"); ("field", "blood_type"); ("value", "AB-NEG") ]);
  ignore
    (Client.post alice ("/app/" ^ app_id)
       ~form:[ ("action", "add_friend"); ("friend", "bob") ]);
  (* the data is readable by the granted app, but bob still cannot
     receive it: no declassifier yet *)
  let bob = login_client platform "bob" in
  let r = Client.get bob ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "readable but not exportable" 403
    (Response.status_code r.Response.status);
  (* alice installs her declassifier: the gate clears both her plain
     and restricted tags for friends *)
  ignore
    (Declassifier.install_and_authorize platform ~account:alice_acct
       ~name:"friends" Declassifier.friends_only);
  let bob2 = login_client platform "bob" in
  let r = Client.get bob2 ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "friend view ok" 200 (Response.status_code r.Response.status);
  check bool_c "content crossed" true (Client.saw bob2 "AB-NEG");
  (* charlie still blocked *)
  let charlie = login_client platform "charlie" in
  let r = Client.get charlie ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "stranger blocked" 403 (Response.status_code r.Response.status)

let test_enforcement_toggle () =
  let platform, _, _, _ = setup () in
  let kernel = Platform.kernel platform in
  check bool_c "on by default" true (W5_os.Kernel.enforcing kernel);
  W5_os.Kernel.set_enforcing kernel false;
  check bool_c "off" false (W5_os.Kernel.enforcing kernel);
  W5_os.Kernel.set_enforcing kernel true;
  check bool_c "on again" true (W5_os.Kernel.enforcing kernel)

let suite =
  suite
  @ [
      Alcotest.test_case "read-protected profile via declassifier" `Quick
        test_read_protected_profile_via_declassifier;
      Alcotest.test_case "enforcement toggle" `Quick test_enforcement_toggle;
    ]

(* ---- nested module invocation ---- *)

let test_nested_modules () =
  let platform, alice_acct, _, _ = setup () in
  let dev = Principal.make Principal.Developer "nest" in
  let leaf ctx (env : App_registry.env) =
    let x =
      W5_http.Request.param_or env.App_registry.request "x" ~default:"?"
    in
    ignore (W5_os.Syscall.respond ctx ("leaf(" ^ x ^ ")"))
  in
  let middle ctx (env : App_registry.env) =
    match
      env.App_registry.run_module ctx ~module_id:"nest/leaf"
        (W5_http.Request.make W5_http.Request.GET "/?x=42")
    with
    | Ok inner -> ignore (W5_os.Syscall.respond ctx ("middle[" ^ inner ^ "]"))
    | Error e -> ignore (W5_os.Syscall.respond ctx ("err:" ^ e))
  in
  let top ctx (env : App_registry.env) =
    match
      env.App_registry.run_module ctx ~module_id:"nest/middle"
        (W5_http.Request.make W5_http.Request.GET "/")
    with
    | Ok inner -> ignore (W5_os.Syscall.respond ctx ("top{" ^ inner ^ "}"))
    | Error e -> ignore (W5_os.Syscall.respond ctx ("err:" ^ e))
  in
  let publish name handler =
    match
      App_registry.publish (Platform.registry platform) ~dev ~name
        ~version:"1.0" handler
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  publish "leaf" leaf;
  publish "middle" middle;
  publish "top" top;
  (match Platform.enable_app platform ~user:"alice" ~app:"nest/top" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore alice_acct;
  let alice = login_client platform "alice" in
  let r = Client.get alice "/app/nest/top" in
  check int_c "nested" 200 (Response.status_code r.Response.status);
  check string_c "composition" "top{middle[leaf(42)]}" r.Response.body

let test_unknown_version_404 () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let alice = login_client platform "alice" in
  let r = Client.get alice ("/app/" ^ app_id) ~params:[ ("version", "9.9") ] in
  check int_c "unknown version" 404 (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "nested modules" `Quick test_nested_modules;
      Alcotest.test_case "unknown version 404" `Quick test_unknown_version_404;
    ]

(* ---- vhost + rate limit together ---- *)

let test_vhost_respects_rate_limit () =
  let platform, _, _, _ = setup () in
  enable_and_delegate platform "alice";
  let dns = Platform.enable_dns platform ~zone:"w5.example" in
  let host = Dns.app_host dns ~app_id:app_id in
  Platform.set_rate_limit platform
    (Some (Rate_limit.create ~capacity:2 ~refill_per_tick:0 ()));
  let hit () =
    let request =
      Request.make
        ~headers:(Headers.set Headers.empty "Host" host)
        ~client:"vhost-client" Request.GET "/?user=alice"
    in
    Response.status_code (Gateway.handler platform request).Response.status
  in
  let statuses = List.init 4 (fun _ -> hit ()) in
  check int_c "throttled after capacity" 2
    (List.length (List.filter (( = ) 429) statuses))

let test_signup_then_me () =
  let platform, _, _, _ = setup () in
  let c = Client.make ~name:"fresh" (Gateway.handler platform) in
  ignore (Client.post c "/signup" ~form:[ ("user", "fresh"); ("pass", "pw") ]);
  (* the signup set a session cookie: /me works immediately *)
  let r = Client.get c "/me" in
  check int_c "dashboard right away" 200 (Response.status_code r.Response.status);
  check bool_c "own name" true (Client.saw c "fresh")

let suite =
  suite
  @ [
      Alcotest.test_case "vhost respects rate limit" `Quick
        test_vhost_respects_rate_limit;
      Alcotest.test_case "signup then me" `Quick test_signup_then_me;
    ]

(* ---- capstone: a full life, then a full move ----

   zoe uses the social app, photos and calendar on provider A,
   befriends ben (who can see her redacted week), then takes her whole
   account to provider B. On B — with the same apps published by the
   same developers — everything works immediately: her data, her
   friend list, her photos. Only her policies (which are platform
   state, not data) need re-declaring, exactly as the paper's
   account-linking story implies. *)

let test_capstone_full_move () =
  let make_provider () =
    let platform = Platform.create () in
    let dev = Principal.make Principal.Developer "core" in
    (match W5_apps.Social_app.publish platform ~dev with
    | Ok _ -> () | Error e -> Alcotest.fail e);
    (match W5_apps.Photo_app.publish platform ~dev with
    | Ok _ -> () | Error e -> Alcotest.fail e);
    (match W5_apps.Calendar_app.publish platform ~dev with
    | Ok _ -> () | Error e -> Alcotest.fail e);
    platform
  in
  let provider_a = make_provider () in
  let provider_b = make_provider () in
  let join platform user =
    let account =
      match Platform.signup platform ~user ~password:"pw" with
      | Ok a -> a
      | Error e -> Alcotest.fail e
    in
    List.iter
      (fun app ->
        (match Platform.enable_app platform ~user ~app with
        | Ok () -> () | Error e -> Alcotest.fail e);
        Policy.delegate_write account.Account.policy app)
      [ "core/social"; "core/photos"; "core/calendar" ];
    account
  in
  let zoe_a = join provider_a "zoe" in
  ignore (join provider_a "ben");
  let login platform user =
    let c = Client.make ~name:user (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", user); ("pass", "pw") ]);
    c
  in
  (* life on A *)
  let zc = login provider_a "zoe" in
  ignore
    (Client.post zc "/app/core/social"
       ~form:[ ("action", "set_profile"); ("field", "bio"); ("value", "SAILOR-BIO") ]);
  ignore
    (Client.post zc "/app/core/social"
       ~form:[ ("action", "add_friend"); ("friend", "ben") ]);
  ignore
    (Client.post zc "/app/core/photos"
       ~form:[ ("action", "upload"); ("id", "boat"); ("data", "BOATPIXELS") ]);
  ignore
    (Client.post zc "/app/core/calendar"
       ~form:
         [ ("action", "add"); ("id", "regatta"); ("title", "SECRET-REGATTA");
           ("day", "6"); ("start", "9"); ("len", "3") ]);
  ignore
    (Declassifier.install_and_authorize provider_a ~account:zoe_a
       ~name:"busyfree" (Declassifier.redacting Declassifier.friends_only));
  let bc = login provider_a "ben" in
  let r = Client.get bc "/app/core/calendar" ~params:[ ("action", "week"); ("user", "zoe") ] in
  check int_c "ben sees A-side week" 200 (Response.status_code r.Response.status);
  check bool_c "redacted on A" false (Client.saw bc "SECRET-REGATTA");
  (* the move *)
  let zoe_b = join provider_b "zoe" in
  ignore (join provider_b "ben");
  let moved =
    match
      W5_federation.Migrate.migrate_account ~from_platform:provider_a
        ~from_account:zoe_a ~to_platform:provider_b ~to_account:zoe_b ()
    with
    | Ok n -> n
    | Error e -> Alcotest.failf "migration failed: %s" (W5_os.Os_error.to_string e)
  in
  check bool_c "everything moved" true (moved >= 4);
  (* life on B, zero re-upload *)
  let zb = login provider_b "zoe" in
  let r = Client.get zb "/app/core/social" ~params:[ ("user", "zoe") ] in
  check int_c "profile on B" 200 (Response.status_code r.Response.status);
  check bool_c "bio survived" true (Client.saw zb "SAILOR-BIO");
  check bool_c "friends survived" true (Client.saw zb "ben");
  let r =
    Client.get zb "/app/core/photos"
      ~params:[ ("action", "view"); ("user", "zoe"); ("id", "boat") ]
  in
  check int_c "photo on B" 200 (Response.status_code r.Response.status);
  check bool_c "pixels survived" true (Client.saw zb "BOATPIXELS");
  (* policies are per-platform: ben is blocked on B until zoe
     re-authorizes a declassifier there *)
  let bb = login provider_b "ben" in
  let r = Client.get bb "/app/core/calendar" ~params:[ ("action", "week"); ("user", "zoe") ] in
  check int_c "no declassifier on B yet" 403 (Response.status_code r.Response.status);
  ignore
    (Declassifier.install_and_authorize provider_b ~account:zoe_b
       ~name:"busyfree" (Declassifier.redacting Declassifier.friends_only));
  let bb2 = login provider_b "ben" in
  let r = Client.get bb2 "/app/core/calendar" ~params:[ ("action", "week"); ("user", "zoe") ] in
  check int_c "redeclared: ben sees B-side week" 200
    (Response.status_code r.Response.status);
  check bool_c "slot visible on B" true (Client.saw bb2 "09:00-12:00");
  check bool_c "still redacted on B" false (Client.saw bb2 "SECRET-REGATTA")

let suite =
  suite
  @ [
      Alcotest.test_case "capstone: full life, full move" `Quick
        test_capstone_full_move;
    ]

let test_self_recursive_module_contained () =
  let platform, _, _, _ = setup () in
  let dev = Principal.make Principal.Developer "loopdev" in
  let handler ctx (env : App_registry.env) =
    (* a module that invokes itself forever *)
    match
      env.App_registry.run_module ctx ~module_id:"loopdev/ouroboros"
        (W5_http.Request.make W5_http.Request.GET "/")
    with
    | Ok body -> ignore (W5_os.Syscall.respond ctx body)
    | Error e -> ignore (W5_os.Syscall.respond ctx e)
  in
  (match
     App_registry.publish (Platform.registry platform) ~dev ~name:"ouroboros"
       ~version:"1.0" handler
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Platform.enable_app platform ~user:"alice" ~app:"loopdev/ouroboros" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let alice = login_client platform "alice" in
  let r = Client.get alice "/app/loopdev/ouroboros" in
  (* killed by quota, not by a stack overflow crash *)
  check int_c "contained" 429 (Response.status_code r.Response.status);
  (* and the platform is still fine *)
  enable_and_delegate platform "alice";
  let alice2 = login_client platform "alice" in
  let r = Client.get alice2 ("/app/" ^ app_id) ~params:[ ("user", "alice") ] in
  check int_c "still serving" 200 (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "self-recursive module contained" `Quick
        test_self_recursive_module_contained;
    ]
