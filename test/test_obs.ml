(* Tests for the label-safe telemetry library: metric semantics, the
   cardinality cap, span nesting, exposition goldens — and the
   telemetry rule itself: no user bytes in any rendered output. *)

open W5_difc
open W5_obs
open W5_platform

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

(* ---- counters, gauges, histograms ---- *)

let test_counter_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c_total" in
  Metrics.inc c ~labels:[ ("route", "home") ];
  Metrics.inc c ~labels:[ ("route", "home") ] ~by:2;
  Metrics.inc c ~labels:[ ("route", "login") ];
  Metrics.inc c;
  check int_c "home series" 3 (Metrics.value c ~labels:[ ("route", "home") ]);
  check int_c "login series" 1 (Metrics.value c ~labels:[ ("route", "login") ]);
  check int_c "unlabeled series" 1 (Metrics.value c);
  check int_c "missing series reads 0" 0
    (Metrics.value c ~labels:[ ("route", "nope") ]);
  (* label order must not mint a second series *)
  let d = Metrics.counter r "d_total" in
  Metrics.inc d ~labels:[ ("a", "1"); ("b", "2") ];
  Metrics.inc d ~labels:[ ("b", "2"); ("a", "1") ];
  check int_c "label order canonicalized" 2
    (Metrics.value d ~labels:[ ("b", "2"); ("a", "1") ]);
  check int_c "series count" 4 (Metrics.series_count r)

let test_gauge_semantics () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "g" in
  Metrics.set g 7;
  check int_c "set" 7 (Metrics.value g);
  Metrics.inc g ~by:(-2);
  check int_c "inc by negative" 5 (Metrics.value g)

let test_histogram_semantics () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[ 1; 2; 4 ] "h" in
  List.iter (Metrics.observe h) [ 1; 2; 2; 3; 100 ];
  check int_c "count" 5 (Metrics.histogram_count h);
  check int_c "sum" 108 (Metrics.histogram_sum h);
  match Metrics.dump r with
  | [ { Metrics.sample_series = [ (_, Metrics.Histo { counts; _ }) ]; _ } ] ->
      (* per-bucket (non-cumulative): <=1, <=2, <=4, +Inf *)
      check (Alcotest.list int_c) "bucket counts" [ 1; 2; 1; 1 ] counts
  | _ -> Alcotest.fail "expected one histogram with one series"

let test_kind_conflict () =
  let r = Metrics.create () in
  let c = Metrics.counter r "same" in
  let c' = Metrics.counter r "same" in
  Metrics.inc c;
  Metrics.inc c';
  check int_c "re-registration shares state" 2 (Metrics.value c);
  Alcotest.check_raises "kind mismatch raises"
    (Invalid_argument "metric same: registered with a different kind")
    (fun () -> ignore (Metrics.gauge r "same"))

let test_cardinality_cap () =
  let r = Metrics.create ~max_series:2 () in
  let c = Metrics.counter r "per_user_total" in
  List.iter
    (fun u -> Metrics.inc c ~labels:[ ("user", u) ])
    [ "a"; "b"; "c"; "d"; "e" ];
  check int_c "first series intact" 1
    (Metrics.value c ~labels:[ ("user", "a") ]);
  check int_c "overflow series absorbs the rest" 3
    (Metrics.value c ~labels:[ ("w5_capped", "true") ]);
  check int_c "capped label set never created" 0
    (Metrics.value c ~labels:[ ("user", "c") ]);
  check int_c "overflow updates counted" 3 (Metrics.overflowed r);
  (* the dashboard shows the cap was hit, not the attacker's names *)
  let dump = Exposition.prometheus r in
  check bool_c "exposition names the overflow" true
    (contains dump "w5_capped=\"true\"");
  check bool_c "dropped label value absent" false (contains dump "user=\"c\"")

let test_disabled_registry () =
  let r = Metrics.create ~enabled:false () in
  let c = Metrics.counter r "quiet_total" in
  Metrics.inc c ~by:5;
  check int_c "disabled drops updates" 0 (Metrics.value c);
  check int_c "no series materialized" 0 (Metrics.series_count r);
  Metrics.set_enabled r true;
  Metrics.inc c ~by:5;
  check int_c "re-enabled counts" 5 (Metrics.value c)

(* ---- spans and the tracer ---- *)

let test_span_nesting () =
  let tick = ref 10 in
  let clock () = !tick in
  let tr = Tracer.create ~enabled:true () in
  let result =
    Tracer.with_span tr ~clock "gateway:demo" (fun () ->
        tick := 12;
        Tracer.with_span tr ~clock "sys.fs.read" (fun () ->
            tick := 13;
            Tracer.event tr ~tick:!tick "flow.check"
              ~fields:[ ("decision", "allow") ];
            tick := 14;
            "payload")
        |> fun r ->
        tick := 15;
        Tracer.annotate tr [ ("status", "200") ];
        r)
  in
  check string_c "with_span returns the body's value" "payload" result;
  check int_c "everything closed" 0 (Tracer.open_depth tr);
  match Tracer.latest tr with
  | None -> Alcotest.fail "no trace recorded"
  | Some root ->
      check string_c "root name" "gateway:demo" root.Span.span_name;
      check int_c "root duration" 5 (Span.duration root);
      check int_c "tree size" 3 (Span.descendant_count root);
      (match root.Span.children with
      | [ child ] -> (
          check string_c "child name" "sys.fs.read" child.Span.span_name;
          check int_c "child duration" 2 (Span.duration child);
          match child.Span.children with
          | [ ev ] ->
              check string_c "event name" "flow.check" ev.Span.span_name;
              check int_c "event instantaneous" 0 (Span.duration ev)
          | _ -> Alcotest.fail "expected one event under the syscall")
      | _ -> Alcotest.fail "expected one child under the root");
      check bool_c "root annotated" true
        (List.mem ("status", "200") root.Span.span_fields)

let test_span_exception_safety () =
  let tr = Tracer.create ~enabled:true () in
  (try
     Tracer.with_span tr ~clock:(fun () -> 1) "doomed" (fun () ->
         failwith "boom")
   with Failure _ -> ());
  check int_c "span closed on raise" 0 (Tracer.open_depth tr);
  check int_c "trace still committed" 1 (List.length (Tracer.traces tr))

let test_tracer_disabled_and_ring () =
  let tr = Tracer.create () in
  Tracer.start_span tr ~tick:1 "ignored";
  Tracer.end_span tr ~tick:2;
  check int_c "disabled records nothing" 0 (List.length (Tracer.traces tr));
  let tr = Tracer.create ~enabled:true ~capacity:2 () in
  List.iter
    (fun name ->
      Tracer.start_span tr ~tick:0 name;
      Tracer.end_span tr ~tick:1)
    [ "one"; "two"; "three" ];
  check
    (Alcotest.list string_c)
    "ring keeps the newest" [ "two"; "three" ]
    (List.map (fun (s : Span.t) -> s.Span.span_name) (Tracer.traces tr))

let test_tracer_dropped_counter () =
  let tr = Tracer.create ~enabled:true ~capacity:2 () in
  check int_c "fresh tracer dropped nothing" 0 (Tracer.dropped tr);
  List.iter
    (fun name ->
      Tracer.start_span tr ~tick:0 name;
      Tracer.end_span tr ~tick:1)
    [ "one"; "two"; "three"; "four" ];
  check int_c "evictions counted" 2 (Tracer.dropped tr);
  check bool_c "traces exposition reports the drops" true
    (contains (Exposition.traces tr) "(2 older traces dropped)");
  Tracer.clear tr;
  check int_c "clear resets the counter" 0 (Tracer.dropped tr);
  check bool_c "no notice once cleared" false
    (contains (Exposition.traces tr) "dropped")

let test_unbalanced_end_span () =
  let tr = Tracer.create ~enabled:true () in
  (* closing with nothing open is a no-op, not a crash or a trace *)
  Tracer.end_span tr ~tick:5;
  check int_c "still nothing open" 0 (Tracer.open_depth tr);
  check int_c "nothing committed" 0 (List.length (Tracer.traces tr));
  (* and it does not poison later, balanced use *)
  Tracer.start_span tr ~tick:6 "real";
  Tracer.end_span tr ~tick:7;
  Tracer.end_span tr ~tick:8;
  check int_c "balanced span still commits" 1 (List.length (Tracer.traces tr))

let test_with_span_nested_exception () =
  let tr = Tracer.create ~enabled:true () in
  let clock = let t = ref 0 in fun () -> incr t; !t in
  (try
     Tracer.with_span tr ~clock "root" (fun () ->
         Tracer.with_span tr ~clock "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check int_c "both spans closed" 0 (Tracer.open_depth tr);
  (match Tracer.traces tr with
  | [ root ] ->
      check string_c "root committed" "root" root.Span.span_name;
      check int_c "inner recorded under root" 1
        (List.length root.Span.children)
  | l -> Alcotest.failf "expected exactly the root trace, got %d" (List.length l));
  (* the tracer is reusable after the exception unwound through it *)
  Tracer.with_span tr ~clock "after" (fun () -> ());
  check int_c "subsequent trace commits" 2 (List.length (Tracer.traces tr))

(* ---- exposition goldens ---- *)

let golden_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"requests" "demo_requests_total" in
  Metrics.inc c ~labels:[ ("route", "home") ];
  Metrics.inc c ~labels:[ ("route", "home") ] ~by:2;
  Metrics.inc c ~labels:[ ("route", "login") ];
  let h = Metrics.histogram r ~help:"ticks" ~buckets:[ 1; 2 ] "demo_ticks" in
  List.iter (Metrics.observe h) [ 1; 2; 5 ];
  r

let test_prometheus_golden () =
  let expected =
    "# HELP demo_requests_total requests\n\
     # TYPE demo_requests_total counter\n\
     demo_requests_total{route=\"home\"} 3\n\
     demo_requests_total{route=\"login\"} 1\n\
     # HELP demo_ticks ticks\n\
     # TYPE demo_ticks histogram\n\
     demo_ticks_bucket{le=\"1\"} 1\n\
     demo_ticks_bucket{le=\"2\"} 2\n\
     demo_ticks_bucket{le=\"+Inf\"} 3\n\
     demo_ticks_sum 8\n\
     demo_ticks_count 3\n"
  in
  check string_c "prometheus text format" expected
    (Exposition.prometheus (golden_registry ()))

let test_json_golden () =
  let expected =
    "{\"series_count\":3,\"overflowed\":0,\"metrics\":[\
     {\"name\":\"demo_requests_total\",\"kind\":\"counter\",\
     \"help\":\"requests\",\"series\":[\
     {\"labels\":{\"route\":\"home\"},\"value\":3},\
     {\"labels\":{\"route\":\"login\"},\"value\":1}]},\
     {\"name\":\"demo_ticks\",\"kind\":\"histogram\",\"help\":\"ticks\",\
     \"bounds\":[1,2],\"series\":[\
     {\"labels\":{},\"buckets\":[1,1,1],\"sum\":8,\"count\":3,\
     \"p50\":\"2\",\"p95\":\">2\",\"p99\":\">2\"}]}]}"
  in
  check string_c "json exposition" expected
    (Exposition.json (golden_registry ()))

(* `w5 stats` renders this verbatim: one line per histogram series
   with the derived tick quantiles. *)
let test_summaries_golden () =
  let r = golden_registry () in
  let h = Metrics.histogram r ~buckets:[ 1; 2 ] "demo_ticks" in
  Metrics.observe h ~labels:[ ("route", "login") ] 1;
  let expected =
    "demo_ticks count=3 sum=8 p50=2 p95=>2 p99=>2\n\
     demo_ticks{route=\"login\"} count=1 sum=1 p50=1 p95=1 p99=1\n"
  in
  check string_c "quantile summary" expected (Exposition.summaries r)

(* ---- quantile estimation from bucket counts ---- *)

let estimate_c =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Perf.render_estimate e))
    ( = )

let test_perf_quantiles () =
  let q = Perf.quantile ~bounds:[ 1; 2; 4 ] in
  check (Alcotest.option estimate_c) "empty series" None
    (q ~counts:[ 0; 0; 0; 0 ] 0.5);
  (* counts: 1 <=1, 2 <=2, 1 <=4, 1 overflow (total 5) *)
  let counts = [ 1; 2; 1; 1 ] in
  check (Alcotest.option estimate_c) "p50 in the middle bucket"
    (Some (Perf.Le 2)) (q ~counts 0.5);
  check (Alcotest.option estimate_c) "p95 past the last bound"
    (Some (Perf.Gt 4)) (q ~counts 0.95);
  check (Alcotest.option estimate_c) "p20 rank-1 lands in the first bucket"
    (Some (Perf.Le 1)) (q ~counts 0.20);
  check (Alcotest.option estimate_c) "everything in overflow"
    (Some (Perf.Gt 4))
    (q ~counts:[ 0; 0; 0; 3 ] 0.5);
  check string_c "render Le" "8" (Perf.render_estimate (Perf.Le 8));
  check string_c "render Gt" ">1024" (Perf.render_estimate (Perf.Gt 1024))

let test_perf_time () =
  let r = Metrics.create () in
  let m = Perf.latency r "t_ticks" in
  let tick = ref 0 in
  let clock () = !tick in
  let v = Perf.time m ~clock (fun () -> tick := !tick + 5; "done") in
  check string_c "body value returned" "done" v;
  check int_c "delta observed" 5 (Metrics.histogram_sum m);
  (* the observation lands even when the body raises *)
  (try
     Perf.time m ~clock (fun () -> tick := !tick + 3; failwith "boom")
   with Failure _ -> ());
  check int_c "raising body still observed" 8 (Metrics.histogram_sum m);
  check int_c "two observations" 2 (Metrics.histogram_count m)

let test_trace_tree_golden () =
  let tr = Tracer.create ~enabled:true () in
  Tracer.start_span tr ~tick:10 "gateway:demo";
  Tracer.start_span tr ~tick:12 "sys.fs.read";
  Tracer.event tr ~tick:13 "flow.check" ~fields:[ ("decision", "allow") ];
  Tracer.end_span tr ~tick:14;
  Tracer.annotate tr [ ("status", "200") ];
  Tracer.end_span tr ~tick:15;
  let expected =
    "gateway:demo  [t10..t15 +5]  status=200\n\
    \  sys.fs.read  [t12..t14 +2]\n\
    \    flow.check  [t13 +0]  decision=allow\n"
  in
  match Tracer.latest tr with
  | None -> Alcotest.fail "no trace"
  | Some root ->
      check string_c "trace tree" expected (Exposition.trace_tree root)

(* ---- the telemetry rule: no user bytes in any exposition ---- *)

let canary = "W5-CANARY-bf1083-do-not-export"

let test_no_user_bytes_in_telemetry () =
  let society =
    W5_workload.Populate.build ~seed:91 ~enforcing:true ~users:6
      ~friends_per_user:2 ~photos_per_user:1 ~blog_posts_per_user:1 ()
  in
  let platform = society.W5_workload.Populate.platform in
  let kernel = Platform.kernel platform in
  W5_obs.Tracer.set_enabled (W5_os.Kernel.tracer kernel) true;
  let users = society.W5_workload.Populate.users in
  let u0 = List.hd users in
  let account = Platform.account_exn platform u0 in
  (* plant a distinctive payload in the victim's profile *)
  (match
     Platform.write_user_record platform account ~file:"profile"
       (W5_store.Record.of_fields [ ("user", u0); ("bio", canary) ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "plant failed: %s" (W5_os.Os_error.to_string e));
  (* the owner reads it (allow path), everyone else tries (deny path) *)
  List.iter
    (fun viewer ->
      let client = W5_workload.Populate.login society viewer in
      ignore
        (W5_http.Client.get client "/app/core/social"
           ~params:[ ("user", u0) ]))
    users;
  let owner = W5_workload.Populate.login society u0 in
  let page =
    W5_http.Client.get owner "/app/core/social" ~params:[ ("user", u0) ]
  in
  check bool_c "sanity: the owner does see the payload" true
    (contains page.W5_http.Response.body canary);
  let metrics = W5_os.Kernel.metrics kernel in
  let tracer = W5_os.Kernel.tracer kernel in
  check bool_c "request series recorded" true
    (Metrics.value
       (Metrics.counter metrics "w5_gateway_requests_total")
       ~labels:[ ("route", "app:core/social"); ("status", "200") ]
     > 0);
  List.iter
    (fun (name, rendered) ->
      check bool_c (name ^ " is payload-free") false (contains rendered canary))
    [
      ("prometheus", Exposition.prometheus metrics);
      ("json", Exposition.json metrics);
      ("summaries", Exposition.summaries metrics);
      ("traces", Exposition.traces tracer);
    ];
  (* the provenance/explanation layer reads the same audit log — its
     renderings must be equally payload-free *)
  let log = W5_os.Kernel.audit kernel in
  let g = W5_os.Explain.graph log in
  let explain_text, explain_dot =
    match W5_os.Explain.find_denial log () with
    | None -> ("", "")
    | Some entry ->
        ( (match W5_os.Explain.explain_text g entry with
          | Ok s -> s
          | Error e -> e),
          match W5_os.Explain.explain_dot g entry with
          | Ok s -> s
          | Error e -> e )
  in
  let provenance_render =
    String.concat "\n"
      (List.concat_map
         (fun (tag, edges) ->
           tag :: List.map (Provenance.render_edge g) edges)
         (W5_os.Explain.file_provenance g
            ~path:(Platform.user_file u0 "profile")))
  in
  List.iter
    (fun (name, rendered) ->
      check bool_c (name ^ " is payload-free") false (contains rendered canary))
    [
      ("explain text", explain_text);
      ("explain dot", explain_dot);
      ("whole-graph dot", Provenance.to_dot g);
      ("file provenance", provenance_render);
      ("audit report", W5_os.Explain.report log);
    ]

(* ---- kernel wiring: syscalls and flow checks actually meter ---- *)

let test_kernel_meters () =
  let open W5_os in
  let kernel = Kernel.create () in
  let proc =
    match
      Kernel.spawn kernel ~name:"meter-probe"
        ~owner:(Kernel.kernel_principal kernel)
        ~labels:Flow.bottom ~caps:Capability.Set.empty
        ~limits:Resource.unlimited
        (fun ctx ->
          (match
             Syscall.create_file ctx "/probe" ~labels:Flow.bottom ~data:"x"
           with
          | Ok () -> ()
          | Error _ -> assert false);
          ignore (Syscall.read_file ctx "/probe"))
    with
    | Ok p -> p
    | Error _ -> assert false
  in
  Kernel.run_proc kernel proc;
  let meters = Kernel.meters kernel in
  check int_c "fs.create metered" 1
    (Metrics.value meters.Kernel.syscalls ~labels:[ ("op", "fs.create") ]);
  check int_c "fs.read metered" 1
    (Metrics.value meters.Kernel.syscalls ~labels:[ ("op", "fs.read") ]);
  check bool_c "flow checks metered" true
    (Metrics.value meters.Kernel.flow_checks
       ~labels:[ ("op", "fs.create"); ("decision", "allow") ]
    > 0);
  check bool_c "cpu quota units metered" true
    (Metrics.value meters.Kernel.quota_units ~labels:[ ("kind", "cpu") ] > 0);
  check int_c "spawns metered" 1 (Metrics.value meters.Kernel.spawns);
  (* every dispatch lands in the per-op latency histogram; a leaf
     syscall consumes exactly its own clock crossing *)
  check int_c "fs.create latency observed" 1
    (Metrics.histogram_count meters.Kernel.syscall_ticks
       ~labels:[ ("op", "fs.create") ]);
  check int_c "fs.read latency is one tick"
    1
    (Metrics.histogram_sum meters.Kernel.syscall_ticks
       ~labels:[ ("op", "fs.read") ]);
  check bool_c "syscall quantiles reach the summary exposition" true
    (contains
       (Exposition.summaries (Kernel.metrics kernel))
       "w5_syscall_ticks{op=\"fs.read\"} count=1 sum=1 p50=1 p95=1 p99=1")

(* ---- audit log: truncation and streaming accessors ---- *)

let test_audit_truncation_seq () =
  let open W5_os in
  let log = Audit.create ~capacity:10 () in
  for i = 1 to 25 do
    Audit.record log ~tick:i ~pid:1 (Audit.App_note "n")
  done;
  check bool_c "log stays bounded" true (Audit.length log <= 20);
  check bool_c "newest retained after eviction" true (Audit.length log >= 10);
  let entries = Audit.entries log in
  let seqs = List.map (fun e -> e.Audit.seq) entries in
  check int_c "seq keeps counting across eviction" 25
    (List.nth seqs (List.length seqs - 1));
  check bool_c "oldest entries evicted" true (List.hd seqs > 1);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  check bool_c "seqs strictly ascending" true (ascending seqs)

let test_audit_iter_fold () =
  let open W5_os in
  let log = Audit.create () in
  List.iter
    (fun i -> Audit.record log ~tick:i ~pid:i (Audit.App_note "n"))
    [ 1; 2; 3 ];
  let seen = ref [] in
  Audit.iter log ~f:(fun e -> seen := e.Audit.seq :: !seen);
  check (Alcotest.list int_c) "iter visits oldest first" [ 1; 2; 3 ]
    (List.rev !seen);
  check (Alcotest.list int_c) "fold matches entries"
    (List.map (fun e -> e.Audit.seq) (Audit.entries log))
    (List.rev (Audit.fold log ~init:[] ~f:(fun acc e -> e.Audit.seq :: acc)))

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
    Alcotest.test_case "cardinality cap" `Quick test_cardinality_cap;
    Alcotest.test_case "disabled registry" `Quick test_disabled_registry;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "tracer disabled + ring" `Quick
      test_tracer_disabled_and_ring;
    Alcotest.test_case "tracer dropped counter" `Quick
      test_tracer_dropped_counter;
    Alcotest.test_case "unbalanced end_span is a no-op" `Quick
      test_unbalanced_end_span;
    Alcotest.test_case "with_span nested exception" `Quick
      test_with_span_nested_exception;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "summaries golden" `Quick test_summaries_golden;
    Alcotest.test_case "perf quantiles" `Quick test_perf_quantiles;
    Alcotest.test_case "perf time bracket" `Quick test_perf_time;
    Alcotest.test_case "trace tree golden" `Quick test_trace_tree_golden;
    Alcotest.test_case "no user bytes in telemetry" `Quick
      test_no_user_bytes_in_telemetry;
    Alcotest.test_case "kernel meters" `Quick test_kernel_meters;
    Alcotest.test_case "audit truncation keeps seq" `Quick
      test_audit_truncation_seq;
    Alcotest.test_case "audit iter/fold" `Quick test_audit_iter_fold;
  ]
