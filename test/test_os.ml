(* Tests for the simulated kernel: labeled filesystem semantics,
   syscall-level flow checks, IPC, spawning, gates, quotas, audit. *)

open W5_difc
open W5_os

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let fail_err e = Alcotest.failf "unexpected error: %s" (Os_error.to_string e)
let ok = function Ok v -> v | Error e -> fail_err e

let expect_denied label = function
  | Error e when Os_error.is_denied e -> ()
  | Error e -> Alcotest.failf "%s: wrong error: %s" label (Os_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly allowed" label

(* Run [f] inside a fresh synchronous process on [kernel]. *)
let run kernel ?(labels = Flow.bottom) ?(caps = Capability.Set.empty)
    ?(limits = Resource.unlimited) ~name f =
  let result = ref None in
  let proc =
    ok
      (Kernel.spawn kernel ~name
         ~owner:(Kernel.kernel_principal kernel)
         ~labels ~caps ~limits
         (fun ctx -> result := Some (f ctx)))
  in
  Kernel.run_proc kernel proc;
  (proc, !result)

let run_value kernel ?labels ?caps ?limits ~name f =
  match run kernel ?labels ?caps ?limits ~name f with
  | _, Some v -> v
  | proc, None ->
      Alcotest.failf "process %s died: %s" name
        (Format.asprintf "%a" Proc.pp proc)

(* A process that is spawned but never run: it stays [Runnable]
   (alive), so other processes can message it. *)
let spawn_dormant kernel ?(labels = Flow.bottom) ?(caps = Capability.Set.empty)
    ~name () =
  ok
    (Kernel.spawn kernel ~name
       ~owner:(Kernel.kernel_principal kernel)
       ~labels ~caps ~limits:Resource.unlimited
       (fun _ -> ()))

(* ---- resource accounting ---- *)

let test_resource_charge () =
  let usage = Resource.fresh_usage () in
  let limits = Resource.make_limits ~cpu:10 () in
  check bool_c "within" true (Resource.charge usage limits Resource.Cpu 9 = Ok ());
  check int_c "used" 9 (Resource.used usage Resource.Cpu);
  check int_c "remaining" 1 (Resource.remaining usage limits Resource.Cpu);
  check bool_c "exceed" true
    (Resource.charge usage limits Resource.Cpu 2 = Error Resource.Cpu);
  check int_c "zero remaining" 0 (Resource.remaining usage limits Resource.Cpu)

(* ---- filesystem mechanism ---- *)

let test_fs_paths () =
  check string_c "dirname" "/a/b" (Fs.dirname "/a/b/c");
  check string_c "dirname root child" "/" (Fs.dirname "/a");
  check string_c "basename" "c" (Fs.basename "/a/b/c");
  check string_c "join" "/a/b" (Fs.join_path "/a" "b");
  check string_c "join root" "/b" (Fs.join_path "/" "b")

let test_fs_tree () =
  let fs = Fs.create () in
  ok (Fs.mkdir fs "/d" ~labels:Flow.bottom);
  ok (Fs.create_file fs "/d/f" ~labels:Flow.bottom ~data:"hello");
  let data, _ = ok (Fs.read fs "/d/f") in
  check string_c "read back" "hello" data;
  ok (Fs.append fs "/d/f" ~data:" world");
  let data, _ = ok (Fs.read fs "/d/f") in
  check string_c "append" "hello world" data;
  let names, _ = ok (Fs.readdir fs "/d") in
  check (Alcotest.list string_c) "listing" [ "f" ] names;
  let st = ok (Fs.stat fs "/d/f") in
  check int_c "size" 11 st.Fs.size;
  check int_c "version bumped" 2 st.Fs.version;
  (match Fs.unlink fs "/d" with
  | Error (Os_error.Invalid _) -> ()
  | Ok () | Error _ -> Alcotest.fail "unlink of non-empty dir must fail");
  ok (Fs.unlink fs "/d/f");
  check bool_c "gone" false (Fs.exists fs "/d/f");
  ok (Fs.unlink fs "/d")

let test_fs_errors () =
  let fs = Fs.create () in
  (match Fs.read fs "/nope" with
  | Error (Os_error.Not_found _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_found");
  ok (Fs.create_file fs "/f" ~labels:Flow.bottom ~data:"");
  (match Fs.create_file fs "/f" ~labels:Flow.bottom ~data:"" with
  | Error (Os_error.Already_exists _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Already_exists");
  (match Fs.mkdir fs "/f/sub" ~labels:Flow.bottom with
  | Error (Os_error.Not_a_directory _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_a_directory");
  match Fs.readdir fs "/f" with
  | Error (Os_error.Not_a_directory _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_a_directory on readdir"

(* ---- syscall flow checks ---- *)

let secret_setup kernel =
  (* A secret file under a secret directory, created by a properly
     labeled process. *)
  let tag = Tag.fresh ~name:"os.secret" Tag.Secrecy in
  let labels = Flow.make ~secrecy:(Label.singleton tag) () in
  run_value kernel ~name:"setup" (fun ctx ->
      ok (Syscall.mkdir ctx "/vault" ~labels);
      ok (Syscall.create_file ctx "/vault/s" ~labels ~data:"classified"));
  tag

let test_read_strict_vs_taint () =
  let kernel = Kernel.create () in
  let tag = secret_setup kernel in
  (* strict read from an untainted process: denied *)
  run_value kernel ~name:"strict" (fun ctx ->
      expect_denied "strict read" (Syscall.read_file ctx "/vault/s"));
  (* taint read: allowed, and the label sticks *)
  run_value kernel ~name:"taint" (fun ctx ->
      let data = ok (Syscall.read_file_taint ctx "/vault/s") in
      check string_c "content" "classified" data;
      check bool_c "tainted" true
        (Label.mem tag (Syscall.my_labels ctx).Flow.secrecy));
  (* pre-tainted strict read: allowed *)
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"pretainted" (fun ctx ->
      check string_c "content" "classified"
        (ok (Syscall.read_file ctx "/vault/s")))

let test_tainted_cannot_write_low () =
  let kernel = Kernel.create () in
  let tag = secret_setup kernel in
  run_value kernel ~name:"public-setup" (fun ctx ->
      ok (Syscall.create_file ctx "/public" ~labels:Flow.bottom ~data:"old"));
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"leaker" (fun ctx ->
      expect_denied "write low file" (Syscall.write_file ctx "/public" ~data:"x");
      expect_denied "create low file"
        (Syscall.create_file ctx "/exfil" ~labels:Flow.bottom ~data:"x");
      (* creating an equally tainted file in an equally tainted
         directory is fine *)
      ok
        (Syscall.create_file ctx "/vault/tainted-out"
           ~labels:(Syscall.my_labels ctx)
           ~data:"x"))

let test_write_protection () =
  let kernel = Kernel.create () in
  let wtag = Tag.fresh ~name:"os.write" Tag.Integrity in
  let flabels = Flow.make ~integrity:(Label.singleton wtag) () in
  run_value kernel ~labels:flabels
    ~caps:(Capability.Set.grant_dual wtag Capability.Set.empty)
    ~name:"owner" (fun ctx ->
      ok (Syscall.create_file ctx "/protected" ~labels:flabels ~data:"v1"));
  (* without the write tag: denied, including deletion *)
  run_value kernel ~name:"vandal" (fun ctx ->
      expect_denied "overwrite" (Syscall.write_file ctx "/protected" ~data:"x");
      expect_denied "delete" (Syscall.unlink ctx "/protected"));
  (* with t+ one can endorse and then write *)
  run_value kernel
    ~caps:(Capability.Set.of_list [ Capability.make wtag Capability.Plus ])
    ~name:"delegate" (fun ctx ->
      ok (Syscall.endorse_self ctx wtag);
      ok (Syscall.write_file ctx "/protected" ~data:"v2"));
  run_value kernel ~name:"verify" (fun ctx ->
      check string_c "new content" "v2" (ok (Syscall.read_file_taint ctx "/protected")))

let test_label_change_conventions () =
  let kernel = Kernel.create () in
  let s = Tag.fresh ~name:"conv.s" Tag.Secrecy in
  let w = Tag.fresh ~name:"conv.w" Tag.Integrity in
  run_value kernel ~name:"conv" (fun ctx ->
      (* raising secrecy: free *)
      ok (Syscall.add_taint ctx (Label.singleton s));
      (* dropping secrecy without caps: denied *)
      expect_denied "declassify" (Syscall.declassify_self ctx s);
      (* raising integrity without caps: denied *)
      expect_denied "endorse" (Syscall.endorse_self ctx w);
      (* dropping integrity: free *)
      ok (Syscall.drop_integrity ctx w));
  run_value kernel ~caps:(Capability.Set.grant_dual s Capability.Set.empty)
    ~name:"privileged" (fun ctx ->
      ok (Syscall.add_taint ctx (Label.singleton s));
      ok (Syscall.declassify_self ctx s);
      check bool_c "clean" true
        (Label.is_empty (Syscall.my_labels ctx).Flow.secrecy))

let test_restricted_tags () =
  let kernel = Kernel.create () in
  let locked = Tag.fresh ~name:"os.locked" ~restricted:true Tag.Secrecy in
  let labels = Flow.make ~secrecy:(Label.singleton locked) () in
  run_value kernel
    ~caps:(Capability.Set.grant_dual locked Capability.Set.empty)
    ~name:"owner" (fun ctx ->
      (* create the protected subtree from an untainted stance, then
         fill it once tainted *)
      ok (Syscall.mkdir ctx "/lockbox" ~labels);
      ok (Syscall.add_taint ctx (Label.singleton locked));
      ok (Syscall.create_file ctx "/lockbox/locked" ~labels ~data:"ssh"));
  (* an unprivileged process cannot even taint-read *)
  run_value kernel ~name:"snoop" (fun ctx ->
      expect_denied "taint read" (Syscall.read_file_taint ctx "/lockbox/locked");
      expect_denied "self taint" (Syscall.add_taint ctx (Label.singleton locked)));
  (* holding t+ suffices to read (but not to export) *)
  run_value kernel
    ~caps:(Capability.Set.of_list [ Capability.make locked Capability.Plus ])
    ~name:"reader" (fun ctx ->
      check string_c "read" "ssh" (ok (Syscall.read_file_taint ctx "/lockbox/locked")))

let test_relabel_rules () =
  let kernel = Kernel.create () in
  let s = Tag.fresh ~name:"rl.s" Tag.Secrecy in
  run_value kernel ~name:"setup" (fun ctx ->
      ok (Syscall.create_file ctx "/obj" ~labels:Flow.bottom ~data:"d"));
  (* raising an object's secrecy is allowed for a writer *)
  run_value kernel ~name:"raiser" (fun ctx ->
      ok
        (Syscall.set_file_labels ctx "/obj"
           ~labels:(Flow.make ~secrecy:(Label.singleton s) ())));
  (* stripping it without t- is not *)
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton s) ())
    ~name:"stripper" (fun ctx ->
      expect_denied "strip" (Syscall.set_file_labels ctx "/obj" ~labels:Flow.bottom))

(* ---- IPC ---- *)

let test_ipc_flow () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"ipc.s" Tag.Secrecy in
  let tainted = Flow.make ~secrecy:(Label.singleton tag) () in
  (* spawn a receiver that stays dormant; we just use its mailbox *)
  let receiver = spawn_dormant kernel ~name:"receiver" () in
  (* a clean sender can message it *)
  run_value kernel ~name:"sender" (fun ctx ->
      ok (Syscall.send ctx ~to_:receiver.Proc.pid "hi"));
  (* a tainted sender cannot message a clean receiver *)
  run_value kernel ~labels:tainted ~name:"tainted-sender" (fun ctx ->
      expect_denied "tainted send" (Syscall.send ctx ~to_:receiver.Proc.pid "leak"));
  check int_c "one message queued" 1 (Queue.length receiver.Proc.mailbox)

let test_ipc_recv_taints () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"ipc2.s" Tag.Secrecy in
  let tainted = Flow.make ~secrecy:(Label.singleton tag) () in
  let receiver = spawn_dormant kernel ~labels:tainted ~name:"hi-receiver" () in
  run_value kernel ~labels:tainted ~name:"hi-sender" (fun ctx ->
      ok (Syscall.send ctx ~to_:receiver.Proc.pid "secret-hello"));
  (* drain its mailbox in place *)
  let ctx = { Kernel.kernel; proc = receiver } in
  (match ok (Syscall.recv ctx) with
  | Some msg -> check string_c "body" "secret-hello" msg.Proc.body
  | None -> Alcotest.fail "expected a message");
  check bool_c "receiver tainted" true
    (Label.mem tag receiver.Proc.labels.Flow.secrecy)

let test_cap_grant_over_ipc () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"grant.s" Tag.Secrecy in
  let minus = Capability.make tag Capability.Minus in
  let receiver = spawn_dormant kernel ~name:"grantee" () in
  (* sender owning the cap may grant it *)
  run_value kernel
    ~caps:(Capability.Set.of_list [ minus ])
    ~name:"grantor" (fun ctx ->
      ok (Syscall.grant_cap ctx ~to_:receiver.Proc.pid minus));
  check bool_c "received" true (Capability.Set.mem minus receiver.Proc.caps);
  (* sender not owning a cap may not grant it *)
  run_value kernel ~name:"pretender" (fun ctx ->
      match Syscall.grant_cap ctx ~to_:receiver.Proc.pid minus with
      | Error (Os_error.Permission _) -> ()
      | Ok () | Error _ -> Alcotest.fail "expected permission error")

(* ---- spawn / gates ---- *)

let test_spawn_restrictions () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"sp.s" Tag.Secrecy in
  let minus = Capability.make tag Capability.Minus in
  run_value kernel ~name:"parent" (fun ctx ->
      (* can't hand a child caps we don't own *)
      (match
         Syscall.spawn ctx ~name:"child"
           ~caps:(Capability.Set.of_list [ minus ])
           (fun _ -> ())
       with
      | Error (Os_error.Permission _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected permission error");
      (* can't spawn a child with lower secrecy than our own *)
      ok (Syscall.add_taint ctx (Label.singleton tag));
      match Syscall.spawn ctx ~name:"laundry" ~labels:Flow.bottom (fun _ -> ()) with
      | Error e when Os_error.is_denied e -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected denial")

let test_spawn_and_run () =
  let kernel = Kernel.create () in
  let witness = ref 0 in
  run_value kernel ~name:"parent" (fun ctx ->
      ignore (ok (Syscall.spawn ctx ~name:"child" (fun _ -> incr witness))));
  Kernel.run kernel;
  check int_c "child ran" 1 !witness

let test_gate_confers_caps () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"gate.s" Tag.Secrecy in
  let caps = Capability.Set.of_list [ Capability.make tag Capability.Minus ] in
  Kernel.register_gate kernel ~name:"declassifier-ish"
    ~owner:(Kernel.kernel_principal kernel) ~caps ~entry:(fun ctx arg ->
      ok (Syscall.declassify_self ctx tag);
      ignore (Syscall.respond ctx ("clean:" ^ arg)));
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"caller" (fun ctx ->
      match ok (Syscall.invoke_gate ctx "declassifier-ish" ~arg:"payload") with
      | Some (out, out_labels) ->
          check string_c "transformed" "clean:payload" out;
          check bool_c "label dropped" false
            (Label.mem tag out_labels.Flow.secrecy)
      | None -> Alcotest.fail "expected a gate response");
  run_value kernel ~name:"no-gate" (fun ctx ->
      match Syscall.invoke_gate ctx "missing" ~arg:"" with
      | Error (Os_error.No_such_gate _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected No_such_gate")

(* ---- quotas ---- *)

let test_quota_kills_loop () =
  let kernel = Kernel.create () in
  let proc, _ =
    run kernel
      ~limits:(Resource.make_limits ~cpu:100 ())
      ~name:"hog"
      (fun ctx ->
        let rec burn () =
          ignore (Syscall.file_exists ctx "/");
          burn ()
        in
        burn ())
  in
  (match proc.Proc.state with
  | Proc.Killed reason ->
      check bool_c "killed by cpu quota" true
        (String.length reason >= 5 && String.sub reason 0 5 = "quota")
  | _ -> Alcotest.fail "expected quota kill");
  (* others unaffected *)
  run_value kernel ~name:"bystander" (fun ctx ->
      check bool_c "alive and well" true (Syscall.file_exists ctx "/"))

let test_quota_disk () =
  let kernel = Kernel.create () in
  let proc, _ =
    run kernel
      ~limits:(Resource.make_limits ~disk:64 ())
      ~name:"filler"
      (fun ctx ->
        let rec fill i =
          ignore
            (Syscall.create_file ctx
               (Printf.sprintf "/junk%d" i)
               ~labels:Flow.bottom ~data:(String.make 32 'x'));
          fill (i + 1)
        in
        fill 0)
  in
  match proc.Proc.state with
  | Proc.Killed _ -> ()
  | _ -> Alcotest.fail "expected disk-quota kill"

(* ---- audit ---- *)

let test_audit_denials () =
  let kernel = Kernel.create () in
  let tag = secret_setup kernel in
  ignore tag;
  run_value kernel ~name:"denied-app" (fun ctx ->
      expect_denied "strict read" (Syscall.read_file ctx "/vault/s"));
  let denials = Audit.denials (Kernel.audit kernel) in
  check bool_c "denial recorded" true (List.length denials >= 1);
  let entry = List.hd (List.rev denials) in
  match entry.Audit.event with
  | Audit.Flow_checked { op; decision = Error _; _ } ->
      check string_c "op" "fs.read" op
  | _ -> Alcotest.fail "expected a flow denial entry"

let test_audit_notes_and_queries () =
  let kernel = Kernel.create () in
  let proc, _ =
    run kernel ~name:"noisy" (fun ctx ->
        ok (Syscall.debug_note ctx "checkpoint-1");
        ok (Syscall.debug_note ctx "checkpoint-2"))
  in
  let mine = Audit.for_pid (Kernel.audit kernel) proc.Proc.pid in
  check int_c "two notes" 2
    (List.length
       (List.filter
          (fun e ->
            match e.Audit.event with Audit.App_note _ -> true | _ -> false)
          mine))

let test_enforcement_off () =
  let kernel = Kernel.create ~enforcing:false () in
  let tag = secret_setup kernel in
  ignore tag;
  (* with enforcement off the same strict read sails through: the
     baseline arm of the overhead benchmark *)
  run_value kernel ~name:"fastpath" (fun ctx ->
      check string_c "read allowed" "classified"
        (ok (Syscall.read_file ctx "/vault/s")))

let suite =
  [
    Alcotest.test_case "resource charge" `Quick test_resource_charge;
    Alcotest.test_case "fs paths" `Quick test_fs_paths;
    Alcotest.test_case "fs tree" `Quick test_fs_tree;
    Alcotest.test_case "fs errors" `Quick test_fs_errors;
    Alcotest.test_case "read strict vs taint" `Quick test_read_strict_vs_taint;
    Alcotest.test_case "tainted cannot write low" `Quick
      test_tainted_cannot_write_low;
    Alcotest.test_case "write protection" `Quick test_write_protection;
    Alcotest.test_case "label change conventions" `Quick
      test_label_change_conventions;
    Alcotest.test_case "restricted tags" `Quick test_restricted_tags;
    Alcotest.test_case "relabel rules" `Quick test_relabel_rules;
    Alcotest.test_case "ipc flow" `Quick test_ipc_flow;
    Alcotest.test_case "ipc recv taints" `Quick test_ipc_recv_taints;
    Alcotest.test_case "cap grant over ipc" `Quick test_cap_grant_over_ipc;
    Alcotest.test_case "spawn restrictions" `Quick test_spawn_restrictions;
    Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
    Alcotest.test_case "gates confer capabilities" `Quick test_gate_confers_caps;
    Alcotest.test_case "quota kills loop" `Quick test_quota_kills_loop;
    Alcotest.test_case "quota disk" `Quick test_quota_disk;
    Alcotest.test_case "audit denials" `Quick test_audit_denials;
    Alcotest.test_case "audit notes" `Quick test_audit_notes_and_queries;
    Alcotest.test_case "enforcement off" `Quick test_enforcement_off;
  ]

(* ---- filesystem snapshot / restore (durability) ---- *)

let test_fs_snapshot_roundtrip () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"snap.s" Tag.Secrecy in
  let wtag = Tag.fresh ~name:"snap.w" Tag.Integrity in
  let labels =
    Flow.make ~secrecy:(Label.singleton tag) ~integrity:(Label.singleton wtag) ()
  in
  run_value kernel
    ~labels:(Flow.make ~integrity:(Label.singleton wtag) ())
    ~caps:(Capability.Set.grant_dual wtag Capability.Set.empty)
    ~name:"writer"
    (fun ctx ->
      ok (Syscall.mkdir ctx "/home" ~labels:Flow.bottom);
      ok (Syscall.create_file ctx "/home/secret with spaces" ~labels ~data:"line1\nline2");
      ok (Syscall.create_file ctx "/home/plain" ~labels:Flow.bottom ~data:"");
      ok (Syscall.write_file ctx "/home/plain" ~data:"v2"));
  let fs = Kernel.fs kernel in
  let image = Fs.snapshot fs in
  (* mutate, then restore: everything must come back exactly *)
  ok (Fs.write fs "/home/plain" ~data:"mutated");
  ok (Fs.create_file fs "/junk" ~labels:Flow.bottom ~data:"junk");
  ok (Fs.restore_into fs image);
  check bool_c "junk gone" false (Fs.exists fs "/junk");
  let data, got_labels = ok (Fs.read fs "/home/secret with spaces") in
  check string_c "data with newline" "line1\nline2" data;
  check bool_c "secrecy preserved" true (Label.mem tag got_labels.Flow.secrecy);
  check bool_c "integrity preserved" true (Label.mem wtag got_labels.Flow.integrity);
  let st = ok (Fs.stat fs "/home/plain") in
  check int_c "version preserved" 2 st.Fs.version;
  let data, _ = ok (Fs.read fs "/home/plain") in
  check string_c "pre-snapshot content" "v2" data;
  check int_c "file count restored" 3 (Fs.total_files fs);
  (* determinism: snapshot of the restored tree is identical *)
  check string_c "stable image" image (Fs.snapshot fs)

let test_fs_snapshot_rejects_garbage () =
  let fs = Fs.create () in
  (match Fs.restore_into fs "F nonsense" with
  | Error (Os_error.Invalid _) -> ()
  | Ok () | Error _ -> Alcotest.fail "garbage accepted");
  (* unknown tag ids must not silently declassify *)
  match Fs.restore_into fs "D 2f 0 999999999 - 0\n" with
  | Error (Os_error.Invalid _) -> ()
  | Ok () | Error _ -> Alcotest.fail "unknown tag accepted"

let test_fs_snapshot_empty () =
  let fs = Fs.create () in
  let image = Fs.snapshot fs in
  ok (Fs.restore_into fs image);
  check int_c "still empty" 0 (Fs.total_files fs)

let suite =
  suite
  @ [
      Alcotest.test_case "fs snapshot roundtrip" `Quick test_fs_snapshot_roundtrip;
      Alcotest.test_case "fs snapshot rejects garbage" `Quick
        test_fs_snapshot_rejects_garbage;
      Alcotest.test_case "fs snapshot empty" `Quick test_fs_snapshot_empty;
    ]

(* ---- additional syscall edge cases ---- *)

let test_send_with_grant () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"sg.s" Tag.Secrecy in
  let minus = Capability.make tag Capability.Minus in
  let receiver = spawn_dormant kernel ~name:"rx" () in
  run_value kernel
    ~caps:(Capability.Set.of_list [ minus ])
    ~name:"tx" (fun ctx ->
      ok (Syscall.send ctx ~to_:receiver.Proc.pid
            ~grant:(Capability.Set.of_list [ minus ]) "here, take this"));
  let ctx = { Kernel.kernel; proc = receiver } in
  (match ok (Syscall.recv ctx) with
  | Some msg ->
      check bool_c "cap granted in message" true
        (Capability.Set.mem minus msg.Proc.granted)
  | None -> Alcotest.fail "no message");
  check bool_c "receiver now owns the cap" true
    (Capability.Set.mem minus receiver.Proc.caps);
  (* granting a cap you don't own inside a message fails *)
  run_value kernel ~name:"fraud" (fun ctx ->
      match
        Syscall.send ctx ~to_:receiver.Proc.pid
          ~grant:(Capability.Set.of_list [ minus ]) "forged"
      with
      | Error (Os_error.Permission _) -> ()
      | Ok () | Error _ -> Alcotest.fail "forged grant accepted")

let test_recv_empty_and_missing_target () =
  let kernel = Kernel.create () in
  run_value kernel ~name:"lonely" (fun ctx ->
      (match ok (Syscall.recv ctx) with
      | None -> ()
      | Some _ -> Alcotest.fail "phantom message");
      match Syscall.send ctx ~to_:9999 "void" with
      | Error (Os_error.No_such_process _) -> ()
      | Ok () | Error _ -> Alcotest.fail "sent to nobody")

let test_gate_restricted_response_needs_cap () =
  (* a gate whose response still carries a restricted tag cannot be
     absorbed by a caller lacking t+ *)
  let kernel = Kernel.create () in
  let locked = Tag.fresh ~name:"gl.s" ~restricted:true Tag.Secrecy in
  Kernel.register_gate kernel ~name:"leaky-gate"
    ~owner:(Kernel.kernel_principal kernel)
    ~caps:(Capability.Set.of_list [ Capability.make locked Capability.Plus ])
    ~entry:(fun ctx _arg ->
      ignore (Syscall.add_taint ctx (Label.singleton locked));
      ignore (Syscall.respond ctx "still hot"));
  run_value kernel ~name:"caller" (fun ctx ->
      match Syscall.invoke_gate ctx "leaky-gate" ~arg:"" with
      | Error e when Os_error.is_denied e -> ()
      | Ok _ -> Alcotest.fail "absorbed a restricted tag without t+"
      | Error e -> Alcotest.failf "wrong error: %s" (Os_error.to_string e))

let test_enforcement_off_allows_everything () =
  let kernel = Kernel.create ~enforcing:false () in
  let tag = Tag.fresh ~name:"off.s" Tag.Secrecy in
  let tainted = Flow.make ~secrecy:(Label.singleton tag) () in
  run_value kernel ~labels:tainted ~name:"wild" (fun ctx ->
      (* all the things enforcement would deny *)
      ok (Syscall.create_file ctx "/low" ~labels:Flow.bottom ~data:"leak");
      ok (Syscall.declassify_self ctx tag);
      ok (Syscall.set_labels ctx Flow.bottom);
      let receiver_labels = Flow.bottom in
      ignore receiver_labels);
  (* and quotas still apply even with checks off *)
  let proc, _ =
    run kernel
      ~limits:(Resource.make_limits ~cpu:50 ())
      ~name:"hog-off"
      (fun ctx ->
        let rec burn () =
          ignore (Syscall.file_exists ctx "/");
          burn ()
        in
        burn ())
  in
  match proc.Proc.state with
  | Proc.Killed _ -> ()
  | _ -> Alcotest.fail "quota ignored with enforcement off"

let test_reap () =
  let kernel = Kernel.create () in
  List.iter
    (fun i -> run_value kernel ~name:(Printf.sprintf "worker%d" i) (fun _ -> ()))
    (List.init 5 Fun.id);
  let dormant = spawn_dormant kernel ~name:"keeper" () in
  check int_c "alive" 1 (Kernel.live_process_count kernel);
  let reaped = Kernel.reap kernel in
  check int_c "reaped" 5 reaped;
  check bool_c "keeper survives" true
    (Kernel.find_proc kernel dormant.Proc.pid <> None);
  check int_c "second reap finds nothing" 0 (Kernel.reap kernel)

let test_respond_and_debug_note () =
  let kernel = Kernel.create () in
  let proc, _ =
    run kernel ~name:"responder" (fun ctx ->
        ok (Syscall.debug_note ctx "about to respond");
        ok (Syscall.respond ctx "payload"))
  in
  (match proc.Proc.response with
  | Some ("payload", labels) ->
      check bool_c "bottom labels" true (Label.is_empty labels.Flow.secrecy)
  | Some _ | None -> Alcotest.fail "response lost");
  (* responding twice keeps the last one *)
  let proc, _ =
    run kernel ~name:"chatty" (fun ctx ->
        ok (Syscall.respond ctx "first");
        ok (Syscall.respond ctx "second"))
  in
  match proc.Proc.response with
  | Some ("second", _) -> ()
  | Some _ | None -> Alcotest.fail "last response should win"

let test_spawned_children_inherit_taint_rules () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"child.s" Tag.Secrecy in
  run_value kernel ~name:"parent" (fun ctx ->
      ok (Syscall.add_taint ctx (Label.singleton tag));
      (* child with same labels: fine; runs with the taint *)
      let child =
        ok (Syscall.spawn ctx ~name:"kid" (fun kid_ctx ->
                assert (Label.mem tag (Syscall.my_labels kid_ctx).Flow.secrecy)))
      in
      ignore child);
  Kernel.run kernel;
  (* the assertion inside the child would have killed it; verify it exited *)
  let kid =
    List.find_opt (fun p -> p.Proc.proc_name = "kid") (Kernel.processes kernel)
  in
  match kid with
  | Some p -> check bool_c "child exited cleanly" true (p.Proc.state = Proc.Exited)
  | None -> Alcotest.fail "child missing"

let suite =
  suite
  @ [
      Alcotest.test_case "send with grant" `Quick test_send_with_grant;
      Alcotest.test_case "recv empty / missing target" `Quick
        test_recv_empty_and_missing_target;
      Alcotest.test_case "gate restricted response" `Quick
        test_gate_restricted_response_needs_cap;
      Alcotest.test_case "enforcement off allows everything" `Quick
        test_enforcement_off_allows_everything;
      Alcotest.test_case "reap" `Quick test_reap;
      Alcotest.test_case "respond and debug note" `Quick
        test_respond_and_debug_note;
      Alcotest.test_case "children inherit taint" `Quick
        test_spawned_children_inherit_taint_rules;
    ]

(* ---- capability-exercising endpoint sends ---- *)

let test_send_use_caps_declassifies () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"ep.s" Tag.Secrecy in
  let receiver = spawn_dormant kernel ~name:"clean-rx" () in
  (* plain send from a tainted proc: denied *)
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~caps:(Capability.Set.of_list [ Capability.make tag Capability.Minus ])
    ~name:"tx" (fun ctx ->
      expect_denied "plain send" (Syscall.send ctx ~to_:receiver.Proc.pid "x");
      (* endpoint send exercising t-: allowed, message arrives clean *)
      ok (Syscall.send ctx ~to_:receiver.Proc.pid ~use_caps:true "laundered"));
  let ctx = { Kernel.kernel; proc = receiver } in
  (match ok (Syscall.recv ctx) with
  | Some msg ->
      check bool_c "message label clean" true
        (Label.is_empty msg.Proc.msg_labels.Flow.secrecy)
  | None -> Alcotest.fail "no message");
  check bool_c "receiver stays clean" true
    (Label.is_empty receiver.Proc.labels.Flow.secrecy);
  (* the implicit declassification is on the record *)
  let declassified =
    List.exists
      (fun e ->
        match e.Audit.event with
        | Audit.Declassified { context = "ipc.send"; _ } -> true
        | _ -> false)
      (Audit.entries (Kernel.audit kernel))
  in
  check bool_c "audited" true declassified;
  (* without t-, use_caps changes nothing *)
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"no-caps-tx" (fun ctx ->
      expect_denied "use_caps without caps"
        (Syscall.send ctx ~to_:receiver.Proc.pid ~use_caps:true "still hot"))

(* ---- services ---- *)

let test_service_handles_messages () =
  let kernel = Kernel.create () in
  let seen = ref [] in
  let service =
    ok
      (Service.create kernel ~name:"collector"
         ~owner:(Kernel.kernel_principal kernel)
         (fun _ctx msg -> seen := msg.Proc.body :: !seen))
  in
  run_value kernel ~name:"producer" (fun ctx ->
      ok (Syscall.send ctx ~to_:(Service.pid service) "one");
      ok (Syscall.send ctx ~to_:(Service.pid service) "two"));
  check int_c "queued" 2 (Service.pending service);
  check int_c "handled now" 2 (ok (Service.deliver_pending service));
  check (Alcotest.list string_c) "order" [ "one"; "two" ] (List.rev !seen);
  check int_c "lifetime count" 2 (Service.handled service);
  check int_c "drained" 0 (Service.pending service);
  check int_c "idle pump" 0 (ok (Service.pump [ service ]));
  Service.shutdown service;
  check bool_c "dead" false (Service.is_alive service);
  match Service.deliver_pending service with
  | Error (Os_error.Dead_process _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "delivered to a dead service"

let test_service_label_is_policy () =
  let kernel = Kernel.create () in
  let tag = Tag.fresh ~name:"svc.s" Tag.Secrecy in
  let notes = ref 0 in
  (* a notifier running AT the user's label: tainted friends can
     message it; the clean world cannot learn anything from it *)
  let notifier =
    ok
      (Service.create kernel ~name:"notifier"
         ~owner:(Kernel.kernel_principal kernel)
         ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
         (fun _ctx _msg -> incr notes))
  in
  (* a tainted app can notify *)
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"friend-app" (fun ctx ->
      ok (Syscall.send ctx ~to_:(Service.pid notifier) "ping"));
  ignore (ok (Service.deliver_pending notifier));
  check int_c "notified" 1 !notes;
  (* the notifier itself cannot signal a clean process *)
  let clean = spawn_dormant kernel ~name:"outside" () in
  let ctx = { Kernel.kernel; proc = Service.proc notifier } in
  expect_denied "notifier cannot leak"
    (Syscall.send ctx ~to_:clean.Proc.pid "data arrived!")

let test_service_quota_kill () =
  let kernel = Kernel.create () in
  let service =
    ok
      (Service.create kernel ~name:"fragile"
         ~owner:(Kernel.kernel_principal kernel)
         ~limits:(Resource.make_limits ~cpu:5 ())
         (fun ctx _msg ->
           let rec burn () =
             ignore (Syscall.file_exists ctx "/");
             burn ()
           in
           burn ()))
  in
  run_value kernel ~name:"poker" (fun ctx ->
      ok (Syscall.send ctx ~to_:(Service.pid service) "boom"));
  (match Service.deliver_pending service with
  | Error (Os_error.Quota_exceeded _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected quota kill");
  check bool_c "service dead" false (Service.is_alive service)

let suite =
  suite
  @ [
      Alcotest.test_case "endpoint send declassifies" `Quick
        test_send_use_caps_declassifies;
      Alcotest.test_case "service handles messages" `Quick
        test_service_handles_messages;
      Alcotest.test_case "service label is policy" `Quick
        test_service_label_is_policy;
      Alcotest.test_case "service quota kill" `Quick test_service_quota_kill;
    ]

(* ---- property tests on the filesystem ---- *)

let prop_path_helpers =
  let arb =
    QCheck.make
      ~print:(fun segs -> "/" ^ String.concat "/" segs)
      QCheck.Gen.(
        list_size (1 -- 5)
          (string_size (1 -- 6) ~gen:(map Char.chr (97 -- 122))))
  in
  QCheck.Test.make ~name:"dirname/basename/join agree" ~count:300 arb
    (fun segments ->
      let path = "/" ^ String.concat "/" segments in
      let reassembled = Fs.join_path (Fs.dirname path) (Fs.basename path) in
      reassembled = path)

(* Random tree construction commands; interpreting them builds an
   arbitrary labeled filesystem, which must survive snapshot/restore
   byte-for-byte. *)
let snapshot_tags = Array.init 4 (fun i -> Tag.fresh ~name:(Printf.sprintf "snap.q%d" i) Tag.Secrecy)

let gen_fs_command =
  QCheck.Gen.(
    oneof
      [
        map2 (fun name tag_idx -> `Mkdir (name, tag_idx)) (0 -- 5) (0 -- 4);
        map3
          (fun name tag_idx data -> `Create (name, tag_idx, data))
          (0 -- 5) (0 -- 4)
          (string_size (0 -- 12) ~gen:(map Char.chr (0 -- 255)));
        map (fun name -> `Write name) (0 -- 5);
      ])

let arb_fs_program =
  QCheck.make
    ~print:(fun cmds -> Printf.sprintf "<%d fs commands>" (List.length cmds))
    QCheck.Gen.(list_size (0 -- 20) gen_fs_command)

let label_for idx =
  if idx >= 4 then Flow.bottom
  else Flow.make ~secrecy:(Label.singleton snapshot_tags.(idx)) ()

let build_fs program =
  let fs = Fs.create () in
  let dirs = ref [ "" ] in
  List.iter
    (fun cmd ->
      match cmd with
      | `Mkdir (n, tag_idx) ->
          let parent = List.hd !dirs in
          let path = Printf.sprintf "%s/d%d" parent n in
          (match Fs.mkdir fs path ~labels:(label_for tag_idx) with
          | Ok () -> dirs := path :: !dirs
          | Error _ -> ())
      | `Create (n, tag_idx, data) ->
          let parent = List.hd !dirs in
          ignore
            (Fs.create_file fs
               (Printf.sprintf "%s/f%d" parent n)
               ~labels:(label_for tag_idx) ~data)
      | `Write n ->
          let parent = List.hd !dirs in
          ignore (Fs.write fs (Printf.sprintf "%s/f%d" parent n) ~data:"w"))
    program;
  fs

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot/restore is the identity" ~count:200
    arb_fs_program (fun program ->
      let fs = build_fs program in
      let image = Fs.snapshot fs in
      let copy = Fs.create () in
      match Fs.restore_into copy image with
      | Error _ -> false
      | Ok () -> Fs.snapshot copy = image && Fs.total_files copy = Fs.total_files fs)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_path_helpers; prop_snapshot_roundtrip ]

(* ---- rename ---- *)

let test_rename_mechanics () =
  let kernel = Kernel.create () in
  run_value kernel ~name:"renamer" (fun ctx ->
      ok (Syscall.mkdir ctx "/a" ~labels:Flow.bottom);
      ok (Syscall.mkdir ctx "/b" ~labels:Flow.bottom);
      ok (Syscall.create_file ctx "/a/f" ~labels:Flow.bottom ~data:"payload");
      ok (Syscall.rename ctx ~src:"/a/f" ~dst:"/b/g");
      check bool_c "gone from src" false (Syscall.file_exists ctx "/a/f");
      check string_c "content moved" "payload" (ok (Syscall.read_file ctx "/b/g"));
      (* directory move carries the subtree *)
      ok (Syscall.create_file ctx "/a/inner" ~labels:Flow.bottom ~data:"x");
      ok (Syscall.rename ctx ~src:"/a" ~dst:"/b/sub");
      check string_c "subtree moved" "x" (ok (Syscall.read_file ctx "/b/sub/inner"));
      (* error cases *)
      (match Syscall.rename ctx ~src:"/b" ~dst:"/b/sub/loop" with
      | Error (Os_error.Invalid _) -> ()
      | Ok () | Error _ -> Alcotest.fail "moved a dir into itself");
      (match Syscall.rename ctx ~src:"/nope" ~dst:"/b/x" with
      | Error (Os_error.Not_found _) -> ()
      | Ok () | Error _ -> Alcotest.fail "renamed a ghost");
      match Syscall.rename ctx ~src:"/b/g" ~dst:"/b/sub/inner" with
      | Error (Os_error.Already_exists _) -> ()
      | Ok () | Error _ -> Alcotest.fail "clobbered an existing node")

let test_rename_respects_write_protection () =
  let kernel = Kernel.create () in
  let wtag = Tag.fresh ~name:"rn.w" Tag.Integrity in
  let protected_labels = Flow.make ~integrity:(Label.singleton wtag) () in
  run_value kernel
    ~labels:protected_labels
    ~caps:(Capability.Set.grant_dual wtag Capability.Set.empty)
    ~name:"owner" (fun ctx ->
      ok (Syscall.create_file ctx "/precious" ~labels:protected_labels ~data:"d"));
  (* a stranger cannot move the protected file *)
  run_value kernel ~name:"mover" (fun ctx ->
      expect_denied "rename protected"
        (Syscall.rename ctx ~src:"/precious" ~dst:"/stolen"));
  (* a tainted process cannot move files between clean directories *)
  let s = Tag.fresh ~name:"rn.s" Tag.Secrecy in
  run_value kernel ~name:"setup" (fun ctx ->
      ok (Syscall.create_file ctx "/plain" ~labels:Flow.bottom ~data:"d"));
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton s) ())
    ~name:"tainted-mover" (fun ctx ->
      expect_denied "tainted rename"
        (Syscall.rename ctx ~src:"/plain" ~dst:"/moved"))

let suite =
  suite
  @ [
      Alcotest.test_case "rename mechanics" `Quick test_rename_mechanics;
      Alcotest.test_case "rename respects write protection" `Quick
        test_rename_respects_write_protection;
    ]

(* ---- more kernel/fs coverage ---- *)

let test_path_taint_accumulates () =
  let kernel = Kernel.create () in
  let t1 = Tag.fresh ~name:"pt1" Tag.Secrecy in
  let t2 = Tag.fresh ~name:"pt2" Tag.Secrecy in
  run_value kernel ~name:"builder" (fun ctx ->
      ok (Syscall.mkdir ctx "/d1" ~labels:(Flow.make ~secrecy:(Label.singleton t1) ()));
      ok
        (Syscall.add_taint ctx (Label.singleton t1));
      ok
        (Syscall.mkdir ctx "/d1/d2"
           ~labels:(Flow.make ~secrecy:(Label.of_list [ t1; t2 ]) ()));
      ok (Syscall.add_taint ctx (Label.singleton t2));
      ok
        (Syscall.create_file ctx "/d1/d2/f"
           ~labels:(Flow.make ~secrecy:(Label.of_list [ t1; t2 ]) ())
           ~data:"x"));
  let fs = Kernel.fs kernel in
  match Fs.path_taint fs "/d1/d2/f" with
  | Ok taint ->
      check bool_c "t1 from d1" true (Label.mem t1 taint.Flow.secrecy);
      check bool_c "t2 from d2" true (Label.mem t2 taint.Flow.secrecy)
  | Error e -> fail_err e

let test_audit_clear_and_length () =
  let log = Audit.create () in
  check int_c "empty" 0 (Audit.length log);
  Audit.record log ~tick:1 ~pid:7 (Audit.App_note "x");
  Audit.record log ~tick:2 ~pid:7 (Audit.App_note "y");
  check int_c "two" 2 (Audit.length log);
  (match Audit.entries log with
  | [ a; b ] ->
      check bool_c "ordered oldest first" true (a.Audit.seq < b.Audit.seq)
  | _ -> Alcotest.fail "expected two entries");
  check int_c "for_pid" 2 (List.length (Audit.for_pid log 7));
  check int_c "other pid" 0 (List.length (Audit.for_pid log 8));
  Audit.clear log;
  check int_c "cleared" 0 (Audit.length log)

let test_quota_kinds_render () =
  List.iter
    (fun kind -> check bool_c "nonempty" true (Resource.kind_to_string kind <> ""))
    [
      Resource.Cpu; Resource.Memory; Resource.Disk; Resource.Messages;
      Resource.Files; Resource.Processes;
    ];
  let u = Resource.fresh_usage () in
  check bool_c "usage renders" true
    (String.length (Format.asprintf "%a" Resource.pp_usage u) > 0)

let test_spawn_charges_process_quota () =
  let kernel = Kernel.create () in
  let proc, _ =
    run kernel
      ~limits:(Resource.make_limits ~processes:2 ())
      ~name:"forker"
      (fun ctx ->
        ignore (ok (Syscall.spawn ctx ~name:"c1" (fun _ -> ())));
        ignore (ok (Syscall.spawn ctx ~name:"c2" (fun _ -> ())));
        (* the third child exceeds the quota *)
        match Syscall.spawn ctx ~name:"c3" (fun _ -> ()) with
        | Error (Os_error.Quota_exceeded Resource.Processes) -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected process quota")
  in
  check bool_c "parent survived (spawn returns the error)" true
    (proc.Proc.state = Proc.Exited)

let test_proc_pp_and_states () =
  let kernel = Kernel.create () in
  let proc = spawn_dormant kernel ~name:"ppx" () in
  check bool_c "pp mentions name" true
    (let s = Format.asprintf "%a" Proc.pp proc in
     String.length s > 0);
  check bool_c "runnable alive" true (Proc.is_alive proc);
  Proc.kill proc ~reason:"bye";
  check bool_c "killed dead" false (Proc.is_alive proc);
  check bool_c "state renders" true
    (String.length (Format.asprintf "%a" Proc.pp_state proc.Proc.state) > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "path taint accumulates" `Quick test_path_taint_accumulates;
      Alcotest.test_case "audit clear and length" `Quick test_audit_clear_and_length;
      Alcotest.test_case "quota kinds render" `Quick test_quota_kinds_render;
      Alcotest.test_case "spawn charges process quota" `Quick
        test_spawn_charges_process_quota;
      Alcotest.test_case "proc pp and states" `Quick test_proc_pp_and_states;
    ]

(* ---- service with restricted mail ---- *)

let test_service_drops_unabsorbable_mail () =
  let kernel = Kernel.create () in
  let locked = Tag.fresh ~name:"svc.locked" ~restricted:true Tag.Secrecy in
  let handled = ref 0 in
  (* the service has no t+ for the restricted tag: such messages are
     dropped at recv, and the service keeps running *)
  let service =
    ok
      (Service.create kernel ~name:"plain-service"
         ~owner:(Kernel.kernel_principal kernel)
         (fun _ _ -> incr handled))
  in
  (* a privileged sender whose label carries the restricted tag; it
     needs t- at the endpoint... instead, use a dormant tainted sender
     targeting a *tainted* service — here we check the drop path by
     sending from an equally-labeled proc to the bottom service using
     use_caps (sheds the tag) vs a raw kernel enqueue *)
  let tainted = Flow.make ~secrecy:(Label.singleton locked) () in
  let sender = spawn_dormant kernel ~labels:tainted
      ~caps:(Capability.Set.grant_dual locked Capability.Set.empty)
      ~name:"privileged-sender" () in
  let ctx = { Kernel.kernel; proc = sender } in
  (* bypass flow at send by exercising caps; message arrives clean *)
  ok (Syscall.send ctx ~to_:(Service.pid service) ~use_caps:true "fine");
  check int_c "clean message handled" 1 (ok (Service.deliver_pending service));
  (* force an unabsorbable message into the mailbox (kernel-level,
     simulating a pre-restriction enqueue) *)
  Queue.add
    {
      Proc.sender = sender.Proc.pid;
      msg_labels = tainted;
      body = "hot";
      granted = Capability.Set.empty;
    }
    (Service.proc service).Proc.mailbox;
  check int_c "hot message dropped, none handled" 0
    (ok (Service.deliver_pending service));
  check bool_c "service alive" true (Service.is_alive service);
  check int_c "lifetime total" 1 (Service.handled service)

let suite =
  suite
  @ [
      Alcotest.test_case "service drops unabsorbable mail" `Quick
        test_service_drops_unabsorbable_mail;
    ]

(* ---- final edge batch ---- *)

let test_append_respects_write_protection () =
  let kernel = Kernel.create () in
  let wtag = Tag.fresh ~name:"ap.w" Tag.Integrity in
  let labels = Flow.make ~integrity:(Label.singleton wtag) () in
  run_value kernel ~labels
    ~caps:(Capability.Set.grant_dual wtag Capability.Set.empty)
    ~name:"owner" (fun ctx ->
      ok (Syscall.create_file ctx "/log" ~labels ~data:"a"));
  run_value kernel ~name:"appender" (fun ctx ->
      expect_denied "append" (Syscall.append_file ctx "/log" ~data:"b"));
  run_value kernel
    ~caps:(Capability.Set.of_list [ Capability.make wtag Capability.Plus ])
    ~name:"delegate" (fun ctx ->
      ok (Syscall.endorse_self ctx wtag);
      ok (Syscall.append_file ctx "/log" ~data:"b");
      check string_c "appended" "ab" (ok (Syscall.read_file_taint ctx "/log")))

let test_set_labels_drop_needs_minus () =
  let kernel = Kernel.create () in
  let s = Tag.fresh ~name:"sl.s" Tag.Secrecy in
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton s) ())
    ~name:"stuck" (fun ctx ->
      expect_denied "drop via set_labels" (Syscall.set_labels ctx Flow.bottom));
  run_value kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton s) ())
    ~caps:(Capability.Set.of_list [ Capability.make s Capability.Minus ])
    ~name:"free" (fun ctx -> ok (Syscall.set_labels ctx Flow.bottom))

let test_fs_missing_parents () =
  let kernel = Kernel.create () in
  run_value kernel ~name:"lost" (fun ctx ->
      (match Syscall.mkdir ctx "/no/such/parent" ~labels:Flow.bottom with
      | Error (Os_error.Not_found _) -> ()
      | Ok () | Error _ -> Alcotest.fail "mkdir into void");
      (match Syscall.create_file ctx "/nope/f" ~labels:Flow.bottom ~data:"" with
      | Error (Os_error.Not_found _) -> ()
      | Ok () | Error _ -> Alcotest.fail "create into void");
      ok (Syscall.create_file ctx "/plain" ~labels:Flow.bottom ~data:"");
      match Syscall.readdir ctx "/plain" with
      | Error (Os_error.Not_a_directory _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "readdir of a file")

let suite =
  suite
  @ [
      Alcotest.test_case "append respects write protection" `Quick
        test_append_respects_write_protection;
      Alcotest.test_case "set_labels drop needs minus" `Quick
        test_set_labels_drop_needs_minus;
      Alcotest.test_case "fs missing parents" `Quick test_fs_missing_parents;
    ]

let test_service_pump_multiple () =
  let kernel = Kernel.create () in
  let counts = Array.make 2 0 in
  let make i =
    ok
      (Service.create kernel
         ~name:(Printf.sprintf "svc%d" i)
         ~owner:(Kernel.kernel_principal kernel)
         (fun _ _ -> counts.(i) <- counts.(i) + 1))
  in
  let s0 = make 0 and s1 = make 1 in
  run_value kernel ~name:"feeder" (fun ctx ->
      ok (Syscall.send ctx ~to_:(Service.pid s0) "a");
      ok (Syscall.send ctx ~to_:(Service.pid s1) "b");
      ok (Syscall.send ctx ~to_:(Service.pid s1) "c"));
  check int_c "pump total" 3 (ok (Service.pump [ s0; s1 ]));
  check int_c "s0" 1 counts.(0);
  check int_c "s1" 2 counts.(1)

let suite =
  suite
  @ [ Alcotest.test_case "service pump multiple" `Quick test_service_pump_multiple ]

let test_audit_capacity () =
  let log = Audit.create ~capacity:10 () in
  List.iter
    (fun i -> Audit.record log ~tick:i ~pid:1 (Audit.App_note (string_of_int i)))
    (List.init 25 Fun.id);
  check bool_c "bounded" true (Audit.length log <= 20);
  (* the newest entries survive *)
  let newest = List.rev (Audit.entries log) in
  match newest with
  | e :: _ -> check int_c "latest seq kept" 25 e.Audit.seq
  | [] -> Alcotest.fail "log empty"

let suite =
  suite @ [ Alcotest.test_case "audit capacity" `Quick test_audit_capacity ]

let test_gate_registry_listing () =
  let kernel = Kernel.create () in
  check bool_c "empty" true (Kernel.gate_names kernel = []);
  Kernel.register_gate kernel ~name:"b-gate"
    ~owner:(Kernel.kernel_principal kernel)
    ~caps:Capability.Set.empty ~entry:(fun _ _ -> ());
  Kernel.register_gate kernel ~name:"a-gate"
    ~owner:(Kernel.kernel_principal kernel)
    ~caps:Capability.Set.empty ~entry:(fun _ _ -> ());
  check (Alcotest.list string_c) "sorted" [ "a-gate"; "b-gate" ]
    (Kernel.gate_names kernel);
  check bool_c "exists" true (Kernel.gate_exists kernel "a-gate");
  check bool_c "not exists" false (Kernel.gate_exists kernel "zz");
  (* re-registration overwrites *)
  let hit = ref false in
  Kernel.register_gate kernel ~name:"a-gate"
    ~owner:(Kernel.kernel_principal kernel)
    ~caps:Capability.Set.empty ~entry:(fun _ _ -> hit := true);
  run_value kernel ~name:"caller" (fun ctx ->
      ignore (ok (Syscall.invoke_gate ctx "a-gate" ~arg:"")));
  check bool_c "new entry ran" true !hit

let suite =
  suite
  @ [ Alcotest.test_case "gate registry listing" `Quick test_gate_registry_listing ]

(* qcheck: the syscall label-change conventions as a decision table *)
let prop_set_labels_matches_conventions =
  let conv_tags =
    [|
      Tag.fresh ~name:"cv.s1" Tag.Secrecy;
      Tag.fresh ~name:"cv.s2" ~restricted:true Tag.Secrecy;
      Tag.fresh ~name:"cv.w1" Tag.Integrity;
    |]
  in
  let arb =
    QCheck.make
      ~print:(fun (a, b, c) -> Printf.sprintf "old=%d new=%d caps=%d" a b c)
      QCheck.Gen.(tup3 (0 -- 7) (0 -- 7) (0 -- 7))
  in
  QCheck.Test.make ~name:"set_labels agrees with the stated conventions"
    ~count:200 arb (fun (old_mask, new_mask, caps_mask) ->
      let subset mask =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
          (Array.to_list conv_tags)
      in
      let to_labels tags =
        Flow.make
          ~secrecy:(Label.of_list (List.filter (fun t -> Tag.kind t = Tag.Secrecy) tags))
          ~integrity:(Label.of_list (List.filter (fun t -> Tag.kind t = Tag.Integrity) tags))
          ()
      in
      let old_labels = to_labels (subset old_mask) in
      let new_labels = to_labels (subset new_mask) in
      let caps =
        List.fold_left
          (fun acc t -> Capability.Set.grant_dual t acc)
          Capability.Set.empty (subset caps_mask)
      in
      let kernel = Kernel.create () in
      let expected =
        (* drops of secrecy need t-; adds of restricted secrecy need
           t+; adds of integrity need t+; everything else free *)
        let can_drop t = Capability.Set.can_drop t caps in
        let can_add t = Capability.Set.can_add t caps in
        Label.for_all can_drop
          (Label.diff old_labels.Flow.secrecy new_labels.Flow.secrecy)
        && Label.for_all
             (fun t -> (not (Tag.restricted t)) || can_add t)
             (Label.diff new_labels.Flow.secrecy old_labels.Flow.secrecy)
        && Label.for_all can_add
             (Label.diff new_labels.Flow.integrity old_labels.Flow.integrity)
      in
      let actual = ref false in
      (match
         Kernel.spawn kernel ~name:"conv"
           ~owner:(Kernel.kernel_principal kernel)
           ~labels:old_labels ~caps ~limits:Resource.unlimited
           (fun ctx -> actual := Syscall.set_labels ctx new_labels = Ok ())
       with
      | Ok proc -> Kernel.run_proc kernel proc
      | Error _ -> ());
      expected = !actual)

let suite =
  suite @ [ QCheck_alcotest.to_alcotest prop_set_labels_matches_conventions ]

let test_fs_more_edges () =
  let fs = Fs.create () in
  (match Fs.set_labels fs "/ghost" ~labels:Flow.bottom with
  | Error (Os_error.Not_found _) -> ()
  | Ok () | Error _ -> Alcotest.fail "relabeled a ghost");
  (match Fs.parent_labels fs "/" with
  | Ok labels -> check bool_c "root parent is root" true (Label.is_empty labels.Flow.secrecy)
  | Error _ -> Alcotest.fail "root parent");
  (* snapshot with an empty directory survives *)
  ok (Fs.mkdir fs "/empty" ~labels:Flow.bottom);
  let image = Fs.snapshot fs in
  let fresh = Fs.create () in
  ok (Fs.restore_into fresh image);
  (match Fs.readdir fresh "/empty" with
  | Ok ([], _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty dir lost")

let suite =
  suite @ [ Alcotest.test_case "fs more edges" `Quick test_fs_more_edges ]

(* ---- audit batching and cache metrics ---- *)

let test_audit_record_batch () =
  (* a batch lands every entry in order with sequence numbers and
     ticks as if recorded one by one; truncation (amortized, so it may
     fire at different points than per-record appends) still keeps at
     least the newest [cap] entries *)
  let cap = 4 in
  let batched = Audit.create ~capacity:cap () in
  let events =
    List.init 11 (fun i -> (i, i * 10, Audit.App_note (Printf.sprintf "e%d" i)))
  in
  Audit.record_batch batched events;
  let kept = Audit.entries batched in
  check bool_c "keeps at least cap entries" true (List.length kept >= cap);
  check bool_c "seq keeps counting across eviction" true
    (Audit.evicted batched > 0);
  let expected_suffix =
    (* the newest [length] of the 11 events, oldest first *)
    let drop = 11 - List.length kept in
    List.filteri (fun i _ -> i >= drop) events
  in
  check bool_c "retained suffix is the newest entries, in order" true
    (List.for_all2
       (fun (tick, pid, _) (e : Audit.entry) ->
         e.Audit.tick = tick && e.Audit.pid = pid
         && e.Audit.seq = tick + 1 (* seq assigned 1..11 in batch order *))
       expected_suffix kept)

let test_with_audit_batch_ordering () =
  let kernel = Kernel.create () in
  let note s = Audit.App_note s in
  Kernel.record kernel ~pid:0 (note "before");
  Kernel.with_audit_batch kernel (fun () ->
      Kernel.record kernel ~pid:0 (note "in-1");
      Kernel.advance_clock kernel;
      Kernel.with_audit_batch kernel (fun () ->
          Kernel.record kernel ~pid:0 (note "in-2"));
      (* nested scope closed, outer still open: nothing flushed yet *)
      check int_c "buffered until outermost exit" 1
        (Audit.length (Kernel.audit kernel));
      Kernel.record kernel ~pid:0 (note "in-3"));
  Kernel.record kernel ~pid:0 (note "after");
  let notes =
    List.filter_map
      (fun (e : Audit.entry) ->
        match e.Audit.event with
        | Audit.App_note s -> Some (s, e.Audit.tick)
        | _ -> None)
      (Audit.entries (Kernel.audit kernel))
  in
  check (Alcotest.list (Alcotest.pair string_c int_c)) "order and ticks kept"
    [ ("before", 0); ("in-1", 0); ("in-2", 1); ("in-3", 1); ("after", 1) ]
    notes

let test_with_audit_batch_flushes_on_raise () =
  let kernel = Kernel.create () in
  (try
     Kernel.with_audit_batch kernel (fun () ->
         Kernel.record kernel ~pid:7 (Audit.App_note "doomed");
         raise Exit)
   with Exit -> ());
  match Audit.entries (Kernel.audit kernel) with
  | [ e ] -> check int_c "entry flushed despite raise" 7 e.Audit.pid
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_syscall_audit_batched () =
  (* a denied read still lands its audit events once dispatch exits *)
  let kernel = Kernel.create () in
  let t = Tag.fresh ~name:"batch.secret" Tag.Secrecy in
  let labels = Flow.make ~secrecy:(Label.singleton t) () in
  run_value kernel ~name:"writer" (fun ctx ->
      ok (Syscall.create_file ctx "/secret.txt" ~data:"s" ~labels))
  |> ignore;
  (match run kernel ~name:"reader" (fun ctx ->
       Syscall.read_file ctx "/secret.txt")
   with
  | _, Some (Error _) -> ()
  | _ -> Alcotest.fail "expected denial");
  check bool_c "denial audited after dispatch" true
    (List.exists
       (fun (e : Audit.entry) -> Audit.is_denial e)
       (Audit.entries (Kernel.audit kernel)))

let test_cache_metrics_sync_and_canary () =
  let kernel = Kernel.create () in
  (* a secret-named tag flows through the memoized judgments... *)
  let canary = "hunter2-canary-username" in
  let tags =
    Array.init 8 (fun i ->
        Tag.fresh ~name:(Printf.sprintf "%s-%d" canary i) Tag.Secrecy)
  in
  let l1 = Label.of_list (Array.to_list (Array.sub tags 0 4)) in
  let l2 = Label.of_list (Array.to_list (Array.sub tags 4 4)) in
  ignore (Label.subset (Label.union l1 l2) (Label.union l1 l2));
  ignore
    (Flow.can_flow (Flow.make ~secrecy:l1 ()) (Flow.make ~secrecy:l2 ()));
  Kernel.sync_cache_metrics kernel;
  let m = Kernel.metrics kernel in
  let hits = W5_obs.Metrics.gauge m "w5_label_cache_hits_total" in
  check bool_c "subset cache series present" true
    (W5_obs.Metrics.value hits ~labels:[ ("cache", "subset") ] >= 0
    && List.exists
         (fun (s : W5_obs.Metrics.sample) ->
           s.W5_obs.Metrics.sample_name = "w5_label_cache_hits_total"
           && s.W5_obs.Metrics.sample_series <> [])
         (W5_obs.Metrics.dump m));
  (* ...and the exposed metrics carry cache names and counts only *)
  let rendered =
    W5_obs.Exposition.prometheus m ^ W5_obs.Exposition.json m
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i =
      i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
    in
    scan 0
  in
  check bool_c "cache metrics exposed" true
    (contains ~needle:"w5_label_cache_hits_total" rendered);
  check bool_c "no user bytes in metrics" false
    (contains ~needle:canary rendered)

let suite =
  suite
  @ [
      Alcotest.test_case "audit record_batch" `Quick test_audit_record_batch;
      Alcotest.test_case "audit batch ordering" `Quick
        test_with_audit_batch_ordering;
      Alcotest.test_case "audit batch flushes on raise" `Quick
        test_with_audit_batch_flushes_on_raise;
      Alcotest.test_case "syscall audit batched" `Quick
        test_syscall_audit_batched;
      Alcotest.test_case "cache metrics sync + canary" `Quick
        test_cache_metrics_sync_and_canary;
    ]
