(* Tests for the HTTP front-end model: URIs, headers/cookies,
   requests/responses, sessions, the simulated client, and the
   script-stripping perimeter filter (experiment E9). *)

open W5_http

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ---- uri ---- *)

let test_uri_parse () =
  let u = Uri.parse "/a/b%20c/d?x=1&y=hello+world&flag" in
  check string_c "path" "/a/b c/d" u.Uri.path;
  check (Alcotest.list string_c) "segments" [ "a"; "b c"; "d" ] u.Uri.segments;
  check (Alcotest.option string_c) "x" (Some "1") (Uri.query_get u "x");
  check (Alcotest.option string_c) "decoded" (Some "hello world") (Uri.query_get u "y");
  check (Alcotest.option string_c) "valueless" (Some "") (Uri.query_get u "flag")

let test_uri_normalization () =
  let u = Uri.parse "//a///b/./c" in
  check string_c "collapsed" "/a/b/c" u.Uri.path;
  check string_c "root" "/" (Uri.parse "").Uri.path

let test_uri_with_query () =
  check string_c "render" "/p?a=1&b=x%20y" (Uri.with_query "/p" [ ("a", "1"); ("b", "x y") ]);
  check string_c "no params" "/p" (Uri.with_query "/p" [])

let test_uri_decode_edge_cases () =
  check string_c "literal percent kept" "100%" (Uri.percent_decode "100%");
  check string_c "truncated escape" "%2" (Uri.percent_decode "%2");
  (* '+' is only a space in form-encoded query strings, not in paths *)
  check string_c "plus survives in paths" "a+b" (Uri.percent_decode "a+b");
  check string_c "encoded space still decodes" "a b" (Uri.percent_decode "a%20b")

let test_uri_plus_path_vs_query () =
  let u = Uri.parse "/file/a+b?q=c+d&r=e%2Bf" in
  check string_c "path keeps plus" "/file/a+b" u.Uri.path;
  check (Alcotest.option string_c) "query plus is space" (Some "c d")
    (Uri.query_get u "q");
  check (Alcotest.option string_c) "encoded plus survives" (Some "e+f")
    (Uri.query_get u "r")

let prop_uri_query_roundtrip =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (0 -- 5)
          (pair
             (string_size (1 -- 8) ~gen:(map Char.chr (97 -- 122)))
             (string_size (0 -- 8) ~gen:(map Char.chr (32 -- 126)))))
  in
  QCheck.Test.make ~name:"query params roundtrip through a URI" ~count:300 arb
    (fun params ->
      (* keys may repeat; compare first bindings only *)
      let u = Uri.parse (Uri.with_query "/p" params) in
      List.for_all
        (fun (k, _) -> Uri.query_get u k = List.assoc_opt k params)
        params)

(* ---- headers / cookies ---- *)

let test_headers_case_insensitive () =
  let h = Headers.set Headers.empty "Content-Type" "text/html" in
  check (Alcotest.option string_c) "lower" (Some "text/html")
    (Headers.get h "content-type");
  check bool_c "mem" true (Headers.mem h "CONTENT-TYPE");
  let h = Headers.set h "content-TYPE" "text/plain" in
  check int_c "set replaces across case" 1 (List.length (Headers.get_all h "content-type"))

let test_cookie_parsing () =
  let h = Headers.set Headers.empty "Cookie" "a=1; b = 2 ;c=3" in
  let cookies = Headers.parse_cookies h in
  check (Alcotest.option string_c) "a" (Some "1") (List.assoc_opt "a" cookies);
  check (Alcotest.option string_c) "b trimmed" (Some "2") (List.assoc_opt "b" cookies);
  check (Alcotest.option string_c) "c" (Some "3") (List.assoc_opt "c" cookies)

let test_set_cookie () =
  let h = Headers.set_cookie Headers.empty ~name:"sid" ~value:"xyz" in
  check
    (Alcotest.list (Alcotest.pair string_c string_c))
    "set-cookie" [ ("sid", "xyz") ] (Headers.cookies_set_by h)

(* ---- requests / responses ---- *)

let test_request_params () =
  let r =
    Request.make ~body:[ ("b", "2"); ("a", "body") ] Request.POST "/x?a=query"
  in
  check (Alcotest.option string_c) "query wins" (Some "query") (Request.param r "a");
  check (Alcotest.option string_c) "form" (Some "2") (Request.param r "b");
  check string_c "default" "z" (Request.param_or r "c" ~default:"z")

let test_response_helpers () =
  check int_c "ok" 200 (Response.status_code (Response.ok "x").Response.status);
  check int_c "forbidden" 403
    (Response.status_code (Response.forbidden "r").Response.status);
  let r = Response.redirect "/there" in
  check (Alcotest.option string_c) "location" (Some "/there")
    (Headers.get r.Response.headers "location");
  check bool_c "redirect is success" true (Response.is_success r);
  let r = Response.with_cookie (Response.ok "x") ~name:"k" ~value:"v" in
  check
    (Alcotest.list (Alcotest.pair string_c string_c))
    "cookie attached" [ ("k", "v") ]
    (Headers.cookies_set_by r.Response.headers)

(* ---- sessions ---- *)

let test_sessions () =
  let t = Session.create () in
  let s1 = Session.start t ~user:"alice" ~now:5 in
  let s2 = Session.start t ~user:"alice" ~now:6 in
  check bool_c "distinct sids" true (s1.Session.sid <> s2.Session.sid);
  (match Session.find t ~sid:s1.Session.sid with
  | Some s -> check string_c "user" "alice" s.Session.user
  | None -> Alcotest.fail "session lost");
  check int_c "active" 2 (Session.active t);
  Session.destroy t ~sid:s1.Session.sid;
  check int_c "after destroy" 1 (Session.active t);
  Session.expire_older_than t ~tick:10;
  check int_c "expired" 0 (Session.active t)

(* ---- client ---- *)

let test_client_cookies_and_redirects () =
  let server (req : Request.t) =
    match req.Request.uri.Uri.path with
    | "/login" ->
        Response.with_cookie (Response.ok "logged in") ~name:"sid" ~value:"s1"
    | "/bounce" -> Response.redirect "/target"
    | "/target" -> (
        match Request.cookie req "sid" with
        | Some sid -> Response.ok ("hello " ^ sid)
        | None -> Response.unauthorized "no cookie")
    | _ -> Response.not_found "?"
  in
  let client = Client.make ~name:"tester" server in
  ignore (Client.get client "/login");
  check (Alcotest.option string_c) "jar" (Some "s1")
    (List.assoc_opt "sid" (Client.cookies client));
  let r = Client.get client "/bounce" in
  check string_c "followed redirect with cookie" "hello s1" r.Response.body;
  check bool_c "history" true (Client.saw client "hello s1")

let test_client_redirect_loop_bounded () =
  let server (req : Request.t) =
    ignore req;
    Response.redirect "/loop"
  in
  let client = Client.make server in
  let r = Client.get client "/loop" in
  check int_c "gives up with 302" 302 (Response.status_code r.Response.status)

(* ---- html / script filter ---- *)

let test_html_escape () =
  check string_c "escape" "&lt;a&gt; &amp; &quot;b&#39;&quot;"
    (Html.escape "<a> & \"b'\"");
  check bool_c "page is well formed" true
    (Html.page ~title:"t" "body" <> "")

let test_contains_script () =
  check bool_c "script tag" true (Html.contains_script "<SCRIPT>x</script>");
  check bool_c "handler" true (Html.contains_script "<img onerror=alert(1)>");
  check bool_c "spaced handler" true (Html.contains_script "<a onclick = \"x\">");
  check bool_c "javascript url" true (Html.contains_script "<a href=javascript:x>");
  check bool_c "clean" false (Html.contains_script "<b>only bold</b>");
  check bool_c "word containing on" false (Html.contains_script "ongoing = fine? no tag");
  (* 'ongoing' does not match because there is no '=' right after the letters *)
  check bool_c "online text" false (Html.contains_script "we are online today")

let test_strip_scripts () =
  check string_c "script removed" "ab"
    (Html.strip_scripts "a<script>evil()</script>b");
  check string_c "unterminated" "a" (Html.strip_scripts "a<script>evil(");
  check string_c "handler removed" "<img >"
    (Html.strip_scripts "<img onerror=\"alert(1)\">");
  check string_c "js url neutered" "<a href=x>" (Html.strip_scripts "<a href=javascript:x>");
  check string_c "case insensitive" "" (Html.strip_scripts "<ScRiPt>x</sCrIpT>");
  check string_c "clean unchanged" "<b>hello</b>" (Html.strip_scripts "<b>hello</b>")

let prop_strip_scripts_is_sound =
  let arb =
    QCheck.make ~print:(fun s -> s)
      QCheck.Gen.(
        map (String.concat "")
          (list_size (0 -- 12)
             (oneofl
                [
                  "<script>"; "</script>"; "<scr"; "ipt>"; "onload="; "on";
                  "load="; "'x'"; "\"y\""; "javascript:"; "java"; "script:";
                  "<b>safe</b>"; "hello "; "<img src=p>"; "="; " ";
                ])))
  in
  QCheck.Test.make ~name:"strip_scripts output never contains script" ~count:500
    arb (fun html -> not (Html.contains_script (Html.strip_scripts html)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "uri parse" `Quick test_uri_parse;
    Alcotest.test_case "uri normalization" `Quick test_uri_normalization;
    Alcotest.test_case "uri with_query" `Quick test_uri_with_query;
    Alcotest.test_case "uri decode edges" `Quick test_uri_decode_edge_cases;
    Alcotest.test_case "uri plus: path vs query" `Quick
      test_uri_plus_path_vs_query;
    Alcotest.test_case "headers case insensitive" `Quick
      test_headers_case_insensitive;
    Alcotest.test_case "cookie parsing" `Quick test_cookie_parsing;
    Alcotest.test_case "set cookie" `Quick test_set_cookie;
    Alcotest.test_case "request params" `Quick test_request_params;
    Alcotest.test_case "response helpers" `Quick test_response_helpers;
    Alcotest.test_case "sessions" `Quick test_sessions;
    Alcotest.test_case "client cookies and redirects" `Quick
      test_client_cookies_and_redirects;
    Alcotest.test_case "client redirect loop bounded" `Quick
      test_client_redirect_loop_bounded;
    Alcotest.test_case "html escape" `Quick test_html_escape;
    Alcotest.test_case "contains_script" `Quick test_contains_script;
    Alcotest.test_case "strip_scripts" `Quick test_strip_scripts;
  ]
  @ qsuite [ prop_uri_query_roundtrip; prop_strip_scripts_is_sound ]

(* ---- dns ---- *)

let test_dns_records_and_resolution () =
  let dns = Dns.create ~zone:"w5.example" in
  check string_c "zone" "w5.example" (Dns.zone dns);
  (* apex and www resolve to the front end *)
  check bool_c "apex" true (Dns.resolve dns ~host:"w5.example" = Some Dns.Front_end);
  check bool_c "www" true (Dns.resolve dns ~host:"WWW.W5.Example" = Some Dns.Front_end);
  (* canonical app hosts *)
  check string_c "app host (lowercased)" "crop.deva.w5.example"
    (Dns.app_host dns ~app_id:"devA/crop");
  let host = Dns.register_app dns ~app_id:"devA/crop" in
  check bool_c "resolves to app" true
    (Dns.resolve dns ~host = Some (Dns.App "devA/crop"));
  (* out of zone *)
  check bool_c "foreign" true (Dns.resolve dns ~host:"evil.com" = None);
  check bool_c "unknown in zone" true (Dns.resolve dns ~host:"nope.w5.example" = None);
  Dns.remove_record dns ~host;
  check bool_c "removed" true (Dns.resolve dns ~host = None)

let test_dns_wildcards_and_cnames () =
  let dns = Dns.create ~zone:"w5.example" in
  Dns.add_record dns ~host:"*.photos" (Dns.App "core/photos");
  check bool_c "wildcard" true
    (Dns.resolve dns ~host:"anything.photos.w5.example" = Some (Dns.App "core/photos"));
  check bool_c "deep wildcard" true
    (Dns.resolve dns ~host:"a.b.photos.w5.example" = Some (Dns.App "core/photos"));
  (* cname chain *)
  Dns.add_record dns ~host:"pix" (Dns.Cname "real.photos");
  Dns.add_record dns ~host:"real.photos" (Dns.App "core/photos");
  check bool_c "cname" true
    (Dns.resolve dns ~host:"pix.w5.example" = Some (Dns.App "core/photos"));
  (* loops terminate *)
  Dns.add_record dns ~host:"a" (Dns.Cname "b");
  Dns.add_record dns ~host:"b" (Dns.Cname "a");
  check bool_c "loop safe" true (Dns.resolve dns ~host:"a.w5.example" = None);
  check bool_c "records listed" true (List.length (Dns.records dns) >= 5)

let suite =
  suite
  @ [
      Alcotest.test_case "dns records and resolution" `Quick
        test_dns_records_and_resolution;
      Alcotest.test_case "dns wildcards and cnames" `Quick
        test_dns_wildcards_and_cnames;
    ]

(* ---- misc coverage ---- *)

let test_uri_to_string_and_pp () =
  let u = Uri.parse "/a/b?x=1" in
  check string_c "to_string" "/a/b?x=1" (Uri.to_string u);
  check string_c "pp agrees" (Uri.to_string u) (Format.asprintf "%a" Uri.pp u)

let test_percent_encode_reserved () =
  check string_c "space" "a%20b" (Uri.percent_encode "a b");
  check string_c "amp" "a%26b" (Uri.percent_encode "a&b");
  check string_c "equals" "a%3db" (Uri.percent_encode "a=b");
  check string_c "unreserved kept" "a-b_c.d~e" (Uri.percent_encode "a-b_c.d~e")

let test_headers_add_vs_set () =
  let h = Headers.add (Headers.add Headers.empty "X" "1") "x" "2" in
  check int_c "add keeps both" 2 (List.length (Headers.get_all h "X"));
  check (Alcotest.option string_c) "get first" (Some "1") (Headers.get h "x");
  let h = Headers.set h "X" "3" in
  check (Alcotest.list string_c) "set collapses" [ "3" ] (Headers.get_all h "x")

let test_request_pp_and_cookie () =
  let r =
    Request.make
      ~headers:(Headers.set Headers.empty "Cookie" "k=v")
      Request.GET "/path"
  in
  check (Alcotest.option string_c) "cookie" (Some "v") (Request.cookie r "k");
  check (Alcotest.option string_c) "missing cookie" None (Request.cookie r "z");
  check bool_c "pp mentions path" true
    (let s = Format.asprintf "%a" Request.pp r in
     String.length s > 0)

let test_response_statuses () =
  List.iter
    (fun (r, code) ->
      check int_c (string_of_int code) code (Response.status_code r.Response.status))
    [
      (Response.bad_request "x", 400);
      (Response.unauthorized "x", 401);
      (Response.not_found "x", 404);
      (Response.too_many_requests "x", 429);
      (Response.server_error "x", 500);
    ];
  check bool_c "500 not success" false (Response.is_success (Response.server_error "x"));
  check string_c "reason" "Too Many Requests" (Response.status_reason Response.Too_many_requests_429)

let test_session_expiry_boundary () =
  let t = Session.create () in
  let s = Session.start t ~user:"u" ~now:10 in
  Session.expire_older_than t ~tick:10;
  (* created_at = 10 is NOT strictly older than 10 *)
  check bool_c "boundary kept" true (Session.find t ~sid:s.Session.sid <> None);
  Session.expire_older_than t ~tick:11;
  check bool_c "now expired" true (Session.find t ~sid:s.Session.sid = None)

let test_html_builders () =
  check string_c "link" "<a href=\"/x\">go</a>" (Html.link ~href:"/x" "go");
  check string_c "ul" "<ul><li>a</li></ul>" (Html.ul [ "a" ]);
  check string_c "attrs escaped" "<i a=\"&lt;\">x</i>"
    (Html.element "i" ~attrs:[ ("a", "<") ] "x")

let suite =
  suite
  @ [
      Alcotest.test_case "uri to_string/pp" `Quick test_uri_to_string_and_pp;
      Alcotest.test_case "percent encode reserved" `Quick
        test_percent_encode_reserved;
      Alcotest.test_case "headers add vs set" `Quick test_headers_add_vs_set;
      Alcotest.test_case "request pp and cookie" `Quick test_request_pp_and_cookie;
      Alcotest.test_case "response statuses" `Quick test_response_statuses;
      Alcotest.test_case "session expiry boundary" `Quick
        test_session_expiry_boundary;
      Alcotest.test_case "html builders" `Quick test_html_builders;
    ]

let test_get_params_merge_with_query () =
  let server (req : Request.t) =
    Response.ok
      (Printf.sprintf "%s|%s"
         (Request.param_or req "a" ~default:"-")
         (Request.param_or req "b" ~default:"-"))
  in
  let client = Client.make server in
  let r = Client.get client "/p?a=1" ~params:[ ("b", "2") ] in
  check string_c "both params survive the merge" "1|2" r.Response.body

let test_percent_decode_uppercase_hex () =
  check string_c "uppercase hex" " " (Uri.percent_decode "%20");
  check string_c "mixed case" "~" (Uri.percent_decode "%7E");
  check string_c "upper letters" "\xff" (Uri.percent_decode "%FF")

let suite =
  suite
  @ [
      Alcotest.test_case "get params merge" `Quick test_get_params_merge_with_query;
      Alcotest.test_case "percent decode uppercase" `Quick
        test_percent_decode_uppercase_hex;
    ]

let prop_escape_is_inert =
  let arb =
    QCheck.make ~print:(fun s -> s)
      QCheck.Gen.(string_size (0 -- 40) ~gen:(map Char.chr (32 -- 126)))
  in
  QCheck.Test.make ~name:"escaped text contains no active characters" ~count:300
    arb (fun s ->
      let out = Html.escape s in
      String.for_all (fun c -> c <> '<' && c <> '>' && c <> '"' && c <> '\'') out
      (* '&' survives only as part of an entity we generated *)
      && not (Html.contains_script ("<div>" ^ out ^ "</div>")))

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_escape_is_inert ]
