(* Tests for the platform core: accounts, policies, the app registry
   (publish/version/fork, E11), declassifier logics, the perimeter
   (E1/E2/E4), and the provider front-end settings routes. *)

open W5_difc
open W5_http
open W5_platform

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok_s = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (W5_os.Os_error.to_string e)

let fresh_platform () = Platform.create ()

let signup platform user =
  ok_s (Platform.signup platform ~user ~password:(user ^ "-pw"))

let dummy_handler ctx (_ : App_registry.env) =
  ignore (W5_os.Syscall.respond ctx "dummy")

(* ---- accounts ---- *)

let test_signup_and_auth () =
  let platform = fresh_platform () in
  let account = signup platform "alice" in
  check string_c "user" "alice" account.Account.user;
  check bool_c "auth good" true
    (Platform.authenticate platform ~user:"alice" ~password:"alice-pw");
  check bool_c "auth bad" false
    (Platform.authenticate platform ~user:"alice" ~password:"nope");
  check bool_c "auth unknown" false
    (Platform.authenticate platform ~user:"nobody" ~password:"x");
  (match Platform.signup platform ~user:"alice" ~password:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate signup accepted");
  match Platform.signup platform ~user:"bad/name" ~password:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "slash in name accepted"

let test_account_tags_and_files () =
  let platform = fresh_platform () in
  let account = signup platform "bob" in
  check bool_c "owns secret" true (Account.owns_tag account account.Account.secret_tag);
  check bool_c "owns write" true (Account.owns_tag account account.Account.write_tag);
  (* seeded files exist with the right labels *)
  let labels =
    ok_os
      (Platform.with_ctx platform ~name:"peek" (fun ctx ->
           W5_os.Syscall.stat ctx "/users/bob/profile"))
  in
  check bool_c "secret on file" true
    (Label.mem account.Account.secret_tag labels.W5_os.Fs.labels.Flow.secrecy);
  check bool_c "write tag on file" true
    (Label.mem account.Account.write_tag labels.W5_os.Fs.labels.Flow.integrity);
  (* tag ownership index *)
  match Platform.owner_of_tag platform account.Account.secret_tag with
  | Some owner -> check string_c "owner" "bob" owner.Account.user
  | None -> Alcotest.fail "tag owner lost"

let test_sessions_and_login () =
  let platform = fresh_platform () in
  ignore (signup platform "carol");
  let session = ok_s (Platform.login platform ~user:"carol" ~password:"carol-pw") in
  check (Alcotest.option string_c) "resolves" (Some "carol")
    (Platform.session_user platform ~sid:session.Session.sid);
  Platform.logout platform ~sid:session.Session.sid;
  check (Alcotest.option string_c) "gone" None
    (Platform.session_user platform ~sid:session.Session.sid);
  match Platform.login platform ~user:"carol" ~password:"wrong" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad login accepted"

let test_read_protection_relabel () =
  let platform = fresh_platform () in
  let account = signup platform "dave" in
  let tag = Platform.enable_read_protection platform account in
  check bool_c "restricted" true (Tag.restricted tag);
  let labels =
    ok_os
      (Platform.with_ctx platform ~name:"peek" (fun ctx ->
           W5_os.Syscall.stat ctx "/users/dave/profile"))
  in
  check bool_c "old file now read-protected" true
    (Label.mem tag labels.W5_os.Fs.labels.Flow.secrecy);
  (* idempotent *)
  let again = Platform.enable_read_protection platform account in
  check bool_c "same tag" true (Tag.equal tag again)

(* ---- policy ---- *)

let test_policy_bookkeeping () =
  let policy = Policy.create () in
  let tag = Tag.fresh ~name:"p.s" Tag.Secrecy in
  check (Alcotest.option string_c) "no rule" None (Policy.declassifier_for policy ~tag);
  Policy.authorize_declassifier policy ~tag ~gate:"g1";
  check (Alcotest.option string_c) "rule" (Some "g1") (Policy.declassifier_for policy ~tag);
  Policy.authorize_declassifier policy ~tag ~gate:"g2";
  check (Alcotest.option string_c) "replaced" (Some "g2") (Policy.declassifier_for policy ~tag);
  Policy.revoke_declassifier policy ~tag;
  check (Alcotest.option string_c) "revoked" None (Policy.declassifier_for policy ~tag);
  Policy.enable_app policy "a/b";
  Policy.enable_app policy "a/b";
  check int_c "no dup" 1 (List.length (Policy.enabled_apps policy));
  Policy.pin_version policy ~app:"a/b" ~version:"1.2";
  check (Alcotest.option string_c) "pin" (Some "1.2") (Policy.pinned_version policy ~app:"a/b");
  Policy.unpin_version policy ~app:"a/b";
  check (Alcotest.option string_c) "unpin" None (Policy.pinned_version policy ~app:"a/b");
  Policy.choose_module policy ~slot:"photo.crop" ~module_id:"devA/crop";
  check (Alcotest.option string_c) "module" (Some "devA/crop")
    (Policy.module_for policy ~slot:"photo.crop");
  Policy.delegate_write policy "a/b";
  check bool_c "write" true (Policy.write_delegated policy "a/b");
  Policy.revoke_write policy "a/b";
  check bool_c "revoked write" false (Policy.write_delegated policy "a/b");
  check bool_c "js off by default" false (Policy.allow_javascript policy);
  Policy.set_allow_javascript policy true;
  check bool_c "js on" true (Policy.allow_javascript policy)

(* ---- registry ---- *)

let test_registry_publish_and_versions () =
  let registry = App_registry.create () in
  let dev = Principal.make Principal.Developer "devx" in
  let app =
    ok_s
      (App_registry.publish registry ~dev ~name:"widget" ~version:"1.0"
         ~source:(App_registry.Open_source "v1 source") dummy_handler)
  in
  check string_c "id" "devx/widget" app.App_registry.id;
  ignore
    (ok_s
       (App_registry.publish registry ~dev ~name:"widget" ~version:"2.0"
          ~source:(App_registry.Open_source "v2 source") dummy_handler));
  (* duplicate version rejected *)
  (match
     App_registry.publish registry ~dev ~name:"widget" ~version:"2.0"
       dummy_handler
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate version accepted");
  (* another developer cannot squat the same id *)
  let dev2 = Principal.make Principal.Developer "devx" in
  (match
     App_registry.publish registry ~dev:dev2 ~name:"widget" ~version:"9.0"
       dummy_handler
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "squatting accepted");
  (* resolution: latest by default, pinned on request *)
  (match App_registry.resolve registry ~id:"devx/widget" () with
  | Some (_, v) -> check string_c "latest" "2.0" v.App_registry.v
  | None -> Alcotest.fail "resolve failed");
  (match App_registry.resolve registry ~id:"devx/widget" ~version:"1.0" () with
  | Some (_, v) -> check string_c "pinned" "1.0" v.App_registry.v
  | None -> Alcotest.fail "version resolve failed");
  check (Alcotest.option string_c) "source" (Some "v2 source")
    (App_registry.source_of registry ~id:"devx/widget" ())

let test_registry_fork () =
  let registry = App_registry.create () in
  let dev = Principal.make Principal.Developer "orig" in
  ignore
    (ok_s
       (App_registry.publish registry ~dev ~name:"app" ~version:"1.0"
          ~source:(App_registry.Open_source "src") dummy_handler));
  ignore
    (ok_s
       (App_registry.publish registry ~dev ~name:"closed" ~version:"1.0"
          ~source:App_registry.Closed_binary dummy_handler));
  let forker = Principal.make Principal.Developer "forker" in
  let fork =
    ok_s (App_registry.fork registry ~new_dev:forker ~from_id:"orig/app" ~name:"app2" ())
  in
  check string_c "fork id" "forker/app2" fork.App_registry.id;
  check (Alcotest.option string_c) "remembers origin" (Some "orig/app")
    fork.App_registry.forked_from;
  (* closed binaries cannot be forked *)
  (match
     App_registry.fork registry ~new_dev:forker ~from_id:"orig/closed"
       ~name:"stolen" ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forked a closed binary");
  match App_registry.fork registry ~new_dev:forker ~from_id:"nope/x" ~name:"y" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forked a ghost"

let test_registry_edges_and_installs () =
  let registry = App_registry.create () in
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (App_registry.publish registry ~dev ~name:"lib" ~version:"1" dummy_handler));
  ignore
    (ok_s
       (App_registry.publish registry ~dev ~name:"app" ~version:"1"
          ~imports:[ "d/lib" ] ~embeds:[ "d/other" ] dummy_handler));
  check
    (Alcotest.list (Alcotest.pair string_c string_c))
    "imports" [ ("d/app", "d/lib") ]
    (App_registry.import_edges registry);
  check
    (Alcotest.list (Alcotest.pair string_c string_c))
    "embeds" [ ("d/app", "d/other") ]
    (App_registry.embed_edges registry);
  App_registry.record_install registry "d/app";
  App_registry.record_install registry "d/app";
  check int_c "installs" 2 (App_registry.installs registry "d/app")

(* ---- declassifier logics (unit level) ---- *)

let test_declassifier_logics () =
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  ignore
    (ok_os
       (Platform.write_user_record platform alice ~file:"friends"
          (W5_store.Record.of_fields [ ("friends", "bob,carol") ])));
  let run_logic logic ~viewer =
    ok_os
      (Platform.with_ctx platform ~name:"logic-test"
         ~caps:alice.Account.caps (fun ctx ->
           Ok (logic ctx ~owner:"alice" ~viewer ~data:"payload")))
  in
  check (Alcotest.option string_c) "everyone" (Some "payload")
    (run_logic Declassifier.everyone ~viewer:None);
  check (Alcotest.option string_c) "nobody" None
    (run_logic Declassifier.nobody ~viewer:(Some "alice"));
  check (Alcotest.option string_c) "owner_only yes" (Some "payload")
    (run_logic Declassifier.owner_only ~viewer:(Some "alice"));
  check (Alcotest.option string_c) "owner_only no" None
    (run_logic Declassifier.owner_only ~viewer:(Some "bob"));
  check (Alcotest.option string_c) "friends yes" (Some "payload")
    (run_logic Declassifier.friends_only ~viewer:(Some "bob"));
  check (Alcotest.option string_c) "friends no" None
    (run_logic Declassifier.friends_only ~viewer:(Some "mallory"));
  check (Alcotest.option string_c) "friends anon" None
    (run_logic Declassifier.friends_only ~viewer:None);
  check (Alcotest.option string_c) "group" (Some "payload")
    (run_logic (Declassifier.group ~members:[ "zed" ]) ~viewer:(Some "zed"));
  check (Alcotest.option string_c) "watermark" (Some "payload [via w5]")
    (run_logic
       (Declassifier.watermarked ~stamp:" [via w5]" Declassifier.everyone)
       ~viewer:(Some "bob"))

(* ---- perimeter ---- *)

let test_perimeter_boilerplate () =
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  let bob = signup platform "bob" in
  let labels = Flow.make ~secrecy:(Label.singleton alice.Account.secret_tag) () in
  (* to the owner: allowed *)
  (match Perimeter.export platform ~viewer:(Some alice) ~data:"d" ~labels () with
  | Ok out -> check string_c "owner gets data" "d" out
  | Error r -> Alcotest.failf "refused: %s" (Perimeter.refusal_to_string r));
  (* to anyone else: refused with No_rule *)
  (match Perimeter.export platform ~viewer:(Some bob) ~data:"d" ~labels () with
  | Error (Perimeter.No_rule tag) ->
      check bool_c "names tag" true (Tag.equal tag alice.Account.secret_tag)
  | Ok _ -> Alcotest.fail "leaked"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Perimeter.refusal_to_string r));
  (* anonymous: refused *)
  match Perimeter.export platform ~viewer:None ~data:"d" ~labels () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "leaked to anonymous"

let test_perimeter_commingled_tags () =
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  let bob = signup platform "bob" in
  let carol = signup platform "carol" in
  (* alice and bob both friend carol and authorize friends-only *)
  List.iter
    (fun (account : Account.t) ->
      ignore
        (ok_os
           (Platform.write_user_record platform account ~file:"friends"
              (W5_store.Record.of_fields [ ("friends", "carol") ])));
      ignore
        (Declassifier.install_and_authorize platform ~account ~name:"friends"
           Declassifier.friends_only))
    [ alice; bob ];
  let labels =
    Flow.make
      ~secrecy:
        (Label.of_list [ alice.Account.secret_tag; bob.Account.secret_tag ])
      ()
  in
  (* carol is approved by both declassifiers *)
  (match Perimeter.export platform ~viewer:(Some carol) ~data:"mix" ~labels () with
  | Ok out -> check string_c "both cleared" "mix" out
  | Error r -> Alcotest.failf "refused: %s" (Perimeter.refusal_to_string r));
  (* a stranger fails on whichever tag comes first *)
  let mallory = signup platform "mallory" in
  match Perimeter.export platform ~viewer:(Some mallory) ~data:"mix" ~labels () with
  | Error (Perimeter.Refused_by _) -> ()
  | Ok _ -> Alcotest.fail "leaked commingled data"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Perimeter.refusal_to_string r)

let test_perimeter_unknown_tag () =
  let platform = fresh_platform () in
  let viewer = signup platform "viewer" in
  let stray = Tag.fresh ~name:"stray" Tag.Secrecy in
  match
    Perimeter.export platform ~viewer:(Some viewer) ~data:"d"
      ~labels:(Flow.make ~secrecy:(Label.singleton stray) ()) ()
  with
  | Error (Perimeter.Unknown_tag _) -> ()
  | Ok _ -> Alcotest.fail "leaked unowned tag"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Perimeter.refusal_to_string r)

(* ---- gateway settings routes ---- *)

let test_settings_routes () =
  let platform = fresh_platform () in
  let account = signup platform "erin" in
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let client = Client.make ~name:"erin" (Gateway.handler platform) in
  let r = Client.post client "/login" ~form:[ ("user", "erin"); ("pass", "erin-pw") ] in
  check bool_c "login" true (Response.is_success r);
  (* js opt-in *)
  let r = Client.get client "/settings" ~params:[ ("action", "allow_js"); ("value", "on") ] in
  check bool_c "allow_js" true (Response.is_success r);
  check bool_c "policy updated" true (Policy.allow_javascript account.Account.policy);
  (* write delegation *)
  let r =
    Client.get client "/settings"
      ~params:[ ("action", "delegate_write"); ("app", "d/social") ]
  in
  check bool_c "delegate" true (Response.is_success r);
  check bool_c "delegated" true (Policy.write_delegated account.Account.policy "d/social");
  (* declassifier choice requires a real gate *)
  let r =
    Client.get client "/settings" ~params:[ ("action", "declassifier"); ("gate", "ghost") ]
  in
  check int_c "bad gate rejected" 400 (Response.status_code r.Response.status);
  let gate =
    Declassifier.install platform ~account ~name:"friends" Declassifier.friends_only
  in
  let r =
    Client.get client "/settings" ~params:[ ("action", "declassifier"); ("gate", gate) ]
  in
  check bool_c "gate accepted" true (Response.is_success r);
  check (Alcotest.option string_c) "rule set" (Some gate)
    (Policy.declassifier_for account.Account.policy ~tag:account.Account.secret_tag);
  (* module choice + pin *)
  let r =
    Client.get client "/settings"
      ~params:[ ("action", "module"); ("slot", "photo.crop"); ("module", "a/crop") ]
  in
  check bool_c "module" true (Response.is_success r);
  let r =
    Client.get client "/settings"
      ~params:[ ("action", "pin"); ("app", "d/social"); ("version", "1.0") ]
  in
  check bool_c "pin" true (Response.is_success r);
  (* unknown action *)
  let r = Client.get client "/settings" ~params:[ ("action", "wat") ] in
  check int_c "unknown action" 400 (Response.status_code r.Response.status);
  (* settings require login *)
  let anon = Client.make (Gateway.handler platform) in
  let r = Client.get anon "/settings" ~params:[ ("action", "allow_js") ] in
  check int_c "anon unauthorized" 401 (Response.status_code r.Response.status)

let test_source_route () =
  let platform = fresh_platform () in
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  ignore (W5_apps.Malicious.publish_all platform ~dev);
  let client = Client.make (Gateway.handler platform) in
  let r = Client.get client "/source" ~params:[ ("app", "d/social") ] in
  check bool_c "open source shown" true (Response.is_success r);
  check bool_c "mentions reads" true (Client.saw client "tainting reads");
  let r = Client.get client "/source" ~params:[ ("app", "d/thief") ] in
  check int_c "closed binary hidden" 404 (Response.status_code r.Response.status)

let suite =
  [
    Alcotest.test_case "signup and auth" `Quick test_signup_and_auth;
    Alcotest.test_case "account tags and files" `Quick test_account_tags_and_files;
    Alcotest.test_case "sessions and login" `Quick test_sessions_and_login;
    Alcotest.test_case "read protection relabel" `Quick test_read_protection_relabel;
    Alcotest.test_case "policy bookkeeping" `Quick test_policy_bookkeeping;
    Alcotest.test_case "registry publish and versions" `Quick
      test_registry_publish_and_versions;
    Alcotest.test_case "registry fork" `Quick test_registry_fork;
    Alcotest.test_case "registry edges and installs" `Quick
      test_registry_edges_and_installs;
    Alcotest.test_case "declassifier logics" `Quick test_declassifier_logics;
    Alcotest.test_case "perimeter boilerplate" `Quick test_perimeter_boilerplate;
    Alcotest.test_case "perimeter commingled tags" `Quick
      test_perimeter_commingled_tags;
    Alcotest.test_case "perimeter unknown tag" `Quick test_perimeter_unknown_tag;
    Alcotest.test_case "settings routes" `Quick test_settings_routes;
    Alcotest.test_case "source route" `Quick test_source_route;
  ]

(* ---- invitations (§2 one-click adoption) ---- *)

let test_invitations () =
  let platform = fresh_platform () in
  ignore (signup platform "host");
  let guest = signup platform "guest" in
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let registry = Invite.create_registry () in
  (* bad targets rejected *)
  (match Invite.send registry platform ~from_user:"host" ~to_user:"ghost" ~app:"d/social" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invited a ghost");
  (match Invite.send registry platform ~from_user:"host" ~to_user:"guest" ~app:"d/ghost" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invited to a ghost app");
  let invite =
    ok_s
      (Invite.send registry platform ~from_user:"host" ~to_user:"guest"
         ~app:"d/social" ~suggest_write:true ())
  in
  (* duplicates rejected while pending *)
  (match Invite.send registry platform ~from_user:"host" ~to_user:"guest" ~app:"d/social" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate invitation accepted");
  check int_c "pending" 1 (List.length (Invite.pending registry ~to_user:"guest"));
  (* only the invitee can accept *)
  (match Invite.accept registry platform ~invite_id:invite.Invite.invite_id ~to_user:"host" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong user accepted");
  ignore (ok_s (Invite.accept registry platform ~invite_id:invite.Invite.invite_id ~to_user:"guest"));
  check bool_c "app enabled" true (Policy.app_enabled guest.Account.policy "d/social");
  check bool_c "write delegated as suggested" true
    (Policy.write_delegated guest.Account.policy "d/social");
  check int_c "install counted" 1 (App_registry.installs (Platform.registry platform) "d/social");
  (* cannot accept twice *)
  match Invite.accept registry platform ~invite_id:invite.Invite.invite_id ~to_user:"guest" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double accept"

let test_invitations_over_http () =
  let platform = fresh_platform () in
  ignore (signup platform "host");
  ignore (signup platform "guest");
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let login name =
    let c = Client.make ~name (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", name); ("pass", name ^ "-pw") ]);
    c
  in
  let host = login "host" in
  let r =
    Client.post host "/invite"
      ~form:[ ("to", "guest"); ("app", "d/social"); ("write", "on") ]
  in
  check int_c "invite sent" 200 (Response.status_code r.Response.status);
  let guest = login "guest" in
  let r = Client.get guest "/invites" in
  check bool_c "listed" true (Client.saw guest "host invites you to d/social");
  ignore r;
  (* extract the id lazily: it is inv-1 in a fresh registry *)
  let r = Client.post guest "/invite_accept" ~form:[ ("id", "inv-1") ] in
  check int_c "accepted" 200 (Response.status_code r.Response.status);
  let account = Platform.account_exn platform "guest" in
  check bool_c "enabled via http" true (Policy.app_enabled account.Account.policy "d/social")

(* ---- integrity protection: vetted components (§3.1) ---- *)

let test_integrity_protection_vetting () =
  let platform = fresh_platform () in
  let user = signup platform "careful" in
  let dev = Principal.make Principal.Developer "d" in
  let handler ctx (_ : App_registry.env) = ignore (W5_os.Syscall.respond ctx "ran") in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"lib"
          ~version:"1.0" ~source:(App_registry.Open_source "lib") handler));
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"tool"
          ~version:"1.0" ~source:(App_registry.Open_source "tool")
          ~imports:[ "d/lib" ] handler));
  ignore (ok_s (Platform.enable_app platform ~user:"careful" ~app:"d/tool"));
  Policy.set_require_vetted user.Account.policy true;
  let client = Client.make ~name:"careful" (Gateway.handler platform) in
  ignore (Client.post client "/login" ~form:[ ("user", "careful"); ("pass", "careful-pw") ]);
  (* nothing vetted: refused *)
  let r = Client.get client "/app/d/tool" in
  check int_c "unvetted refused" 403 (Response.status_code r.Response.status);
  (* vetting the app but not its import is not enough *)
  Platform.add_vetted platform "d/tool";
  let r = Client.get client "/app/d/tool" in
  check int_c "import unvetted" 403 (Response.status_code r.Response.status);
  Platform.add_vetted platform "d/lib";
  let r = Client.get client "/app/d/tool" in
  check int_c "fully vetted" 200 (Response.status_code r.Response.status);
  (* editors feed the vetted list *)
  Platform.set_vetted platform [];
  let editor = W5_rank.Editor.create "vetter" in
  W5_rank.Editor.endorse editor ~app:"d/tool" ~reason:"audited";
  W5_rank.Editor.endorse editor ~app:"d/lib" ~reason:"audited";
  let n = W5_rank.Code_search.vet_platform ~editors:[ editor ] platform in
  check int_c "two vetted" 2 n;
  let r = Client.get client "/app/d/tool" in
  check int_c "vetted via editor" 200 (Response.status_code r.Response.status);
  (* a flag retracts the vetting *)
  W5_rank.Editor.flag_antisocial editor ~app:"d/lib" ~reason:"gone bad";
  ignore (W5_rank.Code_search.vet_platform ~editors:[ editor ] platform);
  let r = Client.get client "/app/d/tool" in
  check int_c "flagged import blocks again" 403 (Response.status_code r.Response.status)

let suite =
  suite
  @ [
      Alcotest.test_case "invitations" `Quick test_invitations;
      Alcotest.test_case "invitations over http" `Quick test_invitations_over_http;
      Alcotest.test_case "integrity protection vetting" `Quick
        test_integrity_protection_vetting;
    ]

(* ---- perimeter robustness ---- *)

let test_perimeter_misbehaving_gate_budget () =
  (* a gate that re-taints its response with the very tag it was asked
     to clear: the perimeter must refuse, not loop *)
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  let tag = alice.Account.secret_tag in
  W5_os.Kernel.register_gate (Platform.kernel platform) ~name:"bad-gate"
    ~owner:alice.Account.principal ~caps:alice.Account.caps
    ~entry:(fun ctx _arg ->
      (* drop then re-add: the response still carries the tag *)
      ignore (W5_os.Syscall.declassify_self ctx tag);
      ignore (W5_os.Syscall.add_taint ctx (Label.singleton tag));
      ignore (W5_os.Syscall.respond ctx "haha"));
  Policy.authorize_declassifier alice.Account.policy ~tag ~gate:"bad-gate";
  let viewer = signup platform "viewer" in
  match
    Perimeter.export platform ~viewer:(Some viewer) ~data:"d"
      ~labels:(Flow.make ~secrecy:(Label.singleton tag) ()) ()
  with
  | Error (Perimeter.Refused_by { gate; _ }) ->
      check string_c "names the gate" "bad-gate" gate
  | Ok _ -> Alcotest.fail "leaked through a misbehaving gate"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Perimeter.refusal_to_string r)

let test_perimeter_transforming_gate () =
  (* watermarking declassifier: the exported payload differs from the
     app's output — the perimeter must carry the transformation *)
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  ignore
    (Declassifier.install_and_authorize platform ~account:alice ~name:"wm"
       (Declassifier.watermarked ~stamp:" [exported]" Declassifier.everyone));
  let viewer = signup platform "viewer" in
  match
    Perimeter.export platform ~viewer:(Some viewer) ~data:"content"
      ~labels:(Flow.make ~secrecy:(Label.singleton alice.Account.secret_tag) ()) ()
  with
  | Ok out -> check string_c "transformed" "content [exported]" out
  | Error r -> Alcotest.failf "refused: %s" (Perimeter.refusal_to_string r)

let test_perimeter_revocation () =
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  ignore
    (Declassifier.install_and_authorize platform ~account:alice ~name:"open"
       Declassifier.everyone);
  let viewer = signup platform "viewer" in
  let labels = Flow.make ~secrecy:(Label.singleton alice.Account.secret_tag) () in
  (match Perimeter.export platform ~viewer:(Some viewer) ~data:"d" ~labels () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "refused: %s" (Perimeter.refusal_to_string r));
  (* alice changes her mind: rule revoked, exports stop immediately *)
  Policy.revoke_declassifier alice.Account.policy ~tag:alice.Account.secret_tag;
  match Perimeter.export platform ~viewer:(Some viewer) ~data:"d" ~labels () with
  | Error (Perimeter.No_rule _) -> ()
  | Ok _ -> Alcotest.fail "revocation ignored"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Perimeter.refusal_to_string r)

(* ---- redaction combinators ---- *)

let test_redact_spans () =
  let marked = "a " ^ Declassifier.secret_span "hidden" ^ " b" in
  check bool_c "detected" true (Declassifier.contains_secret_span marked);
  check bool_c "clean not detected" false (Declassifier.contains_secret_span "a b");
  let redacted = Declassifier.redact_spans ~replacement:"XXX" marked in
  check string_c "redacted" "a XXX b" redacted;
  check bool_c "no marker residue" false (Declassifier.contains_secret_span redacted);
  (* multiple + unterminated spans *)
  let two =
    Declassifier.secret_span "one" ^ "|" ^ Declassifier.secret_span "two"
  in
  check string_c "both" "X|X" (Declassifier.redact_spans ~replacement:"X" two);
  let unterminated = "keep " ^ Declassifier.secret_open ^ "tail" in
  check string_c "tail dropped" "keep R"
    (Declassifier.redact_spans ~replacement:"R" unterminated)

let test_rate_limit_unit () =
  let limiter = Rate_limit.create ~capacity:2 ~refill_per_tick:1 () in
  check bool_c "1" true (Rate_limit.allow limiter ~key:"k" ~now:0);
  check bool_c "2" true (Rate_limit.allow limiter ~key:"k" ~now:0);
  check bool_c "3 blocked" false (Rate_limit.allow limiter ~key:"k" ~now:0);
  (* other keys unaffected *)
  check bool_c "other key" true (Rate_limit.allow limiter ~key:"j" ~now:0);
  (* time refills, capped at capacity *)
  check bool_c "refilled" true (Rate_limit.allow limiter ~key:"k" ~now:1);
  check int_c "capped" 2 (Rate_limit.remaining limiter ~key:"k" ~now:100);
  Rate_limit.reset limiter ~key:"k";
  check int_c "reset to full" 2 (Rate_limit.remaining limiter ~key:"k" ~now:100)

let suite =
  suite
  @ [
      Alcotest.test_case "perimeter misbehaving gate budget" `Quick
        test_perimeter_misbehaving_gate_budget;
      Alcotest.test_case "perimeter transforming gate" `Quick
        test_perimeter_transforming_gate;
      Alcotest.test_case "perimeter revocation" `Quick test_perimeter_revocation;
      Alcotest.test_case "redact spans" `Quick test_redact_spans;
      Alcotest.test_case "rate limit unit" `Quick test_rate_limit_unit;
    ]

(* ---- provider admin report ---- *)

let test_admin_report () =
  let platform = fresh_platform () in
  ignore (signup platform "alice");
  ignore (signup platform "mallory");
  let dev = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev);
  (match Platform.enable_app platform ~user:"mallory" ~app:"mal/thief" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let mallory = Client.make ~name:"mallory" (Gateway.handler platform) in
  ignore (Client.post mallory "/login" ~form:[ ("user", "mallory"); ("pass", "mallory-pw") ]);
  ignore (Client.get mallory "/app/mal/thief" ~params:[ ("target", "alice") ]);
  ignore (Client.get mallory "/app/mal/thief" ~params:[ ("target", "alice") ]);
  ignore (Client.get mallory "/app/mal/thief" ~params:[ ("target", "alice") ]);
  let report = Admin.collect platform in
  check int_c "users" 2 report.Admin.users;
  check int_c "apps" 6 report.Admin.apps;
  check bool_c "requests counted" true (report.Admin.requests_served >= 3);
  check bool_c "denials recorded" true (report.Admin.total_denials >= 3);
  check bool_c "export denials" true (report.Admin.export_denials >= 3);
  (* the thief shows up in per-app attribution *)
  let thief =
    List.find (fun s -> s.Admin.app_id = "mal/thief") report.Admin.per_app
  in
  check int_c "thief installs" 1 thief.Admin.installs;
  check bool_c "thief denials attributed" true (thief.Admin.denials >= 3);
  check bool_c "flagged as suspicious" true
    (List.mem "mal/thief" (Admin.suspicious_apps report));
  (* the rendering is data-free and mentions the thief *)
  let text = Admin.render report in
  check bool_c "render mentions app" true
    (let needle = "mal/thief" in
     let rec scan i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || scan (i + 1))
     in
     scan 0)

let suite =
  suite @ [ Alcotest.test_case "admin report" `Quick test_admin_report ]

(* ---- groups: circle-owned restricted tags ---- *)

let test_group_lifecycle () =
  let platform = fresh_platform () in
  let founder = signup platform "founder" in
  let member = signup platform "member" in
  ignore member;
  ignore (signup platform "outsider");
  let group = ok_s (Group.create platform ~founder ~name:"climbers") in
  check bool_c "restricted tag" true (Tag.restricted (Group.tag group));
  check (Alcotest.list string_c) "founder is first member" [ "founder" ]
    (Group.members group);
  (* duplicate and invalid names *)
  (match Group.create platform ~founder ~name:"climbers" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate group");
  (match Group.create platform ~founder ~name:"a/b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "slash in group name");
  (* membership *)
  ignore (ok_s (Group.add_member platform group ~user:"member"));
  ignore (ok_s (Group.add_member platform group ~user:"member"));
  check int_c "no dup members" 2 (List.length (Group.members group));
  (match Group.add_member platform group ~user:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "added a ghost");
  (* posting and reading *)
  ignore (ok_os (Group.post platform group ~author:founder ~id:"p1" ~body:"summit at 6"));
  let posts = ok_os (Group.read_posts platform group ~reader:member) in
  check int_c "one post" 1 (List.length posts);
  check bool_c "body" true (String.length (snd (List.hd posts)) > 0);
  (* outsiders cannot even read *)
  let outsider = Platform.account_exn platform "outsider" in
  (match Group.read_posts platform group ~reader:outsider with
  | Error e -> check bool_c "denied" true (W5_os.Os_error.is_denied e)
  | Ok _ -> Alcotest.fail "outsider read group data");
  (* non-members cannot post *)
  match Group.post platform group ~author:outsider ~id:"spam" ~body:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "outsider posted"

let test_group_export_follows_membership () =
  let platform = fresh_platform () in
  let founder = signup platform "founder" in
  ignore (signup platform "member");
  ignore (signup platform "outsider");
  let group = ok_s (Group.create platform ~founder ~name:"book-club") in
  ignore (ok_s (Group.add_member platform group ~user:"member"));
  ignore (ok_os (Group.post platform group ~author:founder ~id:"p" ~body:"GROUP-SECRET"));
  (* an app serving group pages *)
  let dev = Principal.make Principal.Developer "gdev" in
  let handler ctx (_ : App_registry.env) =
    match Group.find platform ~name:"book-club" with
    | None -> ()
    | Some group -> (
        match W5_os.Syscall.stat ctx (Group.dir group) with
        | Error e ->
            ignore (W5_os.Syscall.respond ctx ("no access: " ^ W5_os.Os_error.to_string e))
        | Ok st -> (
            match W5_os.Syscall.add_taint ctx st.W5_os.Fs.labels.Flow.secrecy with
            | Error e ->
                ignore
                  (W5_os.Syscall.respond ctx
                     ("no access: " ^ W5_os.Os_error.to_string e))
            | Ok () ->
                let body =
                  match
                    W5_os.Syscall.read_file_taint ctx (Group.dir group ^ "/p")
                  with
                  | Ok data -> data
                  | Error e -> "unreadable: " ^ W5_os.Os_error.to_string e
                in
                ignore (W5_os.Syscall.respond ctx body)))
  in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"wall"
          ~version:"1.0" handler));
  List.iter
    (fun user -> ok_s (Platform.enable_app platform ~user ~app:"gdev/wall"))
    [ "founder"; "member"; "outsider" ];
  let get user =
    let c = Client.make ~name:user (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", user); ("pass", user ^ "-pw") ]);
    (c, Client.get c "/app/gdev/wall")
  in
  (* members see the group page through the group declassifier *)
  let c, r = get "member" in
  check int_c "member gets page" 200 (Response.status_code r.Response.status);
  check bool_c "content" true (Client.saw c "GROUP-SECRET");
  (* the outsider's app process lacks t+: it cannot even read *)
  let c, r = get "outsider" in
  check int_c "outsider page is an error note" 200 (Response.status_code r.Response.status);
  check bool_c "no secret" false (Client.saw c "GROUP-SECRET");
  (* removal takes effect immediately *)
  ignore (ok_s (Group.remove_member platform group ~user:"member"));
  let c, r = get "member" in
  check bool_c "removed member blocked" true
    (Response.status_code r.Response.status = 403 || not (Client.saw c "GROUP-SECRET"));
  (* the founder cannot be removed *)
  match Group.remove_member platform group ~user:"founder" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "removed the founder"

let suite =
  suite
  @ [
      Alcotest.test_case "group lifecycle" `Quick test_group_lifecycle;
      Alcotest.test_case "group export follows membership" `Quick
        test_group_export_follows_membership;
    ]

(* ---- per-app quota configuration ---- *)

let test_per_app_limits () =
  let platform = fresh_platform () in
  ignore (signup platform "alice");
  let dev = Principal.make Principal.Developer "qdev" in
  (* an app that writes a configurable number of bytes *)
  let handler ctx (env : App_registry.env) =
    let n =
      match
        int_of_string_opt
          (W5_http.Request.param_or env.App_registry.request "n" ~default:"8")
      with
      | Some n when n > 0 -> n
      | Some _ | None -> 8
    in
    match
      W5_os.Syscall.create_file ctx
        (Printf.sprintf "/apps/q-%d" (W5_os.Syscall.pid ctx))
        ~labels:Flow.bottom ~data:(String.make n 'x')
    with
    | Ok () -> ignore (W5_os.Syscall.respond ctx "wrote")
    | Error e -> ignore (W5_os.Syscall.respond ctx (W5_os.Os_error.to_string e))
  in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"writer"
          ~version:"1.0" handler));
  (match Platform.enable_app platform ~user:"alice" ~app:"qdev/writer" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let alice = Client.make ~name:"alice" (Gateway.handler platform) in
  ignore (Client.post alice "/login" ~form:[ ("user", "alice"); ("pass", "alice-pw") ]);
  (* default limits: a 1KB write is fine *)
  let r = Client.get alice "/app/qdev/writer" ~params:[ ("n", "1024") ] in
  check int_c "default ok" 200 (Response.status_code r.Response.status);
  (* the provider tightens this app's disk budget *)
  Platform.set_app_limits platform ~app:"qdev/writer"
    (W5_os.Resource.make_limits ~disk:100 ());
  let r = Client.get alice "/app/qdev/writer" ~params:[ ("n", "1024") ] in
  check int_c "tightened: killed by quota" 429 (Response.status_code r.Response.status);
  let r = Client.get alice "/app/qdev/writer" ~params:[ ("n", "10") ] in
  check int_c "small write still fine" 200 (Response.status_code r.Response.status)

let suite =
  suite @ [ Alcotest.test_case "per-app limits" `Quick test_per_app_limits ]

(* ---- account and mailer coverage ---- *)

let test_account_helpers () =
  let account = Account.make ~user:"helper" ~password:"pw" in
  check bool_c "verify ok" true (Account.verify_password account "pw");
  check bool_c "verify bad" false (Account.verify_password account "nope");
  check int_c "secrecy has one tag" 1 (Label.cardinal (Account.secrecy_labels account));
  let dl = Account.data_labels account in
  check bool_c "integrity is write tag" true
    (Label.mem account.Account.write_tag dl.Flow.integrity);
  let rt = Account.enable_read_protection account in
  check int_c "secrecy now two tags" 2 (Label.cardinal (Account.secrecy_labels account));
  check bool_c "owns read tag" true (Account.owns_tag account rt);
  check bool_c "pp renders" true
    (String.length (Format.asprintf "%a" Account.pp account) > 0)

let test_mailer_outbox_order_and_missing_user () =
  let platform = fresh_platform () in
  ignore (signup platform "reader");
  let dev = Principal.make Principal.Developer "md" in
  let n = ref 0 in
  let handler ctx (_ : App_registry.env) =
    incr n;
    ignore (W5_os.Syscall.respond ctx (Printf.sprintf "issue-%d" !n))
  in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"zine"
          ~version:"1.0" handler));
  ignore (ok_s (Platform.enable_app platform ~user:"reader" ~app:"md/zine"));
  ignore (ok_s (Mailer.deliver_app_page platform ~user:"reader" ~app:"md/zine" ~subject:"1" ()));
  ignore (ok_s (Mailer.deliver_app_page platform ~user:"reader" ~app:"md/zine" ~subject:"2" ()));
  (match Mailer.outbox platform ~user:"reader" with
  | [ first; second ] ->
      check string_c "oldest first" "1" first.Mailer.subject;
      check string_c "then newer" "2" second.Mailer.subject
  | _ -> Alcotest.fail "expected two emails");
  match Mailer.deliver_app_page platform ~user:"ghost" ~app:"md/zine" ~subject:"x" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mailed a ghost"

let test_invite_decline () =
  let platform = fresh_platform () in
  ignore (signup platform "host");
  ignore (signup platform "guest");
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let registry = Invite.create_registry () in
  let invite =
    ok_s (Invite.send registry platform ~from_user:"host" ~to_user:"guest" ~app:"d/social" ())
  in
  (* only the invitee can decline *)
  (match Invite.decline registry ~invite_id:invite.Invite.invite_id ~to_user:"host" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong user declined");
  ignore (ok_s (Invite.decline registry ~invite_id:invite.Invite.invite_id ~to_user:"guest"));
  check int_c "gone" 0 (List.length (Invite.pending registry ~to_user:"guest"));
  (* declining frees the slot for a fresh invitation *)
  ignore
    (ok_s (Invite.send registry platform ~from_user:"host" ~to_user:"guest" ~app:"d/social" ()))

let test_admin_suspicious_threshold () =
  let report =
    {
      Admin.users = 0; apps = 1; requests_served = 0; live_processes = 0;
      total_processes_spawned = 0; audit_entries = 0; total_denials = 2;
      export_denials = 2; sessions_active = 0; files = 0;
      per_app =
        [ { Admin.app_id = "x/y"; installs = 0; denials = 2; quota_kills = 0 } ];
    }
  in
  check (Alcotest.list string_c) "below default threshold" []
    (Admin.suspicious_apps report);
  check (Alcotest.list string_c) "custom threshold" [ "x/y" ]
    (Admin.suspicious_apps ~threshold:2 report)

let suite =
  suite
  @ [
      Alcotest.test_case "account helpers" `Quick test_account_helpers;
      Alcotest.test_case "mailer outbox order" `Quick
        test_mailer_outbox_order_and_missing_user;
      Alcotest.test_case "invite decline" `Quick test_invite_decline;
      Alcotest.test_case "admin suspicious threshold" `Quick
        test_admin_suspicious_threshold;
    ]

(* ---- group management over HTTP ---- *)

let test_group_routes () =
  let platform = fresh_platform () in
  ignore (signup platform "founder");
  ignore (signup platform "member");
  ignore (signup platform "mallory");
  let login name =
    let c = Client.make ~name (Gateway.handler platform) in
    ignore (Client.post c "/login" ~form:[ ("user", name); ("pass", name ^ "-pw") ]);
    c
  in
  let founder = login "founder" in
  let r = Client.post founder "/group_create" ~form:[ ("name", "chess") ] in
  check int_c "create" 200 (Response.status_code r.Response.status);
  let r = Client.post founder "/group_add" ~form:[ ("name", "chess"); ("user", "member") ] in
  check int_c "add member" 200 (Response.status_code r.Response.status);
  (match Group.find platform ~name:"chess" with
  | Some group ->
      check bool_c "member joined" true (Group.is_member group ~user:"member")
  | None -> Alcotest.fail "group lost");
  (* only the founder manages membership *)
  let mallory = login "mallory" in
  let r = Client.post mallory "/group_add" ~form:[ ("name", "chess"); ("user", "mallory") ] in
  check int_c "non-founder refused" 403 (Response.status_code r.Response.status);
  (* removal over HTTP *)
  let r = Client.post founder "/group_remove" ~form:[ ("name", "chess"); ("user", "member") ] in
  check int_c "remove" 200 (Response.status_code r.Response.status);
  (match Group.find platform ~name:"chess" with
  | Some group ->
      check bool_c "member gone" false (Group.is_member group ~user:"member")
  | None -> Alcotest.fail "group lost");
  (* duplicate create rejected *)
  let r = Client.post founder "/group_create" ~form:[ ("name", "chess") ] in
  check int_c "duplicate" 400 (Response.status_code r.Response.status)

let suite =
  suite @ [ Alcotest.test_case "group routes" `Quick test_group_routes ]

(* ---- declassifier gate robustness ---- *)

let test_gate_garbage_arg_refuses () =
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  let gate =
    Declassifier.install platform ~account:alice ~name:"open" Declassifier.everyone
  in
  (* invoking the gate with a malformed argument refuses cleanly *)
  let result =
    Platform.with_ctx platform ~name:"caller"
      ~labels:(Flow.make ~secrecy:(Label.singleton alice.Account.secret_tag) ())
      (fun ctx -> W5_os.Syscall.invoke_gate ctx gate ~arg:"%%garbage%%")
  in
  match result with
  | Ok None -> () (* no response = refusal *)
  | Ok (Some _) -> Alcotest.fail "gate answered garbage"
  | Error e -> Alcotest.failf "gate crashed: %s" (W5_os.Os_error.to_string e)

let suite =
  suite
  @ [
      Alcotest.test_case "gate garbage arg refuses" `Quick
        test_gate_garbage_arg_refuses;
    ]

(* ---- group post overwrite + invite defaults ---- *)

let test_group_post_overwrite () =
  let platform = fresh_platform () in
  let founder = signup platform "gF" in
  let group = ok_s (Group.create platform ~founder ~name:"edit-test") in
  ignore (ok_os (Group.post platform group ~author:founder ~id:"p" ~body:"v1"));
  ignore (ok_os (Group.post platform group ~author:founder ~id:"p" ~body:"v2"));
  let posts = ok_os (Group.read_posts platform group ~reader:founder) in
  check int_c "still one post" 1 (List.length posts);
  check bool_c "latest body" true
    (let _, line = List.hd posts in
     String.length line >= 2 && String.sub line (String.length line - 2) 2 = "v2")

let test_invite_without_write_suggestion () =
  let platform = fresh_platform () in
  ignore (signup platform "host");
  let guest = signup platform "guest" in
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let registry = Invite.create_registry () in
  let invite =
    ok_s
      (Invite.send registry platform ~from_user:"host" ~to_user:"guest"
         ~app:"d/social" ())
  in
  ignore (ok_s (Invite.accept registry platform ~invite_id:invite.Invite.invite_id ~to_user:"guest"));
  check bool_c "enabled" true (Policy.app_enabled guest.Account.policy "d/social");
  check bool_c "no write without suggestion" false
    (Policy.write_delegated guest.Account.policy "d/social")

let suite =
  suite
  @ [
      Alcotest.test_case "group post overwrite" `Quick test_group_post_overwrite;
      Alcotest.test_case "invite without write suggestion" `Quick
        test_invite_without_write_suggestion;
    ]

let test_signup_name_hygiene () =
  let platform = fresh_platform () in
  List.iter
    (fun bad ->
      match Platform.signup platform ~user:bad ~password:"x" with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ ""; "a b"; "semi;colon"; "dot.dot"; "q?m"; "tab\tname" ];
  List.iter
    (fun good ->
      match Platform.signup platform ~user:good ~password:"x" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rejected %S: %s" good e)
    [ "alice"; "Bob-2"; "under_score"; "X" ]

let test_mailer_requires_enabled_app () =
  let platform = fresh_platform () in
  ignore (signup platform "quiet");
  let dev = Principal.make Principal.Developer "md2" in
  ignore
    (ok_s
       (App_registry.publish (Platform.registry platform) ~dev ~name:"letter"
          ~version:"1.0" dummy_handler));
  match Mailer.deliver_app_page platform ~user:"quiet" ~app:"md2/letter" ~subject:"s" () with
  | Error _ -> check int_c "nothing queued" 0 (Mailer.outbox_size platform ~user:"quiet")
  | Ok _ -> Alcotest.fail "mailed an app the user never enabled"

let suite =
  suite
  @ [
      Alcotest.test_case "signup name hygiene" `Quick test_signup_name_hygiene;
      Alcotest.test_case "mailer requires enabled app" `Quick
        test_mailer_requires_enabled_app;
    ]

let test_stale_gate_cannot_clear_new_read_tag () =
  (* the documented property: gates installed before read protection
     cannot clear the new tag — no silent privilege growth *)
  let platform = fresh_platform () in
  let alice = signup platform "alice" in
  let viewer = signup platform "viewer" in
  ignore
    (Declassifier.install_and_authorize platform ~account:alice ~name:"open"
       Declassifier.everyone);
  let rt = Platform.enable_read_protection platform alice in
  (* authorize the old gate for the new tag too (policy says yes, but
     the gate lacks the capability) *)
  Policy.authorize_declassifier alice.Account.policy ~tag:rt
    ~gate:(Declassifier.gate_name ~owner:"alice" ~name:"open");
  let labels =
    Flow.make ~secrecy:(Label.of_list [ alice.Account.secret_tag; rt ]) ()
  in
  (match Perimeter.export platform ~viewer:(Some viewer) ~data:"d" ~labels () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale gate cleared a tag it has no capability for");
  (* reinstalling fixes it *)
  ignore
    (Declassifier.install_and_authorize platform ~account:alice ~name:"open"
       Declassifier.everyone);
  match Perimeter.export platform ~viewer:(Some viewer) ~data:"d" ~labels () with
  | Ok out -> check string_c "fresh gate works" "d" out
  | Error r -> Alcotest.failf "refused: %s" (Perimeter.refusal_to_string r)

let suite =
  suite
  @ [
      Alcotest.test_case "stale gate cannot clear new read tag" `Quick
        test_stale_gate_cannot_clear_new_read_tag;
    ]

let test_platform_getters () =
  let platform = fresh_platform () in
  check (Alcotest.list string_c) "no vetted" [] (Platform.vetted_apps platform);
  Platform.add_vetted platform "a/b";
  Platform.add_vetted platform "a/b";
  check (Alcotest.list string_c) "dedup vetted" [ "a/b" ]
    (Platform.vetted_apps platform);
  check bool_c "no dns" true (Platform.dns platform = None);
  let dev = Principal.make Principal.Developer "d" in
  ignore (ok_s (W5_apps.Social_app.publish platform ~dev));
  let dns = Platform.enable_dns platform ~zone:"z.example" in
  check bool_c "dns attached" true (Platform.dns platform <> None);
  (* the published app got a record *)
  check bool_c "record exists" true
    (W5_http.Dns.resolve dns ~host:"social.d.z.example"
    = Some (W5_http.Dns.App "d/social"));
  check bool_c "records listed" true (List.length (W5_http.Dns.records dns) >= 3)

let suite =
  suite @ [ Alcotest.test_case "platform getters" `Quick test_platform_getters ]

let test_admin_quota_kill_attribution () =
  let platform = fresh_platform () in
  ignore (signup platform "runner");
  let dev = Principal.make Principal.Developer "mal" in
  ignore (W5_apps.Malicious.publish_all platform ~dev);
  (match Platform.enable_app platform ~user:"runner" ~app:"mal/hog" with
  | Ok () -> () | Error e -> Alcotest.fail e);
  let c = Client.make ~name:"runner" (Gateway.handler platform) in
  ignore (Client.post c "/login" ~form:[ ("user", "runner"); ("pass", "runner-pw") ]);
  ignore (Client.get c "/app/mal/hog");
  let report = Admin.collect platform in
  let hog = List.find (fun s -> s.Admin.app_id = "mal/hog") report.Admin.per_app in
  check bool_c "kill attributed" true (hog.Admin.quota_kills >= 1)

let test_account_exn_raises () =
  let platform = fresh_platform () in
  match Platform.account_exn platform "ghost" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_expire_sessions_return () =
  let platform = fresh_platform () in
  ignore (signup platform "u1");
  ignore (ok_s (Platform.login platform ~user:"u1" ~password:"u1-pw"));
  check int_c "one active" 1 (W5_http.Session.active (Platform.sessions platform));
  (* huge max_age keeps it *)
  check int_c "kept" 1 (Platform.expire_sessions platform ~max_age:1_000_000);
  (* advance the clock, then expire aggressively *)
  ignore
    (Platform.with_ctx platform ~name:"tick" (fun ctx ->
         ignore (W5_os.Syscall.file_exists ctx "/");
         Ok ()));
  check int_c "dropped" 0 (Platform.expire_sessions platform ~max_age:0)

let suite =
  suite
  @ [
      Alcotest.test_case "admin quota-kill attribution" `Quick
        test_admin_quota_kill_attribution;
      Alcotest.test_case "account_exn raises" `Quick test_account_exn_raises;
      Alcotest.test_case "expire_sessions return" `Quick
        test_expire_sessions_return;
    ]
