(* Tests for the labeled object store: the record format, CRUD under
   labels, and the covert-channel-safe query engine (experiment E8). *)

open W5_difc
open W5_os
open W5_store

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Os_error.to_string e)

let run kernel ?(labels = Flow.bottom) ?(caps = Capability.Set.empty) ~name f =
  let result = ref None in
  let proc =
    match
      Kernel.spawn kernel ~name
        ~owner:(Kernel.kernel_principal kernel)
        ~labels ~caps ~limits:Resource.unlimited
        (fun ctx -> result := Some (f ctx))
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "spawn: %s" (Os_error.to_string e)
  in
  Kernel.run_proc kernel proc;
  match !result with
  | Some v -> v
  | None -> Alcotest.failf "process died: %s" (Format.asprintf "%a" Proc.pp proc)

(* ---- record format ---- *)

let test_record_basics () =
  let r = Record.of_fields [ ("a", "1"); ("b", "2") ] in
  check (Alcotest.option string_c) "get" (Some "1") (Record.get r "a");
  check string_c "get_or" "zzz" (Record.get_or r "missing" ~default:"zzz");
  let r = Record.set r "a" "10" in
  check (Alcotest.option string_c) "set replaces" (Some "10") (Record.get r "a");
  check int_c "cardinal" 2 (Record.cardinal r);
  let r = Record.remove r "b" in
  check bool_c "removed" false (Record.mem r "b");
  check (Alcotest.list string_c) "keys" [ "a" ] (Record.keys r)

let test_record_typed_fields () =
  let r = Record.set_int Record.empty "n" 42 in
  check (Alcotest.option int_c) "int" (Some 42) (Record.get_int r "n");
  check (Alcotest.option int_c) "bad int" None
    (Record.get_int (Record.set Record.empty "n" "x") "n");
  let r = Record.set_list Record.empty "xs" [ "a"; "b" ] in
  check (Alcotest.list string_c) "list" [ "a"; "b" ] (Record.get_list r "xs");
  check (Alcotest.list string_c) "empty list" [] (Record.get_list Record.empty "xs")

let test_record_encoding_edge_cases () =
  let nasty =
    Record.of_fields
      [ ("k=ey", "v=alue"); ("multi", "line\nvalue"); ("pct", "100%"); ("", "") ]
  in
  match Record.decode (Record.encode nasty) with
  | Ok r -> check bool_c "roundtrip" true (Record.equal nasty r)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_record_decode_errors () =
  (match Record.decode "noequals" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected decode error");
  match Record.decode "k=%zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected escape error"

let gen_field_string =
  QCheck.Gen.(string_size (0 -- 12) ~gen:(map Char.chr (32 -- 126)))

let arb_record =
  QCheck.make
    QCheck.Gen.(
      map Record.of_fields
        (list_size (0 -- 8) (pair gen_field_string gen_field_string)))
    ~print:(fun r -> Format.asprintf "%a" Record.pp r)

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record encode/decode roundtrip" ~count:500 arb_record
    (fun r ->
      match Record.decode (Record.encode r) with
      | Ok r' -> Record.equal r r'
      | Error _ -> false)

(* ---- object store ---- *)

let with_store f =
  let kernel = Kernel.create () in
  run kernel ~name:"store-init" (fun ctx -> ok (Obj_store.init ctx));
  (kernel, f)

let test_obj_store_crud () =
  let kernel, () = with_store () in
  run kernel ~name:"crud" (fun ctx ->
      ok (Obj_store.create_collection ctx "pets" ~labels:Flow.bottom);
      let rex = Record.of_fields [ ("species", "dog") ] in
      ok (Obj_store.put ctx ~collection:"pets" ~id:"rex" ~labels:Flow.bottom rex);
      check bool_c "exists" true (Obj_store.exists ctx ~collection:"pets" ~id:"rex");
      let back = ok (Obj_store.get ctx ~collection:"pets" ~id:"rex" ()) in
      check bool_c "roundtrip" true (Record.equal rex back);
      check int_c "version 1" 1 (ok (Obj_store.version_of ctx ~collection:"pets" ~id:"rex"));
      ok
        (Obj_store.put ctx ~collection:"pets" ~id:"rex" ~labels:Flow.bottom
           (Record.set rex "species" "wolf"));
      check int_c "version 2" 2 (ok (Obj_store.version_of ctx ~collection:"pets" ~id:"rex"));
      check (Alcotest.list string_c) "list" [ "rex" ]
        (ok (Obj_store.list ctx ~collection:"pets"));
      ok (Obj_store.delete ctx ~collection:"pets" ~id:"rex");
      check bool_c "deleted" false (Obj_store.exists ctx ~collection:"pets" ~id:"rex"))

let test_obj_store_label_enforcement () =
  let kernel, () = with_store () in
  let tag = Tag.fresh ~name:"store.s" Tag.Secrecy in
  let secret = Flow.make ~secrecy:(Label.singleton tag) () in
  run kernel ~name:"seed" (fun ctx ->
      ok (Obj_store.create_collection ctx "inbox" ~labels:Flow.bottom);
      ok
        (Obj_store.put ctx ~collection:"inbox" ~id:"love-letter" ~labels:secret
           (Record.of_fields [ ("to", "alice") ])));
  run kernel ~name:"snoop" (fun ctx ->
      (* strict get denied; tainting get allowed and taints *)
      (match Obj_store.get ctx ~collection:"inbox" ~id:"love-letter" () with
      | Error e when Os_error.is_denied e -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected denial");
      let r = ok (Obj_store.get ctx ~taint:true ~collection:"inbox" ~id:"love-letter" ()) in
      check (Alcotest.option string_c) "content" (Some "alice") (Record.get r "to");
      check bool_c "tainted" true
        (Label.mem tag (Syscall.my_labels ctx).Flow.secrecy))

(* ---- query engine ---- *)

let seed_inbox kernel =
  (* three public rows and one secret row *)
  let tag = Tag.fresh ~name:"q.secret" Tag.Secrecy in
  let secret = Flow.make ~secrecy:(Label.singleton tag) () in
  run kernel ~name:"seed" (fun ctx ->
      ok (Obj_store.create_collection ctx "msgs" ~labels:Flow.bottom);
      List.iter
        (fun (id, sender) ->
          ok
            (Obj_store.put ctx ~collection:"msgs" ~id ~labels:Flow.bottom
               (Record.of_fields [ ("from", sender); ("n", id) ])))
        [ ("m1", "bob"); ("m2", "carol"); ("m3", "bob") ];
      ok
        (Obj_store.put ctx ~collection:"msgs" ~id:"m4" ~labels:secret
           (Record.of_fields [ ("from", "secret-admirer"); ("n", "m4") ])));
  tag

let test_query_predicates () =
  let r = Record.of_fields [ ("from", "bob"); ("score", "10") ] in
  let holds p = Query.eval p r in
  check bool_c "equals" true (holds (Query.field_equals "from" "bob"));
  check bool_c "not equals" false (holds (Query.field_equals "from" "carol"));
  check bool_c "contains" true (holds (Query.field_contains "from" "ob"));
  check bool_c "contains empty" true (holds (Query.field_contains "from" ""));
  check bool_c "missing field" false (holds (Query.field_contains "nope" "x"));
  check bool_c "int at least" true (holds (Query.field_int_at_least "score" 10));
  check bool_c "int below" false (holds (Query.field_int_at_least "score" 11));
  check bool_c "and" true
    (holds Query.(field_equals "from" "bob" &&& has_field "score"));
  check bool_c "or" true
    (holds Query.(field_equals "from" "x" ||| has_field "score"));
  check bool_c "not" false (holds (Query.not_ Query.always))

let test_query_taints_with_all_rows () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  let tag = seed_inbox kernel in
  run kernel ~name:"safe-query" (fun ctx ->
      (* The query matches only public rows, yet the caller absorbs
         the secret row's taint because it was scanned. *)
      let results =
        ok (Query.select ctx ~collection:"msgs" ~where:(Query.field_equals "from" "bob"))
      in
      check int_c "two bobs" 2 (List.length results);
      check bool_c "scanned-taint" true
        (Label.mem tag (Syscall.my_labels ctx).Flow.secrecy))

let test_query_leaky_baseline_leaks_shape () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  let tag = seed_inbox kernel in
  run kernel ~name:"leaky-query" (fun ctx ->
      (* The unsafe engine skips the unreadable row: result shape now
         depends on data the caller never became tainted by. *)
      let results = ok (Query.select_leaky ctx ~collection:"msgs" ~where:Query.always) in
      check int_c "secret row invisible" 3 (List.length results);
      check bool_c "caller unt tainted" false
        (Label.mem tag (Syscall.my_labels ctx).Flow.secrecy))

let test_query_count_and_fold () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  ignore (seed_inbox kernel);
  run kernel ~name:"agg" (fun ctx ->
      check int_c "count" 4 (ok (Query.count ctx ~collection:"msgs" ~where:Query.always));
      let total =
        ok
          (Query.fold ctx ~collection:"msgs" ~init:0 ~f:(fun acc _ _ -> acc + 1))
      in
      check int_c "fold" 4 total)

let test_query_covert_channel_blocked_at_export () =
  (* The full E8 story: a prober computes a bit from the presence of a
     secret row; with the safe engine the bit is tainted and the
     "export" (modeled as writing to a public file) is denied. *)
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  ignore (seed_inbox kernel);
  run kernel ~name:"prober" (fun ctx ->
      let n = ok (Query.count ctx ~collection:"msgs" ~where:Query.always) in
      let bit = if n >= 4 then "1" else "0" in
      match Syscall.create_file ctx "/probe-result" ~labels:Flow.bottom ~data:bit with
      | Error e when Os_error.is_denied e -> ()
      | Ok () -> Alcotest.fail "covert bit escaped"
      | Error e -> Alcotest.failf "wrong error: %s" (Os_error.to_string e))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "record basics" `Quick test_record_basics;
    Alcotest.test_case "record typed fields" `Quick test_record_typed_fields;
    Alcotest.test_case "record encoding edge cases" `Quick
      test_record_encoding_edge_cases;
    Alcotest.test_case "record decode errors" `Quick test_record_decode_errors;
    Alcotest.test_case "obj store crud" `Quick test_obj_store_crud;
    Alcotest.test_case "obj store labels" `Quick test_obj_store_label_enforcement;
    Alcotest.test_case "query predicates" `Quick test_query_predicates;
    Alcotest.test_case "query taints with all rows" `Quick
      test_query_taints_with_all_rows;
    Alcotest.test_case "leaky baseline leaks shape" `Quick
      test_query_leaky_baseline_leaks_shape;
    Alcotest.test_case "query count and fold" `Quick test_query_count_and_fold;
    Alcotest.test_case "covert channel blocked at export" `Quick
      test_query_covert_channel_blocked_at_export;
  ]
  @ qsuite [ prop_record_roundtrip ]

(* ---- additional store edges ---- *)

let test_obj_store_sanitize_and_paths () =
  (* '/' escapes to "_s" and literal '_' doubles, so names that used
     to collide ("a/b" vs "a_b") now map to distinct paths *)
  check Alcotest.string "collection path" "/store/a_sb"
    (Obj_store.collection_path "a/b");
  check Alcotest.string "object path" "/store/c/x_sy"
    (Obj_store.object_path "c" "x/y");
  check Alcotest.string "underscore doubles" "/store/a__b"
    (Obj_store.collection_path "a_b");
  check bool_c "no aliasing" true
    (Obj_store.collection_path "a/b" <> Obj_store.collection_path "a_b")

let test_collection_listing_requires_flow () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  let tag = Tag.fresh ~name:"coll.s" Tag.Secrecy in
  run kernel ~name:"seed" (fun ctx ->
      ok
        (Obj_store.create_collection ctx "hidden"
           ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())));
  (* an untainted process cannot list a secret collection *)
  run kernel ~name:"snoop" (fun ctx ->
      match Obj_store.list ctx ~collection:"hidden" with
      | Error e when Os_error.is_denied e -> ()
      | Ok _ -> Alcotest.fail "listed a secret collection"
      | Error e -> Alcotest.failf "wrong error: %s" (Os_error.to_string e));
  (* a tainted one can *)
  run kernel
    ~labels:(Flow.make ~secrecy:(Label.singleton tag) ())
    ~name:"insider" (fun ctx ->
      check (Alcotest.list Alcotest.string) "empty listing" []
        (ok (Obj_store.list ctx ~collection:"hidden")))

let test_query_on_missing_collection () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  run kernel ~name:"querier" (fun ctx ->
      match Query.select ctx ~collection:"ghost" ~where:Query.always with
      | Error (Os_error.Not_found _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Not_found")

let test_undecodable_rows_skipped () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  run kernel ~name:"mixed" (fun ctx ->
      ok (Obj_store.create_collection ctx "mixed" ~labels:Flow.bottom);
      ok
        (Obj_store.put ctx ~collection:"mixed" ~id:"good" ~labels:Flow.bottom
           (Record.of_fields [ ("k", "v") ]));
      (* a hostile app writes garbage straight into the collection *)
      ok
        (Syscall.create_file ctx
           (Obj_store.object_path "mixed" "junk")
           ~labels:Flow.bottom ~data:"%%%not-a-record%%%");
      let rows = ok (Query.select ctx ~collection:"mixed" ~where:Query.always) in
      check int_c "junk skipped" 1 (List.length rows))

let suite =
  suite
  @ [
      Alcotest.test_case "obj store sanitize" `Quick
        test_obj_store_sanitize_and_paths;
      Alcotest.test_case "collection listing requires flow" `Quick
        test_collection_listing_requires_flow;
      Alcotest.test_case "query on missing collection" `Quick
        test_query_on_missing_collection;
      Alcotest.test_case "undecodable rows skipped" `Quick
        test_undecodable_rows_skipped;
    ]

let test_obj_store_delete_missing () =
  let kernel, () = with_store () in
  run kernel ~name:"deleter" (fun ctx ->
      ok (Obj_store.create_collection ctx "c" ~labels:Flow.bottom);
      match Obj_store.delete ctx ~collection:"c" ~id:"ghost" with
      | Error (Os_error.Not_found _) -> ()
      | Ok () | Error _ -> Alcotest.fail "deleted a ghost")

let test_record_pp_and_fields () =
  let r = Record.of_fields [ ("a", "1") ] in
  check bool_c "pp" true (String.length (Format.asprintf "%a" Record.pp r) > 0);
  check (Alcotest.list (Alcotest.pair string_c string_c)) "fields" [ ("a", "1") ]
    (Record.fields r);
  check bool_c "empty equal" true (Record.equal Record.empty (Record.of_fields []))

let suite =
  suite
  @ [
      Alcotest.test_case "obj store delete missing" `Quick
        test_obj_store_delete_missing;
      Alcotest.test_case "record pp and fields" `Quick test_record_pp_and_fields;
    ]

let rows_scanned kernel =
  W5_obs.Metrics.value
    (W5_obs.Metrics.counter (Kernel.metrics kernel) "w5_store_rows_scanned_total")

let test_select_limit_short_circuits_but_taints () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  let tag = seed_inbox kernel in
  run kernel ~name:"paged" (fun ctx ->
      let before = rows_scanned kernel in
      let rows =
        ok (Query.select ~limit:1 ctx ~collection:"msgs" ~where:Query.always)
      in
      check int_c "one row returned" 1 (List.length rows);
      (* the limit stops the walk after the first match... *)
      check int_c "one row visited" 1 (rows_scanned kernel - before);
      (* ...yet the taint is the full collection's: the label summary
         was absorbed before any row was read, so skipping rows can
         never launder their secrecy *)
      check bool_c "full-collection taint" true
        (Label.mem tag (Syscall.my_labels ctx).Flow.secrecy))

let suite =
  suite
  @ [
      Alcotest.test_case "select limit short-circuits but taints" `Quick
        test_select_limit_short_circuits_but_taints;
    ]

(* final store edges *)
let test_query_operators_compose () =
  let r = Record.of_fields [ ("a", "1"); ("b", "2") ] in
  let open Query in
  check bool_c "nested and/or" true
    (eval
       ((field_equals "a" "1" &&& field_equals "b" "2")
       ||| field_equals "a" "9")
       r);
  check bool_c "not over and" true
    (eval (not_ (field_equals "a" "9" &&& field_equals "b" "2")) r)

let test_obj_store_get_missing () =
  let kernel, () = with_store () in
  run kernel ~name:"getter" (fun ctx ->
      ok (Obj_store.create_collection ctx "c2" ~labels:Flow.bottom);
      match Obj_store.get ctx ~collection:"c2" ~id:"nope" () with
      | Error (Os_error.Not_found _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "got a ghost");
  run kernel ~name:"labeler" (fun ctx ->
      match Obj_store.labels_of ctx ~collection:"c2" ~id:"nope" with
      | Error (Os_error.Not_found _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "labeled a ghost")

let suite =
  suite
  @ [
      Alcotest.test_case "query operators compose" `Quick
        test_query_operators_compose;
      Alcotest.test_case "obj store get missing" `Quick test_obj_store_get_missing;
    ]
