(* Unit + property tests for the DIFC core: tags, labels, capability
   sets, flow judgments, the safe-label-change rule. *)

open W5_difc

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* ---- helpers ---- *)

let s_tag name = Tag.fresh ~name Tag.Secrecy
let i_tag name = Tag.fresh ~name Tag.Integrity

let label_of_ints tags = Label.of_list tags

(* A pool of tags reused by the qcheck generators so that set
   operations actually collide. *)
let pool = Array.init 16 (fun i -> s_tag (Printf.sprintf "q%d" i))

let gen_label =
  QCheck.Gen.(
    map
      (fun picks ->
        label_of_ints (List.map (fun i -> pool.(i mod 16)) picks))
      (list_size (0 -- 8) (0 -- 15)))

let arb_label =
  QCheck.make gen_label ~print:(fun l -> Label.to_string l)

(* ---- tag tests ---- *)

let test_tag_identity () =
  let a = s_tag "same" and b = s_tag "same" in
  check bool_c "same name, distinct tags" false (Tag.equal a b);
  check bool_c "self equal" true (Tag.equal a a);
  check Alcotest.string "name kept" "same" (Tag.name a);
  check bool_c "kind" true (Tag.kind a = Tag.Secrecy);
  check bool_c "integrity kind" true (Tag.kind (i_tag "w") = Tag.Integrity)

let test_tag_restricted () =
  let plain = s_tag "plain" in
  let locked = Tag.fresh ~name:"locked" ~restricted:true Tag.Secrecy in
  check bool_c "plain not restricted" false (Tag.restricted plain);
  check bool_c "locked restricted" true (Tag.restricted locked)

let test_tag_ids_monotonic () =
  let a = s_tag "a" and b = s_tag "b" in
  check bool_c "ids increase" true (Tag.id b > Tag.id a)

(* ---- label tests ---- *)

let test_label_basics () =
  let a = s_tag "a" and b = s_tag "b" in
  let l = Label.of_list [ a; b; a ] in
  check int_c "dedup" 2 (Label.cardinal l);
  check bool_c "mem a" true (Label.mem a l);
  check bool_c "remove" false (Label.mem a (Label.remove a l));
  check bool_c "empty subset" true (Label.subset Label.empty l);
  check bool_c "not superset" false (Label.subset l (Label.singleton a))

let test_label_ops () =
  let a = s_tag "a" and b = s_tag "b" and c = s_tag "c" in
  let ab = Label.of_list [ a; b ] and bc = Label.of_list [ b; c ] in
  check int_c "union" 3 (Label.cardinal (Label.union ab bc));
  check int_c "inter" 1 (Label.cardinal (Label.inter ab bc));
  check bool_c "diff" true (Label.equal (Label.diff ab bc) (Label.singleton a))

(* qcheck: lattice laws *)
let prop_union_commutative =
  QCheck.Test.make ~name:"label union commutative" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      Label.equal (Label.union a b) (Label.union b a))

let prop_union_associative =
  QCheck.Test.make ~name:"label union associative" ~count:200
    (QCheck.triple arb_label arb_label arb_label) (fun (a, b, c) ->
      Label.equal
        (Label.union a (Label.union b c))
        (Label.union (Label.union a b) c))

let prop_union_idempotent =
  QCheck.Test.make ~name:"label union idempotent" ~count:200 arb_label
    (fun a -> Label.equal (Label.union a a) a)

let prop_subset_antisymmetric =
  QCheck.Test.make ~name:"subset antisymmetry" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      if Label.subset a b && Label.subset b a then Label.equal a b else true)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"union is an upper bound" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      let j = Label.union a b in
      Label.subset a j && Label.subset b j)

let prop_meet_lower_bound =
  QCheck.Test.make ~name:"inter is a lower bound" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      let m = Label.inter a b in
      Label.subset m a && Label.subset m b)

let prop_absorption =
  QCheck.Test.make ~name:"lattice absorption" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      Label.equal (Label.union a (Label.inter a b)) a
      && Label.equal (Label.inter a (Label.union a b)) a)

(* ---- capability tests ---- *)

let test_capability_sets () =
  let t = s_tag "cap" in
  let o = Capability.Set.empty in
  check bool_c "no add" false (Capability.Set.can_add t o);
  let o = Capability.Set.add (Capability.make t Capability.Plus) o in
  check bool_c "add" true (Capability.Set.can_add t o);
  check bool_c "no drop" false (Capability.Set.can_drop t o);
  check bool_c "no dual" false (Capability.Set.has_dual t o);
  let o = Capability.Set.grant_dual t o in
  check bool_c "dual" true (Capability.Set.has_dual t o);
  check bool_c "addable" true (Label.mem t (Capability.Set.addable o));
  check bool_c "droppable" true (Label.mem t (Capability.Set.droppable o))

let test_capability_ordering () =
  let t = s_tag "ord" in
  let plus = Capability.make t Capability.Plus in
  let minus = Capability.make t Capability.Minus in
  check bool_c "plus <> minus" false (Capability.equal plus minus);
  check bool_c "tag" true (Tag.equal (Capability.tag plus) t);
  check bool_c "subset" true
    (Capability.Set.subset
       (Capability.Set.of_list [ plus ])
       (Capability.Set.of_list [ plus; minus ]))

(* ---- flow tests ---- *)

let labels ?(s = []) ?(i = []) () =
  Flow.make ~secrecy:(label_of_ints s) ~integrity:(label_of_ints i) ()

let test_flow_secrecy () =
  let a = s_tag "fa" in
  let tainted = labels ~s:[ a ] () in
  check bool_c "low to high" true (Flow.can_flow Flow.bottom tainted);
  check bool_c "high to low" false (Flow.can_flow tainted Flow.bottom);
  check bool_c "reflexive" true (Flow.can_flow tainted tainted)

let test_flow_integrity () =
  let w = i_tag "fw" in
  let vouched = labels ~i:[ w ] () in
  check bool_c "vouched to plain" true (Flow.can_flow vouched Flow.bottom);
  check bool_c "plain to vouched" false (Flow.can_flow Flow.bottom vouched)

let test_check_flow_explanations () =
  let a = s_tag "xa" and w = i_tag "xw" in
  (match Flow.check_flow (labels ~s:[ a ] ()) Flow.bottom with
  | Error (Flow.Secrecy_violation l) ->
      check bool_c "offending tag" true (Label.mem a l)
  | Ok () | Error _ -> Alcotest.fail "expected secrecy violation");
  match Flow.check_flow Flow.bottom (labels ~i:[ w ] ()) with
  | Error (Flow.Integrity_violation l) ->
      check bool_c "missing tag" true (Label.mem w l)
  | Ok () | Error _ -> Alcotest.fail "expected integrity violation"

let test_join () =
  let a = s_tag "ja" and b = s_tag "jb" in
  let w = i_tag "jw" and v = i_tag "jv" in
  let l1 = labels ~s:[ a ] ~i:[ w; v ] () in
  let l2 = labels ~s:[ b ] ~i:[ w ] () in
  let j = Flow.join l1 l2 in
  check int_c "secrecy unions" 2 (Label.cardinal j.Flow.secrecy);
  check int_c "integrity meets" 1 (Label.cardinal j.Flow.integrity)

let test_flow_with_caps () =
  let a = s_tag "wa" in
  let tainted = labels ~s:[ a ] () in
  let minus = Capability.Set.of_list [ Capability.make a Capability.Minus ] in
  let plus = Capability.Set.of_list [ Capability.make a Capability.Plus ] in
  check bool_c "src can declassify" true
    (Flow.can_flow_with ~src_caps:minus tainted Flow.bottom);
  check bool_c "dst can absorb" true
    (Flow.can_flow_with ~dst_caps:plus tainted Flow.bottom);
  check bool_c "no caps still blocked" false
    (Flow.can_flow_with tainted Flow.bottom)

let test_label_change_rule () =
  let a = s_tag "ca" in
  let dual = Capability.Set.grant_dual a Capability.Set.empty in
  let from = label_of_ints [ a ] in
  (* dropping with t- is fine *)
  check bool_c "drop with caps" true
    (Flow.check_label_change ~caps:dual ~old_label:from ~new_label:Label.empty
    = Ok ());
  (* dropping without caps is not *)
  (match
     Flow.check_label_change ~caps:Capability.Set.empty ~old_label:from
       ~new_label:Label.empty
   with
  | Error (Flow.Unauthorized_drop l) ->
      check bool_c "names dropped tag" true (Label.mem a l)
  | Ok () | Error _ -> Alcotest.fail "expected unauthorized drop");
  (* adding without caps is not *)
  match
    Flow.check_label_change ~caps:Capability.Set.empty ~old_label:Label.empty
      ~new_label:from
  with
  | Error (Flow.Unauthorized_add l) ->
      check bool_c "names added tag" true (Label.mem a l)
  | Ok () | Error _ -> Alcotest.fail "expected unauthorized add"

let test_export_blockers () =
  let a = s_tag "ea" and b = s_tag "eb" in
  let l = labels ~s:[ a; b ] () in
  let minus_a = Capability.Set.of_list [ Capability.make a Capability.Minus ] in
  let blockers = Flow.export_blockers ~caps:minus_a l in
  check bool_c "a clearable" false (Label.mem a blockers);
  check bool_c "b blocks" true (Label.mem b blockers)

(* qcheck: flow laws *)
let arb_flow_labels =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun s i ->
          Flow.make ~secrecy:s ~integrity:i ())
        gen_label gen_label)
    ~print:(fun l -> Format.asprintf "%a" Flow.pp_labels l)

let prop_flow_reflexive =
  QCheck.Test.make ~name:"flow reflexive" ~count:200 arb_flow_labels (fun l ->
      Flow.can_flow l l)

let prop_flow_transitive =
  QCheck.Test.make ~name:"flow transitive" ~count:500
    (QCheck.triple arb_flow_labels arb_flow_labels arb_flow_labels)
    (fun (a, b, c) ->
      if Flow.can_flow a b && Flow.can_flow b c then Flow.can_flow a c
      else true)

let prop_join_flows_from_both =
  QCheck.Test.make ~name:"both inputs flow to their join" ~count:200
    (QCheck.pair arb_flow_labels arb_flow_labels) (fun (a, b) ->
      let j = Flow.join a b in
      (* join keeps all secrecy, so a and b flow to it secrecy-wise;
         integrity-wise the join is the meet, which both dominate. *)
      Flow.can_flow a j && Flow.can_flow b j)

let prop_check_flow_agrees =
  QCheck.Test.make ~name:"check_flow agrees with can_flow" ~count:500
    (QCheck.pair arb_flow_labels arb_flow_labels) (fun (a, b) ->
      Flow.can_flow a b = (Flow.check_flow a b = Ok ()))

let prop_safe_change_no_caps_means_no_change =
  (* The generic rule needs a capability for every delta, in either
     direction; the anyone-may-taint convention is layered on in the
     syscall module, not here. *)
  QCheck.Test.make ~name:"no caps: no change allowed" ~count:500
    (QCheck.pair arb_label arb_label) (fun (old_label, new_label) ->
      match
        Flow.check_label_change ~caps:Capability.Set.empty ~old_label
          ~new_label
      with
      | Ok () -> Label.equal old_label new_label
      | Error _ -> not (Label.equal old_label new_label))

let prop_safe_change_dual_allows_anything =
  QCheck.Test.make ~name:"dual over pool: any change allowed" ~count:200
    (QCheck.pair arb_label arb_label) (fun (old_label, new_label) ->
      let caps =
        Array.fold_left
          (fun acc t -> Capability.Set.grant_dual t acc)
          Capability.Set.empty pool
      in
      Flow.check_label_change ~caps ~old_label ~new_label = Ok ())

(* ---- principal tests ---- *)

let test_principals () =
  let u = Principal.make Principal.End_user "u" in
  let d = Principal.make Principal.Developer "d" in
  check bool_c "distinct" false (Principal.equal u d);
  check bool_c "external" true
    (Principal.is_external (Principal.make Principal.External_client "c"));
  check bool_c "user not external" false (Principal.is_external u);
  check Alcotest.string "name" "u" (Principal.name u)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "tag identity" `Quick test_tag_identity;
    Alcotest.test_case "tag restricted flag" `Quick test_tag_restricted;
    Alcotest.test_case "tag ids monotonic" `Quick test_tag_ids_monotonic;
    Alcotest.test_case "label basics" `Quick test_label_basics;
    Alcotest.test_case "label ops" `Quick test_label_ops;
    Alcotest.test_case "capability sets" `Quick test_capability_sets;
    Alcotest.test_case "capability ordering" `Quick test_capability_ordering;
    Alcotest.test_case "flow secrecy" `Quick test_flow_secrecy;
    Alcotest.test_case "flow integrity" `Quick test_flow_integrity;
    Alcotest.test_case "flow explanations" `Quick test_check_flow_explanations;
    Alcotest.test_case "labels join" `Quick test_join;
    Alcotest.test_case "flow with caps" `Quick test_flow_with_caps;
    Alcotest.test_case "safe label change" `Quick test_label_change_rule;
    Alcotest.test_case "export blockers" `Quick test_export_blockers;
    Alcotest.test_case "principals" `Quick test_principals;
  ]
  @ qsuite
      [
        prop_union_commutative;
        prop_union_associative;
        prop_union_idempotent;
        prop_subset_antisymmetric;
        prop_join_upper_bound;
        prop_meet_lower_bound;
        prop_absorption;
        prop_flow_reflexive;
        prop_flow_transitive;
        prop_join_flows_from_both;
        prop_check_flow_agrees;
        prop_safe_change_no_caps_means_no_change;
        prop_safe_change_dual_allows_anything;
      ]

(* ---- pretty-printers and misc ---- *)

let test_pp_functions () =
  let t = s_tag "ppt" in
  let rendered = Format.asprintf "%a" Tag.pp t in
  check bool_c "tag pp mentions name" true
    (String.length rendered > 0
    &&
    let rec scan i =
      i + 3 <= String.length rendered
      && (String.sub rendered i 3 = "ppt" || scan (i + 1))
    in
    scan 0);
  let l = Label.of_list [ t ] in
  check bool_c "label pp braces" true (String.length (Label.to_string l) >= 2);
  check Alcotest.string "empty label" "{}" (Label.to_string Label.empty);
  let fl = Flow.make ~secrecy:l () in
  check bool_c "flow pp" true (String.length (Format.asprintf "%a" Flow.pp_labels fl) > 0);
  check bool_c "denial pp" true
    (String.length (Flow.denial_to_string (Flow.Secrecy_violation l)) > 0);
  let cap = Capability.make t Capability.Plus in
  check bool_c "cap pp ends with +" true
    (let s = Format.asprintf "%a" Capability.pp cap in
     String.length s > 0 && s.[String.length s - 1] = '+')

let test_principal_collections () =
  let a = Principal.make Principal.End_user "a" in
  let b = Principal.make Principal.End_user "b" in
  let set = Principal.Set.of_list [ a; b; a ] in
  check int_c "set dedup" 2 (Principal.Set.cardinal set);
  let map = Principal.Map.singleton a 1 in
  check (Alcotest.option int_c) "map" (Some 1) (Principal.Map.find_opt a map);
  check (Alcotest.option int_c) "map miss" None (Principal.Map.find_opt b map)

let test_capability_addable_droppable () =
  let t1 = s_tag "ad1" and t2 = s_tag "ad2" in
  let o =
    Capability.Set.of_list
      [ Capability.make t1 Capability.Plus; Capability.make t2 Capability.Minus ]
  in
  check bool_c "addable has t1" true (Label.mem t1 (Capability.Set.addable o));
  check bool_c "addable lacks t2" false (Label.mem t2 (Capability.Set.addable o));
  check bool_c "droppable has t2" true (Label.mem t2 (Capability.Set.droppable o));
  check int_c "cardinal" 2 (Capability.Set.cardinal o);
  check bool_c "set equal" true
    (Capability.Set.equal o (Capability.Set.of_list (Capability.Set.to_list o)))

let test_tag_of_id () =
  let t = s_tag "ofid" in
  (match Tag.of_id (Tag.id t) with
  | Some t' -> check bool_c "roundtrip" true (Tag.equal t t')
  | None -> Alcotest.fail "lost tag");
  check bool_c "unknown id" true (Tag.of_id max_int = None)

let suite =
  suite
  @ [
      Alcotest.test_case "pretty printers" `Quick test_pp_functions;
      Alcotest.test_case "principal collections" `Quick test_principal_collections;
      Alcotest.test_case "capability addable/droppable" `Quick
        test_capability_addable_droppable;
      Alcotest.test_case "tag of_id" `Quick test_tag_of_id;
    ]

(* ---- flow misc ---- *)

let test_flow_helpers () =
  let a = s_tag "fh" in
  let l = labels ~s:[ a ] () in
  check bool_c "equal_labels reflexive" true (Flow.equal_labels l l);
  check bool_c "not equal to bottom" false (Flow.equal_labels l Flow.bottom);
  let raised = Flow.raise_secrecy (label_of_ints [ a ]) Flow.bottom in
  check bool_c "raise adds" true (Label.mem a raised.Flow.secrecy);
  check bool_c "make defaults" true (Flow.equal_labels (Flow.make ()) Flow.bottom)

let test_flow_with_caps_integrity () =
  let w = i_tag "fwi" in
  let vouched_sink = labels ~i:[ w ] () in
  (* a plain source cannot satisfy the sink's integrity demand *)
  check bool_c "blocked" false (Flow.can_flow_with Flow.bottom vouched_sink);
  (* unless the source can endorse (t+)... *)
  let plus = Capability.Set.of_list [ Capability.make w Capability.Plus ] in
  check bool_c "src endorses" true
    (Flow.can_flow_with ~src_caps:plus Flow.bottom vouched_sink);
  (* ...or the sink can waive the requirement (t-) *)
  let minus = Capability.Set.of_list [ Capability.make w Capability.Minus ] in
  check bool_c "dst waives" true
    (Flow.can_flow_with ~dst_caps:minus Flow.bottom vouched_sink)

let test_label_iterators () =
  let a = s_tag "li1" and b = s_tag "li2" in
  let l = Label.of_list [ a; b ] in
  check bool_c "exists" true (Label.exists (fun t -> Tag.equal t a) l);
  check bool_c "for_all" false (Label.for_all (fun t -> Tag.equal t a) l);
  check int_c "filter" 1 (Label.cardinal (Label.filter (fun t -> Tag.equal t b) l));
  check bool_c "choose" true (Label.choose_opt l <> None);
  check bool_c "choose empty" true (Label.choose_opt Label.empty = None);
  let count = Label.fold (fun _ acc -> acc + 1) l 0 in
  check int_c "fold" 2 count;
  let seen = ref 0 in
  Label.iter (fun _ -> incr seen) l;
  check int_c "iter" 2 !seen

let suite =
  suite
  @ [
      Alcotest.test_case "flow helpers" `Quick test_flow_helpers;
      Alcotest.test_case "flow_with_caps integrity" `Quick
        test_flow_with_caps_integrity;
      Alcotest.test_case "label iterators" `Quick test_label_iterators;
    ]

let test_check_labels_change_both_lattices () =
  let s = s_tag "clc.s" and w = i_tag "clc.w" in
  let old_labels = labels ~s:[ s ] ~i:[] () in
  let new_labels = labels ~s:[] ~i:[ w ] () in
  (* needs s- AND w+ *)
  (match
     Flow.check_labels_change ~caps:Capability.Set.empty ~old_labels ~new_labels
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unauthorized double change");
  let caps =
    Capability.Set.of_list
      [ Capability.make s Capability.Minus; Capability.make w Capability.Plus ]
  in
  check bool_c "with both caps" true
    (Flow.check_labels_change ~caps ~old_labels ~new_labels = Ok ());
  (* secrecy ok but integrity missing: fails on the second lattice *)
  let caps_s_only =
    Capability.Set.of_list [ Capability.make s Capability.Minus ]
  in
  match Flow.check_labels_change ~caps:caps_s_only ~old_labels ~new_labels with
  | Error (Flow.Unauthorized_add l) -> check bool_c "names w" true (Label.mem w l)
  | Ok () | Error _ -> Alcotest.fail "expected integrity add denial"

let suite =
  suite
  @ [
      Alcotest.test_case "check_labels_change both lattices" `Quick
        test_check_labels_change_both_lattices;
    ]

let prop_label_compare_consistent =
  QCheck.Test.make ~name:"label compare agrees with equal" ~count:300
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      (Label.compare a b = 0) = Label.equal a b)

let suite = suite @ qsuite [ prop_label_compare_consistent ]

(* ---- interning and memoization ----

   The memoized judgments must agree with the unmemoized reference
   implementations on arbitrary labels — both below and above the
   small-operand bypass (the generator's 0–8-tag labels over a
   16-tag pool straddle it). *)

let prop_subset_memo_agrees =
  QCheck.Test.make ~name:"memoized subset agrees with reference" ~count:300
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      Label.subset a b = Label.subset_ref a b
      && Label.subset b a = Label.subset_ref b a
      && Label.subset a a = Label.subset_ref a a)

let prop_union_memo_agrees =
  QCheck.Test.make ~name:"memoized union agrees with reference" ~count:300
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      Label.equal (Label.union a b) (Label.union_ref a b)
      && Label.equal (Label.union b a) (Label.union_ref b a))

let prop_can_flow_memo_agrees =
  QCheck.Test.make ~name:"memoized can_flow agrees with reference" ~count:300
    (QCheck.pair arb_flow_labels arb_flow_labels) (fun (a, b) ->
      Flow.can_flow a b = Flow.can_flow_ref a b
      && Flow.can_flow b a = Flow.can_flow_ref b a)

let prop_join_memo_agrees =
  QCheck.Test.make ~name:"memoized join agrees with reference" ~count:300
    (QCheck.pair arb_flow_labels arb_flow_labels) (fun (a, b) ->
      Flow.equal_labels (Flow.join a b) (Flow.join_ref a b)
      && Flow.equal_labels (Flow.join b a) (Flow.join_ref b a))

let test_intern_identity () =
  let a = s_tag "int.a" and b = s_tag "int.b" in
  let l1 = Label.of_list [ a; b ] and l2 = Label.of_list [ b; a ] in
  check bool_c "interned equality is physical" true
    (Label.intern l1 == Label.intern l2);
  check bool_c "ids agree" true (Label.interned_id l1 = Label.interned_id l2);
  check bool_c "id positive" true (Label.interned_id l1 > 0);
  check bool_c "distinct content, distinct id" false
    (Label.interned_id (Label.singleton a) = Label.interned_id l1);
  (* interning never changes the content *)
  check bool_c "same content" true (Label.equal (Label.intern l1) l2);
  let p1 = Flow.make ~secrecy:l1 () and p2 = Flow.make ~secrecy:l2 () in
  check bool_c "pair interning canonicalizes" true
    (Flow.intern p1 == Flow.intern p2);
  check bool_c "pair ids agree" true (Flow.labels_id p1 = Flow.labels_id p2)

let snapshot_of name =
  match
    List.find_opt (fun s -> s.Memo.name = name) (Memo.snapshots ())
  with
  | Some s -> s
  | None -> Alcotest.fail ("no memo cache named " ^ name)

(* Fresh tags so these probes cannot collide with earlier tests'
   cache entries. Labels are 4 tags each: past the small-operand
   bypass, so the memo path is exercised. *)
let big_pair () =
  let tag i = s_tag (Printf.sprintf "memo.%d" i) in
  let l1 = Label.of_list [ tag 0; tag 1; tag 2; tag 3 ] in
  let l2 = Label.of_list [ tag 4; tag 5; tag 6; tag 7 ] in
  (l1, l2)

let test_memo_counters () =
  let l1, l2 = big_pair () in
  let before = snapshot_of "subset" in
  ignore (Label.subset l1 l2);
  let after_miss = snapshot_of "subset" in
  check int_c "first probe misses" (before.Memo.misses + 1)
    after_miss.Memo.misses;
  ignore (Label.subset l1 l2);
  ignore (Label.subset l1 l2);
  let after_hits = snapshot_of "subset" in
  check int_c "repeat probes hit" (after_miss.Memo.hits + 2)
    after_hits.Memo.hits;
  check int_c "no further misses" after_miss.Memo.misses
    after_hits.Memo.misses

let test_cache_cap_eviction () =
  let cap = (snapshot_of "subset").Memo.capacity in
  check bool_c "capacity positive" true (cap > 0);
  (* More distinct (a, b) key pairs than the cap: 70 distinct 4-tag
     labels give 70*69 > 4096 ordered pairs, so the cache must flush
     at least once and end no larger than its cap. *)
  let tags = Array.init 74 (fun i -> s_tag (Printf.sprintf "evict.%d" i)) in
  let lbls =
    Array.init 70 (fun i ->
        Label.of_list [ tags.(i); tags.(i + 1); tags.(i + 2); tags.(i + 3) ])
  in
  let flushes_before = (snapshot_of "subset").Memo.flushes in
  Array.iter
    (fun a -> Array.iter (fun b -> if a != b then ignore (Label.subset a b)) lbls)
    lbls;
  let s = snapshot_of "subset" in
  check bool_c "cap flush happened" true (s.Memo.flushes > flushes_before);
  check bool_c "size bounded by cap" true (s.Memo.size <= cap);
  (* and judgments after the flush are still correct *)
  check bool_c "still sound" true
    (Label.subset lbls.(0) lbls.(1) = Label.subset_ref lbls.(0) lbls.(1))

let test_memo_reset_all () =
  let l1, l2 = big_pair () in
  ignore (Label.subset l1 l2);
  Memo.reset_all ();
  let s = snapshot_of "subset" in
  check int_c "hits zeroed" 0 s.Memo.hits;
  check int_c "misses zeroed" 0 s.Memo.misses;
  check int_c "size zeroed" 0 s.Memo.size;
  (* caches only memoize pure judgments: everything still works *)
  check bool_c "still sound" true
    (Label.subset l1 l2 = Label.subset_ref l1 l2);
  check bool_c "union still sound" true
    (Label.equal (Label.union l1 l2) (Label.union_ref l1 l2))

let suite =
  suite
  @ [
      Alcotest.test_case "intern: physical equality" `Quick test_intern_identity;
      Alcotest.test_case "memo hit/miss counters" `Quick test_memo_counters;
      Alcotest.test_case "memo cache cap eviction" `Quick test_cache_cap_eviction;
      Alcotest.test_case "memo reset_all" `Quick test_memo_reset_all;
    ]
  @ qsuite
      [
        prop_subset_memo_agrees;
        prop_union_memo_agrees;
        prop_can_flow_memo_agrees;
        prop_join_memo_agrees;
      ]
