(* Tests for the label-safe secondary-index layer: candidate sets are
   hints only — every query must return exactly what a full tainting
   scan would, impose the same taint, and fail with the same denials,
   while visiting far fewer rows. *)

open W5_difc
open W5_os
open W5_store

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Os_error.to_string e)

let run kernel ?(labels = Flow.bottom) ?(caps = Capability.Set.empty) ~name f =
  let result = ref None in
  let proc =
    match
      Kernel.spawn kernel ~name
        ~owner:(Kernel.kernel_principal kernel)
        ~labels ~caps ~limits:Resource.unlimited
        (fun ctx -> result := Some (f ctx))
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "spawn: %s" (Os_error.to_string e)
  in
  Kernel.run_proc kernel proc;
  match !result with
  | Some v -> v
  | None -> Alcotest.failf "process died: %s" (Format.asprintf "%a" Proc.pp proc)

let fresh_store () =
  let kernel = Kernel.create () in
  run kernel ~name:"init" (fun ctx -> ok (Obj_store.init ctx));
  kernel

let counter kernel name =
  W5_obs.Metrics.value (W5_obs.Metrics.counter (Kernel.metrics kernel) name)

let rows_scanned kernel = counter kernel "w5_store_rows_scanned_total"
let index_hits kernel = counter kernel "w5_store_index_hits_total"

let put ctx ~collection ~id ?(labels = Flow.bottom) fields =
  ok (Obj_store.put ctx ~collection ~id ~labels (Record.of_fields fields))

(* ---- store_path: injective escaping ---- *)

let test_sanitize_injective () =
  (* "a/b" and "a_b" used to alias to the same on-disk name *)
  check bool_c "slash vs underscore" true
    (Store_path.sanitize "a/b" <> Store_path.sanitize "a_b");
  check string_c "slash" "a_sb" (Store_path.sanitize "a/b");
  check string_c "underscore doubles" "a__b" (Store_path.sanitize "a_b");
  List.iter
    (fun name ->
      check string_c
        ("roundtrip " ^ name)
        name
        (Store_path.unsanitize (Store_path.sanitize name)))
    [ "plain"; "a/b"; "a_b"; "a__b"; "_"; "/"; "_s"; "a_sb"; "" ]

let prop_sanitize_roundtrip =
  let arb =
    QCheck.make
      QCheck.Gen.(
        string_size (0 -- 16)
          ~gen:(oneof [ map Char.chr (97 -- 122); return '_'; return '/' ]))
      ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"sanitize roundtrips" ~count:500 arb (fun name ->
      Store_path.unsanitize (Store_path.sanitize name) = name)

let test_no_aliasing_in_store () =
  (* two logically distinct ids must be two distinct objects *)
  let kernel = fresh_store () in
  run kernel ~name:"writer" (fun ctx ->
      ok (Obj_store.create_collection ctx "files" ~labels:Flow.bottom);
      put ctx ~collection:"files" ~id:"a/b" [ ("v", "slash") ];
      put ctx ~collection:"files" ~id:"a_b" [ ("v", "underscore") ];
      check string_c "slash object" "slash"
        (Record.get_or
           (ok (Obj_store.get ctx ~collection:"files" ~id:"a/b" ()))
           "v" ~default:"?");
      check string_c "underscore object" "underscore"
        (Record.get_or
           (ok (Obj_store.get ctx ~collection:"files" ~id:"a_b" ()))
           "v" ~default:"?");
      (* listing returns logical ids in logical order *)
      check (Alcotest.list string_c) "list" [ "a/b"; "a_b" ]
        (ok (Obj_store.list ctx ~collection:"files")))

(* ---- query engine edges ---- *)

let test_field_contains_large_value () =
  (* ~1 MB field: the old recursive substring search overflowed *)
  let big = String.make (1024 * 1024) 'x' ^ "needle" in
  let r = Record.of_fields [ ("blob", big) ] in
  check bool_c "found at end" true
    (Query.eval (Query.field_contains "blob" "needle") r);
  check bool_c "absent" false
    (Query.eval (Query.field_contains "blob" "absent") r);
  let kernel = fresh_store () in
  run kernel ~name:"querier" (fun ctx ->
      ok (Obj_store.create_collection ctx "blobs" ~labels:Flow.bottom);
      put ctx ~collection:"blobs" ~id:"b1" [ ("blob", big) ];
      let rows =
        ok
          (Query.select ctx ~collection:"blobs"
             ~where:(Query.field_contains "blob" "needle"))
      in
      check int_c "selected through 1MB field" 1 (List.length rows))

(* ---- indexed vs scan: results, metering, acceptance ratio ---- *)

let seed_flat kernel ~collection ~rows ~matches =
  run kernel ~name:"seed" (fun ctx ->
      ok (Obj_store.create_collection ctx collection ~labels:Flow.bottom);
      Index.declare ctx ~collection ~field:"u" Index.Equality;
      Index.declare ctx ~collection ~field:"score" Index.Int_order;
      for i = 0 to rows - 1 do
        put ctx ~collection
          ~id:(Printf.sprintf "r%05d" i)
          [
            ("u", if i < matches then "hot" else "u" ^ string_of_int i);
            ("score", string_of_int i);
          ]
      done)

let select_ids ctx ~use_index ~collection where =
  List.map fst (ok (Query.select ctx ~use_index ~collection ~where))

let test_indexed_equals_scan () =
  let kernel = fresh_store () in
  seed_flat kernel ~collection:"c" ~rows:40 ~matches:3;
  run kernel ~name:"querier" (fun ctx ->
      let check_same name where =
        check (Alcotest.list string_c) name
          (select_ids ctx ~use_index:false ~collection:"c" where)
          (select_ids ctx ~use_index:true ~collection:"c" where)
      in
      let hits = index_hits kernel in
      check_same "equality" (Query.field_equals "u" "hot");
      check_same "range" (Query.field_int_at_least "score" 35);
      check_same "conjunction"
        Query.(field_equals "u" "hot" &&& field_int_at_least "score" 1);
      check_same "miss" (Query.field_equals "u" "nobody");
      check bool_c "index served the indexed arms" true
        (index_hits kernel - hits >= 4))

let test_acceptance_ratio () =
  (* the PR's bar: >= 50x fewer labeled row reads than a scan *)
  let rows = 1000 and matches = 10 in
  let kernel = fresh_store () in
  seed_flat kernel ~collection:"big" ~rows ~matches;
  run kernel ~name:"querier" (fun ctx ->
      let where = Query.field_equals "u" "hot" in
      let s0 = rows_scanned kernel in
      let indexed = select_ids ctx ~use_index:true ~collection:"big" where in
      let s1 = rows_scanned kernel in
      let scanned = select_ids ctx ~use_index:false ~collection:"big" where in
      let s2 = rows_scanned kernel in
      check (Alcotest.list string_c) "same rows" scanned indexed;
      check int_c "indexed visits only the matches" matches (s1 - s0);
      check int_c "scan visits everything" rows (s2 - s1);
      check bool_c "at least 50x fewer" true ((s2 - s1) / max 1 (s1 - s0) >= 50))

(* ---- taint and denial equivalence ---- *)

let test_indexed_taint_equals_scan_taint () =
  let kernel = fresh_store () in
  let tag = Tag.fresh ~name:"idx.s" Tag.Secrecy in
  let secret = Flow.make ~secrecy:(Label.singleton tag) () in
  run kernel ~name:"seed" (fun ctx ->
      ok (Obj_store.create_collection ctx "msgs" ~labels:Flow.bottom);
      Index.declare ctx ~collection:"msgs" ~field:"u" Index.Equality;
      put ctx ~collection:"msgs" ~id:"m1" [ ("u", "bob") ];
      put ctx ~collection:"msgs" ~id:"m2" ~labels:secret
        [ ("u", "secret-admirer") ]);
  let taint_after use_index =
    run kernel ~name:"querier" (fun ctx ->
        let ids = select_ids ctx ~use_index ~collection:"msgs"
            (Query.field_equals "u" "bob") in
        check (Alcotest.list string_c) "public match only" [ "m1" ] ids;
        (Syscall.my_labels ctx).Flow.secrecy)
  in
  (* the candidate set never touches m2, yet the taint must still
     carry its tag — identical to the scanning path *)
  check bool_c "indexed absorbs skipped row" true
    (Label.mem tag (taint_after true));
  check bool_c "same taint as scan" true
    (Label.equal (taint_after true) (taint_after false))

let test_restricted_tag_denied_identically () =
  let kernel = fresh_store () in
  let locked = Tag.fresh ~name:"idx.locked" ~restricted:true Tag.Secrecy in
  run kernel ~name:"seed" (fun ctx ->
      ok (Obj_store.create_collection ctx "vault" ~labels:Flow.bottom);
      Index.declare ctx ~collection:"vault" ~field:"u" Index.Equality;
      put ctx ~collection:"vault" ~id:"v1" [ ("u", "bob") ];
      put ctx ~collection:"vault" ~id:"v2"
        ~labels:(Flow.make ~secrecy:(Label.singleton locked) ())
        [ ("u", "eve") ]);
  (* without [locked+], both paths deny before reading anything — even
     though the indexed candidate set contains only the public row *)
  run kernel ~name:"snoop" (fun ctx ->
      List.iter
        (fun use_index ->
          match
            Query.select ctx ~use_index ~collection:"vault"
              ~where:(Query.field_equals "u" "bob")
          with
          | Error e when Os_error.is_denied e -> ()
          | Ok _ -> Alcotest.fail "restricted collection served"
          | Error e -> Alcotest.failf "wrong error: %s" (Os_error.to_string e))
        [ true; false ]);
  (* with t+, both succeed and agree *)
  run kernel
    ~caps:(Capability.Set.of_list [ Capability.make locked Capability.Plus ])
    ~name:"reader" (fun ctx ->
      let where = Query.field_equals "u" "bob" in
      check (Alcotest.list string_c) "agree under t+"
        (select_ids ctx ~use_index:false ~collection:"vault" where)
        (select_ids ctx ~use_index:true ~collection:"vault" where))

(* ---- invalidation: writes that bypass Obj_store ---- *)

let test_raw_write_invalidates_index () =
  let kernel = fresh_store () in
  seed_flat kernel ~collection:"live" ~rows:6 ~matches:2;
  let hot ctx =
    select_ids ctx ~use_index:true ~collection:"live"
      (Query.field_equals "u" "hot")
  in
  run kernel ~name:"reader" (fun ctx ->
      check int_c "warm index" 2 (List.length (hot ctx)));
  (* a hostile app rewrites a row straight through Syscall *)
  run kernel ~name:"hostile" (fun ctx ->
      ok
        (Syscall.write_file ctx
           (Obj_store.object_path "live" "r00005")
           ~data:(Record.encode (Record.of_fields [ ("u", "hot") ]))));
  run kernel ~name:"reader2" (fun ctx ->
      (* the dir-version stamp catches the bypassing write: the index
         rebuilds and serves the new truth, never the stale posting *)
      check (Alcotest.list string_c) "sees the raw write"
        [ "r00000"; "r00001"; "r00005" ]
        (hot ctx))

let test_stray_directory_forces_fallback () =
  let kernel = fresh_store () in
  seed_flat kernel ~collection:"odd" ~rows:4 ~matches:1;
  run kernel ~name:"mkdir" (fun ctx ->
      ok
        (Syscall.mkdir ctx
           (Obj_store.collection_path "odd" ^ "/subdir")
           ~labels:Flow.bottom));
  run kernel ~name:"querier" (fun ctx ->
      (* a scan aborts on the sub-directory; the index must not paper
         over that, so both paths return the same error *)
      let outcome use_index =
        Query.select ctx ~use_index ~collection:"odd"
          ~where:(Query.field_equals "u" "hot")
      in
      match (outcome true, outcome false) with
      | Error a, Error b ->
          check string_c "same error" (Os_error.to_string b)
            (Os_error.to_string a)
      | Ok _, _ | _, Ok _ -> Alcotest.fail "selected past a stray directory")

(* ---- the equivalence property ----

   Random mutation histories (puts, deletes, raw writes, junk rows,
   secret rows), then random queries: the indexed path must agree with
   the scanning path on results, order, and resulting taint. *)

type op =
  | Put of string * string * bool (* id, value, secret? *)
  | Delete of string
  | Raw_write of string * string (* id, raw bytes *)

let op_gen =
  QCheck.Gen.(
    let id = map (fun i -> "i" ^ string_of_int i) (0 -- 5) in
    frequency
      [
        (6, map2 (fun id v -> Put (id, "v" ^ string_of_int v, false)) id (0 -- 3));
        (2, map2 (fun id v -> Put (id, "v" ^ string_of_int v, true)) id (0 -- 3));
        (2, map (fun id -> Delete id) id);
        (1, map (fun id -> Raw_write (id, "%%%junk%%%")) id);
        (1, map2 (fun id v -> Raw_write (id, Record.encode (Record.of_fields [ ("u", "v" ^ string_of_int v) ]))) id (0 -- 3));
      ])

let arb_history =
  QCheck.make
    QCheck.Gen.(list_size (1 -- 25) op_gen)
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Put (id, v, s) ->
                 Printf.sprintf "put %s=%s%s" id v (if s then " (secret)" else "")
             | Delete id -> "del " ^ id
             | Raw_write (id, data) -> Printf.sprintf "raw %s=%S" id data)
           ops))

let prop_indexed_equals_scan =
  QCheck.Test.make ~name:"indexed select = scanning select" ~count:60
    arb_history (fun ops ->
      let kernel = fresh_store () in
      let tag = Tag.fresh ~name:"prop.s" Tag.Secrecy in
      let secret = Flow.make ~secrecy:(Label.singleton tag) () in
      run kernel ~name:"mutate" (fun ctx ->
          ok (Obj_store.create_collection ctx "h" ~labels:Flow.bottom);
          Index.declare ctx ~collection:"h" ~field:"u" Index.Equality;
          List.iter
            (function
              | Put (id, v, is_secret) ->
                  put ctx ~collection:"h" ~id
                    ~labels:(if is_secret then secret else Flow.bottom)
                    [ ("u", v) ]
              | Delete id -> (
                  match Obj_store.delete ctx ~collection:"h" ~id with
                  | Ok () | Error (Os_error.Not_found _) -> ()
                  | Error e ->
                      Alcotest.failf "delete: %s" (Os_error.to_string e))
              | Raw_write (id, data) -> (
                  let path = Obj_store.object_path "h" id in
                  match Syscall.write_file ctx path ~data with
                  | Ok () -> ()
                  | Error (Os_error.Not_found _) ->
                      ok
                        (Syscall.create_file ctx path ~labels:Flow.bottom ~data)
                  | Error e ->
                      Alcotest.failf "raw write: %s" (Os_error.to_string e)))
            ops);
      let observe use_index where =
        run kernel ~name:"observe" (fun ctx ->
            match Query.select ctx ~use_index ~collection:"h" ~where with
            | Ok rows ->
                Ok
                  (List.map (fun (id, r) -> (id, Record.fields r)) rows,
                   Syscall.my_labels ctx)
            | Error e -> Error (Os_error.to_string e))
      in
      List.for_all
        (fun where ->
          match (observe true where, observe false where) with
          | Ok (rows_i, labels_i), Ok (rows_s, labels_s) ->
              rows_i = rows_s && Flow.equal_labels labels_i labels_s
          | Error a, Error b -> a = b
          | Ok _, Error _ | Error _, Ok _ -> false)
        [
          Query.field_equals "u" "v0";
          Query.field_equals "u" "v9";
          Query.(field_equals "u" "v1" &&& has_field "u");
          Query.always;
        ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "sanitize injective" `Quick test_sanitize_injective;
    Alcotest.test_case "no aliasing in store" `Quick test_no_aliasing_in_store;
    Alcotest.test_case "field_contains on 1MB value" `Quick
      test_field_contains_large_value;
    Alcotest.test_case "indexed equals scan" `Quick test_indexed_equals_scan;
    Alcotest.test_case "acceptance: 50x fewer reads" `Quick
      test_acceptance_ratio;
    Alcotest.test_case "indexed taint equals scan taint" `Quick
      test_indexed_taint_equals_scan_taint;
    Alcotest.test_case "restricted tag denied identically" `Quick
      test_restricted_tag_denied_identically;
    Alcotest.test_case "raw write invalidates index" `Quick
      test_raw_write_invalidates_index;
    Alcotest.test_case "stray directory forces fallback" `Quick
      test_stray_directory_forces_fallback;
  ]
  @ qsuite [ prop_sanitize_roundtrip; prop_indexed_equals_scan ]
