(* The deterministic interleaved scheduler, pinned down.

   Units: preemption at quantum expiry, quota kills mid-slice (with
   the audit batch flushed), gate atomicity under preemption, and the
   admission bookkeeping. Properties (300+ cases each way): the same
   seed over a randomized process mix yields byte-identical audit logs
   and final filesystem state across two runs, and seeded interleaved
   execution converges to exactly the sequential final state when the
   processes' writes are disjoint. *)

open W5_difc
open W5_os

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* ---- kernel-level arenas ---- *)

(* A process is a list of small steps over the syscall API. Writes go
   under the process's own prefix, so any two schedules of the same
   mix agree on the final store; reads and consumes create the tick
   pressure that forces preemption. *)
type step =
  | Write of int
  | Read_shared of int
  | Read_own of int
  | Burn of int

let step_name = function
  | Write n -> Printf.sprintf "w%d" n
  | Read_shared n -> Printf.sprintf "rs%d" n
  | Read_own n -> Printf.sprintf "ro%d" n
  | Burn n -> Printf.sprintf "b%d" n

let shared_path n = Printf.sprintf "/shared/s%d" (n mod 4)
let own_path i n = Printf.sprintf "/mix/p%d-%d" i (n mod 4)

let body_of i steps ctx =
  List.iter
    (fun step ->
      match step with
      | Write n ->
          ignore
            (Syscall.create_file ctx (own_path i n) ~labels:Flow.bottom
               ~data:(Printf.sprintf "p%d writes %d" i n));
          ignore
            (Syscall.write_file ctx (own_path i n)
               ~data:(Printf.sprintf "p%d wrote %d" i n))
      | Read_shared n -> ignore (Syscall.read_file ctx (shared_path n))
      | Read_own n -> ignore (Syscall.read_file ctx (own_path i n))
      | Burn n -> ignore (Syscall.consume ctx ~cpu:(1 + (n mod 3))))
    steps

let fresh_kernel () =
  let kernel = Kernel.create () in
  (* the shared files every mix reads *)
  (match
     Kernel.spawn kernel ~name:"setup"
       ~owner:(Principal.make Principal.Provider "setup")
       ~labels:Flow.bottom ~caps:Capability.Set.empty
       ~limits:Resource.unlimited
       (fun ctx ->
         ignore (Syscall.mkdir ctx "/shared" ~labels:Flow.bottom);
         ignore (Syscall.mkdir ctx "/mix" ~labels:Flow.bottom);
         for n = 0 to 3 do
           ignore
             (Syscall.create_file ctx (shared_path n) ~labels:Flow.bottom
                ~data:(Printf.sprintf "shared %d" n))
         done)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup spawn: %s" (Os_error.to_string e));
  Kernel.run kernel;
  kernel

let spawn_mix kernel mix =
  List.iteri
    (fun i steps ->
      match
        Kernel.spawn kernel
          ~name:(Printf.sprintf "p%d" i)
          ~owner:(Principal.make Principal.Developer (Printf.sprintf "d%d" i))
          ~labels:Flow.bottom ~caps:Capability.Set.empty
          ~limits:Resource.default_app_limits (body_of i steps)
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spawn p%d: %s" i (Os_error.to_string e))
    mix

let audit_text kernel =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Audit.pp_entry e))
    (Audit.entries (Kernel.audit kernel));
  Buffer.contents buf

let fs_image kernel =
  let fs = Kernel.fs kernel in
  let buf = Buffer.create 4096 in
  let rec walk path =
    match Fs.stat fs path with
    | Error _ -> ()
    | Ok st -> (
        match st.Fs.kind with
        | Fs.Directory -> (
            match Fs.readdir fs path with
            | Error _ -> ()
            | Ok (names, _) ->
                List.iter
                  (fun name ->
                    walk (if path = "/" then "/" ^ name else path ^ "/" ^ name))
                  names)
        | Fs.Regular -> (
            match Fs.read fs path with
            | Error _ -> ()
            | Ok (data, labels) ->
                Buffer.add_string buf
                  (Format.asprintf "%s [%a] %s\n" path Flow.pp_labels labels
                     data)))
  in
  walk "/";
  Buffer.contents buf

let run_scheduled ~seed ~quantum mix =
  let kernel = fresh_kernel () in
  spawn_mix kernel mix;
  let stats = Sched.run ~quantum ~policy:(Sched.Seeded seed) kernel in
  (kernel, stats)

(* ---- units ---- *)

let test_preemption_interleaves () =
  let mix = [ List.init 20 (fun n -> Burn n); List.init 20 (fun n -> Burn n) ] in
  let kernel = fresh_kernel () in
  spawn_mix kernel mix;
  let stats = Sched.run ~quantum:1 ~policy:Sched.Fifo kernel in
  check int_c "both completed" 2 stats.Sched.completed;
  check bool_c "preempted repeatedly" true (stats.Sched.preemptions > 4);
  check bool_c "more slices than processes" true (stats.Sched.slices > 4);
  check int_c "nobody killed" 0 stats.Sched.killed;
  (* every process is runnable-to-exit exactly once *)
  List.iter
    (fun p ->
      if p.Proc.proc_name <> "setup" then begin
        check bool_c "exited" true (p.Proc.state = Proc.Exited);
        check bool_c "finish tick stamped" true (p.Proc.finished_tick <> None)
      end)
    (Kernel.processes kernel)

let test_quota_kill_mid_slice () =
  let kernel = fresh_kernel () in
  (* a hog: burns CPU forever, with a tight limit; a neighbour that
     must be unaffected *)
  (match
     Kernel.spawn kernel ~name:"hog"
       ~owner:(Principal.make Principal.Developer "hog")
       ~labels:Flow.bottom ~caps:Capability.Set.empty
       ~limits:(Resource.make_limits ~cpu:25 ())
       (fun ctx ->
         ignore (Syscall.create_file ctx "/mix/hog-before" ~labels:Flow.bottom
                   ~data:"written before the kill");
         let rec burn () =
           ignore (Syscall.consume ctx ~cpu:1);
           burn ()
         in
         burn ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spawn hog: %s" (Os_error.to_string e));
  spawn_mix kernel [ List.init 10 (fun n -> Write n) ];
  let stats = Sched.run ~quantum:3 ~policy:(Sched.Seeded 7) kernel in
  check int_c "hog killed" 1 stats.Sched.killed;
  check int_c "neighbour completed" 1 stats.Sched.completed;
  let hog =
    List.find (fun p -> p.Proc.proc_name = "hog") (Kernel.processes kernel)
  in
  (match hog.Proc.state with
  | Proc.Killed reason ->
      check bool_c "killed by quota" true
        (String.length reason >= 5 && String.sub reason 0 5 = "quota")
  | _ -> Alcotest.fail "hog not killed");
  check bool_c "finish tick stamped on kill" true
    (hog.Proc.finished_tick <> None);
  (* the killed process's audit batch flushed: its pre-kill write is
     in the log, and so are the Quota_hit and Killed records *)
  let events_for pid =
    List.filter_map
      (fun e ->
        if e.Audit.pid = pid then Some (Audit.event_kind e.Audit.event)
        else None)
      (Audit.entries (Kernel.audit kernel))
  in
  let hog_events = events_for hog.Proc.pid in
  check bool_c "pre-kill events flushed" true
    (List.mem "object_labeled" hog_events);
  check bool_c "quota hit recorded" true (List.mem "quota_hit" hog_events);
  check bool_c "kill recorded" true (List.mem "killed" hog_events);
  (* the file it wrote before dying really exists *)
  check bool_c "pre-kill write durable" true
    (Fs.exists (Kernel.fs kernel) "/mix/hog-before")

(* A gate child's syscalls run nested inside the caller's dispatch, so
   a quantum-sized caller must never be preempted mid-gate: the
   child's audit events are contiguous per invocation. *)
let test_gate_atomic_under_preemption () =
  let kernel = fresh_kernel () in
  Kernel.register_gate kernel ~name:"echo"
    ~owner:(Principal.make Principal.Provider "gatekeeper")
    ~caps:Capability.Set.empty
    ~entry:(fun ctx arg ->
      ignore
        (Syscall.create_file ctx
           (Printf.sprintf "/mix/gate-%d" (Syscall.pid ctx))
           ~labels:Flow.bottom ~data:arg);
      ignore (Syscall.respond ctx arg));
  let caller i ctx =
    for n = 0 to 5 do
      ignore (Syscall.consume ctx ~cpu:1);
      ignore
        (Syscall.invoke_gate ctx "echo" ~arg:(Printf.sprintf "c%d-%d" i n))
    done
  in
  List.iter
    (fun i ->
      match
        Kernel.spawn kernel
          ~name:(Printf.sprintf "caller%d" i)
          ~owner:(Principal.make Principal.Developer "d")
          ~labels:Flow.bottom ~caps:Capability.Set.empty
          ~limits:Resource.default_app_limits (caller i)
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spawn: %s" (Os_error.to_string e))
    [ 0; 1; 2 ];
  let stats = Sched.run ~quantum:1 ~policy:(Sched.Seeded 99) kernel in
  check int_c "all callers completed" 3 stats.Sched.completed;
  check bool_c "preemption happened" true (stats.Sched.preemptions > 0);
  (* contiguity: once a gate child's first event appears, all of that
     child's events appear before any other pid's *)
  let entries = Audit.entries (Kernel.audit kernel) in
  let gate_pids =
    List.filter_map
      (fun e ->
        match e.Audit.event with
        | Audit.Gate_invoked { child; _ } -> Some child
        | _ -> None)
      entries
  in
  check bool_c "gates ran" true (List.length gate_pids >= 18);
  List.iter
    (fun pid ->
      let seqs =
        List.filter_map
          (fun e -> if e.Audit.pid = pid then Some e.Audit.seq else None)
          entries
      in
      match seqs with
      | [] -> ()
      | first :: _ ->
          let last = List.nth seqs (List.length seqs - 1) in
          check int_c
            (Printf.sprintf "gate child %d events contiguous" pid)
            (List.length seqs)
            (last - first + 1))
    gate_pids

let test_admission_skips_executed_bodies () =
  (* Platform.with_ctx-style: a body spawned and run synchronously
     before the drain must not run twice *)
  let kernel = fresh_kernel () in
  let hits = ref 0 in
  (match
     Kernel.spawn kernel ~name:"eager"
       ~owner:(Principal.make Principal.Provider "p")
       ~labels:Flow.bottom ~caps:Capability.Set.empty
       ~limits:Resource.unlimited
       (fun _ -> incr hits)
   with
  | Ok proc ->
      Kernel.run_proc kernel proc;
      check int_c "ran synchronously" 1 !hits
  | Error e -> Alcotest.failf "spawn: %s" (Os_error.to_string e));
  let stats = Sched.run kernel in
  check int_c "not admitted again" 0 stats.Sched.completed;
  check int_c "not run again" 1 !hits

let test_process_count_matches () =
  let kernel = fresh_kernel () in
  spawn_mix kernel [ [ Write 0 ]; [ Write 1 ]; [ Burn 2 ] ];
  check int_c "count = table size" (List.length (Kernel.processes kernel))
    (Kernel.process_count kernel);
  ignore (Sched.run kernel);
  check int_c "count = table size after run"
    (List.length (Kernel.processes kernel))
    (Kernel.process_count kernel);
  ignore (Kernel.reap kernel);
  check int_c "count = table size after reap"
    (List.length (Kernel.processes kernel))
    (Kernel.process_count kernel)

(* ---- properties ---- *)

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Write n) (0 -- 3));
        (3, map (fun n -> Read_shared n) (0 -- 3));
        (2, map (fun n -> Read_own n) (0 -- 3));
        (3, map (fun n -> Burn n) (0 -- 2));
      ])

let gen_mix =
  QCheck.Gen.(list_size (2 -- 6) (list_size (1 -- 12) gen_step))

let arb_case =
  QCheck.make
    ~print:(fun (seed, quantum, mix) ->
      Printf.sprintf "seed=%d quantum=%d mix=[%s]" seed quantum
        (String.concat " | "
           (List.map
              (fun steps -> String.concat ";" (List.map step_name steps))
              mix)))
    QCheck.Gen.(
      map
        (fun ((seed, quantum), mix) -> (seed, quantum, mix))
        (pair (pair (0 -- 1000000) (1 -- 6)) gen_mix))

let prop_same_seed_same_bytes =
  QCheck.Test.make
    ~name:"same seed => byte-identical audit log and final store (300)"
    ~count:300 arb_case
    (fun (seed, quantum, mix) ->
      let k1, s1 = run_scheduled ~seed ~quantum mix in
      let k2, s2 = run_scheduled ~seed ~quantum mix in
      audit_text k1 = audit_text k2
      && fs_image k1 = fs_image k2
      && s1 = s2)

let prop_interleaved_converges_to_sequential =
  QCheck.Test.make
    ~name:"interleaved final store = sequential final store" ~count:150
    arb_case
    (fun (seed, quantum, mix) ->
      let k1, _ = run_scheduled ~seed ~quantum mix in
      let k2 = fresh_kernel () in
      spawn_mix k2 mix;
      Kernel.run k2;
      fs_image k1 = fs_image k2)

let prop_different_seeds_still_converge =
  QCheck.Test.make
    ~name:"any two seeds agree on the final store" ~count:100 arb_case
    (fun (seed, quantum, mix) ->
      let k1, _ = run_scheduled ~seed ~quantum mix in
      let k2, _ = run_scheduled ~seed:(seed + 1) ~quantum mix in
      fs_image k1 = fs_image k2)

let suite =
  [
    Alcotest.test_case "quantum preemption interleaves processes" `Quick
      test_preemption_interleaves;
    Alcotest.test_case "quota kill mid-slice flushes the audit batch" `Quick
      test_quota_kill_mid_slice;
    Alcotest.test_case "gate invocations stay atomic under preemption" `Quick
      test_gate_atomic_under_preemption;
    Alcotest.test_case "admission skips already-executed bodies" `Quick
      test_admission_skips_executed_bodies;
    Alcotest.test_case "process_count tracks the table" `Quick
      test_process_count_matches;
    QCheck_alcotest.to_alcotest prop_same_seed_same_bytes;
    QCheck_alcotest.to_alcotest prop_interleaved_converges_to_sequential;
    QCheck_alcotest.to_alcotest prop_different_seeds_still_converge;
  ]
