(* Deterministic fault injection for federation: the seeded plans of
   W5_fault.Fault, and Sync's retry / idempotence / crash-recovery
   machinery under them.

   The headline property: for ANY seeded plan (finitely many faults),
   bidirectional sync converges — both replicas byte-equal, seen
   clocks at or above both writes — and the converged contents and
   denial counts are identical to a fault-free run of the same edits.

   The unit tests pin the mechanisms the property relies on: duplicate
   deliveries are no-ops, a crash between export and apply leaves a
   "pending" write-ahead intent that the next run replays (and a crash
   after the apply leaves an "applied" one that only needs its
   bookkeeping finished), retries back off, and exhausted retry
   budgets surface as timeouts, not errors. *)

open W5_store
open W5_platform
open W5_federation
module Fault = W5_fault.Fault

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok_s = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (W5_os.Os_error.to_string e)

let make_side name = { Sync.platform = Platform.create (); provider_name = name }

let setup ?faults ?(files = [ "profile" ]) () =
  let a = make_side "prov-a" and b = make_side "prov-b" in
  ignore (ok_s (Platform.signup a.Sync.platform ~user:"zoe" ~password:"pw"));
  ignore (ok_s (Platform.signup b.Sync.platform ~user:"zoe" ~password:"pw"));
  let link = ok_s (Sync.establish ?faults ~a ~b ~user:"zoe" ~files ()) in
  (a, b, link)

let write side ~file fields =
  let account = Platform.account_exn side.Sync.platform "zoe" in
  match
    Platform.write_user_record side.Sync.platform account ~file
      (Record.of_fields fields)
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" (W5_os.Os_error.to_string e)

let exported side ~file =
  let account = Platform.account_exn side.Sync.platform "zoe" in
  ok_os (Sync.export_record side.Sync.platform account ~file)

let moved (s : Sync.stats) = s.Sync.a_to_b + s.Sync.b_to_a + s.Sync.merged

(* ---- the plan itself ---- *)

let test_plan_deterministic () =
  let p1 = Fault.of_seed ~seed:42 () and p2 = Fault.of_seed ~seed:42 () in
  check bool_c "same seed, same schedule" true
    (Fault.schedule p1 = Fault.schedule p2);
  check int_c "default plan size" 8 (Fault.pending p1);
  check bool_c "describe names the seed" true
    (String.length (Fault.describe p1) > 0
    && Fault.describe p1 = Fault.describe p2);
  let p3 = Fault.of_seed ~seed:43 () in
  check bool_c "different seed, different schedule" true
    (Fault.schedule p1 <> Fault.schedule p3)

let test_scripted_consult_mechanics () =
  let plan = Fault.scripted [ (0, Fault.Drop); (0, Fault.Duplicate); (5, Fault.Delay 2) ] in
  check bool_c "fires at step 0" true
    (Fault.consult plan ~op:"x" ~file:"f" = Some Fault.Drop);
  (* the second step-0 entry was passed over; it fires at the next
     consultation instead of silently disappearing *)
  check bool_c "late entry still fires" true
    (Fault.consult plan ~op:"x" ~file:"f" = Some Fault.Duplicate);
  for _ = 2 to 4 do
    check bool_c "quiet between" true (Fault.consult plan ~op:"x" ~file:"f" = None)
  done;
  check bool_c "fires at step 5" true
    (Fault.consult plan ~op:"x" ~file:"f" = Some (Fault.Delay 2));
  check bool_c "exhausted" true (Fault.exhausted plan);
  check bool_c "no more" true (Fault.consult plan ~op:"x" ~file:"f" = None);
  check int_c "steps counted" 7 (Fault.steps_taken plan);
  check int_c "all fired" 3 (List.length (Fault.fired plan))

(* ---- retries and timeouts ---- *)

(* After the settling sync, an edit on A works through exactly two
   consultations: step 0 the export request, step 1 the apply. *)

let test_drop_retries_with_backoff () =
  let a, _, link = setup () in
  ignore (ok_s (Sync.sync link));
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "dropped-once") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Drop) ]);
  let tick0 = W5_os.Kernel.tick (Platform.kernel a.Sync.platform) in
  let stats = ok_s (Sync.sync link) in
  check int_c "one retry" 1 stats.Sync.retried;
  check int_c "still copied" 1 stats.Sync.a_to_b;
  check bool_c "converged" true (Sync.converged link);
  check bool_c "backoff burned logical ticks" true
    (W5_os.Kernel.tick (Platform.kernel a.Sync.platform) > tick0);
  (* the lost delivery is audit-visible: why this sync took 2 attempts *)
  let faults =
    W5_os.Audit.query
      (W5_os.Kernel.audit (Platform.kernel a.Sync.platform))
      ~kind:"sync_fault" ()
  in
  check int_c "fault recorded" 1 (List.length faults)

let test_attempts_exhausted_times_out () =
  let a, _, link = setup () in
  ignore (ok_s (Sync.sync link));
  Sync.configure ~max_attempts:2 link;
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "unlucky") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Drop); (2, Fault.Drop) ]);
  let stats = ok_s (Sync.sync link) in
  check int_c "gave up this round" 1 stats.Sync.timed_out;
  check int_c "both attempts dropped" 2 stats.Sync.retried;
  check int_c "nothing moved" 0 (moved stats);
  check bool_c "not yet converged" true (not (Sync.converged link));
  (* the next round (schedule exhausted) completes the transfer *)
  let stats = ok_s (Sync.sync link) in
  check int_c "caught up" 1 stats.Sync.a_to_b;
  check bool_c "converged after retry round" true (Sync.converged link)

let test_delay_beyond_budget_times_out () =
  let a, _, link = setup () in
  ignore (ok_s (Sync.sync link));
  Sync.configure ~round_budget:4 link;
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "very-late") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Delay 9) ]);
  let stats = ok_s (Sync.sync link) in
  check int_c "abandoned past the deadline" 1 stats.Sync.timed_out;
  check bool_c "recovers next round" true
    (moved (ok_s (Sync.sync link)) = 1 && Sync.converged link)

(* ---- idempotent re-application ---- *)

let test_duplicate_delivery_is_noop () =
  let a, b, link = setup () in
  ignore (ok_s (Sync.sync link));
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "sent-twice") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Duplicate) ]);
  let stats = ok_s (Sync.sync link) in
  check int_c "counted once" 1 stats.Sync.a_to_b;
  check bool_c "converged" true (Sync.converged link);
  let rb, vb = exported b ~file:"profile" in
  check (Alcotest.option string_c) "content applied" (Some "sent-twice")
    (Record.get rb "rev");
  (* the second delivery must not have bumped the replica's version,
     or every other link of a mesh would see a phantom edit *)
  let stats = ok_s (Sync.sync link) in
  check int_c "no phantom edit afterwards" 0 (moved stats);
  let _, vb' = exported b ~file:"profile" in
  check int_c "version stable" vb vb'

(* ---- crash-restart recovery via the write-ahead intent ---- *)

let intent_on side ~peer =
  let account = Platform.account_exn side.Sync.platform "zoe" in
  Platform.read_user_record side.Sync.platform account
    ~file:(Sync.intent_file ~peer)

let test_crash_before_apply_recovers () =
  let a, b, link = setup () in
  ignore (ok_s (Sync.sync link));
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "survives-crash") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Crash_before_apply) ]);
  (match Sync.sync link with
  | Error e -> check bool_c "crash surfaced" true (String.length e > 6)
  | Ok _ -> Alcotest.fail "crash did not surface");
  (* the destination is label-consistent: old content, plus a pending
     intent record carrying the in-flight write under the user's labels *)
  let intent = ok_os (intent_on b ~peer:"prov-a") in
  check (Alcotest.option string_c) "intent pending" (Some "pending")
    (Record.get intent "phase");
  check (Alcotest.option string_c) "intent names the file" (Some "profile")
    (Record.get intent "file");
  let rb, _ = exported b ~file:"profile" in
  check bool_c "apply did not happen" true (Record.get rb "rev" <> Some "survives-crash");
  (* restart: the next sync replays the intent, then converges with no
     duplicate merge *)
  let stats = ok_s (Sync.sync link) in
  check int_c "one intent replayed" 1 stats.Sync.recovered;
  check int_c "no duplicate merge" 0 stats.Sync.merged;
  check bool_c "converged" true (Sync.converged link);
  let rb, _ = exported b ~file:"profile" in
  check (Alcotest.option string_c) "write completed" (Some "survives-crash")
    (Record.get rb "rev");
  check bool_c "intent cleared" true (Result.is_error (intent_on b ~peer:"prov-a"));
  (* recovery is audit-visible on the provider that performed it *)
  let recs =
    W5_os.Audit.query
      (W5_os.Kernel.audit (Platform.kernel b.Sync.platform))
      ~kind:"sync_recovered" ()
  in
  check int_c "recovery recorded" 1 (List.length recs)

let test_crash_after_apply_recovers () =
  let a, b, link = setup () in
  ignore (ok_s (Sync.sync link));
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "acked-never") ];
  Sync.set_faults link (Fault.scripted [ (1, Fault.Crash_after_apply) ]);
  (match Sync.sync link with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "crash did not surface");
  (* the write landed but was never acknowledged: intent says so *)
  let intent = ok_os (intent_on b ~peer:"prov-a") in
  check (Alcotest.option string_c) "intent applied" (Some "applied")
    (Record.get intent "phase");
  let rb, _ = exported b ~file:"profile" in
  check (Alcotest.option string_c) "write landed pre-crash" (Some "acked-never")
    (Record.get rb "rev");
  (* restart: bookkeeping only — nothing re-applied, nothing re-merged *)
  let stats = ok_s (Sync.sync link) in
  check int_c "one intent finished" 1 stats.Sync.recovered;
  check int_c "nothing re-copied" 0 (moved stats);
  check bool_c "converged" true (Sync.converged link);
  check bool_c "intent cleared" true (Result.is_error (intent_on b ~peer:"prov-a"))

(* ---- durable seen clocks across agent restarts ---- *)

let test_restart_resumes_from_durable_state () =
  let a, b, link = setup () in
  ignore (ok_s (Sync.sync link));
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "2") ];
  ignore (ok_s (Sync.sync link));
  (* a fresh agent between the same sides loads the persisted clocks:
     nothing is re-copied, nothing spuriously merges *)
  let link2 =
    ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile" ] ())
  in
  let stats = ok_s (Sync.sync link2) in
  check int_c "restart is a no-op" 0 (moved stats);
  (* and a deletion keeps propagating across the restart *)
  let account_a = Platform.account_exn a.Sync.platform "zoe" in
  ignore
    (ok_os (Platform.delete_user_file a.Sync.platform account_a ~file:"profile"));
  let link3 =
    ok_s (Sync.establish ~a ~b ~user:"zoe" ~files:[ "profile" ] ())
  in
  ignore (ok_s (Sync.sync link3));
  let account_b = Platform.account_exn b.Sync.platform "zoe" in
  check bool_c "delete propagated by restarted agent" true
    (Result.is_error
       (Platform.read_user_record b.Sync.platform account_b ~file:"profile"))

(* ---- the convergence property ---- *)

(* Drive a link to a quiescent fixed point: a round that moves,
   retries, times out and recovers nothing, with byte-equal replicas.
   Crashes along the way are restarts of the same link. *)
let drive link =
  let rec go n =
    if n = 0 then Alcotest.fail "did not converge under faults"
    else
      match Sync.sync link with
      | Ok s
        when moved s + s.Sync.timed_out + s.Sync.recovered + s.Sync.retried = 0
             && Sync.converged link ->
          ()
      | Ok _ | Error _ -> go (n - 1)
  in
  go 60

let denial_count side =
  List.length
    (W5_os.Audit.denials (W5_os.Kernel.audit (Platform.kernel side.Sync.platform)))

(* The same concurrent edits, once over a faulty transport and once
   over a perfect one. *)
let converged_state ?faults seed =
  let a, b, link = setup ?faults ~files:[ "profile"; "notes" ] () in
  write a ~file:"profile" [ ("user", "zoe"); ("rev", "a" ^ string_of_int seed) ];
  write b ~file:"profile" [ ("user", "zoe"); ("rev", "b" ^ string_of_int (seed mod 13)) ];
  write b ~file:"notes" [ ("note", "n" ^ string_of_int (seed mod 7)) ];
  drive link;
  let snapshot side ~file = Record.encode (fst (exported side ~file)) in
  let clock_ok ~file =
    (* the link acknowledged versions at or above both replicas' *)
    let seen = Sync.seen_clock link ~file in
    let _, va = exported a ~file and _, vb = exported b ~file in
    Vector_clock.get seen ~node:"prov-a" >= va
    && Vector_clock.get seen ~node:"prov-b" >= vb
  in
  ( [
      snapshot a ~file:"profile";
      snapshot b ~file:"profile";
      snapshot a ~file:"notes";
      snapshot b ~file:"notes";
    ],
    clock_ok ~file:"profile" && clock_ok ~file:"notes",
    denial_count a + denial_count b )

let prop_faulty_run_converges_like_clean ?(count = 500) ~name gen_seed =
  QCheck.Test.make ~name ~count gen_seed (fun seed ->
      let faults = Fault.of_seed ~drops:4 ~delays:2 ~duplicates:2 ~crashes:2 ~seed () in
      let faulty, clocks_ok, faulty_denials = converged_state ~faults seed in
      let clean, _, clean_denials = converged_state seed in
      (* both replicas equal each other AND the fault-free outcome *)
      faulty = clean && clocks_ok && faulty_denials = clean_denials)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let convergence_cases =
  let fixed =
    [
      prop_faulty_run_converges_like_clean ~name:"faults converge (500 cases)"
        QCheck.(int_bound 100_000);
    ]
  in
  (* CI adds one run-derived seed on top of QCheck's fixed exploration;
     the name carries the seed so a red run names its reproduction *)
  match Option.bind (Sys.getenv_opt "W5_FAULT_SEED") int_of_string_opt with
  | None -> fixed
  | Some env_seed ->
      Printf.printf "test_fault: W5_FAULT_SEED=%d\n%!" env_seed;
      fixed
      @ [
          prop_faulty_run_converges_like_clean ~count:50
            ~name:(Printf.sprintf "faults converge (env seed %d)" env_seed)
            (QCheck.map
               (fun k -> abs (env_seed + k) mod 1_000_003)
               QCheck.(int_bound 1_000));
        ]

let suite =
  [
    Alcotest.test_case "plan determinism" `Quick test_plan_deterministic;
    Alcotest.test_case "scripted consult mechanics" `Quick
      test_scripted_consult_mechanics;
    Alcotest.test_case "drop retries with backoff" `Quick
      test_drop_retries_with_backoff;
    Alcotest.test_case "attempts exhausted -> timeout" `Quick
      test_attempts_exhausted_times_out;
    Alcotest.test_case "delay beyond budget -> timeout" `Quick
      test_delay_beyond_budget_times_out;
    Alcotest.test_case "duplicate delivery is a no-op" `Quick
      test_duplicate_delivery_is_noop;
    Alcotest.test_case "crash before apply: intent replayed" `Quick
      test_crash_before_apply_recovers;
    Alcotest.test_case "crash after apply: bookkeeping only" `Quick
      test_crash_after_apply_recovers;
    Alcotest.test_case "restart resumes from durable state" `Quick
      test_restart_resumes_from_durable_state;
  ]
  @ qsuite convergence_cases
