let () =
  Alcotest.run "w5"
    [
      ("difc", Test_difc.suite);
      ("os", Test_os.suite);
      ("sched", Test_sched.suite);
      ("obs", Test_obs.suite);
      ("baseline", Test_baseline.suite);
      ("provenance", Test_provenance.suite);
      ("store", Test_store.suite);
      ("index", Test_index.suite);
      ("http", Test_http.suite);
      ("platform", Test_platform.suite);
      ("rank", Test_rank.suite);
      ("federation", Test_federation.suite);
      ("trace", Test_trace.suite);
      ("fault", Test_fault.suite);
      ("apps", Test_apps.suite);
      ("workload", Test_workload.suite);
      ("analysis", Test_analysis.suite);
      ("interfere", Test_interfere.suite);
      ("integration", Test_integration.suite);
      ("noninterference", Test_noninterference.suite);
      ("soak", Test_soak.suite);
    ]
