(* Tests for the preemption-aware interference analysis: the shared
   severity/exit-code contract, the declarative syscall footprint
   table (pinned against the implementation's actual preemption
   behavior so the two cannot drift), the label-update commutativity
   law, the MHP model checked against the exhaustive interleaving
   oracle, the race/TOCTOU detector on clean and seeded-broken
   models, and the differential soundness replay over seeded
   scheduler soak runs. *)

open W5_difc
open W5_os
open W5_analysis

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let fail_err e = Alcotest.failf "unexpected error: %s" (Os_error.to_string e)
let ok = function Ok v -> v | Error e -> fail_err e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* Run [f] inside a fresh synchronous process on [kernel]. *)
let run kernel ?(labels = Flow.bottom) ?(caps = Capability.Set.empty) ~name f =
  let proc =
    ok
      (Kernel.spawn kernel ~name
         ~owner:(Kernel.kernel_principal kernel)
         ~labels ~caps ~limits:Resource.unlimited
         (fun ctx -> f ctx))
  in
  Kernel.run_proc kernel proc

(* ---- satellite: the shared severity → exit-code contract ---- *)

let test_exit_contract () =
  check int_c "clean" 0 (Severity.exit_code None);
  check int_c "info" 0 (Severity.exit_code (Some Severity.Info));
  check int_c "warning" 2 (Severity.exit_code (Some Severity.Warning));
  check int_c "high" 3 (Severity.exit_code (Some Severity.High));
  check int_c "critical" 4 (Severity.exit_code (Some Severity.Critical));
  check bool_c "healthy maps clean" true (Severity.of_health_severity 0 = None);
  check bool_c "degraded maps warning" true
    (Severity.of_health_severity 2 = Some Severity.Warning);
  check bool_c "unreachable maps high" true
    (Severity.of_health_severity 3 = Some Severity.High);
  check bool_c "worst picks high" true
    (Severity.worst [ Severity.Info; Severity.High; Severity.Warning ]
    = Some Severity.High);
  check bool_c "worst of nothing" true (Severity.worst [] = None);
  check bool_c "vet re-export is the same type" true
    (Vet.exit_code (Vet.report (Static.capture (W5_platform.Platform.create ())))
     >= 0)

(* ---- the footprint table: structural pins ---- *)

let spec_op (s : Syscall.Spec.t) = s.Syscall.Spec.op

let test_spec_table_unique_and_findable () =
  let names = List.map spec_op Syscall.Spec.all in
  check int_c "every op appears once"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun s ->
      match Syscall.Spec.find (spec_op s) with
      | Some s' -> check string_c "find roundtrips" (spec_op s) (spec_op s')
      | None -> Alcotest.failf "Spec.find %s returned None" (spec_op s))
    Syscall.Spec.all;
  check bool_c "unknown op" true (Syscall.Spec.find "fs.frobnicate" = None)

(* The invariant the whole analysis leans on: in the real table every
   op revalidates its declared dependencies inside its own (atomic)
   dispatch, so the shipped kernel has no stale-check window. The
   seeded TOCTOU fixture works precisely by breaking this. *)
let test_spec_revalidates_dependencies () =
  List.iter
    (fun s ->
      check bool_c (spec_op s ^ " revalidates what it depends on") true
        (List.for_all
           (fun c -> List.mem c s.Syscall.Spec.revalidates)
           s.Syscall.Spec.depends))
    Syscall.Spec.all

let test_spec_preempt_flags () =
  let no_preempt =
    List.filter (fun s -> not s.Syscall.Spec.entry_preempt) Syscall.Spec.all
  in
  check
    Alcotest.(list string)
    "fs.exists is the only op without an entry preemption point"
    [ "fs.exists" ]
    (List.map spec_op no_preempt)

(* ---- the footprint table vs. the implementation ---- *)

(* Drive real syscalls with a counting preemption hook installed and
   require the hook to fire exactly when the spec's [entry_preempt]
   says it does. This is the anti-drift test: dispatch consumes the
   spec record, and this pins the observable consequence. *)
let test_preempt_point_matches_spec () =
  let kernel = Kernel.create () in
  let fires = ref 0 in
  Kernel.set_preempt_hook kernel (Some (fun _ -> incr fires));
  let observed = ref [] in
  let step op f =
    let before = !fires in
    f ();
    observed := (op, !fires - before) :: !observed
  in
  run kernel ~name:"probe" (fun ctx ->
      step "fs.mkdir" (fun () ->
          ok (Syscall.mkdir ctx "/d" ~labels:Flow.bottom));
      step "fs.create" (fun () ->
          ok (Syscall.create_file ctx "/d/f" ~labels:Flow.bottom ~data:"x"));
      step "fs.stat" (fun () -> ignore (ok (Syscall.stat ctx "/d/f")));
      step "fs.exists" (fun () -> ignore (Syscall.file_exists ctx "/d/f"));
      step "fs.read" (fun () -> ignore (ok (Syscall.read_file ctx "/d/f")));
      step "fs.readdir" (fun () -> ignore (ok (Syscall.readdir ctx "/d")));
      step "fs.append" (fun () ->
          ok (Syscall.append_file ctx "/d/f" ~data:"y"));
      step "fs.unlink" (fun () -> ok (Syscall.unlink ctx "/d/f")));
  check bool_c "probe exercised ops" true (List.length !observed = 8);
  List.iter
    (fun (op, fired) ->
      let spec =
        match Syscall.Spec.find op with
        | Some s -> s
        | None -> Alcotest.failf "no spec for %s" op
      in
      check int_c (op ^ " preemption fires iff spec says so")
        (if spec.Syscall.Spec.entry_preempt then 1 else 0)
        fired)
    !observed

(* Gate children run nested inside the caller's dispatch: exactly one
   preemption point (the gate.invoke entry) no matter how many
   syscalls the gate body performs — the atomicity the MHP model
   encodes as [Sched.gate_children_atomic]. *)
let test_gate_children_atomic_in_kernel () =
  let kernel = Kernel.create () in
  Kernel.register_gate kernel ~name:"probe-gate"
    ~owner:(Kernel.kernel_principal kernel)
    ~caps:Capability.Set.empty
    ~entry:(fun ctx arg ->
      ok (Syscall.mkdir ctx "/gate-made" ~labels:Flow.bottom);
      ignore (ok (Syscall.stat ctx "/gate-made"));
      ignore (Syscall.respond ctx arg));
  let fires = ref 0 in
  Kernel.set_preempt_hook kernel (Some (fun _ -> incr fires));
  run kernel ~name:"caller" (fun ctx ->
      ignore (ok (Syscall.invoke_gate ctx "probe-gate" ~arg:"x")));
  check int_c "one fire at gate.invoke entry, body shielded" 1 !fires;
  check bool_c "scheduler exports the same fact" true
    Sched.gate_children_atomic

(* ---- label-update commutativity: syntactic judgment vs. semantics ---- *)

let update_tags =
  lazy
    (Array.init 6 (fun i ->
         Tag.fresh
           ~name:(Printf.sprintf "ifr.t%d" i)
           (if i mod 2 = 0 then Tag.Secrecy else Tag.Integrity)))

let gen_label =
  QCheck.Gen.(
    map
      (fun picks ->
        let tags = Lazy.force update_tags in
        let chosen =
          List.filteri (fun i _ -> List.nth picks i) (Array.to_list tags)
        in
        let sec, integ =
          List.partition (fun t -> Tag.kind t = Tag.Secrecy) chosen
        in
        Flow.make ~secrecy:(Label.of_list sec) ~integrity:(Label.of_list integ)
          ())
      (list_repeat 6 bool))

let gen_update =
  QCheck.Gen.(
    gen_label >>= fun l ->
    oneof
      [
        return (Flow.Merge l);
        return (Flow.Assign l);
        map2
          (fun i j ->
            let tags = Lazy.force update_tags in
            Flow.Retract (Label.of_list [ tags.(i); tags.(j) ]))
          (int_bound 5) (int_bound 5);
      ])

let pp_update = function
  | Flow.Merge l -> Format.asprintf "Merge %a" Flow.pp_labels l
  | Flow.Assign l -> Format.asprintf "Assign %a" Flow.pp_labels l
  | Flow.Retract l -> "Retract " ^ Label.to_string l

let arb_update = QCheck.make gen_update ~print:pp_update

let commute_law =
  QCheck.Test.make ~name:"updates_commute implies order-independence"
    ~count:300
    (QCheck.triple arb_update arb_update (QCheck.make gen_label))
    (fun (a, b, l) ->
      (not (Flow.updates_commute a b))
      || Flow.equal_labels
           (Flow.apply_update (Flow.apply_update l a) b)
           (Flow.apply_update (Flow.apply_update l b) a))

let test_commute_algebra () =
  let l1 = Flow.make ~secrecy:(Label.singleton (Lazy.force update_tags).(0)) () in
  let l2 = Flow.make ~secrecy:(Label.singleton (Lazy.force update_tags).(2)) () in
  check bool_c "merge/merge" true
    (Flow.updates_commute (Flow.Merge l1) (Flow.Merge l2));
  check bool_c "retract/retract" true
    (Flow.updates_commute
       (Flow.Retract (Label.singleton (Lazy.force update_tags).(0)))
       (Flow.Retract (Label.singleton (Lazy.force update_tags).(2))));
  check bool_c "merge/retract disjoint" true
    (Flow.updates_commute (Flow.Merge l1)
       (Flow.Retract (Label.singleton (Lazy.force update_tags).(2))));
  check bool_c "merge/retract overlapping" false
    (Flow.updates_commute (Flow.Merge l1)
       (Flow.Retract (Label.singleton (Lazy.force update_tags).(0))));
  check bool_c "assign/assign equal" true
    (Flow.updates_commute (Flow.Assign l1) (Flow.Assign l1));
  check bool_c "assign/assign different" false
    (Flow.updates_commute (Flow.Assign l1) (Flow.Assign l2));
  check bool_c "assign/merge" false
    (Flow.updates_commute (Flow.Assign l1) (Flow.Merge l2))

(* ---- the MHP model vs. the exhaustive interleaving oracle ---- *)

let prog ?(multiplicity = 1) name steps =
  {
    Mhp.name;
    multiplicity;
    steps =
      List.map
        (fun (ctx, op) ->
          (match Syscall.Spec.find op with
          | Some _ -> ()
          | None -> Alcotest.failf "oracle model uses unknown op %s" op);
          { Mhp.ctx; op })
        steps;
  }

let d op = (Mhp.Direct, op)
let g op = (Mhp.Gate_body, op)

let oracle_models =
  lazy
    [
      ( "free 2x2",
        Mhp.make
          [ prog "a" [ d "fs.stat"; d "fs.read" ];
            prog "b" [ d "fs.relabel"; d "fs.unlink" ] ] );
      ( "shielded step",
        Mhp.make
          [ prog "a" [ d "fs.stat"; d "fs.exists"; d "fs.read" ];
            prog "b" [ d "fs.relabel" ] ] );
      ( "gate atomic",
        Mhp.make
          [ prog "a" [ d "fs.stat"; g "label.declassify"; g "proc.respond" ];
            prog "b" [ d "fs.relabel" ] ] );
      ( "gate leaky",
        Mhp.make ~gate_atomic:false
          [ prog "a" [ d "fs.stat"; g "label.declassify"; g "proc.respond" ];
            prog "b" [ d "fs.relabel" ] ] );
      ( "twins",
        Mhp.make [ prog ~multiplicity:2 "p" [ d "fs.stat"; d "fs.exists" ] ] );
      ( "three-way",
        Mhp.make
          [ prog "a" [ d "fs.stat"; d "fs.read" ];
            prog "b" [ d "fs.relabel" ];
            prog "c" [ d "ipc.send"; d "ipc.recv" ] ] );
    ]

let instance_key (i : Mhp.instance) = (i.Mhp.i_prog.Mhp.name, i.Mhp.i_id)

(* Is step [i_op] of instance [ia] ever immediately adjacent to step
   [j_op] of instance [ib] (either order) in some admitted schedule?
   Oracle-model programs use distinct ops per step, so (instance, op)
   identifies a unique step. *)
let adjacent_in schedules ia i_op ib j_op =
  List.exists
    (fun sched ->
      let rec scan = function
        | (x, (sx : Mhp.step)) :: ((y, (sy : Mhp.step)) :: _ as rest) ->
            (instance_key x = instance_key ia
             && sx.Mhp.op = i_op
             && instance_key y = instance_key ib
             && sy.Mhp.op = j_op)
            || (instance_key x = instance_key ib
                && sx.Mhp.op = j_op
                && instance_key y = instance_key ia
                && sy.Mhp.op = i_op)
            || scan rest
        | _ -> false
      in
      scan sched)
    schedules

let test_mhp_matches_oracle () =
  List.iter
    (fun (name, model) ->
      let schedules = Mhp.interleavings model in
      check bool_c (name ^ ": oracle admits at least one schedule") true
        (schedules <> []);
      let insts = Array.of_list (Mhp.instances model) in
      Array.iter
        (fun ia ->
          Array.iter
            (fun ib ->
              if instance_key ia <> instance_key ib then begin
                let a_steps = Array.of_list ia.Mhp.i_prog.Mhp.steps in
                let b_steps = Array.of_list ib.Mhp.i_prog.Mhp.steps in
                Array.iteri
                  (fun i (si : Mhp.step) ->
                    Array.iteri
                      (fun j (sj : Mhp.step) ->
                        let predicted =
                          Interfere.mhp_steps model a_steps i b_steps j
                        in
                        let observed =
                          adjacent_in schedules ia si.Mhp.op ib sj.Mhp.op
                        in
                        check bool_c
                          (Printf.sprintf "%s: %s[%d]~%s[%d]" name
                             ia.Mhp.i_prog.Mhp.name i ib.Mhp.i_prog.Mhp.name
                             j)
                          observed predicted)
                      b_steps)
                  a_steps
              end)
            insts)
        insts)
    (Lazy.force oracle_models)

let test_oracle_schedule_counts () =
  let m name = List.assoc name (Lazy.force oracle_models) in
  (* two fully-preemptible 2-step programs: choose(4,2) interleavings *)
  check int_c "free 2x2" 6 (List.length (Mhp.interleavings (m "free 2x2")));
  (* fs.exists has no entry preemption point, so stat|exists is welded:
     b fits before a, between exists and read, or after — 3 slots *)
  check int_c "shielded step" 3
    (List.length (Mhp.interleavings (m "shielded step")));
  (* atomic gate body welds all of a *)
  check int_c "gate atomic" 2
    (List.length (Mhp.interleavings (m "gate atomic")));
  (* leaky gates reopen every seam: b lands in any of 4 slots *)
  check int_c "gate leaky" 4 (List.length (Mhp.interleavings (m "gate leaky")))

(* ---- the detector ---- *)

let showcase_model seed =
  let society = W5_workload.Populate.build_showcase ~seed ~users:6 () in
  let platform = society.W5_workload.Populate.platform in
  (society, Interfere.model_of_static (Static.capture platform))

let is_stale = function Interfere.Stale_flow_check _ -> true | _ -> false
let is_hole = function Interfere.Atomicity_hole _ -> true | _ -> false

let test_clean_showcase () =
  let _, model = showcase_model 42 in
  let report = Interfere.analyze model in
  (match Interfere.worst report with
  | None | Some Severity.Info -> ()
  | Some s ->
      Alcotest.failf "clean showcase produced a %s finding" (Severity.name s));
  check int_c "exit 0" 0 (Interfere.exit_code report);
  check bool_c "the surface is not empty" true (report.Interfere.pairs_examined > 0)

let test_seeded_toctou () =
  let _, model = showcase_model 42 in
  let report = Interfere.analyze (Interfere.seed_toctou model) in
  check bool_c "stale flow check reported" true
    (List.exists is_stale report.Interfere.findings);
  check bool_c "ranked first (worst first)" true
    (match report.Interfere.findings with
    | f :: _ -> Interfere.severity_of f = Severity.High
    | [] -> false);
  check int_c "exit 3" 3 (Interfere.exit_code report)

let test_atomicity_hole_hypothetical () =
  let gate_prog =
    prog ~multiplicity:2 "g" [ g "label.declassify"; g "proc.respond" ]
  in
  let leaky = Interfere.analyze (Mhp.make ~gate_atomic:false [ gate_prog ]) in
  check bool_c "hole under a leaky scheduler" true
    (List.exists is_hole leaky.Interfere.findings);
  check int_c "critical exit" 4 (Interfere.exit_code leaky);
  let real = Interfere.analyze (Mhp.make [ gate_prog ]) in
  check bool_c "no hole under the real scheduler" false
    (List.exists is_hole real.Interfere.findings)

(* satellite: every label write inside a gate body => no atomicity
   hole under the real (gate-atomic) scheduler, whatever the mix. *)
let gen_gated_program =
  QCheck.Gen.(
    let ops = Array.of_list (List.map spec_op Syscall.Spec.all) in
    map2
      (fun idx picks ->
        let steps =
          List.map
            (fun i ->
              let op = ops.(i mod Array.length ops) in
              let spec = Option.get (Syscall.Spec.find op) in
              let ctx =
                if spec.Syscall.Spec.writes <> [] then Mhp.Gate_body
                else Mhp.Direct
              in
              { Mhp.ctx; op })
            picks
        in
        { Mhp.name = Printf.sprintf "p%d" idx; multiplicity = 1 + (idx mod 3);
          steps })
      (int_bound 1000)
      (list_size (1 -- 5) (int_bound 1000)))

let arb_gated_model =
  QCheck.make
    QCheck.Gen.(
      map (fun ps -> Mhp.make ps) (list_size (1 -- 4) gen_gated_program))

let gated_writes_law =
  QCheck.Test.make
    ~name:"label writes confined to gate bodies admit no atomicity hole"
    ~count:300 arb_gated_model
    (fun model ->
      let report = Interfere.analyze model in
      not (List.exists is_hole report.Interfere.findings))

(* ---- differential soundness: replay seeded scheduler runs ---- *)

let replay_model = lazy (snd (showcase_model 7))

let replay_config seed =
  {
    W5_workload.Soak.default_config with
    W5_workload.Soak.seed;
    users = 6 + (seed mod 5);
    requests = 30 + (seed mod 31);
    waves = 1 + (seed mod 2);
    quantum = 2 + (seed mod 5);
  }

let run_replay seed =
  let society, _ = W5_workload.Soak.run (replay_config seed) in
  let log =
    Kernel.audit
      (W5_platform.Platform.kernel society.W5_workload.Populate.platform)
  in
  Interfere.fold_audit (Lazy.force replay_model) log

let differential_soundness =
  QCheck.Test.make
    ~name:"observed scheduler conflicts stay on the predicted surface"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let replay = run_replay seed in
      if replay.Interfere.unpredicted <> [] then
        QCheck.Test.fail_reportf "unpredicted conflicts (seed %d): %s" seed
          (String.concat "; " replay.Interfere.unpredicted)
      else if replay.Interfere.atomic_violations <> [] then
        QCheck.Test.fail_reportf "atomicity violations (seed %d): %s" seed
          (String.concat "; " replay.Interfere.atomic_violations)
      else true)

let test_replay_observes_interleavings () =
  (* the soundness law must not hold vacuously: a real soak shows
     actual cross-thread interleavings and label conflicts *)
  let replay = run_replay 3 in
  check bool_c "events seen" true (replay.Interfere.events_seen > 0);
  check bool_c "threads seen" true (replay.Interfere.threads_seen > 1);
  check bool_c "interleavings observed" true
    (replay.Interfere.interleavings_observed > 0);
  check bool_c "conflicts observed" true
    (replay.Interfere.conflicts_observed > 0);
  check int_c "clean replay exits 0" 0 (Interfere.replay_exit_code replay)

(* ---- satellite: label-safe finding-count metrics ---- *)

let test_metrics_label_safe () =
  let society, model = showcase_model 11 in
  let platform = society.W5_workload.Populate.platform in
  let st = Static.capture platform in
  let registry = W5_obs.Metrics.create () in
  Vet.export_metrics registry (Vet.report st);
  Interfere.export_metrics registry (Interfere.analyze model);
  let text = W5_obs.Exposition.prometheus registry in
  check bool_c "vet gauge exported" true
    (contains text "w5_vet_findings_total");
  check bool_c "interference gauge exported" true
    (contains text "w5_interfere_findings_total");
  check bool_c "severity label present" true
    (contains text "severity=\"high\"");
  (* canary sweep: no user name, tag name, or gate name may appear in
     the exposition — the label values are a closed set *)
  List.iter
    (fun user ->
      check bool_c ("no user byte leaks: " ^ user) false (contains text user))
    society.W5_workload.Populate.users;
  List.iter
    (fun tag ->
      check bool_c ("no tag byte leaks: " ^ tag) false (contains text tag))
    (List.map
       (fun (t : Static.tag_info) -> t.Static.tag_name)
       (Static.tags st))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "severity exit contract" `Quick test_exit_contract;
    Alcotest.test_case "spec table unique+findable" `Quick
      test_spec_table_unique_and_findable;
    Alcotest.test_case "specs revalidate dependencies" `Quick
      test_spec_revalidates_dependencies;
    Alcotest.test_case "spec preempt flags" `Quick test_spec_preempt_flags;
    Alcotest.test_case "preempt point matches spec" `Quick
      test_preempt_point_matches_spec;
    Alcotest.test_case "gate children atomic in kernel" `Quick
      test_gate_children_atomic_in_kernel;
    Alcotest.test_case "commute algebra" `Quick test_commute_algebra;
    Alcotest.test_case "mhp matches exhaustive oracle" `Quick
      test_mhp_matches_oracle;
    Alcotest.test_case "oracle schedule counts" `Quick
      test_oracle_schedule_counts;
    Alcotest.test_case "clean showcase" `Quick test_clean_showcase;
    Alcotest.test_case "seeded toctou" `Quick test_seeded_toctou;
    Alcotest.test_case "atomicity hole (hypothetical sched)" `Quick
      test_atomicity_hole_hypothetical;
    Alcotest.test_case "replay observes real interleavings" `Quick
      test_replay_observes_interleavings;
    Alcotest.test_case "finding metrics label-safe" `Quick
      test_metrics_label_safe;
  ]
  @ qsuite [ commute_law; gated_writes_law; differential_soundness ]
