(* Tests for lib/analysis: finding construction, the golden vet
   report, the shared lattice laws between the runtime Label and the
   analyzer's abstract domain, and the differential soundness property
   (static must over-approximate dynamic) over randomized platform
   configurations. *)

open W5_difc
open W5_platform
open W5_analysis

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ---- helpers ---- *)

let signup platform user =
  match Platform.signup platform ~user ~password:"pw" with
  | Ok account -> account
  | Error e -> Alcotest.failf "signup %s: %s" user e

let kernel platform = Platform.kernel platform

let findings_of platform = Vet.analyze (Static.capture platform)

let has_finding pred platform = List.exists pred (findings_of platform)

let nop_handler _ctx _env = ()

(* The registry's default source is [Closed_binary]; these tests care
   about the distinction, so default to open here. *)
let publish_app platform ~dev ~name ?(source = App_registry.Open_source "src")
    ?imports ?embeds () =
  match
    App_registry.publish (Platform.registry platform)
      ~dev:(Principal.make Principal.Developer dev)
      ~name ~version:"1.0" ~source ?imports ?embeds nop_handler
  with
  | Ok app -> app.App_registry.id
  | Error e -> Alcotest.failf "publish %s/%s: %s" dev name e

(* ---- finding unit tests: each kind, constructed from scratch ---- *)

let test_enforcement_off () =
  let platform = Platform.create ~enforcing:false () in
  ignore (signup platform "alice");
  match findings_of platform with
  | Vet.Enforcement_off :: _ -> ()
  | _ -> Alcotest.fail "expected Enforcement_off first"

let test_no_rule () =
  let platform = Platform.create () in
  let _alice = signup platform "alice" in
  check bool_c "bare signup leaves the secret tag unexportable" true
    (has_finding
       (function Vet.No_rule { tag } -> tag = "alice.secret" | _ -> false)
       platform);
  let st = Static.capture platform in
  let info = Option.get (Static.find_tag st "alice.secret") in
  check bool_c "disposition owner-only" true
    (Static.disposition st info = Static.Owner_only)

let test_broken_rule_missing () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  Policy.authorize_declassifier alice.Account.policy
    ~tag:alice.Account.secret_tag ~gate:"declass/alice/nope";
  check bool_c "rule through unregistered gate" true
    (has_finding
       (function
         | Vet.Broken_rule { tag = "alice.secret"; gate = "declass/alice/nope";
                             missing = true } -> true
         | _ -> false)
       platform)

let test_broken_rule_powerless () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  W5_os.Kernel.register_gate (kernel platform) ~name:"declass/alice/weak"
    ~owner:alice.Account.principal ~caps:Capability.Set.empty
    ~entry:(fun _ _ -> ());
  Policy.authorize_declassifier alice.Account.policy
    ~tag:alice.Account.secret_tag ~gate:"declass/alice/weak";
  check bool_c "gate lacks t-" true
    (has_finding
       (function
         | Vet.Broken_rule { gate = "declass/alice/weak"; missing = false; _ } ->
             true
         | _ -> false)
       platform)

let test_foreign_gate () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  let evil = Principal.make Principal.Developer "evil" in
  W5_os.Kernel.register_gate (kernel platform) ~name:"declass/evil/leak"
    ~owner:evil
    ~caps:(Capability.Set.of_list
             [ Capability.make alice.Account.secret_tag Capability.Minus ])
    ~entry:(fun _ _ -> ());
  Policy.authorize_declassifier alice.Account.policy
    ~tag:alice.Account.secret_tag ~gate:"declass/evil/leak";
  check bool_c "authorized gate owned by foreign principal" true
    (has_finding
       (function
         | Vet.Foreign_gate { tag = "alice.secret"; gate_owner = "evil"; _ } ->
             true
         | _ -> false)
       platform)

let test_unguarded_export () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  let bob = signup platform "bob" in
  bob.Account.caps <-
    Capability.Set.add
      (Capability.make alice.Account.secret_tag Capability.Minus)
      bob.Account.caps;
  check bool_c "foreign t- in an account capability set" true
    (has_finding
       (function
         | Vet.Unguarded_export { tag = "alice.secret"; holder } ->
             holder = "account:bob"
         | _ -> false)
       platform);
  check bool_c "surfaced by the snapshot too" true
    (Static.foreign_minus (Static.capture platform)
     = [ ("bob", "alice.secret") ])

let test_overbroad_and_dead_gate () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  let bob = signup platform "bob" in
  W5_os.Kernel.register_gate (kernel platform) ~name:"declass/alice/wide"
    ~owner:alice.Account.principal
    ~caps:(Capability.Set.of_list
             [ Capability.make alice.Account.secret_tag Capability.Minus;
               Capability.make bob.Account.secret_tag Capability.Minus ])
    ~entry:(fun _ _ -> ());
  Policy.authorize_declassifier alice.Account.policy
    ~tag:alice.Account.secret_tag ~gate:"declass/alice/wide";
  check bool_c "t- beyond what policies route" true
    (has_finding
       (function
         | Vet.Overbroad_gate { gate = "declass/alice/wide"; extra } ->
             extra = [ "bob.secret" ]
         | _ -> false)
       platform);
  (* A gate nobody routes through is dead, not overbroad. *)
  W5_os.Kernel.register_gate (kernel platform) ~name:"declass/alice/unused"
    ~owner:alice.Account.principal
    ~caps:(Capability.Set.of_list
             [ Capability.make alice.Account.secret_tag Capability.Minus ])
    ~entry:(fun _ _ -> ());
  let fs = findings_of platform in
  check bool_c "dead gate reported" true
    (List.exists
       (function
         | Vet.Dead_gate { gate = "declass/alice/unused" } -> true
         | _ -> false)
       fs);
  check bool_c "dead gate not double-reported as overbroad" false
    (List.exists
       (function
         | Vet.Overbroad_gate { gate = "declass/alice/unused"; _ } -> true
         | _ -> false)
       fs)

let test_closed_cycle_and_dangling () =
  let platform = Platform.create () in
  ignore (signup platform "alice");
  let a =
    publish_app platform ~dev:"deva" ~name:"a" ~imports:[ "devb/b" ] ()
  in
  let b =
    publish_app platform ~dev:"devb" ~name:"b"
      ~source:App_registry.Closed_binary ~imports:[ "deva/a" ] ()
  in
  ignore (publish_app platform ~dev:"devc" ~name:"c" ~imports:[ "no/where" ] ());
  let fs = findings_of platform in
  check bool_c "cycle through a closed binary" true
    (List.exists
       (function
         | Vet.Closed_cycle { cycle_members } ->
             List.sort compare cycle_members = List.sort compare [ a; b ]
         | _ -> false)
       fs);
  check bool_c "dangling import" true
    (List.exists
       (function
         | Vet.Dangling_edge { app = "devc/c"; target = "no/where"; _ } -> true
         | _ -> false)
       fs);
  (* All-open cycles are fine: forkable, auditable. *)
  let platform2 = Platform.create () in
  ignore (publish_app platform2 ~dev:"x" ~name:"p" ~imports:[ "y/q" ] ());
  ignore (publish_app platform2 ~dev:"y" ~name:"q" ~imports:[ "x/p" ] ());
  check bool_c "open cycle not flagged" false
    (has_finding (function Vet.Closed_cycle _ -> true | _ -> false) platform2)

let test_severity_ranking () =
  let platform = Platform.create ~enforcing:false () in
  let alice = signup platform "alice" in
  Policy.authorize_declassifier alice.Account.policy
    ~tag:alice.Account.secret_tag ~gate:"declass/alice/nope";
  let report = Vet.report (Static.capture platform) in
  check bool_c "worst first" true
    (match report.Vet.findings with Vet.Enforcement_off :: _ -> true | _ -> false);
  check bool_c "max severity critical" true
    (Vet.max_severity report = Some Vet.Critical);
  check int_c "exit code" 4 (Vet.exit_code report);
  let clean = Vet.report (Static.capture (Platform.create ())) in
  check int_c "enforcing empty platform is clean" 0 (Vet.exit_code clean)

(* ---- the showcase platform: clean golden report ---- *)

let showcase = lazy (W5_workload.Populate.build_showcase ())

let test_showcase_clean () =
  let society = Lazy.force showcase in
  let st = Static.capture society.W5_workload.Populate.platform in
  check int_c "no findings on the shipped examples" 0
    (List.length (Vet.analyze st));
  check int_c "six users" 6 (List.length (Static.users st));
  check bool_c "group captured" true
    (List.exists
       (fun g -> g.Static.group_name = "book-club")
       (Static.groups st));
  (* Restricted tags are the precise part of the domain: the read tag
     reaches only the apps its owner granted. *)
  let granted = Static.absorbable st ~app:"core/social" in
  let ungranted = Static.absorbable st ~app:"core/calendar" in
  check bool_c "read tag reaches granted app" true
    (Absdom.mem "user0001.read" granted);
  check bool_c "read tag withheld from ungranted app" false
    (Absdom.mem "user0001.read" ungranted);
  check bool_c "non-restricted tags are dense" true
    (Absdom.mem "user0003.secret" ungranted)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs in _build/default/test; dune exec leaves the cwd
   at the workspace root. *)
let golden_path name =
  List.find Sys.file_exists [ "golden/" ^ name; "test/golden/" ^ name ]

let test_golden_report () =
  let society = Lazy.force showcase in
  let report = Vet.report (Static.capture society.W5_workload.Populate.platform) in
  let golden = read_file (golden_path "vet.json") in
  check string_c "byte-for-byte against the committed report" golden
    (Vet.to_json report)

(* ---- shared lattice laws: Label vs. the abstract domain ---- *)

(* Unique names make [Absdom.of_label] an order-isomorphism onto its
   image, so every law can be checked on both sides of alpha at once.
   (With colliding names it degrades to a join-homomorphism — still
   sound, just not injective.) *)
let law_pool =
  Array.init 16 (fun i -> Tag.fresh ~name:(Printf.sprintf "law%02d" i) Tag.Secrecy)

let gen_law_label =
  QCheck.Gen.(
    map
      (fun picks -> Label.of_list (List.map (fun i -> law_pool.(i mod 16)) picks))
      (list_size (0 -- 8) (0 -- 15)))

let arb_law_label = QCheck.make gen_law_label ~print:Label.to_string

let prop_alpha_join_homomorphism =
  QCheck.Test.make ~name:"alpha(a lub b) = alpha(a) lub alpha(b)" ~count:300
    (QCheck.pair arb_law_label arb_law_label) (fun (a, b) ->
      Absdom.equal
        (Absdom.of_label (Label.union a b))
        (Absdom.lub (Absdom.of_label a) (Absdom.of_label b)))

let prop_alpha_monotone =
  QCheck.Test.make ~name:"subset transports through alpha (both ways)"
    ~count:300
    (QCheck.pair arb_law_label arb_law_label) (fun (a, b) ->
      Label.subset a b
      = Absdom.subset (Absdom.of_label a) (Absdom.of_label b))

let prop_lub_laws =
  QCheck.Test.make ~name:"absdom lub idempotent/commutative/associative"
    ~count:300
    (QCheck.triple arb_law_label arb_law_label arb_law_label)
    (fun (la, lb, lc) ->
      let a = Absdom.of_label la
      and b = Absdom.of_label lb
      and c = Absdom.of_label lc in
      Absdom.equal (Absdom.lub a a) a
      && Absdom.equal (Absdom.lub a b) (Absdom.lub b a)
      && Absdom.equal
           (Absdom.lub a (Absdom.lub b c))
           (Absdom.lub (Absdom.lub a b) c))

let prop_bounds =
  QCheck.Test.make ~name:"absdom lub upper bound, glb lower bound" ~count:300
    (QCheck.pair arb_law_label arb_law_label) (fun (la, lb) ->
      let a = Absdom.of_label la and b = Absdom.of_label lb in
      Absdom.subset a (Absdom.lub a b)
      && Absdom.subset b (Absdom.lub a b)
      && Absdom.subset (Absdom.glb a b) a
      && Absdom.subset (Absdom.glb a b) b
      && Absdom.subset Absdom.bot a)

(* ---- differential soundness: static over-approximates dynamic ---- *)

(* One randomized platform: a small society plus configuration tweaks
   drawn from the seed (read protection with or without a reinstalled
   declassifier, a group, revoked declassifiers, the malicious app
   battery), snapshot, then a workload plus attack probes, then every
   audited flow edge checked against the snapshot. Soundness means
   zero unpredicted edges, whatever the configuration. *)
let run_differential_case seed =
  let society =
    W5_workload.Populate.build ~seed:(seed land 0xFFFF) ~users:3
      ~friends_per_user:1 ~photos_per_user:1 ~blog_posts_per_user:0 ()
  in
  let platform = society.W5_workload.Populate.platform in
  let rng = W5_workload.Rng.create ~seed:(seed lxor 0x5EED) in
  let pick_user () = W5_workload.Rng.pick rng society.W5_workload.Populate.users in
  let account_of u = Platform.account_exn platform u in
  if W5_workload.Rng.int rng 2 = 0 then begin
    let account = account_of (pick_user ()) in
    ignore (Platform.enable_read_protection platform account);
    if W5_workload.Rng.int rng 2 = 0 then
      ignore
        (Declassifier.install_and_authorize platform ~account ~name:"friends"
           Declassifier.friends_only)
  end;
  if W5_workload.Rng.int rng 2 = 0 then begin
    let founder = account_of (pick_user ()) in
    match Group.create platform ~founder ~name:"club" with
    | Error _ -> ()
    | Ok group ->
        ignore (Group.add_member platform group ~user:(pick_user ()));
        ignore (Group.post platform group ~author:founder ~id:"01" ~body:"hi")
  end;
  if W5_workload.Rng.int rng 3 = 0 then begin
    let account = account_of (pick_user ()) in
    Policy.revoke_declassifier account.Account.policy
      ~tag:account.Account.secret_tag
  end;
  let attack = W5_workload.Rng.int rng 2 = 0 in
  if attack then
    ignore
      (W5_apps.Malicious.publish_all platform
         ~dev:(Principal.make Principal.Developer "mal"));
  (* Snapshot strictly after configuration, before the workload. *)
  let st = Static.capture platform in
  let actions =
    W5_workload.Trace.generate rng ~society ~mix:W5_workload.Trace.read_heavy
      ~length:40
  in
  ignore (W5_workload.Trace.replay society actions);
  if attack then begin
    let client =
      W5_http.Client.make ~name:"attacker" (Gateway.handler platform)
    in
    ignore
      (W5_http.Client.get client "/app/mal/thief"
         ~params:[ ("target", pick_user ()) ])
  end;
  Vet.fold_audit st (W5_os.Kernel.audit (kernel platform))

let prop_soundness =
  QCheck.Test.make ~name:"no runtime edge escapes the static graph" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rt = run_differential_case seed in
      if rt.Vet.violations <> [] then
        QCheck.Test.fail_reportf "unpredicted edges (seed %d): %s" seed
          (String.concat "; "
             (List.map
                (fun v ->
                  Printf.sprintf "#%d pid=%d %s %s %s" v.Vet.v_seq v.Vet.v_pid
                    v.Vet.v_holder v.Vet.v_kind v.Vet.v_tag)
                rt.Vet.violations))
      else rt.Vet.checked > 0)

(* The showcase run the CLI ships, as a deterministic regression. *)
let test_showcase_runtime () =
  let society = W5_workload.Populate.build_showcase () in
  let platform = society.W5_workload.Populate.platform in
  let st = Static.capture platform in
  let rng = W5_workload.Rng.create ~seed:142 in
  let actions =
    W5_workload.Trace.generate rng ~society ~mix:W5_workload.Trace.read_heavy
      ~length:200
  in
  ignore (W5_workload.Trace.replay society actions);
  let rt = Vet.fold_audit st (W5_os.Kernel.audit (kernel platform)) in
  check bool_c "edges observed" true (rt.Vet.checked > 100);
  check int_c "no unpredicted edges" 0 (List.length rt.Vet.violations);
  check int_c "no post-snapshot tags in this run" 0 rt.Vet.unknown;
  let report = Vet.report ~runtime:rt st in
  check int_c "clean exit" 0 (Vet.exit_code report)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "enforcement off" `Quick test_enforcement_off;
    Alcotest.test_case "no rule" `Quick test_no_rule;
    Alcotest.test_case "broken rule: missing gate" `Quick
      test_broken_rule_missing;
    Alcotest.test_case "broken rule: powerless gate" `Quick
      test_broken_rule_powerless;
    Alcotest.test_case "foreign gate" `Quick test_foreign_gate;
    Alcotest.test_case "unguarded export" `Quick test_unguarded_export;
    Alcotest.test_case "overbroad and dead gates" `Quick
      test_overbroad_and_dead_gate;
    Alcotest.test_case "closed cycles and dangling edges" `Quick
      test_closed_cycle_and_dangling;
    Alcotest.test_case "severity ranking and exit codes" `Quick
      test_severity_ranking;
    Alcotest.test_case "showcase platform is clean" `Quick test_showcase_clean;
    Alcotest.test_case "golden report byte-for-byte" `Quick test_golden_report;
    Alcotest.test_case "showcase runtime soundness" `Slow
      test_showcase_runtime;
  ]
  @ qsuite
      [
        prop_alpha_join_homomorphism; prop_alpha_monotone; prop_lub_laws;
        prop_bounds; prop_soundness;
      ]
