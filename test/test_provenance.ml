(* Tests for flow provenance and denial explanation: the graph module
   itself (interning, budgets, causal walks), the audit query helper,
   and the end-to-end story — a scripted breach whose denial `explain`
   must narrate, plus a QCheck property that `provenance` never
   reports a tag the file no longer carries. *)

open W5_difc
open W5_platform

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let ok_os = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (W5_os.Os_error.to_string e)

let signup platform user =
  match Platform.signup platform ~user ~password:(user ^ "-pw") with
  | Ok a -> a
  | Error e -> Alcotest.failf "signup %s: %s" user e

(* ---- the graph module on hand-built edges ---- *)

let edge ?(kind = "k") ?(tags = []) ?denied ~seq src dst =
  { W5_obs.Provenance.kind; src; dst; seq; tick = seq; tags; denied;
    detail = None }

let seqs_of chain =
  List.map (fun e -> e.W5_obs.Provenance.seq) chain

let test_causal_chain () =
  let open W5_obs in
  let g = Provenance.create () in
  let o = Provenance.Object "/o" in
  let p1 = Provenance.Process 1 and p2 = Provenance.Process 2 in
  let r = Provenance.Remote "out" in
  Provenance.add_edge g (edge ~seq:1 ~tags:[ "t" ] o p1);
  Provenance.add_edge g (edge ~seq:2 ~tags:[ "t" ] p1 p2);
  (* a different tag flowing into p2 must not enter a t-filtered chain *)
  Provenance.add_edge g (edge ~seq:3 ~tags:[ "u" ] o p2);
  let denial = edge ~seq:4 ~tags:[ "t" ] ~denied:"no" p2 r in
  Provenance.add_edge g denial;
  (* causes must precede effects: this later arrival is not a cause *)
  Provenance.add_edge g (edge ~seq:5 ~tags:[ "t" ] o p2);
  check (Alcotest.list int_c) "chain is the tagged history, oldest first"
    [ 1; 2; 4 ]
    (seqs_of (Provenance.explain g denial));
  check (Alcotest.list int_c) "untagged walk sees every inbound edge"
    [ 1; 2; 3 ]
    (seqs_of (Provenance.causes g ~before:4 p2));
  check (Alcotest.list int_c) "tag_history covers arrival and upstream"
    [ 1; 2; 5 ]
    (seqs_of (Provenance.tag_history g p2 ~tag:"t"));
  match Provenance.find_edge g ~seq:4 with
  | Some e -> check int_c "find_edge by seq" 4 e.Provenance.seq
  | None -> Alcotest.fail "denial edge lost"

let test_node_budget_truncation () =
  let open W5_obs in
  let g = Provenance.create ~node_budget:2 () in
  let a = Provenance.Process 1 and b = Provenance.Process 2 in
  let c = Provenance.Object "/c" in
  Provenance.add_edge g (edge ~seq:1 a b);
  check bool_c "within budget" false (Provenance.truncated g);
  Provenance.add_edge g (edge ~seq:2 b c);
  check bool_c "third node trips the budget" true (Provenance.truncated g);
  check int_c "node count stays capped" 2 (Provenance.node_count g);
  check int_c "edge to the dropped node not recorded" 1
    (Provenance.edge_count g);
  (* edges between already-interned nodes still land *)
  Provenance.add_edge g (edge ~seq:3 b a);
  check int_c "known-node edge accepted" 2 (Provenance.edge_count g);
  check bool_c "text rendering warns" true
    (contains
       (Provenance.render_chain g [ edge ~seq:1 a b ])
       "truncated at node budget 2");
  check bool_c "dot rendering warns" true
    (contains (Provenance.to_dot g) "_truncated")

(* ---- Audit.query ---- *)

let test_audit_query () =
  let open W5_os in
  let tag = Tag.fresh ~name:"q.t" Tag.Secrecy in
  let l = Label.singleton tag in
  let tainted = Flow.make ~secrecy:l () in
  let log = Audit.create () in
  Audit.record log ~tick:1 ~pid:1 (Audit.App_note "a");
  Audit.record log ~tick:2 ~pid:2
    (Audit.Flow_checked
       {
         op = "fs.read";
         src = tainted;
         dst = Flow.bottom;
         decision = Error (Flow.Secrecy_violation l);
         subject = Audit.File "/x";
       });
  Audit.record log ~tick:3 ~pid:1 (Audit.Declassified { tag; context = "g" });
  Audit.record log ~tick:4 ~pid:2 (Audit.App_note "b");
  let seqs q = List.map (fun e -> e.Audit.seq) q in
  check (Alcotest.list int_c) "no filters = everything" [ 1; 2; 3; 4 ]
    (seqs (Audit.query log ()));
  check (Alcotest.list int_c) "by pid" [ 1; 3 ] (seqs (Audit.query log ~pid:1 ()));
  check (Alcotest.list int_c) "by kind" [ 3 ]
    (seqs (Audit.query log ~kind:"declassified" ()));
  check (Alcotest.list int_c) "seq range is inclusive" [ 2; 3 ]
    (seqs (Audit.query log ~seq_from:2 ~seq_to:3 ()));
  check (Alcotest.list int_c) "denials only" [ 2 ]
    (seqs (Audit.query log ~denials_only:true ()));
  check (Alcotest.list int_c) "filters conjoin" []
    (seqs (Audit.query log ~pid:1 ~denials_only:true ()));
  check (Alcotest.list int_c) "kind + range" [ 4 ]
    (seqs (Audit.query log ~kind:"app_note" ~seq_from:2 ()))

let test_audit_query_after_eviction () =
  let open W5_os in
  let log = Audit.create ~capacity:4 () in
  for i = 1 to 12 do
    Audit.record log ~tick:i ~pid:1 (Audit.App_note "n")
  done;
  check bool_c "something evicted" true (Audit.evicted log > 0);
  (match Audit.entries log with
  | first :: _ ->
      check int_c "evicted counts the missing prefix"
        (first.Audit.seq - 1) (Audit.evicted log)
  | [] -> Alcotest.fail "log empty");
  (* a range entirely inside the evicted prefix silently yields nothing *)
  check int_c "evicted range is empty" 0
    (List.length (Audit.query log ~seq_from:1 ~seq_to:2 ()))

(* ---- the scripted breach, end to end ---- *)

(* alice's profile is secret; bob is her friend and a friends-only
   declassifier exists; a thief process reads the profile with taint.
   Exporting the loot to bob succeeds through the gate; exporting it
   to an anonymous client is refused — and that refusal is the denial
   `w5 explain` must be able to narrate. *)
let breach () =
  let platform = Platform.create () in
  let alice = signup platform "alice" in
  let bob = signup platform "bob" in
  ignore (signup platform "mallory");
  ok_os
    (Platform.write_user_record platform alice ~file:"friends"
       (W5_store.Record.set_list W5_store.Record.empty "friends" [ "bob" ]));
  ignore
    (Declassifier.install_and_authorize platform ~account:alice
       ~name:"friends" Declassifier.friends_only);
  let pid, labels, data =
    ok_os
      (Platform.with_ctx platform ~name:"mal/thief" (fun ctx ->
           match
             W5_os.Syscall.read_file_taint ctx
               (Platform.user_file "alice" "profile")
           with
           | Error _ as e -> e
           | Ok data ->
               Ok (W5_os.Syscall.pid ctx, W5_os.Syscall.my_labels ctx, data)))
  in
  check bool_c "the thief is carrying alice's tag" true
    (Label.mem alice.Account.secret_tag labels.Flow.secrecy);
  (match Perimeter.export platform ~source:pid ~viewer:(Some bob) ~data ~labels () with
  | Ok _ -> ()
  | Error r ->
      Alcotest.failf "friend export refused: %s" (Perimeter.refusal_to_string r));
  (match Perimeter.export platform ~source:pid ~viewer:None ~data ~labels () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "anonymous export was allowed");
  (platform, alice, pid)

let test_explain_denial () =
  let platform, alice, pid = breach () in
  let log = W5_os.Kernel.audit (Platform.kernel platform) in
  let g = W5_os.Explain.graph log in
  let entry =
    match W5_os.Explain.find_denial log () with
    | Some e -> e
    | None -> Alcotest.fail "no denial recorded"
  in
  check string_c "the denial is the export"
    "export_attempted" (W5_os.Audit.event_kind entry.W5_os.Audit.event);
  check int_c "attributed to the thief" pid entry.W5_os.Audit.pid;
  (* lookup by explicit seq agrees; a non-denial seq is rejected *)
  (match W5_os.Explain.find_denial log ~seq:entry.W5_os.Audit.seq () with
  | Some e -> check int_c "seq lookup" entry.W5_os.Audit.seq e.W5_os.Audit.seq
  | None -> Alcotest.fail "seq lookup failed");
  check bool_c "seq 1 is not a denial" true
    (W5_os.Explain.find_denial log ~seq:1 () = None);
  let text =
    match W5_os.Explain.explain_text g entry with
    | Ok s -> s
    | Error e -> Alcotest.failf "explain failed: %s" e
  in
  let tag = Tag.name alice.Account.secret_tag in
  List.iter
    (fun (what, needle) ->
      check bool_c ("chain cites " ^ what) true (contains text needle))
    [
      ("the labeling of the profile", "fs.create");
      ("the tainting read", "fs.read_taint");
      ("the profile path", "/users/alice/profile");
      ("the stolen tag", tag);
      ("the thief by name", Printf.sprintf "pid %d (mal/thief)" pid);
      ("the destination", "anonymous client");
      ("the verdict", "DENIED");
      ("the denial's own seq", Printf.sprintf "#%d" entry.W5_os.Audit.seq);
    ];
  (* the chain itself: ascending seqs, ending at the denial *)
  (match W5_os.Explain.explain g entry with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok chain ->
      let seqs = seqs_of chain in
      check bool_c "chain non-trivial" true (List.length seqs >= 3);
      check int_c "chain ends at the denial" entry.W5_os.Audit.seq
        (List.nth seqs (List.length seqs - 1));
      check bool_c "seqs ascend" true
        (List.sort compare seqs = seqs));
  (* and the DOT rendering of the same chain *)
  let dot =
    match W5_os.Explain.explain_dot g entry with
    | Ok s -> s
    | Error e -> Alcotest.failf "explain dot failed: %s" e
  in
  List.iter
    (fun (what, needle) ->
      check bool_c ("dot has " ^ what) true (contains dot needle))
    [
      ("the digraph header", "digraph provenance");
      ("the remote sink node", "r_anonymous_client");
      ("the denied edge in red", "color=red");
      ("the denial edge label", Printf.sprintf "#%d export" entry.W5_os.Audit.seq);
    ]

let test_audit_report () =
  let platform, alice, _pid = breach () in
  let log = W5_os.Kernel.audit (Platform.kernel platform) in
  let report = W5_os.Explain.report log in
  List.iter
    (fun (what, needle) ->
      check bool_c ("report has " ^ what) true (contains report needle))
    [
      ("the header", "W5 audit report");
      ("the declassifier rollup", "declassifications");
      ("alice's gate by name", "declass/alice/friends");
      ("the cleared tag", Tag.name alice.Account.secret_tag);
      ("the denial reason", "secrecy_violation");
      ("the denial op", "export");
      ("the thief under denials-by-process", "mal/thief");
      ("the refused destination", "anonymous client");
      ("the deny verdict", "deny");
      ("the allowed destination", "bob's browser");
      ("the allow verdict", "allow");
      ("the tainting path", "/users/alice/profile");
    ]

let test_file_provenance_reports_arrival () =
  let platform, alice, _pid = breach () in
  let g = W5_os.Explain.graph (W5_os.Kernel.audit (Platform.kernel platform)) in
  let per_tag =
    W5_os.Explain.file_provenance g
      ~path:(Platform.user_file "alice" "profile")
  in
  let tag = Tag.name alice.Account.secret_tag in
  match List.assoc_opt tag per_tag with
  | None -> Alcotest.failf "tag %s missing from file provenance" tag
  | Some history ->
      check bool_c "history includes the labeling" true
        (List.exists
           (fun e -> e.W5_obs.Provenance.kind = "fs.create")
           history)

(* ---- property: provenance never overstates a file's current label ---- *)

(* Random interleavings of provider-side writes (create files with the
   owner's labels), read-protection upgrades (relabel everything the
   user owns) and deletions. Whatever happened, every tag `provenance`
   reports for a surviving file must be on that file's actual label —
   superseded labelings may not resurface. *)
let prop_file_provenance_sound =
  let users = [ "ua"; "ub"; "uc" ] in
  let files = [ "profile"; "friends"; "notes" ] in
  let arb =
    QCheck.make
      ~print:QCheck.Print.(list (pair int int))
      QCheck.Gen.(list_size (1 -- 12) (pair (0 -- 2) (0 -- 3)))
  in
  QCheck.Test.make
    ~name:"file provenance tags are a subset of the file's label" ~count:40
    arb
    (fun ops ->
      let platform = Platform.create () in
      let accounts = List.map (signup platform) users in
      List.iter
        (fun (ui, op) ->
          let account = List.nth accounts (ui mod List.length accounts) in
          match op with
          | 0 | 1 ->
              ignore
                (Platform.write_user_record platform account
                   ~file:(if op = 0 then "profile" else "notes")
                   (W5_store.Record.of_fields [ ("k", "v") ]))
          | 2 -> ignore (Platform.enable_read_protection platform account)
          | _ -> ignore (Platform.delete_user_file platform account ~file:"notes"))
        ops;
      let g =
        W5_os.Explain.graph (W5_os.Kernel.audit (Platform.kernel platform))
      in
      List.for_all
        (fun user ->
          List.for_all
            (fun file ->
              let path = Platform.user_file user file in
              match
                Platform.with_ctx platform ~name:"stat" (fun ctx ->
                    W5_os.Syscall.stat ctx path)
              with
              | Error _ -> true (* deleted: nothing to compare against *)
              | Ok st ->
                  let current =
                    List.map Tag.name
                      (Label.to_list st.W5_os.Fs.labels.Flow.secrecy)
                  in
                  List.for_all
                    (fun (tag, _) -> List.mem tag current)
                    (W5_os.Explain.file_provenance g ~path))
            files)
        users)

let suite =
  [
    Alcotest.test_case "causal chain walk" `Quick test_causal_chain;
    Alcotest.test_case "node budget truncation" `Quick
      test_node_budget_truncation;
    Alcotest.test_case "audit query filters" `Quick test_audit_query;
    Alcotest.test_case "audit query after eviction" `Quick
      test_audit_query_after_eviction;
    Alcotest.test_case "explain narrates the breach" `Quick test_explain_denial;
    Alcotest.test_case "audit report rollups" `Quick test_audit_report;
    Alcotest.test_case "file provenance sees the labeling" `Quick
      test_file_provenance_reports_arrival;
    QCheck_alcotest.to_alcotest prop_file_provenance_sound;
  ]
