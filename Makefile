# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check vet bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs (.github/workflows/ci.yml): the full build, the tier-1
# test suite, smoke iterations of the provenance and federation-faults
# bench groups, and an `explain` pass over the scripted breach (the
# flight recorder must always be able to narrate a denial).
check: vet
	dune build @all && dune runtest
	dune exec bench/main.exe -- --only provenance --smoke
	dune exec bench/main.exe -- --only federation-faults --smoke
	dune exec bin/w5.exe -- explain > /dev/null

# Static label-flow analysis of the example platform, with the runtime
# soundness pass; the JSON form must match the committed golden report
# byte for byte (regenerate it with the redirect below after a
# *reviewed* change to the showcase or the analyzer).
#   dune exec bin/w5.exe -- vet --format json > test/golden/vet.json
vet:
	dune build bin/w5.exe
	dune exec bin/w5.exe -- vet --runtime 300
	dune exec bin/w5.exe -- vet --format json | diff -u test/golden/vet.json -

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart social_network photo_mashup federation_sync \
	          recommendation code_search provider_ops collaboration \
	          difc_tutorial embedding; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
