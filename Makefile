# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs (.github/workflows/ci.yml): the full build plus the
# tier-1 test suite.
check:
	dune build @all && dune runtest

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart social_network photo_mashup federation_sync \
	          recommendation code_search provider_ops collaboration \
	          difc_tutorial embedding; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
