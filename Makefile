# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs (.github/workflows/ci.yml): the full build, the tier-1
# test suite, smoke iterations of the provenance and federation-faults
# bench groups, and an `explain` pass over the scripted breach (the
# flight recorder must always be able to narrate a denial).
check:
	dune build @all && dune runtest
	dune exec bench/main.exe -- --only provenance --smoke
	dune exec bench/main.exe -- --only federation-faults --smoke
	dune exec bin/w5.exe -- explain > /dev/null

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart social_network photo_mashup federation_sync \
	          recommendation code_search provider_ops collaboration \
	          difc_tutorial embedding; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
