# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check vet bench perf perf-record examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs (.github/workflows/ci.yml): the full build, the tier-1
# test suite, smoke iterations of the provenance, federation-faults,
# trace-health and scheduler bench groups, an `explain` pass over the
# scripted breach (the flight recorder must always be able to narrate
# a denial), the federated trace / health goldens (byte-for-byte;
# `w5 health` must judge the scripted faulty peer degraded, exit 2),
# and the scripted soak summary golden (`w5 soak` byte-for-byte —
# the seeded scheduler must be deterministic across processes).
check: vet
	dune build @all && dune runtest
	dune exec bench/main.exe -- --only provenance --smoke
	dune exec bench/main.exe -- --only federation-faults --smoke
	dune exec bench/main.exe -- --only trace-health --smoke
	dune exec bench/main.exe -- --only scheduler --smoke
	dune exec bench/main.exe -- --only vet-concurrency --smoke
	dune exec bin/w5.exe -- explain > /dev/null
	dune exec bin/w5.exe -- trace --federated | diff -u test/golden/trace_federated.txt -
	dune exec bin/w5.exe -- health | diff -u test/golden/health.txt -
	dune exec bin/w5.exe -- health > /dev/null; test $$? -eq 2
	dune exec bin/w5.exe -- soak | diff -u test/golden/soak.txt -

# Static label-flow analysis of the example platform, with the runtime
# soundness pass; the JSON form must match the committed golden report
# byte for byte (regenerate it with the redirect below after a
# *reviewed* change to the showcase or the analyzer).
#   dune exec bin/w5.exe -- vet --format json > test/golden/vet.json
# The preemption-aware arm rides along: the clean showcase model must
# stay byte-identical (and exit 0), and the seeded TOCTOU fixture must
# be detected as a stale flow check, exit code exactly 3.
vet:
	dune build bin/w5.exe
	dune exec bin/w5.exe -- vet --runtime 300
	dune exec bin/w5.exe -- vet --format json | diff -u test/golden/vet.json -
	dune exec bin/w5.exe -- vet --concurrency | diff -u test/golden/vet_concurrency.txt -
	dune exec bin/w5.exe -- vet --toctou > /dev/null; test $$? -eq 3

bench:
	dune exec bench/main.exe

# Tracking performance over time (README §"Tracking performance over
# time"): a full measured bench run, emitted as BENCH_<group>.json and
# diffed against the committed baselines at the repo root under
# per-group relative thresholds. Exit 1 on regression. CI runs only
# the structural (--schema-only) gate — smoke timings are noise — so
# this value gate is the local, pre-commit check.
perf:
	dune exec bench/main.exe -- --json-dir _bench_fresh
	dune exec bin/w5.exe -- perf diff --fresh _bench_fresh

# Re-record the committed baselines after a *reviewed* perf change
# (and regenerate the schema golden CI byte-diffs):
perf-record:
	dune exec bench/main.exe -- --json-dir _bench_fresh
	dune exec bin/w5.exe -- perf record --fresh _bench_fresh
	dune exec bin/w5.exe -- perf schema > test/golden/bench_schema.txt

examples:
	@for e in quickstart social_network photo_mashup federation_sync \
	          recommendation code_search provider_ops collaboration \
	          difc_tutorial embedding; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe || exit 1; \
	done

clean:
	dune clean
