let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let page ~title body =
  Printf.sprintf
    "<!doctype html><html><head><title>%s</title></head><body>%s</body></html>"
    (escape title) body

let element tag ?(attrs = []) body =
  let attr_str =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
  in
  Printf.sprintf "<%s%s>%s</%s>" tag attr_str body tag

let text = escape
let link ~href label = element "a" ~attrs:[ ("href", href) ] (escape label)
let ul items = element "ul" (String.concat "" (List.map (element "li") items))

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_alnum c = is_letter c || (c >= '0' && c <= '9')

let lowercase_at low i prefix =
  let n = String.length prefix in
  i + n <= String.length low && String.sub low i n = prefix

(* An event-handler attribute starts at [i] if "on" appears on a word
   boundary, followed by letters, optional spaces, then '='. Returns
   the position just after the '=' when matched. *)
let handler_at low i =
  let n = String.length low in
  let boundary = i = 0 || not (is_alnum low.[i - 1]) in
  if (not boundary) || not (lowercase_at low i "on") then None
  else
    let rec letters j = if j < n && is_letter low.[j] then letters (j + 1) else j in
    let j = letters (i + 2) in
    if j = i + 2 then None
    else
      let rec spaces j = if j < n && low.[j] = ' ' then spaces (j + 1) else j in
      let j = spaces j in
      if j < n && low.[j] = '=' then Some (j + 1) else None

let contains_script html =
  let low = String.lowercase_ascii html in
  let n = String.length low in
  (* [in_tag] tracks whether the scanner sits between '<' and '>':
     event-handler attributes only matter there — "ongoing = fine" in
     body text is not executable. *)
  let rec scan i in_tag =
    if i >= n then false
    else if lowercase_at low i "<script" then true
    else if lowercase_at low i "javascript:" then true
    else if in_tag && handler_at low i <> None then true
    else
      let in_tag =
        match low.[i] with '<' -> true | '>' -> false | _ -> in_tag
      in
      scan (i + 1) in_tag
  in
  scan 0 false

let rec strip_scripts html =
  let low = String.lowercase_ascii html in
  let n = String.length low in
  let buf = Buffer.create n in
  (* Skip an attribute value starting right after '=': a quoted string
     or an unquoted token. *)
  let skip_value i =
    let rec spaces i = if i < n && low.[i] = ' ' then spaces (i + 1) else i in
    let i = spaces i in
    if i >= n then i
    else if low.[i] = '"' || low.[i] = '\'' then begin
      let quote = low.[i] in
      let rec find j =
        if j >= n then n else if low.[j] = quote then j + 1 else find (j + 1)
      in
      find (i + 1)
    end
    else
      let rec token j =
        if j < n && low.[j] <> ' ' && low.[j] <> '>' then token (j + 1) else j
      in
      token i
  in
  let rec go i in_tag =
    if i >= n then ()
    else if lowercase_at low i "<script" then begin
      (* Drop through the matching close tag, or everything if
         unterminated. *)
      let rec find j =
        if j >= n then n
        else if lowercase_at low j "</script>" then j + 9
        else find (j + 1)
      in
      go (find (i + 7)) false
    end
    else if lowercase_at low i "javascript:" then
      go (i + String.length "javascript:") in_tag
    else
      match if in_tag then handler_at low i else None with
      | Some after_eq -> go (skip_value after_eq) in_tag
      | None ->
          Buffer.add_char buf html.[i];
          let in_tag =
            match low.[i] with '<' -> true | '>' -> false | _ -> in_tag
          in
          go (i + 1) in_tag
  in
  go 0 false;
  let out = Buffer.contents buf in
  (* Stripping can juxtapose fragments into new matches (e.g.
     "<scr<script>ipt" collapsing); iterate to a fixed point. *)
  if contains_script out then
    if String.length out < String.length html then strip_scripts out else ""
  else out
