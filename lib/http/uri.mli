(** Minimal URI handling for the W5 front-end.

    Supports the subset the platform needs: absolute-path references
    with optional query strings, e.g. ["/devA/crop?photo=p1&size=2"].
    Percent-decoding covers [%XX] escapes; ['+'] decodes to space
    only in query strings (the form encoding), never in path
    segments — ["/file/a+b"] names [a+b]. *)

type t = {
  path : string;           (** normalized, always starts with ["/"] *)
  segments : string list;  (** path split on ["/"], no empties *)
  query : (string * string) list;
}

val parse : string -> t
(** Never fails: malformed escapes are kept literally. *)

val percent_decode : string -> string
(** Decodes [%XX] escapes only; ['+'] stays literal (path rule). *)

val percent_encode : string -> string
val query_get : t -> string -> string option
val with_query : string -> (string * string) list -> string
(** [with_query "/a/b" ["k","v"]] renders ["/a/b?k=v"] with encoding. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
