type t = {
  path : string;
  segments : string list;
  query : (string * string) list;
}

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* ['+'] means space only in the form/query encoding; in a path
   segment it is a literal plus (["/file/a+b"] names [a+b]). Only
   {!parse_query} opts into the form rule. *)
let decode ~form_encoded s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' when form_encoded ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_val s.[i + 1], hex_val s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi * 16) + lo));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let percent_decode s = decode ~form_encoded:false s

let unreserved c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' | '/' -> true
  | _ -> false

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if unreserved c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents buf

let parse_query qs =
  let decode = decode ~form_encoded:true in
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (decode pair, "")
             | Some i ->
                 Some
                   ( decode (String.sub pair 0 i),
                     decode
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   ))

let parse raw =
  let path_part, query_part =
    match String.index_opt raw '?' with
    | None -> (raw, "")
    | Some i ->
        (String.sub raw 0 i, String.sub raw (i + 1) (String.length raw - i - 1))
  in
  let segments =
    String.split_on_char '/' path_part
    |> List.filter (fun s -> s <> "" && s <> ".")
    |> List.map percent_decode
  in
  let path = "/" ^ String.concat "/" segments in
  { path; segments; query = parse_query query_part }

let query_get t key = List.assoc_opt key t.query

let with_query path params =
  if params = [] then path
  else
    path ^ "?"
    ^ String.concat "&"
        (List.map
           (fun (k, v) -> percent_encode k ^ "=" ^ percent_encode v)
           params)

let to_string t = with_query t.path t.query
let pp fmt t = Format.pp_print_string fmt (to_string t)
