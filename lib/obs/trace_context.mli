(** The trace identity a request carries across a provider boundary.

    When a federation operation (a sync round, a link handshake, a
    migration) hands off to a peer platform, this is {e everything}
    that crosses with it for tracing purposes: the trace's origin
    provider and root span id, the span on the sending side the remote
    work continues, and the sender's logical tick at the handoff. Ids
    and ticks only — a context can never carry user bytes, so
    propagating it is as label-safe as the spans themselves.

    On the receiving side the context rides as ordinary span fields on
    the remote root span ({!to_fields}); {!Trace_merge} later finds
    those fields ({!of_fields}) and reattaches the remote subtree
    under its cross-provider parent. *)

type t = {
  trace_origin : string;  (** provider that started the whole trace *)
  trace_root : int;       (** root span id {e on the origin provider} *)
  parent_origin : string; (** provider whose span the remote work continues *)
  parent_span : int;      (** span id on [parent_origin] *)
  origin_tick : int;      (** sender's logical tick at the handoff *)
}

val to_fields : t -> (string * string) list
(** Encode as span fields ([w5.trace.*] / [w5.parent.*] /
    [w5.handoff.tick] keys). *)

val of_fields : (string * string) list -> t option
(** Inverse of {!to_fields}; [None] when the fields are absent or
    malformed (a span that is not a remote continuation). *)

val is_context_field : string * string -> bool
(** Does this span field belong to the carried-context vocabulary?
    Renderers use it to show the hop as a marker instead of raw
    fields. *)

val describe : t -> string
(** ["origin#root via parent_origin#span @tN"] — for annotations. *)
