type t = {
  span_id : int;
  parent_id : int option;
  span_name : string;
  mutable span_fields : (string * string) list;
  start_tick : int;
  mutable end_tick : int;
  mutable children : t list;
}

let make ~id ~parent ~name ~fields ~start_tick =
  { span_id = id; parent_id = parent; span_name = name; span_fields = fields;
    start_tick; end_tick = -1; children = [] }

let is_open span = span.end_tick < 0

let duration span =
  if is_open span then 0 else span.end_tick - span.start_tick

let annotate span fields = span.span_fields <- span.span_fields @ fields
let add_child parent child = parent.children <- child :: parent.children

let finish span ~tick =
  span.end_tick <- max tick span.start_tick;
  span.children <- List.rev span.children

let rec descendant_count span =
  List.fold_left (fun acc c -> acc + descendant_count c) 1 span.children
