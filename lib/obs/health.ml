type state = Healthy | Degraded | Unreachable

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Unreachable -> "unreachable"

let severity = function Healthy -> 0 | Degraded -> 2 | Unreachable -> 3

type sample = {
  s_tick : int;
  s_ok : bool;
  s_retries : int;
  s_faults : int;
  s_timed_out : bool;
  s_recovered : int;
}

type peer_stats = {
  mutable last_ok : int option;
  mutable last_bad : int option;
  mutable total_rounds : int;
  mutable window : sample list; (* newest first, pruned to the tick window *)
  mutable lag : int;
}

type t = {
  h_window : int;
  h_recover_after : int;
  h_unreachable_after : int;
  peers : (string * string, peer_stats) Hashtbl.t;
}

let create ?(window = 256) ?(recover_after = 64) ?(unreachable_after = 512) () =
  {
    h_window = max 1 window;
    h_recover_after = max 1 recover_after;
    h_unreachable_after = max 1 unreachable_after;
    peers = Hashtbl.create 16;
  }

let stats_for t ~observer ~peer =
  match Hashtbl.find_opt t.peers (observer, peer) with
  | Some s -> s
  | None ->
      let s =
        { last_ok = None; last_bad = None; total_rounds = 0; window = [];
          lag = 0 }
      in
      Hashtbl.add t.peers (observer, peer) s;
      s

let prune t stats ~now =
  let floor = now - t.h_window in
  stats.window <- List.filter (fun s -> s.s_tick > floor) stats.window

let observe_round t ~observer ~peer ~tick ~ok ~retries ~faults ~timed_out
    ~recovered =
  let stats = stats_for t ~observer ~peer in
  stats.total_rounds <- stats.total_rounds + 1;
  if ok then stats.last_ok <- Some tick;
  if (not ok) || retries > 0 || faults > 0 || timed_out then
    stats.last_bad <- Some tick;
  stats.window <-
    { s_tick = tick; s_ok = ok; s_retries = retries; s_faults = faults;
      s_timed_out = timed_out; s_recovered = recovered }
    :: stats.window;
  prune t stats ~now:tick

let note_lag t ~observer ~peer ~lag =
  (stats_for t ~observer ~peer).lag <- max 0 lag

(* Tick-based hysteresis: one clean round does not clear Degraded (the
   pair must stay clean for [recover_after] ticks), and Unreachable is
   purely an age judgment — it clears the moment a round succeeds
   again, because success {e is} reachability. *)
let state_of t ~observer ~peer ~now =
  match Hashtbl.find_opt t.peers (observer, peer) with
  | None -> Unreachable
  | Some stats -> (
      match stats.last_ok with
      | None -> Unreachable
      | Some ok_tick ->
          if now - ok_tick > t.h_unreachable_after then Unreachable
          else
            let degraded =
              match stats.last_bad with
              | None -> false
              | Some bad_tick -> now - bad_tick < t.h_recover_after
            in
            if degraded then Degraded else Healthy)

type row = {
  r_observer : string;
  r_peer : string;
  r_state : state;
  r_last_ok_age : int option;
  r_rounds : int;
  r_faults : int;
  r_retries : int;
  r_timeouts : int;
  r_recoveries : int;
  r_lag : int;
}

(* [now] maps an observer to its own kernel's current tick: every age
   in a row is measured on the clock the samples were recorded on —
   cross-provider ticks are not comparable (each kernel counts its own
   crossings), so a single global "now" would skew every row. *)
let report t ~now =
  Hashtbl.fold
    (fun (observer, peer) stats acc ->
      let now = now observer in
      prune t stats ~now;
      let faults, retries, timeouts, recoveries =
        List.fold_left
          (fun (f, r, to_, rec_) s ->
            ( f + s.s_faults,
              r + s.s_retries,
              to_ + (if s.s_timed_out then 1 else 0),
              rec_ + s.s_recovered ))
          (0, 0, 0, 0) stats.window
      in
      {
        r_observer = observer;
        r_peer = peer;
        r_state = state_of t ~observer ~peer ~now;
        r_last_ok_age = Option.map (fun tick -> now - tick) stats.last_ok;
        r_rounds = List.length stats.window;
        r_faults = faults;
        r_retries = retries;
        r_timeouts = timeouts;
        r_recoveries = recoveries;
        r_lag = stats.lag;
      }
      :: acc)
    t.peers []
  |> List.sort (fun a b ->
         match String.compare a.r_observer b.r_observer with
         | 0 -> String.compare a.r_peer b.r_peer
         | c -> c)

let window t = t.h_window

let render t ~now =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "peer health (window %d ticks)\n" t.h_window);
  let rows = report t ~now in
  if rows = [] then Buffer.add_string buf "  (no peers observed)\n"
  else
    List.iter
      (fun r ->
        let age =
          match r.r_last_ok_age with
          | None -> "never"
          | Some a -> Printf.sprintf "age %d" a
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %s -> %s  %-11s  last_ok %s  rounds=%d faults=%d retries=%d timeouts=%d recoveries=%d lag=%d\n"
             r.r_observer r.r_peer
             (String.uppercase_ascii (state_name r.r_state))
             age r.r_rounds r.r_faults r.r_retries r.r_timeouts r.r_recoveries
             r.r_lag))
      rows;
  Buffer.contents buf

(* ---- gateway SLO / error budget --------------------------------------- *)

module Slo = struct
  type event = { e_tick : int; e_error : bool }

  type route_stats = { mutable events : event list (* newest first *) }

  type t = {
    s_window : int;
    s_objective_bp : int; (* availability objective in basis points *)
    routes : (string, route_stats) Hashtbl.t;
  }

  let create ?(window = 256) ?(objective_bp = 9900) () =
    {
      s_window = max 1 window;
      s_objective_bp = min 10000 (max 0 objective_bp);
      routes = Hashtbl.create 16;
    }

  let observe t ~route ~tick ~status =
    let stats =
      match Hashtbl.find_opt t.routes route with
      | Some s -> s
      | None ->
          let s = { events = [] } in
          Hashtbl.add t.routes route s;
          s
    in
    stats.events <- { e_tick = tick; e_error = status >= 500 } :: stats.events;
    let floor = tick - t.s_window in
    stats.events <- List.filter (fun e -> e.e_tick > floor) stats.events

  type row = {
    sr_route : string;
    sr_total : int;
    sr_errors : int;
    sr_availability_bp : int;
    sr_budget : int;
    sr_breached : bool;
  }

  let report t ~now =
    Hashtbl.fold
      (fun route stats acc ->
        let floor = now - t.s_window in
        stats.events <- List.filter (fun e -> e.e_tick > floor) stats.events;
        let total = List.length stats.events in
        let errors =
          List.length (List.filter (fun e -> e.e_error) stats.events)
        in
        let availability_bp =
          if total = 0 then 10000 else (total - errors) * 10000 / total
        in
        (* the budget rounds *up*: with the default 99% objective, any
           window of fewer than 100 requests still tolerates one error
           rather than breaching on the first 5xx *)
        let budget =
          (total * (10000 - t.s_objective_bp) + 9999) / 10000
        in
        {
          sr_route = route;
          sr_total = total;
          sr_errors = errors;
          sr_availability_bp = availability_bp;
          sr_budget = budget;
          sr_breached = errors > budget;
        }
        :: acc)
      t.routes []
    |> List.sort (fun a b -> String.compare a.sr_route b.sr_route)

  let pct_of_bp bp = Printf.sprintf "%d.%02d%%" (bp / 100) (bp mod 100)

  let breached t ~now = List.exists (fun r -> r.sr_breached) (report t ~now)

  let render t ~now =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "gateway SLO (objective %s, window %d ticks, now t%d)\n"
         (pct_of_bp t.s_objective_bp) t.s_window now);
    let rows = report t ~now in
    if rows = [] then Buffer.add_string buf "  (no requests observed)\n"
    else
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %-24s availability %s (%d/%d)  budget %d, spent %d%s\n"
               r.sr_route
               (pct_of_bp r.sr_availability_bp)
               (r.sr_total - r.sr_errors) r.sr_total r.sr_budget r.sr_errors
               (if r.sr_breached then "  BREACHED" else "")))
        rows;
    Buffer.contents buf
end
