type node = {
  node_provider : string;
  node_span : Span.t;
  node_remote : Trace_context.t option;
  mutable node_children : node list;
}

type forest = node list

(* Is [candidate] inside [root]'s subtree (itself included)? Attaching
   a remote root under one of its own descendants would knot the
   forest into a cycle; a forged or corrupted context must stay an
   orphan instead. *)
let rec in_subtree root candidate =
  root == candidate || List.exists (fun c -> in_subtree c candidate) root.node_children

let merge per_provider =
  let index : (string * int, node) Hashtbl.t = Hashtbl.create 64 in
  (* one node per span, local children pre-wired, every span indexed *)
  let rec build provider (span : Span.t) =
    let node =
      {
        node_provider = provider;
        node_span = span;
        node_remote = Trace_context.of_fields span.Span.span_fields;
        node_children = [];
      }
    in
    node.node_children <- List.map (build provider) span.Span.children;
    Hashtbl.replace index (provider, span.Span.span_id) node;
    node
  in
  let roots =
    List.concat_map
      (fun (provider, spans) ->
        List.map (fun span -> build provider span) spans)
      per_provider
  in
  (* reattach remote continuations under their cross-provider parents;
     unmatched (or cycle-forming) contexts leave the node a root *)
  List.filter
    (fun node ->
      match node.node_remote with
      | None -> true
      | Some ctx -> (
          match
            Hashtbl.find_opt index
              (ctx.Trace_context.parent_origin, ctx.Trace_context.parent_span)
          with
          | Some parent when not (in_subtree node parent) ->
              parent.node_children <- parent.node_children @ [ node ];
              false
          | Some _ | None -> true))
    roots

let fold forest ~init ~f =
  let rec go depth acc node =
    let acc = f acc ~depth node in
    List.fold_left (go (depth + 1)) acc node.node_children
  in
  List.fold_left (go 0) init forest

let span_count forest = fold forest ~init:0 ~f:(fun n ~depth:_ _ -> n + 1)

let visible_fields (span : Span.t) =
  List.filter
    (fun field -> not (Trace_context.is_context_field field))
    span.Span.span_fields

let render_fields fields =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let span_times (span : Span.t) =
  let d = Span.duration span in
  if d = 0 then Printf.sprintf "[t%d +0]" span.Span.start_tick
  else
    Printf.sprintf "[t%d..t%d +%d]" span.Span.start_tick span.Span.end_tick d

let hop_marker node =
  match node.node_remote with
  | None -> None
  | Some ctx ->
      Some
        (Printf.sprintf "(hop from %s#%d @t%d)" ctx.Trace_context.parent_origin
           ctx.Trace_context.parent_span ctx.Trace_context.origin_tick)

let to_text forest =
  let buf = Buffer.create 1024 in
  let rec go depth node =
    let span = node.node_span in
    Buffer.add_string buf (String.make (2 * depth) ' ');
    if node.node_remote <> None then Buffer.add_string buf "~ ";
    Buffer.add_string buf ("[" ^ node.node_provider ^ "] ");
    Buffer.add_string buf span.Span.span_name;
    Buffer.add_string buf ("  " ^ span_times span);
    (match visible_fields span with
    | [] -> ()
    | fields -> Buffer.add_string buf ("  " ^ render_fields fields));
    (match hop_marker node with
    | None -> ()
    | Some m -> Buffer.add_string buf ("  " ^ m));
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) node.node_children
  in
  List.iteri
    (fun i root ->
      if i > 0 then Buffer.add_char buf '\n';
      go 0 root)
    forest;
  Buffer.contents buf

let to_json forest =
  let buf = Buffer.create 2048 in
  let str = Exposition.json_string in
  let rec emit node =
    let span = node.node_span in
    Buffer.add_string buf "{\"provider\":";
    Buffer.add_string buf (str node.node_provider);
    Buffer.add_string buf ",\"name\":";
    Buffer.add_string buf (str span.Span.span_name);
    Buffer.add_string buf (Printf.sprintf ",\"span_id\":%d" span.Span.span_id);
    Buffer.add_string buf
      (Printf.sprintf ",\"start_tick\":%d,\"end_tick\":%d" span.Span.start_tick
         span.Span.end_tick);
    (match node.node_remote with
    | None -> ()
    | Some ctx ->
        Buffer.add_string buf
          (Printf.sprintf
             ",\"remote\":{\"trace_origin\":%s,\"trace_root\":%d,\"parent_origin\":%s,\"parent_span\":%d,\"handoff_tick\":%d}"
             (str ctx.Trace_context.trace_origin) ctx.Trace_context.trace_root
             (str ctx.Trace_context.parent_origin)
             ctx.Trace_context.parent_span ctx.Trace_context.origin_tick));
    (match visible_fields span with
    | [] -> ()
    | fields ->
        Buffer.add_string buf ",\"fields\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (str k);
            Buffer.add_char buf ':';
            Buffer.add_string buf (str v))
          fields;
        Buffer.add_char buf '}');
    Buffer.add_string buf ",\"children\":[";
    List.iteri
      (fun i child ->
        if i > 0 then Buffer.add_char buf ',';
        emit child)
      node.node_children;
    Buffer.add_string buf "]}"
  in
  Buffer.add_string buf "{\"traces\":[";
  List.iteri
    (fun i root ->
      if i > 0 then Buffer.add_char buf ',';
      emit root)
    forest;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_dot forest =
  let node_id node =
    Dot.ident (node.node_provider ^ "_" ^ string_of_int node.node_span.Span.span_id)
  in
  let lines = ref [] in
  let add line = lines := line :: !lines in
  let rec go node =
    let span = node.node_span in
    add
      (Dot.node (node_id node)
         ~label:
           (Printf.sprintf "%s: %s\n%s" node.node_provider span.Span.span_name
              (span_times span))
         ~attrs:
           (if node.node_remote <> None then [ ("style", "dashed") ] else []));
    List.iter
      (fun child ->
        go child;
        let attrs =
          match (child.node_remote, hop_marker child) with
          | Some _, Some m ->
              [ ("style", "dashed"); ("label", m) ]
          | _ -> []
        in
        add (Dot.edge ~attrs (node_id node) (node_id child)))
      node.node_children
  in
  List.iter go forest;
  Dot.digraph ~rankdir:"TB" "w5_trace" (List.rev !lines)
