(* ---- Prometheus text format ---- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"")
             labels)
      ^ "}"

let kind_name = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Histogram -> "histogram"

let prometheus registry =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.sample_help <> "" then
        line "# HELP %s %s" s.sample_name (escape_help s.sample_help);
      line "# TYPE %s %s" s.sample_name (kind_name s.sample_kind);
      List.iter
        (fun (labels, point) ->
          match point with
          | Metrics.Value v ->
              line "%s%s %d" s.sample_name (render_labels labels) v
          | Metrics.Histo { counts; sum; count } ->
              let cumulative = ref 0 in
              List.iteri
                (fun i c ->
                  cumulative := !cumulative + c;
                  let le =
                    match List.nth_opt s.sample_buckets i with
                    | Some bound -> string_of_int bound
                    | None -> "+Inf"
                  in
                  line "%s_bucket%s %d" s.sample_name
                    (render_labels (labels @ [ ("le", le) ]))
                    !cumulative)
                counts;
              line "%s_sum%s %d" s.sample_name (render_labels labels) sum;
              line "%s_count%s %d" s.sample_name (render_labels labels) count)
        s.sample_series)
    (Metrics.dump registry);
  Buffer.contents buf

(* ---- latency quantile summary (text) ---- *)

let render_quantile = function
  | None -> "-"
  | Some e -> Perf.render_estimate e

let summaries registry =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, (s : Perf.summary)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s count=%d sum=%d p50=%s p95=%s p99=%s\n" name
           (render_labels s.Perf.q_labels)
           s.Perf.q_count s.Perf.q_sum
           (render_quantile s.Perf.q_p50)
           (render_quantile s.Perf.q_p95)
           (render_quantile s.Perf.q_p99)))
    (Perf.summaries registry);
  Buffer.contents buf

(* ---- JSON ---- *)

let json_string v =
  let buf = Buffer.create (String.length v + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let json_ints ns = "[" ^ String.concat "," (List.map string_of_int ns) ^ "]"

let json registry =
  let metric (s : Metrics.sample) =
    let series (labels, point) =
      let fields =
        match point with
        | Metrics.Value v ->
            [ ("labels", json_labels labels); ("value", string_of_int v) ]
        | Metrics.Histo { counts; sum; count } ->
            let q p =
              json_string
                (render_quantile
                   (Perf.quantile ~bounds:s.Metrics.sample_buckets ~counts p))
            in
            [ ("labels", json_labels labels);
              ("buckets", json_ints counts);
              ("sum", string_of_int sum);
              ("count", string_of_int count);
              ("p50", q 0.50);
              ("p95", q 0.95);
              ("p99", q 0.99) ]
      in
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
      ^ "}"
    in
    let fields =
      [ ("name", json_string s.Metrics.sample_name);
        ("kind", json_string (kind_name s.sample_kind)) ]
      @ (if s.sample_help = "" then []
         else [ ("help", json_string s.sample_help) ])
      @ (match s.sample_kind with
        | Metrics.Histogram -> [ ("bounds", json_ints s.sample_buckets) ]
        | Metrics.Counter | Metrics.Gauge -> [])
      @ [ ("series",
           "[" ^ String.concat "," (List.map series s.sample_series) ^ "]") ]
    in
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
    ^ "}"
  in
  Printf.sprintf "{\"series_count\":%d,\"overflowed\":%d,\"metrics\":[%s]}"
    (Metrics.series_count registry)
    (Metrics.overflowed registry)
    (String.concat "," (List.map metric (Metrics.dump registry)))

(* ---- trace rendering ---- *)

let render_fields fields =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let trace_tree root =
  let buf = Buffer.create 512 in
  let rec go depth (span : Span.t) =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf span.Span.span_name;
    let d = Span.duration span in
    if d = 0 then
      Buffer.add_string buf
        (Printf.sprintf "  [t%d +0]" span.Span.start_tick)
    else
      Buffer.add_string buf
        (Printf.sprintf "  [t%d..t%d +%d]" span.Span.start_tick
           span.Span.end_tick d);
    (match span.Span.span_fields with
    | [] -> ()
    | fields -> Buffer.add_string buf ("  " ^ render_fields fields));
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) span.Span.children
  in
  go 0 root;
  Buffer.contents buf

let traces tracer =
  let body =
    String.concat "\n" (List.map trace_tree (Tracer.traces tracer))
  in
  match Tracer.dropped tracer with
  | 0 -> body
  | n -> Printf.sprintf "%s(%d older trace%s dropped)\n" body n
           (if n = 1 then "" else "s")
