(** Minimal Graphviz DOT assembly, shared by {!Provenance} and the
    static analyzer's graph output so both emit the same dialect
    (labels quoted and escaped, bare identifier values unquoted,
    [rankdir] header, two-space indent).

    The helpers return single lines without trailing newlines;
    {!digraph} joins them into a complete document. *)

val escape : string -> string
(** Escape a string for use inside a double-quoted DOT attribute. *)

val ident : string -> string
(** Flatten an arbitrary string into a safe DOT identifier (anything
    outside [A-Za-z0-9] becomes ['_']). Distinct inputs may collide;
    callers that need uniqueness should prefix a discriminator. *)

val node : ?attrs:(string * string) list -> string -> label:string -> string
(** [node id ~label ~attrs] renders ["  id [label=\"…\",k=\"v\"];"].
    [id] must already be a valid identifier (see {!ident}). *)

val edge : ?attrs:(string * string) list -> string -> string -> string
(** [edge src dst] renders ["  src -> dst [k=\"v\"];"]. *)

val digraph : ?rankdir:string -> string -> string list -> string
(** Wrap pre-rendered lines into ["digraph <name> { rankdir=…; … }\n"].
    [rankdir] defaults to ["LR"]. *)
