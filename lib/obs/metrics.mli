(** Label-safe metrics: the platform half of §3.5's "debugging without
    data".

    A registry of counters, gauges and fixed-bucket histograms with
    Prometheus-style label dimensions. The whole module obeys the W5
    telemetry rule: a series may carry {e structural} facts (operation
    names, decisions, label sizes, tick deltas) but never user bytes.
    Two mechanisms back the rule up:

    - values are integers — there is nowhere to put a payload;
    - every metric has a {b cardinality cap}: once a metric holds
      [max_series] distinct label sets, further label sets collapse
      into a single overflow series (labels [{w5_capped="true"}]).
      Without the cap, a malicious module could mint one series per
      user (or per secret bit) and read the data back out of the
      provider's dashboard. With it, telemetry volume is bounded by
      configuration, not by attacker-chosen names. *)

type t
(** A metric registry. The kernel owns one per instance
    ({!W5_os.Kernel.metrics} once the os layer is linked in). *)

type metric
(** A named family of series: one counter/gauge/histogram per distinct
    label set. *)

type labels = (string * string) list
(** Label dimensions, e.g. [[("op", "fs.read"); ("decision", "allow")]].
    Order does not matter; series identity is the sorted set. *)

type kind = Counter | Gauge | Histogram

val create : ?max_series:int -> ?enabled:bool -> unit -> t
(** [max_series] (default 64) caps the number of distinct label sets
    per metric — see the covert-channel note above. [enabled] (default
    [true]); a disabled registry accepts registrations but drops every
    update, which is the uninstrumented arm of the
    [metrics-overhead] benchmark. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val max_series : t -> int

val counter : t -> ?help:string -> string -> metric
(** Register (or look up) a counter. Re-registering a name returns the
    existing metric; re-registering with a different kind raises
    [Invalid_argument]. *)

val gauge : t -> ?help:string -> string -> metric

val histogram : t -> ?help:string -> ?buckets:int list -> string -> metric
(** Fixed upper-bound buckets in ascending order (default powers of
    two, 1..1024), counted cumulatively at exposition; a [+Inf] bucket
    is implicit. Observations are integers — tick deltas, sizes. *)

val inc : ?labels:labels -> ?by:int -> metric -> unit
(** Add to a counter or gauge ([by] defaults to 1). *)

val set : ?labels:labels -> metric -> int -> unit
(** Set a gauge. *)

val observe : ?labels:labels -> metric -> int -> unit
(** Record one observation in a histogram. *)

val value : ?labels:labels -> metric -> int
(** Current value of a counter/gauge series (0 if the series does not
    exist). For histograms, the cumulated sum. *)

val histogram_count : ?labels:labels -> metric -> int
val histogram_sum : ?labels:labels -> metric -> int

val series_count : t -> int
(** Total live series across all metrics. *)

val overflowed : t -> int
(** How many updates were redirected into overflow series — nonzero
    means some label dimension outgrew the cap. *)

(** {1 Snapshot for exposition} *)

type point =
  | Value of int
  | Histo of { counts : int list; sum : int; count : int }
      (** [counts] are per-bucket (non-cumulative), one per declared
          bound, then the overflow bucket. *)

type sample = {
  sample_name : string;
  sample_help : string;
  sample_kind : kind;
  sample_buckets : int list;  (** declared bounds (histograms only) *)
  sample_series : (labels * point) list;  (** sorted by label set *)
}

val dump : t -> sample list
(** Every registered metric, sorted by name; series sorted by label
    set. Stable across runs with the same history — exposition output
    is used as golden test material. *)

val clear : t -> unit
(** Drop all series (registrations survive). *)
