(** Request tracing over the kernel's logical clock.

    The tracer keeps a stack of open spans; {!start_span} nests under
    the innermost open span, and finishing a {e root} span moves the
    whole tree into a bounded ring of completed traces. Disabled (the
    default) every operation is a constant-time no-op, so the
    instrumented hot paths cost one branch when nobody is looking.

    Ticks are supplied by the caller (normally
    [W5_os.Kernel.tick]) — the tracer itself has no clock, which keeps
    this library dependency-free and the recorded durations logical. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] (default 16) bounds the ring of {e completed} traces:
    the oldest trace is dropped when a new root finishes beyond the
    cap — an O(1) overwrite of the ring's oldest slot, so tracing at
    capacity costs the same as tracing below it. [enabled] defaults to
    [false]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_on_drop : t -> (int -> unit) -> unit
(** Called with the number of roots evicted each time the ring drops a
    completed trace — how the kernel mirrors eviction into the
    [w5_trace_dropped_total] counter without this library depending on
    {!Metrics} wiring. Default: ignore. *)

val start_span :
  t -> tick:int -> ?fields:(string * string) list -> string -> unit
(** Open a span named after the current operation, nested under the
    innermost open span (a new root otherwise). No-op when disabled. *)

val annotate : t -> (string * string) list -> unit
(** Attach data-free fields to the innermost open span. *)

val end_span : t -> tick:int -> unit
(** Close the innermost open span. Closing the last open span commits
    the trace. Unbalanced calls are ignored. *)

val event :
  t -> tick:int -> ?fields:(string * string) list -> string -> unit
(** An instantaneous child span (start = end = [tick]): flow-check
    decisions, export verdicts. *)

val with_span :
  t -> clock:(unit -> int) -> ?fields:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span t ~clock name f] brackets [f] in a span; the span is
    closed (at the clock's then-current tick) even if [f] raises. *)

val context : t -> origin:string -> tick:int -> Trace_context.t option
(** The {!Trace_context} an operation running right now would hand to
    a peer: parented under the innermost open span, rooted at the
    current trace (a root that is itself a remote continuation
    forwards the {e original} trace identity, so multi-hop chains stay
    one trace). [None] when disabled or no span is open. *)

val with_remote_span :
  t -> clock:(unit -> int) -> context:Trace_context.t ->
  ?fields:(string * string) list -> string -> (unit -> 'a) -> 'a
(** The receiving side of a handoff: bracket [f] in a span that is a
    {e root} on this tracer (any open local stack is set aside and
    restored, even on raise) carrying [context] as {!Trace_context.to_fields}
    fields — the breadcrumb {!Trace_merge} uses to reattach this
    subtree under its cross-provider parent. *)

val open_depth : t -> int
(** How many spans are currently open (0 = between requests). *)

val traces : t -> Span.t list
(** Completed root spans, oldest first. *)

val latest : t -> Span.t option

val dropped : t -> int
(** How many completed traces have been evicted from the ring since
    creation (or the last {!clear}) — the tracing analogue of audit
    eviction: when it is non-zero, [traces] is a suffix of the true
    history. *)

val clear : t -> unit
(** Drop completed traces and abandon any open stack. *)
