(** Render telemetry for operators.

    Three views over the same data-free state: the Prometheus text
    exposition format (for a scrape endpoint), a JSON document (for
    provider tooling), and a flame-style indented tree for one
    recorded trace. Output is deterministic — metrics sort by name,
    series by label set — so goldens can assert on it verbatim. *)

val prometheus : Metrics.t -> string
(** Prometheus text format 0.0.4: [# HELP] / [# TYPE] preambles,
    histograms as cumulative [_bucket{le="…"}] plus [_sum]/[_count]. *)

val json : Metrics.t -> string
(** A single JSON object:
    [{"series_count":…,"overflowed":…,"metrics":[…]}]. Histogram
    series carry derived ["p50"]/["p95"]/["p99"] quantile estimates
    (rendered as {!Perf.render_estimate} strings, ["-"] when empty). *)

val json_string : string -> string
(** Escape and quote a string as a JSON literal (shared by the other
    JSON emitters in this library, e.g. {!Baseline}). *)

val summaries : Metrics.t -> string
(** One line per histogram series with count, sum, and derived
    p50/p95/p99 tick quantiles:
    {v
w5_gateway_request_ticks{route="app:core/social"} count=7 sum=203 p50=32 p95=64 p99=64
    v}
    A quantile prints as its bucket's upper bound, [">B"] when it
    falls past the largest bound [B], or ["-"] for an empty series. *)

val trace_tree : Span.t -> string
(** One trace as an indented tree, two spaces per depth:
    {v
gateway:app core/social  [t12..t40 +28] status=200
  sys.fs.read  [t13..t14 +1]
    flow.check  [t14 +0] op=fs.read decision=allow src_secrecy=1
    v} *)

val traces : Tracer.t -> string
(** Every completed trace, oldest first, blank-line separated; ends
    with a ["(N older traces dropped)"] notice when the tracer's ring
    has evicted completed traces. *)
