(** Committed bench baselines and the regression comparator.

    The bench harness writes one [BENCH_<group>.json] per group; those
    files are committed at the repo root. This module owns the schema
    (emit {e and} parse, so the two can't drift), loads a directory of
    baselines, compares a fresh run against them under per-group
    relative thresholds, and renders the verdict as text or JSON.
    [w5 perf diff] exits non-zero iff {!has_regression}. *)

type entry = {
  e_name : string;
  e_runs : int;  (** bechamel sample count *)
  e_ns : float;  (** ns/op point estimate (OLS slope) *)
  e_r2 : float;  (** goodness of fit; [0.0] when unavailable *)
}

type group = {
  g_name : string;
  g_entries : entry list;  (** sorted by [e_name] *)
}

val schema_version : int

val filename : group_name:string -> string
(** ["BENCH_" ^ group_name ^ ".json"]. *)

val make_group : name:string -> entry list -> group
(** Sort entries by name and replace NaN/inf estimates with [0.0]. *)

(** {1 Encoding} *)

val to_json : group -> string
(** Stable, pretty-printed, newline-terminated — committed verbatim. *)

val of_json : string -> (group, string) result

val load_file : string -> (group, string) result

val load_dir : string -> (group list, string) result
(** Every [BENCH_*.json] in the directory, sorted by group name. *)

val save_dir : dir:string -> group list -> unit
(** Write each group to [dir/BENCH_<group>.json], creating [dir] if
    needed. *)

(** {1 Comparison} *)

val default_threshold : float
(** Relative slowdown tolerated before a regression is flagged
    ([0.5] = +50%). Generous by design: bechamel point estimates
    jitter between runs. *)

val group_threshold : ?default:float -> string -> float
(** Per-group override table — ns-scale micro-groups get a wider
    threshold than the default. *)

type finding =
  | Regression of {
      group : string;
      name : string;
      base_ns : float;
      fresh_ns : float;
      threshold : float;
    }  (** fresh strictly exceeds [base * (1 + threshold)] *)
  | Improvement of {
      group : string;
      name : string;
      base_ns : float;
      fresh_ns : float;
    }  (** fresh is faster by more than the threshold — consider
           re-recording *)
  | Missing_group of string  (** baseline group absent from the fresh run *)
  | Missing_test of { group : string; name : string }
  | New_group of string  (** fresh group with no committed baseline *)
  | New_test of { group : string; name : string }

val finding_fails : finding -> bool
(** [Regression] and [Missing_*] fail the gate; [Improvement] and
    [New_*] are informational. *)

val has_regression : finding list -> bool

val compare_runs :
  ?threshold:float ->
  ?names_only:bool ->
  baseline:group list ->
  fresh:group list ->
  unit ->
  finding list
(** Compare a fresh run against committed baselines. [?threshold]
    overrides the default (per-group overrides still apply on top).
    [~names_only:true] checks structure only — groups and test names,
    no values — which is what CI's smoke-mode gate uses. Entries with
    a point estimate under 1 ns on either side are skipped as
    incomparable. The comparison at the threshold edge is strict:
    fresh = base × (1 + t) exactly is {e not} a regression. *)

(** {1 Rendering} *)

val pp_ns : float -> string
(** ["874.0 ns"], ["10.294 us"], ["1.203 ms"]. *)

val render_finding : finding -> string

val render_text : finding list -> string
(** One line per finding plus a final verdict line
    (["perf: ok"] / ["perf: REGRESSION"]). *)

val render_json : finding list -> string
(** [{"regression":bool,"findings":[…]}], newline-terminated. *)

val schema_skeleton : group list -> string
(** Group and test names plus the field layout, none of the values.
    CI byte-diffs this against a committed golden so the schema can
    only change deliberately. *)
