(* Graphviz DOT construction shared by the provenance renderer and
   the static analyzer. Everything here is plain string assembly; the
   only subtlety is escaping, which must agree between node labels and
   edge labels so the two renderers stay diffable. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ident s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
    s

(* Values that are plain DOT identifiers stay unquoted (keeps the
   output eyeballable and greppable: [color=red], [shape=box]). *)
let plain v =
  v <> ""
  && (match v.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       v

let attrs_to_string attrs =
  String.concat ","
    (List.map
       (fun (k, v) ->
         if plain v then Printf.sprintf "%s=%s" k v
         else Printf.sprintf "%s=\"%s\"" k (escape v))
       attrs)

let node ?(attrs = []) id ~label =
  Printf.sprintf "  %s [%s];" id
    (attrs_to_string (("label", label) :: attrs))

let edge ?(attrs = []) src dst =
  match attrs with
  | [] -> Printf.sprintf "  %s -> %s;" src dst
  | attrs -> Printf.sprintf "  %s -> %s [%s];" src dst (attrs_to_string attrs)

let digraph ?(rankdir = "LR") name lines =
  String.concat "\n"
    ((Printf.sprintf "digraph %s {" (ident name))
     :: Printf.sprintf "  rankdir=%s;" rankdir
     :: lines)
  ^ "\n}\n"
