type t = {
  trace_origin : string;
  trace_root : int;
  parent_origin : string;
  parent_span : int;
  origin_tick : int;
}

(* Span-field vocabulary for a carried context. One key per component:
   parsing a packed value back apart would have to guess at separators
   inside provider names. *)
let k_trace_origin = "w5.trace.origin"
let k_trace_root = "w5.trace.root"
let k_parent_origin = "w5.parent.origin"
let k_parent_span = "w5.parent.span"
let k_origin_tick = "w5.handoff.tick"

let to_fields t =
  [
    (k_trace_origin, t.trace_origin);
    (k_trace_root, string_of_int t.trace_root);
    (k_parent_origin, t.parent_origin);
    (k_parent_span, string_of_int t.parent_span);
    (k_origin_tick, string_of_int t.origin_tick);
  ]

let of_fields fields =
  let find k = List.assoc_opt k fields in
  let int_of k =
    match find k with
    | None -> None
    | Some v -> int_of_string_opt v
  in
  match
    (find k_trace_origin, int_of k_trace_root, find k_parent_origin,
     int_of k_parent_span, int_of k_origin_tick)
  with
  | Some trace_origin, Some trace_root, Some parent_origin,
    Some parent_span, Some origin_tick ->
      Some { trace_origin; trace_root; parent_origin; parent_span; origin_tick }
  | _ -> None

let is_context_field (k, _) =
  k = k_trace_origin || k = k_trace_root || k = k_parent_origin
  || k = k_parent_span || k = k_origin_tick

let describe t =
  Printf.sprintf "%s#%d via %s#%d @t%d" t.trace_origin t.trace_root
    t.parent_origin t.parent_span t.origin_tick
