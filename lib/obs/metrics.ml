type labels = (string * string) list
type kind = Counter | Gauge | Histogram

type series = {
  s_labels : labels;  (* sorted by key *)
  mutable s_value : int;        (* counter/gauge value; histogram sum *)
  mutable s_count : int;        (* histogram observation count *)
  s_buckets : int array;        (* per-bucket counts; [||] for scalars *)
}

type metric = {
  m_name : string;
  m_help : string;
  m_kind : kind;
  m_bounds : int array;  (* ascending upper bounds; histograms only *)
  m_series : (string, series) Hashtbl.t;
  m_owner : t;
  (* Last (raw label list, series) resolved for this metric: hot paths
     update the same series in runs, and the fast path skips the
     sort + key-string allocation entirely. Never caches an
     overflow-redirected lookup, so overflow accounting stays
     per-update. *)
  mutable m_last : (labels * series) option;
}

and t = {
  mutable r_enabled : bool;
  r_max_series : int;
  r_metrics : (string, metric) Hashtbl.t;
  mutable r_overflowed : int;
}

let default_buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let create ?(max_series = 64) ?(enabled = true) () =
  { r_enabled = enabled; r_max_series = max_series;
    r_metrics = Hashtbl.create 32; r_overflowed = 0 }

let enabled r = r.r_enabled
let set_enabled r b = r.r_enabled <- b
let max_series r = r.r_max_series
let overflowed r = r.r_overflowed

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

(* Series key: sorted "k=v" pairs, unit-separated so values containing
   '=' or ',' cannot collide with a different label set. *)
let key_of labels =
  String.concat "\x1f"
    (List.map (fun (k, v) -> k ^ "\x1e" ^ v) labels)

let overflow_labels = [ ("w5_capped", "true") ]

let register r ~kind ~help ?(buckets = []) name =
  match Hashtbl.find_opt r.r_metrics name with
  | Some m ->
      if m.m_kind <> kind then
        invalid_arg ("metric " ^ name ^ ": registered with a different kind");
      m
  | None ->
      let bounds =
        match kind with
        | Histogram ->
            let b = if buckets = [] then default_buckets else buckets in
            Array.of_list (List.sort_uniq Int.compare b)
        | Counter | Gauge -> [||]
      in
      let m =
        { m_name = name; m_help = help; m_kind = kind; m_bounds = bounds;
          m_series = Hashtbl.create 8; m_owner = r; m_last = None }
      in
      Hashtbl.replace r.r_metrics name m;
      m

let counter r ?(help = "") name = register r ~kind:Counter ~help name
let gauge r ?(help = "") name = register r ~kind:Gauge ~help name

let histogram r ?(help = "") ?buckets name =
  register r ~kind:Histogram ~help ?buckets name

(* Find or create the series for [labels]; at the cardinality cap the
   update lands in the shared overflow series instead, so attacker-
   chosen label values cannot mint unbounded telemetry state. *)
let rec series_for_slow m raw =
  let labels = sort_labels raw in
  let key = key_of labels in
  match Hashtbl.find_opt m.m_series key with
  | Some s ->
      m.m_last <- Some (raw, s);
      s
  | None ->
      if Hashtbl.length m.m_series >= m.m_owner.r_max_series
         && labels <> overflow_labels
      then begin
        m.m_owner.r_overflowed <- m.m_owner.r_overflowed + 1;
        let s = series_for_slow m overflow_labels in
        (* the recursive call cached the overflow mapping under its own
           raw key; [raw] itself stays uncached so every redirected
           update keeps bumping [r_overflowed] *)
        s
      end
      else begin
        let s =
          { s_labels = labels; s_value = 0; s_count = 0;
            s_buckets = Array.make (Array.length m.m_bounds + 1) 0 }
        in
        Hashtbl.replace m.m_series key s;
        m.m_last <- Some (raw, s);
        s
      end

let series_for m labels =
  match m.m_last with
  | Some (raw, s) when raw == labels || raw = labels -> s
  | _ -> series_for_slow m labels

let inc ?(labels = []) ?(by = 1) m =
  if m.m_owner.r_enabled then begin
    let s = series_for m labels in
    s.s_value <- s.s_value + by
  end

let set ?(labels = []) m v =
  if m.m_owner.r_enabled then begin
    let s = series_for m labels in
    s.s_value <- v
  end

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?(labels = []) m v =
  if m.m_owner.r_enabled then begin
    let s = series_for m labels in
    s.s_value <- s.s_value + v;
    s.s_count <- s.s_count + 1;
    let i = bucket_index m.m_bounds v in
    s.s_buckets.(i) <- s.s_buckets.(i) + 1
  end

let find_series m labels =
  Hashtbl.find_opt m.m_series (key_of (sort_labels labels))

let value ?(labels = []) m =
  match find_series m labels with Some s -> s.s_value | None -> 0

let histogram_count ?(labels = []) m =
  match find_series m labels with Some s -> s.s_count | None -> 0

let histogram_sum = value

let series_count r =
  Hashtbl.fold (fun _ m acc -> acc + Hashtbl.length m.m_series) r.r_metrics 0

type point =
  | Value of int
  | Histo of { counts : int list; sum : int; count : int }

type sample = {
  sample_name : string;
  sample_help : string;
  sample_kind : kind;
  sample_buckets : int list;
  sample_series : (labels * point) list;
}

let dump r =
  Hashtbl.fold
    (fun _ m acc ->
      let series =
        Hashtbl.fold
          (fun key s acc ->
            let point =
              match m.m_kind with
              | Counter | Gauge -> Value s.s_value
              | Histogram ->
                  Histo
                    { counts = Array.to_list s.s_buckets;
                      sum = s.s_value; count = s.s_count }
            in
            (key, (s.s_labels, point)) :: acc)
          m.m_series []
        |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
        |> List.map snd
      in
      { sample_name = m.m_name;
        sample_help = m.m_help;
        sample_kind = m.m_kind;
        sample_buckets = Array.to_list m.m_bounds;
        sample_series = series }
      :: acc)
    r.r_metrics []
  |> List.sort (fun a b -> String.compare a.sample_name b.sample_name)

let clear r =
  Hashtbl.iter
    (fun _ m ->
      Hashtbl.reset m.m_series;
      m.m_last <- None)
    r.r_metrics;
  r.r_overflowed <- 0
