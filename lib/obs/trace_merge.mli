(** Assembling per-provider span rings into one cross-provider trace.

    Each provider's {!Tracer} only ever sees its own spans; what ties
    a federated operation together is the {!Trace_context} a handoff
    carries, recorded as fields on the remote side's root span
    ({!Tracer.with_remote_span}). [merge] walks every provider's
    completed roots, finds those breadcrumbs, and reattaches each
    remote subtree under the span that spawned it — yielding the one
    causal tree the operation actually was, faults and retries
    included (they are ordinary event spans inside it).

    Ticks in a merged tree are {e per-provider} logical clocks:
    comparable along same-provider edges, related only through the
    recorded handoff tick across providers. The renderers therefore
    always name the provider next to every span.

    A context pointing at a span nobody recorded (evicted ring, forged
    fields) leaves that subtree a root of its own — merging degrades
    to the unmerged forest, it never invents an edge or a cycle. *)

type node = {
  node_provider : string;
  node_span : Span.t;
  node_remote : Trace_context.t option;
      (** [Some] iff this span is a remote continuation (carries a
          handoff context). *)
  mutable node_children : node list;
      (** local children in recorded order, then attached remote
          continuations in merge order. *)
}

type forest = node list

val merge : (string * Span.t list) list -> forest
(** [(provider, completed roots)] per provider — drained tracer rings,
    oldest first. Roots stay in input order (providers first, then each
    provider's roots); remote continuations whose parent is present
    move under it. Deterministic for deterministic input. *)

val fold :
  forest -> init:'a -> f:('a -> depth:int -> node -> 'a) -> 'a
(** Depth-first, pre-order, roots in order — what property tests and
    canary sweeps walk. *)

val span_count : forest -> int

val to_text : forest -> string
(** Indented tree, one span per line:
    ["[provider] name  [t1..t9 +8]  k=v  (hop from east#3 @t14)"];
    remote continuations are marked with a leading ["~ "]. Context
    fields render as the hop marker, not as raw fields. *)

val to_json : forest -> string
(** [{"traces":[{"provider":…,"name":…,"span_id":…,"start_tick":…,
    "end_tick":…,"remote":{…}?,"fields":{…}?,"children":[…]}]}]. *)

val to_dot : forest -> string
(** Graphviz rendering via {!Dot}: one node per span labeled
    [provider: name], dashed nodes/edges for cross-provider hops. *)
