type t = {
  mutable t_enabled : bool;
  t_capacity : int;
  mutable next_id : int;
  mutable stack : Span.t list;      (* open spans, innermost first *)
  ring : Span.t option array;       (* completed roots, circular *)
  mutable ring_start : int;         (* index of the oldest root *)
  mutable ring_len : int;
  mutable dropped_count : int;      (* roots evicted from the ring *)
  mutable on_drop : int -> unit;
}

let create ?(capacity = 16) ?(enabled = false) () =
  let capacity = max 1 capacity in
  { t_enabled = enabled; t_capacity = capacity; next_id = 0; stack = [];
    ring = Array.make capacity None; ring_start = 0; ring_len = 0;
    dropped_count = 0; on_drop = ignore }

let enabled t = t.t_enabled
let set_enabled t b = t.t_enabled <- b
let set_on_drop t f = t.on_drop <- f
let open_depth t = List.length t.stack

(* O(1): a full ring overwrites its oldest slot instead of rebuilding
   the completed list (the old List.filteri cost O(capacity) on every
   commit past the cap). *)
let commit t root =
  if t.ring_len < t.t_capacity then begin
    t.ring.((t.ring_start + t.ring_len) mod t.t_capacity) <- Some root;
    t.ring_len <- t.ring_len + 1
  end
  else begin
    t.ring.(t.ring_start) <- Some root;
    t.ring_start <- (t.ring_start + 1) mod t.t_capacity;
    t.dropped_count <- t.dropped_count + 1;
    t.on_drop 1
  end

let start_span t ~tick ?(fields = []) name =
  if t.t_enabled then begin
    t.next_id <- t.next_id + 1;
    let parent = match t.stack with [] -> None | p :: _ -> Some p.Span.span_id in
    let span =
      Span.make ~id:t.next_id ~parent ~name ~fields ~start_tick:tick
    in
    (match t.stack with [] -> () | p :: _ -> Span.add_child p span);
    t.stack <- span :: t.stack
  end

let annotate t fields =
  if t.t_enabled then
    match t.stack with [] -> () | span :: _ -> Span.annotate span fields

let end_span t ~tick =
  if t.t_enabled then
    match t.stack with
    | [] -> ()
    | span :: rest ->
        Span.finish span ~tick;
        t.stack <- rest;
        if rest = [] then commit t span

let event t ~tick ?fields name =
  if t.t_enabled then begin
    start_span t ~tick ?fields name;
    end_span t ~tick
  end

let with_span t ~clock ?fields name f =
  if not t.t_enabled then f ()
  else begin
    start_span t ~tick:(clock ()) ?fields name;
    match f () with
    | result -> end_span t ~tick:(clock ()); result
    | exception exn -> end_span t ~tick:(clock ()); raise exn
  end

let context t ~origin ~tick =
  if not t.t_enabled then None
  else
    match t.stack with
    | [] -> None
    | innermost :: _ ->
        let root = List.nth t.stack (List.length t.stack - 1) in
        (* A root that is itself a remote continuation keeps the
           original trace identity: the chain stays one trace over any
           number of hops. *)
        let trace_origin, trace_root =
          match Trace_context.of_fields root.Span.span_fields with
          | Some carried ->
              (carried.Trace_context.trace_origin,
               carried.Trace_context.trace_root)
          | None -> (origin, root.Span.span_id)
        in
        Some
          {
            Trace_context.trace_origin;
            trace_root;
            parent_origin = origin;
            parent_span = innermost.Span.span_id;
            origin_tick = tick;
          }

let with_remote_span t ~clock ~context ?(fields = []) name f =
  if not t.t_enabled then f ()
  else begin
    (* The remote work is a root of its own on this tracer — the carried
       context (not local nesting) says who its parent is, so any open
       local stack is set aside rather than adopted. *)
    let saved = t.stack in
    t.stack <- [];
    start_span t ~tick:(clock ())
      ~fields:(Trace_context.to_fields context @ fields)
      name;
    let restore () =
      end_span t ~tick:(clock ());
      t.stack <- saved
    in
    match f () with
    | result -> restore (); result
    | exception exn -> restore (); raise exn
  end

let traces t =
  let rec go i acc =
    if i < 0 then acc
    else
      match t.ring.((t.ring_start + i) mod t.t_capacity) with
      | Some s -> go (i - 1) (s :: acc)
      | None -> go (i - 1) acc
  in
  go (t.ring_len - 1) []

let latest t =
  if t.ring_len = 0 then None
  else t.ring.((t.ring_start + t.ring_len - 1) mod t.t_capacity)

let dropped t = t.dropped_count

let clear t =
  t.stack <- [];
  Array.fill t.ring 0 t.t_capacity None;
  t.ring_start <- 0;
  t.ring_len <- 0;
  t.dropped_count <- 0
