type t = {
  mutable t_enabled : bool;
  t_capacity : int;
  mutable next_id : int;
  mutable stack : Span.t list;      (* open spans, innermost first *)
  mutable completed : Span.t list;  (* finished roots, newest first *)
  mutable completed_count : int;
  mutable dropped_count : int;      (* roots evicted from the ring *)
}

let create ?(capacity = 16) ?(enabled = false) () =
  { t_enabled = enabled; t_capacity = max 1 capacity; next_id = 0;
    stack = []; completed = []; completed_count = 0; dropped_count = 0 }

let enabled t = t.t_enabled
let set_enabled t b = t.t_enabled <- b
let open_depth t = List.length t.stack

let commit t root =
  t.completed <- root :: t.completed;
  t.completed_count <- t.completed_count + 1;
  if t.completed_count > t.t_capacity then begin
    t.completed <- List.filteri (fun i _ -> i < t.t_capacity) t.completed;
    t.dropped_count <- t.dropped_count + (t.completed_count - t.t_capacity);
    t.completed_count <- t.t_capacity
  end

let start_span t ~tick ?(fields = []) name =
  if t.t_enabled then begin
    t.next_id <- t.next_id + 1;
    let parent = match t.stack with [] -> None | p :: _ -> Some p.Span.span_id in
    let span =
      Span.make ~id:t.next_id ~parent ~name ~fields ~start_tick:tick
    in
    (match t.stack with [] -> () | p :: _ -> Span.add_child p span);
    t.stack <- span :: t.stack
  end

let annotate t fields =
  if t.t_enabled then
    match t.stack with [] -> () | span :: _ -> Span.annotate span fields

let end_span t ~tick =
  if t.t_enabled then
    match t.stack with
    | [] -> ()
    | span :: rest ->
        Span.finish span ~tick;
        t.stack <- rest;
        if rest = [] then commit t span

let event t ~tick ?fields name =
  if t.t_enabled then begin
    start_span t ~tick ?fields name;
    end_span t ~tick
  end

let with_span t ~clock ?fields name f =
  if not t.t_enabled then f ()
  else begin
    start_span t ~tick:(clock ()) ?fields name;
    match f () with
    | result -> end_span t ~tick:(clock ()); result
    | exception exn -> end_span t ~tick:(clock ()); raise exn
  end

let traces t = List.rev t.completed
let latest t = match t.completed with [] -> None | s :: _ -> Some s
let dropped t = t.dropped_count

let clear t =
  t.stack <- [];
  t.completed <- [];
  t.completed_count <- 0;
  t.dropped_count <- 0
