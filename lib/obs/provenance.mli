(** Data-free flow-provenance graphs (§3.5 "Debugging").

    A provenance graph is the causal skeleton of the audit log: nodes
    are processes, filesystem objects and remote endpoints; edges are
    the audited events that moved secrecy tags between them (reads,
    IPC, spawns, gate calls, relabels, federation syncs, exports).
    Like the audit log it is reconstructed from, the graph stores
    {e identities} — pids, paths, tag names, peer names — and never
    user bytes, so it can be shown to a developer whose export was
    denied or to a provider auditing a declassifier.

    The graph itself is generic: it knows nothing about
    [W5_os.Audit] (this library sits below [w5.os]); the translation
    from audit entries lives in [W5_os.Explain]. *)

(** A vertex: the three kinds of place a tag can live or go. *)
type node =
  | Process of int    (** a kernel pid *)
  | Object of string  (** a filesystem path *)
  | Remote of string  (** an off-platform destination or federation peer *)

(** One audited event, as a labeled arc. [seq]/[tick] cite the audit
    entry the edge was built from, so every rendered edge is
    checkable against the log. [tags] are secrecy tag {e names}
    carried or introduced by the event; [denied] is the denial
    rendering when the event was refused. [detail] is a data-free
    annotation (a declassifier context, a sync direction). *)
type edge = {
  kind : string;
  src : node;
  dst : node;
  seq : int;
  tick : int;
  tags : string list;
  denied : string option;
  detail : string option;
}

type t

val create : ?node_budget:int -> unit -> t
(** [node_budget] (default 4096) bounds the number of distinct nodes:
    once reached, edges that would mint a new node are dropped and
    {!truncated} flips to [true]. Queries over a truncated graph are
    still sound over the retained subgraph — they just may not reach
    the full history, exactly like a capacity-bounded audit log. *)

val add_edge : t -> edge -> unit
(** Insert an edge, creating its endpoints as needed. Dropped (and the
    graph marked truncated) when an endpoint would exceed the node
    budget. *)

val set_alias : t -> node -> string -> unit
(** Attach a display name to a node (e.g. pid 7 -> ["mal/thief"]).
    Later aliases win (pids are reused across a long log's history). *)

val node_label : t -> node -> string
(** Human rendering of a node, using its alias when one is set:
    ["pid 7 (mal/thief)"], a path, or a remote name. *)

val truncated : t -> bool
val node_count : t -> int
val edge_count : t -> int

val incoming : t -> node -> edge list
(** Edges into a node, oldest first. Empty for unknown nodes. *)

val outgoing : t -> node -> edge list

val find_edge : t -> seq:int -> edge option
(** The edge built from audit entry [seq], if any (not every audit
    entry yields an edge). *)

val edges : t -> edge list
(** Every edge, oldest first. *)

val causes : t -> ?tags:string list -> before:int -> node -> edge list
(** The causal history of [node]: edges with [seq < before] that
    carried one of [tags] (any tag when [tags] is [[]]) into the node,
    transitively through their own source nodes. Sorted by [seq];
    bounded by an internal step budget so adversarially dense graphs
    terminate. *)

val explain : t -> edge -> edge list
(** The causal chain ending at [edge]: {!causes} of its source
    restricted to its tags, with [edge] itself last. This is the
    "why was this denied" query. *)

val tag_history : t -> node -> tag:string -> edge list
(** Every retained edge that (transitively) moved [tag] toward
    [node], sorted by [seq] — the per-tag provenance of a file or
    process. *)

val render_edge : t -> edge -> string
(** One line, citing the audit entry:
    ["#27 t=41 pid 7 (mal/thief) -[export]-> evil.example {alice.secret} DENIED: ..."]. *)

val render_chain : t -> edge list -> string
(** {!render_edge} per line, with a truncation notice when the graph
    dropped nodes. *)

val to_dot : t -> string
(** The whole graph in Graphviz DOT, deterministically ordered
    (nodes lexicographically, edges by [seq]); denied edges are
    colored red, remote nodes drawn as diamonds, objects as boxes. *)

val dot_of_chain : t -> edge list -> string
(** DOT restricted to a causal chain — what [w5 explain --dot]
    prints. *)
