(** Peer health and gateway SLO accounting, in logical ticks.

    A federation of mutually distrusting providers needs each side to
    answer "is my peer alive, and is it keeping up?" from facts it
    already owns: its own sync outcomes, its own retry/fault tallies,
    the vector-clock distance between what it holds and what it last
    acknowledged. This module folds those per-round observations into
    a three-state judgment per (observer, peer) pair — never symmetric,
    because each side only sees its own rounds — plus a per-route
    SLO/error-budget ledger for the gateway.

    Everything here is structural: provider names, counts, tick ages.
    No user bytes, no label contents — the health report is as
    exportable as the metrics registry (DESIGN §15). *)

type state = Healthy | Degraded | Unreachable

val state_name : state -> string
val severity : state -> int
(** CI-gateable exit codes in the [w5 vet] style: Healthy [0],
    Degraded [2], Unreachable [3]. *)

type t

val create :
  ?window:int -> ?recover_after:int -> ?unreachable_after:int -> unit -> t
(** [window] (default 256 ticks) bounds the rolling rate sample;
    [recover_after] (default 64) is the hysteresis: a pair that saw a
    fault stays Degraded until it has been clean that long;
    [unreachable_after] (default 512) is the last-successful-sync age
    past which a peer is Unreachable. *)

val observe_round :
  t -> observer:string -> peer:string -> tick:int -> ok:bool ->
  retries:int -> faults:int -> timed_out:bool -> recovered:int -> unit
(** Fold one sync round's outcome (the PR-4 counters, per round) into
    the pair's rolling window. [ok] is "the round completed without
    crashing"; retries/faults/timeouts mark it bad for hysteresis even
    when it completed. *)

val note_lag : t -> observer:string -> peer:string -> lag:int -> unit
(** Record the vector-clock lag the observer currently sees: how many
    version steps of its own replica the durable seen clock trails by. *)

val state_of : t -> observer:string -> peer:string -> now:int -> state
(** Unreachable for a pair never observed or whose last success is
    older than [unreachable_after]; Degraded while inside the
    hysteresis window after any fault; Healthy otherwise. A successful
    round clears Unreachable immediately — success {e is}
    reachability. *)

type row = {
  r_observer : string;
  r_peer : string;
  r_state : state;
  r_last_ok_age : int option;  (** [now - last success], [None] = never *)
  r_rounds : int;              (** rounds inside the window *)
  r_faults : int;
  r_retries : int;
  r_timeouts : int;
  r_recoveries : int;
  r_lag : int;
}

val report : t -> now:(string -> int) -> row list
(** [now observer] must return {e that observer's} current tick:
    samples were recorded on the observer's own kernel clock and
    cross-provider ticks are not comparable, so every age is measured
    per viewpoint. Sorted by (observer, peer) — deterministic for
    goldens. *)

val render : t -> now:(string -> int) -> string
(** The [w5 health] peer section: one aligned line per pair. *)

val window : t -> int

(** Per-route gateway SLO over tick windows: availability against an
    objective, expressed as an error budget ("this window may spend N
    5xx responses") in integer basis points — no floats, so the
    rendering is deterministic. *)
module Slo : sig
  type t

  val create : ?window:int -> ?objective_bp:int -> unit -> t
  (** [objective_bp] is the availability objective in basis points
      (default 9900 = 99.00%); [window] defaults to 256 ticks. *)

  val observe : t -> route:string -> tick:int -> status:int -> unit
  (** Status ≥ 500 spends error budget; everything else (including
      4xx — the user's fault, not the platform's) counts as served. *)

  type row = {
    sr_route : string;
    sr_total : int;
    sr_errors : int;
    sr_availability_bp : int;
    sr_budget : int;      (** errors the objective tolerates, rounded up *)
    sr_breached : bool;   (** [sr_errors > sr_budget] *)
  }

  val report : t -> now:int -> row list
  (** Sorted by route. *)

  val breached : t -> now:int -> bool

  val render : t -> now:int -> string
  (** The [w5 health] SLO section. *)
end
