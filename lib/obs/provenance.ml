type node = Process of int | Object of string | Remote of string

type edge = {
  kind : string;
  src : node;
  dst : node;
  seq : int;
  tick : int;
  tags : string list;
  denied : string option;
  detail : string option;
}

module Node = struct
  type t = node

  let compare = compare
end

module Node_map = Map.Make (Node)

type t = {
  node_budget : int;
  mutable nodes : unit Node_map.t;
  mutable aliases : string Node_map.t;
  mutable rev_edges : edge list; (* newest first *)
  mutable n_edges : int;
  mutable truncated : bool;
  (* per-node incoming/outgoing adjacency, newest first *)
  mutable in_adj : edge list Node_map.t;
  mutable out_adj : edge list Node_map.t;
}

let create ?(node_budget = 4096) () =
  {
    node_budget = max 1 node_budget;
    nodes = Node_map.empty;
    aliases = Node_map.empty;
    rev_edges = [];
    n_edges = 0;
    truncated = false;
    in_adj = Node_map.empty;
    out_adj = Node_map.empty;
  }

let truncated t = t.truncated
let node_count t = Node_map.cardinal t.nodes
let edge_count t = t.n_edges

let intern t node =
  if Node_map.mem node t.nodes then true
  else if Node_map.cardinal t.nodes >= t.node_budget then (
    t.truncated <- true;
    false)
  else (
    t.nodes <- Node_map.add node () t.nodes;
    true)

let add_edge t edge =
  (* Both endpoints must fit before the edge is committed; a vertex
     minted for an edge that is then dropped is reclaimed so it does
     not eat budget without ever being reachable. *)
  let src_was_known = Node_map.mem edge.src t.nodes in
  let have_src = intern t edge.src in
  let have_dst = have_src && intern t edge.dst in
  if have_src && have_dst then (
    t.rev_edges <- edge :: t.rev_edges;
    t.n_edges <- t.n_edges + 1;
    let push m n =
      Node_map.update n
        (function None -> Some [ edge ] | Some l -> Some (edge :: l))
        m
    in
    t.in_adj <- push t.in_adj edge.dst;
    t.out_adj <- push t.out_adj edge.src)
  else if have_src && not src_was_known then
    t.nodes <- Node_map.remove edge.src t.nodes

let set_alias t node name = t.aliases <- Node_map.add node name t.aliases

let node_label t node =
  match node with
  | Process pid -> (
      match Node_map.find_opt node t.aliases with
      | Some a -> Printf.sprintf "pid %d (%s)" pid a
      | None -> Printf.sprintf "pid %d" pid)
  | Object path -> path
  | Remote name -> name

let incoming t node =
  match Node_map.find_opt node t.in_adj with None -> [] | Some l -> List.rev l

let outgoing t node =
  match Node_map.find_opt node t.out_adj with None -> [] | Some l -> List.rev l

let edges t = List.rev t.rev_edges

let find_edge t ~seq =
  List.find_opt (fun e -> e.seq = seq) t.rev_edges

let carries_any edge tags =
  match tags with
  | [] -> true
  | _ -> List.exists (fun tag -> List.mem tag edge.tags) tags

let by_seq a b = compare a.seq b.seq

(* Backward causal walk. From [node], follow incoming edges with
   seq < before that carry one of [tags]; recurse into each edge's
   source with that edge's seq as the new horizon (causes must
   precede effects). The step budget bounds work on adversarially
   dense graphs; visited-set keyed on (node, horizon-bucket) would be
   tighter but (node) alone with the min horizon seen is enough for
   termination and keeps results intuitive. *)
let causes t ?(tags = []) ~before node =
  let budget = ref 10_000 in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec walk node before =
    if !budget <= 0 then ()
    else
      let prior =
        match Hashtbl.find_opt seen node with Some p -> p | None -> min_int
      in
      if before <= prior then ()
      else begin
        Hashtbl.replace seen node before;
        List.iter
          (fun e ->
            if e.seq < before && carries_any e tags then begin
              decr budget;
              if not (List.memq e !acc) then acc := e :: !acc;
              walk e.src e.seq
            end)
          (incoming t node)
      end
  in
  walk node before;
  List.sort_uniq by_seq !acc

let explain t edge =
  let chain = causes t ~tags:edge.tags ~before:edge.seq edge.src in
  chain @ [ edge ]

let tag_history t node ~tag =
  (* direct arrivals of [tag] at [node], plus how the tag reached the
     sources of those arrivals *)
  let direct =
    List.filter (fun e -> List.mem tag e.tags) (incoming t node)
  in
  let upstream =
    List.concat_map (fun e -> causes t ~tags:[ tag ] ~before:e.seq e.src) direct
  in
  List.sort_uniq by_seq (direct @ upstream)

let render_tags tags =
  match tags with
  | [] -> ""
  | _ -> Printf.sprintf " {%s}" (String.concat ", " tags)

let render_edge t e =
  let detail = match e.detail with None -> "" | Some d -> Printf.sprintf " (%s)" d in
  let verdict = match e.denied with None -> "" | Some d -> Printf.sprintf " DENIED: %s" d in
  Printf.sprintf "#%d t=%d %s -[%s]-> %s%s%s%s" e.seq e.tick
    (node_label t e.src) e.kind (node_label t e.dst) (render_tags e.tags)
    detail verdict

let render_chain t chain =
  let lines = List.map (render_edge t) chain in
  let lines =
    if t.truncated then
      lines
      @ [
          Printf.sprintf
            "(graph truncated at node budget %d; earlier history may be missing)"
            t.node_budget;
        ]
    else lines
  in
  String.concat "\n" lines

(* --- DOT rendering (assembly shared with the analyzer via Dot) ------- *)

let node_id = function
  | Process pid -> Printf.sprintf "p%d" pid
  | Object path -> "o_" ^ Dot.ident path
  | Remote name -> "r_" ^ Dot.ident name

let node_decl t node =
  let attrs =
    match node with
    | Process _ -> [ ("shape", "ellipse") ]
    | Object _ -> [ ("shape", "box") ]
    | Remote _ -> [ ("shape", "diamond"); ("style", "dashed") ]
  in
  Dot.node (node_id node) ~label:(node_label t node) ~attrs

let edge_decl e =
  let label =
    Printf.sprintf "#%d %s%s" e.seq e.kind
      (match e.tags with [] -> "" | ts -> "\n{" ^ String.concat "," ts ^ "}")
  in
  let attrs =
    ("label", label)
    ::
    (match e.denied with
    | None -> []
    | Some _ -> [ ("color", "red"); ("fontcolor", "red") ])
  in
  Dot.edge (node_id e.src) (node_id e.dst) ~attrs

let dot_of t ~nodes ~edges =
  let lines =
    List.map (node_decl t) nodes
    @ List.map edge_decl edges
    @
    if t.truncated then
      [
        Dot.node "_truncated" ~label:"truncated"
          ~attrs:[ ("shape", "note"); ("style", "dashed") ];
      ]
    else []
  in
  Dot.digraph "provenance" lines

let to_dot t =
  let nodes = List.map fst (Node_map.bindings t.nodes) in
  let nodes = List.sort compare nodes in
  dot_of t ~nodes ~edges:(List.sort by_seq (edges t))

let dot_of_chain t chain =
  let nodes =
    List.concat_map (fun e -> [ e.src; e.dst ]) chain
    |> List.sort_uniq compare
  in
  dot_of t ~nodes ~edges:(List.sort by_seq chain)
