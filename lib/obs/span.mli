(** One node of a request trace.

    Spans measure {e logical} time (kernel ticks), because wall-clock
    durations of operations over private data are themselves a covert
    channel in a simulation that admits no real concurrency. Fields
    carry only data-free facts — op names, decisions, label {e sizes},
    tick deltas — in the spirit of the audit log (§3.5). *)

type t = {
  span_id : int;
  parent_id : int option;
  span_name : string;  (** e.g. ["gateway:app core/social"], ["sys.fs.read"] *)
  mutable span_fields : (string * string) list;  (** data-free annotations *)
  start_tick : int;
  mutable end_tick : int;  (** [-1] while the span is still open *)
  mutable children : t list;  (** oldest first once finished *)
}

val make :
  id:int -> parent:int option -> name:string ->
  fields:(string * string) list -> start_tick:int -> t

val is_open : t -> bool

val duration : t -> int
(** Tick delta; 0 for an instantaneous event or an open span. *)

val annotate : t -> (string * string) list -> unit
(** Append fields (later wins on render, duplicates are kept). *)

val add_child : t -> t -> unit
(** Children accumulate newest-first; {!finish} restores order. *)

val finish : t -> tick:int -> unit
(** Close the span and put its children oldest-first. *)

val descendant_count : t -> int
(** Number of spans in the subtree, the span itself included. *)
