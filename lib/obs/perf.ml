(* Hot-path latency histograms over the logical clock.

   Durations are kernel-tick deltas, never wall time: a tick advances
   once per kernel crossing (plus simulated transport pauses), so the
   same workload yields byte-identical histograms on every machine —
   goldenable, diffable, and free of the covert timing channel a
   wall-clock histogram would open. Buckets are log-scaled because
   latencies are: a request is "about 2^k ticks", and doubling bounds
   keep the series count small under the registry's cardinality cap. *)

(* 0 (pure probes), then powers of two through 4096: a gateway request
   on the showcase society lands in the tens-to-hundreds of ticks, a
   faulty federation round with capped backoff in the low thousands. *)
let tick_buckets = [ 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let latency registry ?(help = "") name =
  Metrics.histogram registry ~help ~buckets:tick_buckets name

(* Time [f] on [clock] (a logical-tick reader) and record the delta.
   The observation happens even when [f] raises: a killed process's
   partial syscall still consumed its ticks. *)
let time metric ?(labels = []) ~clock f =
  let t0 = clock () in
  match f () with
  | v ->
      Metrics.observe metric ~labels (clock () - t0);
      v
  | exception exn ->
      Metrics.observe metric ~labels (clock () - t0);
      raise exn

(* ---- quantiles from bucket counts ---- *)

(* An estimate derived from a cumulative histogram is an upper bound:
   "p95 <= 8 ticks" (the rank falls inside a finite bucket) or
   "p95 > 1024" (it falls in the implicit +Inf bucket). *)
type estimate =
  | Le of int  (** quantile is at most this declared bound *)
  | Gt of int  (** quantile exceeds the largest declared bound *)

let render_estimate = function
  | Le b -> string_of_int b
  | Gt b -> ">" ^ string_of_int b

(* [quantile ~bounds ~counts q] walks the per-bucket counts (one per
   declared bound, then the overflow bucket) to the bucket holding the
   [ceil (q * total)]-th observation. [None] when the series is empty. *)
let quantile ~bounds ~counts q =
  let total = List.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let last_bound = List.fold_left max 0 bounds in
    let rec go bounds counts cumulative =
      match counts with
      | [] -> Some (Gt last_bound)
      | c :: counts' -> (
          let cumulative = cumulative + c in
          if cumulative >= rank then
            match bounds with
            | b :: _ -> Some (Le b)
            | [] -> Some (Gt last_bound)
          else
            go (match bounds with [] -> [] | _ :: t -> t) counts' cumulative)
    in
    go bounds counts 0
  end

type summary = {
  q_labels : Metrics.labels;
  q_count : int;
  q_sum : int;
  q_p50 : estimate option;
  q_p95 : estimate option;
  q_p99 : estimate option;
}

let summary_of_series ~bounds ~counts ~sum ~count labels =
  {
    q_labels = labels;
    q_count = count;
    q_sum = sum;
    q_p50 = quantile ~bounds ~counts 0.50;
    q_p95 = quantile ~bounds ~counts 0.95;
    q_p99 = quantile ~bounds ~counts 0.99;
  }

(* Every histogram series in [registry], with derived quantiles, in
   the registry's stable dump order. *)
let summaries registry =
  List.concat_map
    (fun (s : Metrics.sample) ->
      match s.Metrics.sample_kind with
      | Metrics.Counter | Metrics.Gauge -> []
      | Metrics.Histogram ->
          List.filter_map
            (fun (labels, point) ->
              match point with
              | Metrics.Value _ -> None
              | Metrics.Histo { counts; sum; count } ->
                  Some
                    ( s.Metrics.sample_name,
                      summary_of_series ~bounds:s.Metrics.sample_buckets
                        ~counts ~sum ~count labels ))
            s.Metrics.sample_series)
    (Metrics.dump registry)
