(** Hot-path latency histograms and derived quantiles.

    Latency here is {e logical}: durations are kernel-tick deltas, so
    the same workload produces byte-identical histograms everywhere —
    no wall clock, no covert timing channel, goldenable output. The
    module supplies the shared log-scaled bucket ladder, a timing
    bracket, and p50/p95/p99 estimation from bucket counts (used by
    the exposition layer and [w5 stats]). *)

val tick_buckets : int list
(** The shared bucket ladder for tick-latency histograms: [0], then
    powers of two through [4096]. *)

val latency : Metrics.t -> ?help:string -> string -> Metrics.metric
(** Register (or look up) a latency histogram on {!tick_buckets}. *)

val time :
  Metrics.metric -> ?labels:Metrics.labels -> clock:(unit -> int) ->
  (unit -> 'a) -> 'a
(** [time m ~clock f] runs [f] and records [clock () - clock ()_before]
    into [m]. The observation is recorded even when [f] raises (the
    ticks were consumed either way). *)

(** {1 Quantiles from bucket counts} *)

type estimate =
  | Le of int  (** the quantile is at most this declared bound *)
  | Gt of int  (** the quantile exceeds the largest declared bound *)

val render_estimate : estimate -> string
(** [Le 8 -> "8"], [Gt 1024 -> ">1024"]. *)

val quantile : bounds:int list -> counts:int list -> float -> estimate option
(** [quantile ~bounds ~counts q] estimates the [q]-quantile (0 < q <= 1)
    of a histogram from its per-bucket counts ([counts] has one entry
    per bound plus the overflow bucket). [None] iff the series is
    empty. The estimate is the upper bound of the bucket containing
    the [ceil (q * count)]-th observation. *)

type summary = {
  q_labels : Metrics.labels;
  q_count : int;
  q_sum : int;
  q_p50 : estimate option;
  q_p95 : estimate option;
  q_p99 : estimate option;
}

val summary_of_series :
  bounds:int list -> counts:int list -> sum:int -> count:int ->
  Metrics.labels -> summary

val summaries : Metrics.t -> (string * summary) list
(** Every histogram series in the registry with derived quantiles, in
    the registry's stable dump order (metric name, then label set). *)
