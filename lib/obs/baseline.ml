(* Committed bench baselines and the regression comparator.

   The bench harness emits one BENCH_<group>.json per bechamel group;
   those files are committed at the repo root and become the point of
   comparison for every later run: `w5 perf diff` loads both sides,
   applies per-group relative thresholds, and exits non-zero on a
   regression (or on a vanished group/test — schema drift is a failure
   too, so a bench can't "pass" by silently not running).

   The schema is deliberately tiny and sorted everywhere, so the files
   byte-diff cleanly in review:

     { "schema_version": 1,
       "group": "e2e-request",
       "results": [
         { "name": "denied-view-403", "runs": 3000,
           "ns_per_op": 10294.5, "r_squared": 0.9981 }, ... ] }

   Only structural facts appear — group names, test names, sample
   counts, nanoseconds — never request payloads or user bytes. *)

type entry = {
  e_name : string;
  e_runs : int;
  e_ns : float;  (* ns/op point estimate (OLS slope) *)
  e_r2 : float;  (* goodness of fit; 0.0 when unavailable *)
}

type group = {
  g_name : string;
  g_entries : entry list;  (* sorted by e_name *)
}

let schema_version = 1
let filename ~group_name = "BENCH_" ^ group_name ^ ".json"

(* NaN/inf never enter the files: smoke runs (one sample) can produce
   degenerate fits, and "nan" is not JSON. *)
let sane f = if Float.is_nan f || Float.is_infinite f then 0.0 else f

let make_group ~name entries =
  {
    g_name = name;
    g_entries =
      List.sort (fun a b -> String.compare a.e_name b.e_name)
        (List.map (fun e -> { e with e_ns = sane e.e_ns; e_r2 = sane e.e_r2 })
           entries);
  }

(* ---- encoding ---- *)

let to_json g =
  let entry e =
    Printf.sprintf
      "    { \"name\": %s, \"runs\": %d, \"ns_per_op\": %.1f, \
       \"r_squared\": %.4f }"
      (Exposition.json_string e.e_name)
      e.e_runs e.e_ns e.e_r2
  in
  Printf.sprintf
    "{\n  \"schema_version\": %d,\n  \"group\": %s,\n  \"results\": [\n%s\n  ]\n}\n"
    schema_version
    (Exposition.json_string g.g_name)
    (String.concat ",\n" (List.map entry g.g_entries))

(* ---- a minimal JSON reader (we parse only what we emit) ---- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                  (* our own encoder only emits \u00XX control bytes *)
                  Buffer.add_char buf (Char.chr (code land 0xff)));
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); J_obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); J_obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); J_list [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); J_list (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let of_json text =
  match parse_json text with
  | exception Parse msg -> Error msg
  | J_obj fields -> (
      let get name = List.assoc_opt name fields in
      let num = function Some (J_num f) -> Some f | _ -> None in
      let str = function Some (J_str v) -> Some v | _ -> None in
      match (num (get "schema_version"), str (get "group"), get "results") with
      | Some v, _, _ when int_of_float v <> schema_version ->
          Error
            (Printf.sprintf "unsupported schema_version %d (want %d)"
               (int_of_float v) schema_version)
      | Some _, Some name, Some (J_list results) -> (
          let entry = function
            | J_obj f -> (
                let get' k = List.assoc_opt k f in
                match
                  ( str (get' "name"), num (get' "runs"),
                    num (get' "ns_per_op"), num (get' "r_squared") )
                with
                | Some e_name, Some runs, Some e_ns, Some e_r2 ->
                    Ok { e_name; e_runs = int_of_float runs; e_ns; e_r2 }
                | _ -> Error "result entry missing a required field")
            | _ -> Error "result entry is not an object"
          in
          let rec all acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest -> (
                match entry r with
                | Ok e -> all (e :: acc) rest
                | Error _ as e -> e)
          in
          match all [] results with
          | Error e -> Error e
          | Ok entries -> Ok (make_group ~name entries))
      | _ -> Error "missing schema_version, group, or results")
  | _ -> Error "top level is not an object"

(* ---- file IO ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  match read_file path with
  | exception Sys_error e -> Error e
  | text -> (
      match of_json text with
      | Ok g -> Ok g
      | Error e -> Error (path ^ ": " ^ e))

(* Every BENCH_*.json in [dir], sorted by group name. *)
let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | names ->
      let baselines =
        Array.to_list names
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
        |> List.sort String.compare
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match load_file (Filename.concat dir f) with
            | Ok g -> go (g :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (List.sort (fun a b -> String.compare a.g_name b.g_name))
        (go [] baselines)

let save_dir ~dir groups =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun g ->
      let path = Filename.concat dir (filename ~group_name:g.g_name) in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (to_json g)))
    groups

(* ---- comparison ---- *)

(* A fresh run is "no worse" when fresh <= base * (1 + threshold).
   Thresholds are relative and generous by design: bechamel point
   estimates on sub-100ns operations jitter tens of percent between
   runs on the same machine, and more across machines. The per-group
   table widens the noisy micro-groups; everything else gets the
   default. An absolute floor skips entries too small to compare
   meaningfully (smoke runs, empty estimates). *)
let default_threshold = 0.5
let min_comparable_ns = 1.0

let group_threshold ?(default = default_threshold) name =
  match name with
  | "label-ops" | "syscall" | "metrics-overhead" | "export-check" -> 1.0
  | _ -> default

type finding =
  | Regression of {
      group : string; name : string;
      base_ns : float; fresh_ns : float; threshold : float;
    }
  | Improvement of { group : string; name : string;
                     base_ns : float; fresh_ns : float }
  | Missing_group of string
  | Missing_test of { group : string; name : string }
  | New_group of string
  | New_test of { group : string; name : string }

(* Missing groups/tests fail the gate alongside slowdowns: a bench
   that stopped running is indistinguishable from one that stopped
   being measured. New entries are informational — they mean "re-record
   the baselines", not "the code got slower". *)
let finding_fails = function
  | Regression _ | Missing_group _ | Missing_test _ -> true
  | Improvement _ | New_group _ | New_test _ -> false

let has_regression findings = List.exists finding_fails findings

(* [names_only] compares structure (groups and test names) and ignores
   the numbers — the CI smoke gate, where one-iteration estimates are
   noise. *)
let compare_runs ?threshold ?(names_only = false) ~baseline ~fresh () =
  let fresh_of name = List.find_opt (fun g -> g.g_name = name) fresh in
  let base_of name = List.find_opt (fun g -> g.g_name = name) baseline in
  let per_group g =
    match fresh_of g.g_name with
    | None -> [ Missing_group g.g_name ]
    | Some fg ->
        let t = group_threshold ?default:threshold g.g_name in
        List.concat_map
          (fun e ->
            match
              List.find_opt (fun f -> f.e_name = e.e_name) fg.g_entries
            with
            | None -> [ Missing_test { group = g.g_name; name = e.e_name } ]
            | Some f ->
                if names_only then []
                else if e.e_ns < min_comparable_ns
                        || f.e_ns < min_comparable_ns then []
                else if f.e_ns > e.e_ns *. (1.0 +. t) then
                  [ Regression
                      { group = g.g_name; name = e.e_name;
                        base_ns = e.e_ns; fresh_ns = f.e_ns; threshold = t } ]
                else if f.e_ns *. (1.0 +. t) < e.e_ns then
                  [ Improvement
                      { group = g.g_name; name = e.e_name;
                        base_ns = e.e_ns; fresh_ns = f.e_ns } ]
                else [])
          g.g_entries
  in
  let missing_side = List.concat_map per_group baseline in
  let new_side =
    List.concat_map
      (fun fg ->
        match base_of fg.g_name with
        | None -> [ New_group fg.g_name ]
        | Some bg ->
            List.filter_map
              (fun f ->
                if List.exists (fun e -> e.e_name = f.e_name) bg.g_entries
                then None
                else Some (New_test { group = fg.g_name; name = f.e_name }))
              fg.g_entries)
      fresh
  in
  missing_side @ new_side

(* ---- rendering ---- *)

let pp_ns ns =
  if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.1f ns" ns

let render_finding = function
  | Regression { group; name; base_ns; fresh_ns; threshold } ->
      Printf.sprintf
        "REGRESSION  %s/%s: %s -> %s (%.2fx, threshold %.0f%%)" group name
        (pp_ns base_ns) (pp_ns fresh_ns) (fresh_ns /. base_ns)
        (threshold *. 100.0)
  | Improvement { group; name; base_ns; fresh_ns } ->
      Printf.sprintf "improvement %s/%s: %s -> %s (%.2fx)" group name
        (pp_ns base_ns) (pp_ns fresh_ns) (fresh_ns /. base_ns)
  | Missing_group group ->
      Printf.sprintf "MISSING     group %s absent from the fresh run" group
  | Missing_test { group; name } ->
      Printf.sprintf "MISSING     %s/%s absent from the fresh run" group name
  | New_group group ->
      Printf.sprintf "new         group %s has no committed baseline \
                      (re-record)" group
  | New_test { group; name } ->
      Printf.sprintf "new         %s/%s has no committed baseline \
                      (re-record)" group name

let render_text findings =
  if findings = [] then "perf: no change beyond thresholds\n"
  else
    String.concat ""
      (List.map (fun f -> render_finding f ^ "\n") findings)
    ^ (if has_regression findings then "perf: REGRESSION\n" else "perf: ok\n")

let finding_json f =
  let js = Exposition.json_string in
  let obj fields =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> js k ^ ":" ^ v) fields)
    ^ "}"
  in
  match f with
  | Regression { group; name; base_ns; fresh_ns; threshold } ->
      obj
        [ ("kind", js "regression"); ("group", js group); ("name", js name);
          ("base_ns", Printf.sprintf "%.1f" base_ns);
          ("fresh_ns", Printf.sprintf "%.1f" fresh_ns);
          ("threshold", Printf.sprintf "%.2f" threshold) ]
  | Improvement { group; name; base_ns; fresh_ns } ->
      obj
        [ ("kind", js "improvement"); ("group", js group); ("name", js name);
          ("base_ns", Printf.sprintf "%.1f" base_ns);
          ("fresh_ns", Printf.sprintf "%.1f" fresh_ns) ]
  | Missing_group group -> obj [ ("kind", js "missing_group"); ("group", js group) ]
  | Missing_test { group; name } ->
      obj [ ("kind", js "missing_test"); ("group", js group); ("name", js name) ]
  | New_group group -> obj [ ("kind", js "new_group"); ("group", js group) ]
  | New_test { group; name } ->
      obj [ ("kind", js "new_test"); ("group", js group); ("name", js name) ]

let render_json findings =
  Printf.sprintf "{\"regression\":%b,\"findings\":[%s]}\n"
    (has_regression findings)
    (String.concat "," (List.map finding_json findings))

(* The schema skeleton: group and test names plus the field layout,
   none of the values. CI byte-diffs this against a committed golden,
   so the file format can only change deliberately. *)
let schema_skeleton groups =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "# BENCH_<group>.json schema v%d: results sorted by name, fields \
        name/runs/ns_per_op/r_squared\n"
       schema_version);
  List.iter
    (fun g ->
      Buffer.add_string buf (filename ~group_name:g.g_name ^ "\n");
      List.iter
        (fun e -> Buffer.add_string buf ("  " ^ e.e_name ^ "\n"))
        g.g_entries)
    groups;
  Buffer.contents buf
