open W5_difc
open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "messages"
let inbox_collection user = "inbox-" ^ user

let secrecy_of_user ctx user =
  match Syscall.stat ctx (App_util.user_dir user) with
  | Ok st -> Some st.Fs.labels.Flow.secrecy
  | Error _ -> None

let send ctx env ~sender ~recipient ~body =
  ignore env;
  match (secrecy_of_user ctx sender, secrecy_of_user ctx recipient) with
  | None, _ -> App_util.respond_error ctx ("no such user: " ^ sender)
  | _, None -> App_util.respond_error ctx ("no such user: " ^ recipient)
  | Some s_sender, Some s_recipient -> (
      let collection = inbox_collection recipient in
      (match
         Obj_store.create_collection ctx collection ~labels:Flow.bottom
       with
      | Ok () | Error (Os_error.Already_exists _) -> ()
      | Error _ -> ());
      Index.declare ctx ~collection ~field:"from" Index.Equality;
      let labels =
        Flow.make ~secrecy:(Label.union s_sender s_recipient) ()
      in
      let id =
        Printf.sprintf "m-%d-%d" (Syscall.pid ctx)
          (Syscall.usage ctx W5_os.Resource.Cpu)
      in
      let record =
        Record.of_fields [ ("from", sender); ("to", recipient); ("body", body) ]
      in
      match Obj_store.put ctx ~collection ~id ~labels record with
      | Error e -> App_util.respond_error ctx (Os_error.to_string e)
      | Ok () ->
          App_util.respond_page ctx ~title:"sent"
            (Html.text ("message delivered to " ^ recipient)))

let render_messages ctx ~title messages =
  let lines =
    List.map
      (fun (_, r) ->
        Printf.sprintf "%s: %s"
          (Record.get_or r "from" ~default:"?")
          (Record.get_or r "body" ~default:""))
      messages
  in
  App_util.respond_page ctx ~title (Html.ul (List.map Html.text lines))

let inbox ctx ~viewer ~sender_filter =
  let collection = inbox_collection viewer in
  (* sender lookups ride the "from" index; declaring is idempotent *)
  Index.declare ctx ~collection ~field:"from" Index.Equality;
  let where =
    match sender_filter with
    | None -> Query.always
    | Some sender -> Query.field_equals "from" sender
  in
  match Query.select ctx ~collection ~where with
  | Error (Os_error.Not_found _) ->
      App_util.respond_page ctx ~title:"inbox" (Html.text "no messages")
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok messages -> render_messages ctx ~title:(viewer ^ "'s inbox") messages

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer -> (
      match Request.param_or request "action" ~default:"inbox" with
      | "send" -> (
          match (Request.param request "to", Request.param request "body") with
          | Some recipient, Some body ->
              send ctx env ~sender:viewer ~recipient ~body
          | _ -> App_util.respond_error ctx "to and body required")
      | "inbox" -> inbox ctx ~viewer ~sender_filter:None
      | "from" -> (
          match Request.param request "sender" with
          | Some sender -> inbox ctx ~viewer ~sender_filter:(Some sender)
          | None -> App_util.respond_error ctx "sender required")
      | other -> App_util.respond_error ctx ("unknown action: " ^ other))

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "message_app.ml: doubly-labeled messages in the object store, \
          listed via the taint-joining query engine")
    handler
