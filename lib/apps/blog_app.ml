open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "blog"
let blog_dir user = App_util.user_file user "blog"
let entry_path user id = blog_dir user ^ "/" ^ id
let comments_collection ~author ~entry = "comments-" ^ author ^ "-" ^ entry

let post ctx env ~viewer ~id ~title ~body =
  if not (App_util.endorse_write ctx env ~user:viewer) then
    App_util.respond_error ctx "write not delegated to this app"
  else
    match App_util.user_data_labels ctx ~user:viewer with
    | None -> App_util.respond_error ctx "cannot determine labels"
    | Some labels -> (
        (match Syscall.mkdir ctx (blog_dir viewer) ~labels with
        | Ok () | Error (Os_error.Already_exists _) -> ()
        | Error e -> App_util.respond_error ctx (Os_error.to_string e));
        let entry =
          Record.of_fields
            [ ("title", title); ("body", body); ("author", viewer) ]
        in
        let path = entry_path viewer id in
        let data = Record.encode entry in
        let result =
          if Syscall.file_exists ctx path then
            Syscall.write_file ctx path ~data
          else Syscall.create_file ctx path ~labels ~data
        in
        match result with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"posted"
              (Html.text ("published " ^ id)))

let render_comments ctx ~user ~id =
  match
    Query.select ctx
      ~collection:(comments_collection ~author:user ~entry:id)
      ~where:Query.always
  with
  | Error _ -> ""
  | Ok comments ->
      Html.element "aside"
        (Html.ul
           (List.map
              (fun (_, c) ->
                Html.element "b" (Html.text (Record.get_or c "from" ~default:"?"))
                ^ ": "
                ^ Html.text (Record.get_or c "text" ~default:""))
              comments))

let render_entry ctx ~user ~id =
  match Syscall.read_file_taint ctx (entry_path user id) with
  | Error _ -> None
  | Ok data -> (
      match Record.decode data with
      | Error _ -> None
      | Ok r ->
          Some
            (Html.element "article"
               (Html.element "h2" (Html.text (Record.get_or r "title" ~default:id))
               ^ Html.element "p" (Html.text (Record.get_or r "body" ~default:""))
               ^ render_comments ctx ~user ~id)))

let comment ctx ~viewer ~author ~entry ~text =
  if not (Syscall.file_exists ctx (entry_path author entry)) then
    App_util.respond_error ctx "no such entry"
  else
    match Syscall.stat ctx (App_util.user_dir viewer) with
    | Error e -> App_util.respond_error ctx (Os_error.to_string e)
    | Ok st -> (
        let labels =
          W5_difc.Flow.make ~secrecy:st.Fs.labels.W5_difc.Flow.secrecy ()
        in
        let collection = comments_collection ~author ~entry in
        (match Obj_store.create_collection ctx collection ~labels:W5_difc.Flow.bottom with
        | Ok () | Error (Os_error.Already_exists _) -> ()
        | Error _ -> ());
        (* per-commenter lookups (moderation, "my comments") can use
           the index instead of scanning the thread *)
        Index.declare ctx ~collection ~field:"from" Index.Equality;
        let id =
          Printf.sprintf "c-%d-%d" (Syscall.pid ctx)
            (Syscall.usage ctx W5_os.Resource.Cpu)
        in
        match
          Obj_store.put ctx ~collection ~id ~labels
            (Record.of_fields [ ("from", viewer); ("text", text) ])
        with
        | Error e -> App_util.respond_error ctx (Os_error.to_string e)
        | Ok () ->
            App_util.respond_page ctx ~title:"comment"
              (Html.text "comment posted"))

let read ctx ~user ~id =
  match id with
  | Some id -> (
      match render_entry ctx ~user ~id with
      | Some html -> App_util.respond_page ctx ~title:(user ^ "/" ^ id) html
      | None -> App_util.respond_error ctx ("no such entry: " ^ id))
  | None ->
      let ids = App_util.list_user_files ctx ~user ~sub:"blog" in
      let entries = List.filter_map (fun id -> render_entry ctx ~user ~id) ids in
      App_util.respond_page ctx
        ~title:(user ^ "'s blog")
        (String.concat "" entries)

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"read" with
  | "post" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match
            ( Request.param request "id",
              Request.param request "title",
              Request.param request "body" )
          with
          | Some id, Some title, Some body -> post ctx env ~viewer ~id ~title ~body
          | _ -> App_util.respond_error ctx "id, title and body required"))
  | "comment" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match
            ( Request.param request "user",
              Request.param request "id",
              Request.param request "text" )
          with
          | Some author, Some entry, Some text ->
              comment ctx ~viewer ~author ~entry ~text
          | _ -> App_util.respond_error ctx "user, id and text required"))
  | "read" -> (
      match (Request.param request "user", env.App_registry.viewer) with
      | Some user, _ | None, Some user ->
          read ctx ~user ~id:(Request.param request "id")
      | None, None -> App_util.respond_error ctx "user required")
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "blog_app.ml: record-format entries under the user's own labels")
    handler
