open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "recommend"

type item = {
  owner : string;
  kind : string;
  item_id : string;
  score : int;
}

(* Relevance, deliberately simple: longer content scores higher, blog
   entries get a nudge. The paper's point is that the metric is the
   developer's to choose — the platform doesn't care. *)
let score ~kind ~content =
  String.length content + if kind = "blog" then 10 else 0

let collect ctx ~friend_name =
  let of_sub ~sub ~kind =
    App_util.list_user_files ctx ~user:friend_name ~sub
    |> List.filter_map (fun item_id ->
           let path = App_util.user_file friend_name (sub ^ "/" ^ item_id) in
           match Syscall.read_file_taint ctx path with
           | Error _ -> None
           | Ok content ->
               Some { owner = friend_name; kind; item_id; score = score ~kind ~content })
  in
  of_sub ~sub:"photos" ~kind:"photo" @ of_sub ~sub:"blog" ~kind:"blog"

let digest ctx ~viewer ~k =
  let friends = App_util.friends_of ctx ~user:viewer in
  let items = List.concat_map (fun f -> collect ctx ~friend_name:f) friends in
  let ranked =
    List.sort
      (fun a b ->
        match Int.compare b.score a.score with
        | 0 -> compare (a.owner, a.kind, a.item_id) (b.owner, b.kind, b.item_id)
        | c -> c)
      items
  in
  let top = List.filteri (fun i _ -> i < k) ranked in
  let lines =
    List.map
      (fun it ->
        Printf.sprintf "%s: %s/%s (score %d)" it.kind it.owner it.item_id
          it.score)
      top
  in
  App_util.respond_page ctx
    ~title:("daily digest for " ^ viewer)
    (Html.element "h1" (Html.text "Your top picks")
    ^ Html.ul (List.map Html.text lines))

let handler ctx (env : App_registry.env) =
  match App_util.viewer_or_respond ctx env with
  | None -> ()
  | Some viewer ->
      let k =
        match
          int_of_string_opt
            (Request.param_or env.App_registry.request "k" ~default:"5")
        with
        | Some n when n > 0 -> n
        | Some _ | None -> 5
      in
      digest ctx ~viewer ~k

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "recommend_app.ml: scores friends' items, responds top-k; \
          every friend's declassifier gates the export")
    ~imports:[ "core/social" ] handler

(* Referenced only to document the record dependency on the social
   app's friends format. *)
let _ = Record.empty
