open W5_difc
open W5_os
open W5_store
open W5_http
open W5_platform

let app_name = "polls"
let collection poll = "poll-" ^ poll

let vote ctx ~viewer ~poll ~choice =
  match Syscall.stat ctx (App_util.user_dir viewer) with
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok st -> (
      let labels = Flow.make ~secrecy:st.Fs.labels.Flow.secrecy () in
      (match
         Obj_store.create_collection ctx (collection poll) ~labels:Flow.bottom
       with
      | Ok () | Error (Os_error.Already_exists _) -> ()
      | Error _ -> ());
      (* per-choice counts can be answered from the index's candidate
         sets; the full tally still reads every ballot *)
      Index.declare ctx ~collection:(collection poll) ~field:"choice"
        Index.Equality;
      let ballot = Record.of_fields [ ("voter", viewer); ("choice", choice) ] in
      match
        Obj_store.put ctx ~collection:(collection poll) ~id:viewer ~labels ballot
      with
      | Error e -> App_util.respond_error ctx (Os_error.to_string e)
      | Ok () ->
          App_util.respond_page ctx ~title:"voted"
            (Html.text ("vote recorded in " ^ poll)))

let ballots_of ctx ~poll =
  Query.select ctx ~collection:(collection poll) ~where:Query.always

let tally ctx ~poll =
  match ballots_of ctx ~poll with
  | Error (Os_error.Not_found _) ->
      App_util.respond_page ctx ~title:"tally" (Html.text "no votes yet")
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok ballots ->
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (_, r) ->
          let choice = Record.get_or r "choice" ~default:"?" in
          Hashtbl.replace counts choice
            (1 + Option.value (Hashtbl.find_opt counts choice) ~default:0))
        ballots;
      let lines =
        Hashtbl.fold (fun choice n acc -> (choice, n) :: acc) counts []
        |> List.sort compare
        |> List.map (fun (choice, n) -> Printf.sprintf "%s: %d" choice n)
      in
      (* aggregates only: nothing here is marked sensitive *)
      App_util.respond_page ctx ~title:("tally: " ^ poll)
        (Html.ul (List.map Html.text lines))

let ballots_view ctx ~poll =
  match ballots_of ctx ~poll with
  | Error e -> App_util.respond_error ctx (Os_error.to_string e)
  | Ok ballots ->
      let lines =
        List.map
          (fun (_, r) ->
            (* each raw ballot is a sensitive span: voters' no-secrets
               declassifiers veto any page carrying one *)
            Declassifier.secret_span
              (Html.text
                 (Printf.sprintf "%s voted %s"
                    (Record.get_or r "voter" ~default:"?")
                    (Record.get_or r "choice" ~default:"?"))))
          ballots
      in
      App_util.respond_page ctx ~title:("ballots: " ^ poll) (Html.ul lines)

let handler ctx (env : App_registry.env) =
  let request = env.App_registry.request in
  match Request.param_or request "action" ~default:"tally" with
  | "vote" -> (
      match App_util.viewer_or_respond ctx env with
      | None -> ()
      | Some viewer -> (
          match (Request.param request "poll", Request.param request "choice")
          with
          | Some poll, Some choice -> vote ctx ~viewer ~poll ~choice
          | _ -> App_util.respond_error ctx "poll and choice required"))
  | "tally" -> (
      match Request.param request "poll" with
      | Some poll -> tally ctx ~poll
      | None -> App_util.respond_error ctx "poll required")
  | "ballots" -> (
      match Request.param request "poll" with
      | Some poll -> ballots_view ctx ~poll
      | None -> App_util.respond_error ctx "poll required")
  | other -> App_util.respond_error ctx ("unknown action: " ^ other)

let publish platform ~dev =
  App_registry.publish
    (Platform.registry platform)
    ~dev ~name:app_name ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "poll_app.ml: ballots labeled per voter; tallies aggregate \
          freely; raw ballots are sensitive spans vetoed by \
          no-secrets declassifiers")
    handler
