(** The security perimeter: the only place data leaves the platform.

    Implements the paper's boilerplate privacy policy — "Bob's data
    can only leave the security perimeter if destined for Bob's
    browser" — plus the user-authorized holes:

    + every secrecy tag on the outgoing payload that belongs to the
      authenticated viewer is allowed through (it is going to its
      owner's browser);
    + every other tag must be cleared by a declassifier gate that the
      tag's owner has authorized for it; the gate is invoked with the
      payload and the viewer's identity and must answer with a payload
      no longer carrying the tag;
    + anything still tainted after that is refused, and the refusal is
      audited (data-free).

    Commingled payloads work naturally: a page mixing Alice's and
    Bob's data needs Alice's tag cleared by Alice's declassifier and
    Bob's by Bob's. *)

open W5_difc

(** Why an export was refused. *)
type refusal =
  | No_rule of Tag.t        (** tag owner authorized no declassifier *)
  | Refused_by of { tag : Tag.t; gate : string }
  | Gate_failed of { tag : Tag.t; gate : string; error : string }
  | Unknown_tag of Tag.t    (** no account owns the tag *)

val pp_refusal : Format.formatter -> refusal -> unit
val refusal_to_string : refusal -> string

val export :
  Platform.t -> ?source:int -> viewer:Account.t option -> data:string ->
  labels:Flow.labels -> unit -> (string, refusal) result
(** Push a labeled payload through the perimeter toward [viewer]
    (None = an unauthenticated client). On success the returned
    payload is exactly what crosses the wire — declassifiers may have
    transformed it. [source] (default 0, the kernel) is the pid whose
    response is being exported; the audit record carries it so a
    denial can be traced back to the process that accumulated the
    taint. *)
