(** Per-user policy state — everything a user "expresses" about how
    software may handle their data (§1 "give users control over their
    data", §2 "End-Users").

    The policy object is pure bookkeeping; enforcement happens in the
    kernel (labels), the perimeter (export) and the gateway (caps
    granted at dispatch). The boilerplate privacy policy — "Bob's data
    can only leave the security perimeter if destined for Bob's
    browser" — is not stored here because it is unconditional: the
    perimeter applies it to every tag with no matching export rule. *)

open W5_difc

type t

val create : unit -> t

(** {1 Export rules (declassifiers, §3.1)} *)

val authorize_declassifier : t -> tag:Tag.t -> gate:string -> unit
(** Route export decisions for [tag] through the named kernel gate.
    Replaces any previous rule for the tag. *)

val revoke_declassifier : t -> tag:Tag.t -> unit
val declassifier_for : t -> tag:Tag.t -> string option
val export_rules : t -> (Tag.t * string) list

(** {1 Application choices (§2)} *)

val enable_app : t -> string -> unit
(** The one-click "accept an invitation". *)

val disable_app : t -> string -> unit
val app_enabled : t -> string -> bool
val enabled_apps : t -> string list

val pin_version : t -> app:string -> version:string -> unit
(** "I want to use version X.Y of that Web application". *)

val unpin_version : t -> app:string -> unit
val pinned_version : t -> app:string -> string option

val choose_module : t -> slot:string -> module_id:string -> unit
(** "Use developer A's photo cropping module": applications look up
    their extension slots (e.g. ["photo.crop"]) here. *)

val module_for : t -> slot:string -> string option

(** {1 Delegations} *)

val delegate_write : t -> string -> unit
(** Allow the app (by id) to receive this user's write capability at
    dispatch. *)

val revoke_write : t -> string -> unit
val write_delegated : t -> string -> bool

val grant_read : t -> string -> unit
(** Allow the app to absorb this user's read-protected tag. *)

val revoke_read : t -> string -> unit
val read_granted : t -> string -> bool

val write_delegates : t -> string list
(** All apps with a write delegation, sorted — introspection for the
    dashboard and the static analyzer. *)

val read_grants : t -> string list
(** All apps with a read grant, sorted. *)

(** {1 Integrity protection (§3.1)} *)

val set_require_vetted : t -> bool -> unit
(** When on, the gateway runs an application for this user only if the
    app {e and all of its imports} are on the provider's vetted list —
    "Bob can authorize an application to act on his behalf only if all
    of its components (such as its libraries and configuration files)
    are meritorious". Default off. *)

val require_vetted : t -> bool

(** {1 Client-side (§3.5)} *)

val set_allow_javascript : t -> bool -> unit
(** Default [false]: the perimeter strips scripts from every page this
    user receives (the MashupOS-style relaxation is opting in). *)

val allow_javascript : t -> bool

(** {1 Introspection} *)

val summary : t -> (string * string) list
(** A data-free rendering of every setting — what the provider's
    "/me" dashboard shows the user about their own policy. *)
