open W5_difc
open W5_os

type t = {
  g_name : string;
  g_tag : Tag.t;
  g_founder : string;
  mutable g_members : string list;
}

(* Group registries are platform state, keyed like the gateway's
   invitation registry. *)
let registries : (int, (string, t) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let registry_of platform =
  let key = Principal.id (Platform.provider platform) in
  match Hashtbl.find_opt registries key with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 16 in
      Hashtbl.replace registries key table;
      table

let find platform ~name = Hashtbl.find_opt (registry_of platform) name

let all platform =
  Hashtbl.fold (fun _ g acc -> g :: acc) (registry_of platform) []
  |> List.sort (fun a b -> String.compare a.g_name b.g_name)
let name group = group.g_name
let tag group = group.g_tag
let founder group = group.g_founder
let members group = group.g_members
let is_member group ~user = List.mem user group.g_members
let dir group = "/groups/" ^ group.g_name
let groups_root = "/groups"

let gate_name group = "declass/" ^ group.g_founder ^ "/group-" ^ group.g_name

let install_gate platform group =
  (* The gate holds dual privilege over the group tag: [t+] to absorb
     group-tainted payloads, [t-] to release them to members. *)
  let caps = Capability.Set.grant_dual group.g_tag Capability.Set.empty in
  let entry ctx arg =
    match
      W5_store.Record.decode arg
    with
    | Error _ -> ()
    | Ok r -> (
        let viewer =
          match W5_store.Record.get_or r "viewer" ~default:"" with
          | "" -> None
          | v -> Some v
        in
        let data = W5_store.Record.get_or r "data" ~default:"" in
        match viewer with
        | Some v when is_member group ~user:v ->
            ignore (Syscall.declassify_self ctx group.g_tag);
            ignore (Syscall.respond ctx data)
        | Some _ | None -> ())
  in
  let founder_account = Platform.account_exn platform group.g_founder in
  Kernel.register_gate (Platform.kernel platform) ~name:(gate_name group)
    ~owner:founder_account.Account.principal ~caps ~entry

let create platform ~founder ~name =
  if String.contains name '/' || name = "" then Error "invalid group name"
  else if Hashtbl.mem (registry_of platform) name then
    Error (name ^ ": group exists")
  else begin
    let g_tag =
      Tag.fresh ~name:("group:" ^ name) ~restricted:true Tag.Secrecy
    in
    let group =
      {
        g_name = name;
        g_tag;
        g_founder = founder.Account.user;
        g_members = [ founder.Account.user ];
      }
    in
    (* The founder holds dual privilege and owns the tag's policy. *)
    founder.Account.caps <- Capability.Set.grant_dual g_tag founder.Account.caps;
    Platform.register_tag_owner platform g_tag ~user:founder.Account.user;
    let made_dirs =
      Platform.with_ctx platform
        ~name:("group:" ^ name)
        ~caps:founder.Account.caps (fun ctx ->
          (match Syscall.mkdir ctx groups_root ~labels:Flow.bottom with
          | Ok () | Error (Os_error.Already_exists _) -> ()
          | Error _ -> ());
          Syscall.mkdir ctx (dir group)
            ~labels:(Flow.make ~secrecy:(Label.singleton g_tag) ()))
    in
    match made_dirs with
    | Error e -> Error (Os_error.to_string e)
    | Ok () ->
        install_gate platform group;
        Policy.authorize_declassifier founder.Account.policy ~tag:g_tag
          ~gate:(gate_name group);
        Hashtbl.replace (registry_of platform) name group;
        Ok group
  end

let add_member platform group ~user =
  match Platform.find_account platform user with
  | None -> Error ("no such user: " ^ user)
  | Some account ->
      if not (is_member group ~user) then begin
        group.g_members <- group.g_members @ [ user ];
        account.Account.caps <-
          Capability.Set.add
            (Capability.make group.g_tag Capability.Plus)
            account.Account.caps
      end;
      Ok ()

let remove_member platform group ~user =
  if user = group.g_founder then Error "cannot remove the founder"
  else begin
    group.g_members <- List.filter (( <> ) user) group.g_members;
    (match Platform.find_account platform user with
    | Some account ->
        account.Account.caps <-
          Capability.Set.remove
            (Capability.make group.g_tag Capability.Plus)
            account.Account.caps
    | None -> ());
    Ok ()
  end

let member_caps platform ~user =
  Hashtbl.fold
    (fun _ group caps ->
      if is_member group ~user then
        Capability.Set.add (Capability.make group.g_tag Capability.Plus) caps
      else caps)
    (registry_of platform) Capability.Set.empty

let post platform group ~author ~id ~body =
  if not (is_member group ~user:author.Account.user) then
    Error (Os_error.Permission (author.Account.user ^ ": not a member"))
  else
    let labels = Flow.make ~secrecy:(Label.singleton group.g_tag) () in
    Platform.with_ctx platform
      ~name:("group-post:" ^ group.g_name)
      ~labels
      ~caps:
        (Capability.Set.add
           (Capability.make group.g_tag Capability.Plus)
           Capability.Set.empty)
      (fun ctx ->
        let path = dir group ^ "/" ^ id in
        let data =
          W5_store.Record.encode
            (W5_store.Record.of_fields
               [ ("author", author.Account.user); ("body", body) ])
        in
        if Syscall.file_exists ctx path then Syscall.write_file ctx path ~data
        else Syscall.create_file ctx path ~labels ~data)

let read_posts platform group ~reader =
  if not (is_member group ~user:reader.Account.user) then
    Error
      (Os_error.Denied (W5_difc.Flow.Unauthorized_add (Label.singleton group.g_tag)))
  else
    Platform.with_ctx platform
      ~name:("group-read:" ^ group.g_name)
      ~caps:
        (Capability.Set.add
           (Capability.make group.g_tag Capability.Plus)
           Capability.Set.empty)
      (fun ctx ->
        match Syscall.stat ctx (dir group) with
        | Error _ as e -> e
        | Ok st -> (
            match Syscall.add_taint ctx st.Fs.labels.Flow.secrecy with
            | Error _ as e -> e
            | Ok () -> (
                match Syscall.readdir ctx (dir group) with
                | Error _ as e -> e
                | Ok ids ->
                    let posts =
                      List.filter_map
                        (fun id ->
                          match
                            Syscall.read_file_taint ctx (dir group ^ "/" ^ id)
                          with
                          | Error _ -> None
                          | Ok data -> (
                              match W5_store.Record.decode data with
                              | Error _ -> None
                              | Ok r ->
                                  Some
                                    ( id,
                                      Printf.sprintf "%s: %s"
                                        (W5_store.Record.get_or r "author"
                                           ~default:"?")
                                        (W5_store.Record.get_or r "body"
                                           ~default:"") )))
                        ids
                    in
                    Ok posts)))
