open W5_difc
open W5_os
open W5_http

(* One invitation registry per platform instance, keyed by the
   provider principal's unique id (no reference to the platform itself
   is retained). *)
let invite_registries : (int, Invite.registry) Hashtbl.t = Hashtbl.create 8

let invites_of platform =
  let key = Principal.id (Platform.provider platform) in
  match Hashtbl.find_opt invite_registries key with
  | Some registry -> registry
  | None ->
      let registry = Invite.create_registry () in
      Hashtbl.replace invite_registries key registry;
      registry

(* Per-platform SLO ledger, same keying discipline as the invite
   registries: every handled request spends or banks error budget for
   its route, and [w5 health] renders the ledger next to peer health. *)
let slo_registries : (int, W5_obs.Health.Slo.t) Hashtbl.t = Hashtbl.create 8

let slo_of platform =
  let key = Principal.id (Platform.provider platform) in
  match Hashtbl.find_opt slo_registries key with
  | Some slo -> slo
  | None ->
      let slo = W5_obs.Health.Slo.create () in
      Hashtbl.replace slo_registries key slo;
      slo

let viewer_of platform request =
  match Request.cookie request Session.cookie_name with
  | None -> None
  | Some sid ->
      Option.bind
        (Platform.session_user platform ~sid)
        (Platform.find_account platform)

(* Build the env hooks that let an app consult the viewer's module
   choices and run other registered modules inline. *)
let rec make_env platform ~viewer ~request ~self_id =
  let module_for_slot slot =
    Option.bind viewer (fun (a : Account.t) ->
        Policy.module_for a.Account.policy ~slot)
  in
  let run_module ctx ~module_id sub_request =
    let registry = Platform.registry platform in
    let version =
      Option.bind viewer (fun (a : Account.t) ->
          Policy.pinned_version a.Account.policy ~app:module_id)
    in
    match App_registry.resolve registry ~id:module_id ?version () with
    | None -> Error ("no such module: " ^ module_id)
    | Some (_, v) -> (
        (* Inline call: same process, same labels. Metered, so a
           module that recurses into itself dies by CPU quota instead
           of by stack. The callee's response is captured and the
           caller's restored. *)
        (match Syscall.consume ctx ~cpu:5 with Ok () -> () | Error _ -> ());
        let saved = ctx.Kernel.proc.Proc.response in
        ctx.Kernel.proc.Proc.response <- None;
        let sub_env =
          make_env platform ~viewer ~request:sub_request ~self_id:module_id
        in
        let outcome =
          try
            v.App_registry.handler ctx sub_env;
            match ctx.Kernel.proc.Proc.response with
            | Some (body, _) -> Ok body
            | None -> Error (module_id ^ ": no response")
          with Kernel.Quota_kill _ as q -> raise q
        in
        ctx.Kernel.proc.Proc.response <- saved;
        outcome)
  in
  {
    App_registry.viewer =
      Option.map (fun (a : Account.t) -> a.Account.user) viewer;
    request;
    self_id;
    module_for_slot;
    run_module;
  }

(* Admission half of an application dispatch: resolve, vet, spawn —
   everything up to (but not including) running the body. [Error r]
   short-circuits with a finished response; [Ok proc] is a spawned
   process the caller must drive (synchronously via {!Kernel.run_proc}
   or interleaved via {!W5_os.Sched}). *)
let spawn_app platform ~viewer ~app_id ?version request =
  let registry = Platform.registry platform in
  let version =
    match version with
    | Some _ as v -> v
    | None ->
        Option.bind viewer (fun (a : Account.t) ->
            Policy.pinned_version a.Account.policy ~app:app_id)
  in
  match App_registry.resolve registry ~id:app_id ?version () with
  | None -> Error (Response.not_found app_id)
  | Some (_, v)
    when (match viewer with
         | Some (a : Account.t) -> Policy.require_vetted a.Account.policy
         | None -> false)
         && not
              (List.for_all
                 (Platform.is_vetted platform)
                 (app_id :: v.App_registry.imports)) ->
      (* Integrity protection (§3.1): this user runs only applications
         whose every component is on the vetted list. *)
      Error
        (Response.forbidden
           (app_id ^ ": not fully vetted (integrity protection is on)"))
  | Some (app, v) -> (
      Platform.count_request platform;
      let caps =
        Capability.Set.union
          (Platform.app_caps_for platform ~viewer ~app:app_id)
          (match viewer with
          | Some (a : Account.t) ->
              Group.member_caps platform ~user:a.Account.user
          | None -> Capability.Set.empty)
      in
      let env = make_env platform ~viewer ~request ~self_id:app_id in
      let body ctx = v.App_registry.handler ctx env in
      let kernel = Platform.kernel platform in
      match
        Kernel.spawn kernel ~name:app_id ~owner:app.App_registry.dev
          ~labels:Flow.bottom ~caps
          ~limits:(Platform.app_limits platform ~app:app_id)
          body
      with
      | Error e -> Error (Response.server_error (Os_error.to_string e))
      | Ok proc -> Ok proc)

(* Conclusion half: the process has finished (or been killed); read
   its state and response and push the answer through the perimeter. *)
let conclude_app platform ~viewer proc =
  let kernel = Platform.kernel platform in
  (* keep the long-running provider's process table lean *)
  if Kernel.process_count kernel > 512 then ignore (Kernel.reap kernel);
  match (proc.Proc.state, proc.Proc.response) with
  | Proc.Killed reason, _ ->
      if String.length reason >= 5 && String.sub reason 0 5 = "quota" then
        Response.too_many_requests ("application killed: " ^ reason)
      else
        (* Data-free error: the developer reads /audit instead
           of a core dump (§3.5). *)
        Response.server_error "application error (see /audit)"
  | _, None -> Response.server_error "application sent no response"
  | _, Some (data, labels) -> (
      match
        Perimeter.export platform ~source:proc.Proc.pid ~viewer ~data ~labels
          ()
      with
      | Error refusal -> Response.forbidden (Perimeter.refusal_to_string refusal)
      | Ok out ->
          let allow_js =
            match viewer with
            | Some (a : Account.t) -> Policy.allow_javascript a.Account.policy
            | None -> false
          in
          let out = if allow_js then out else Html.strip_scripts out in
          Response.html out)

let dispatch_app platform ~viewer ~app_id ?version request =
  match spawn_app platform ~viewer ~app_id ?version request with
  | Error response -> response
  | Ok proc ->
      Kernel.run_proc (Platform.kernel platform) proc;
      conclude_app platform ~viewer proc

(* ---- provider-written front-end pages ---- *)

let home platform =
  let registry = Platform.registry platform in
  let ids = App_registry.list_ids registry in
  let items =
    List.map
      (fun id ->
        Printf.sprintf "%s (%d installs)"
          id (App_registry.installs registry id))
      ids
  in
  Response.html
    (Html.page ~title:"W5"
       (Html.element "h1" (Html.text "World Wide Web Without Walls")
       ^ Html.ul items))

let with_login platform request k =
  match viewer_of platform request with
  | None -> Response.unauthorized "login required"
  | Some account -> k account

let handle_signup platform request =
  match (Request.param request "user", Request.param request "pass") with
  | Some user, Some pass -> (
      match Platform.signup platform ~user ~password:pass with
      | Error e -> Response.bad_request e
      | Ok _ -> (
          match Platform.login platform ~user ~password:pass with
          | Error e -> Response.server_error e
          | Ok session ->
              Response.with_cookie
                (Response.html (Html.page ~title:"welcome" "account created"))
                ~name:Session.cookie_name ~value:session.Session.sid))
  | _ -> Response.bad_request "user and pass required"

let handle_login platform request =
  match (Request.param request "user", Request.param request "pass") with
  | Some user, Some pass -> (
      match Platform.login platform ~user ~password:pass with
      | Error e -> Response.unauthorized e
      | Ok session ->
          Response.with_cookie
            (Response.html (Html.page ~title:"login" "logged in"))
            ~name:Session.cookie_name ~value:session.Session.sid)
  | _ -> Response.bad_request "user and pass required"

let handle_logout platform request =
  (match Request.cookie request Session.cookie_name with
  | Some sid -> Platform.logout platform ~sid
  | None -> ());
  Response.html (Html.page ~title:"logout" "logged out")

let handle_enable platform request =
  with_login platform request (fun account ->
      match Request.param request "app" with
      | None -> Response.bad_request "app required"
      | Some app -> (
          match
            Platform.enable_app platform ~user:account.Account.user ~app
          with
          | Error e -> Response.bad_request e
          | Ok () -> Response.html (Html.page ~title:"enabled" ("enabled " ^ app))))

(* /settings?action=… — the Web-forms policy front-end of §2. *)
let handle_settings platform request =
  with_login platform request (fun account ->
      let policy = account.Account.policy in
      let ok msg = Response.html (Html.page ~title:"settings" msg) in
      match Request.param_or request "action" ~default:"" with
      | "allow_js" ->
          Policy.set_allow_javascript policy
            (Request.param request "value" = Some "on");
          ok "javascript preference saved"
      | "declassifier" -> (
          match Request.param request "gate" with
          | None -> Response.bad_request "gate required"
          | Some gate ->
              if not (Kernel.gate_exists (Platform.kernel platform) gate) then
                Response.bad_request ("no such gate: " ^ gate)
              else begin
                Policy.authorize_declassifier policy
                  ~tag:account.Account.secret_tag ~gate;
                (match account.Account.read_tag with
                | Some rt -> Policy.authorize_declassifier policy ~tag:rt ~gate
                | None -> ());
                ok ("declassifier set to " ^ gate)
              end)
      | "delegate_write" -> (
          match Request.param request "app" with
          | None -> Response.bad_request "app required"
          | Some app ->
              Policy.delegate_write policy app;
              ok ("write delegated to " ^ app))
      | "revoke_write" -> (
          match Request.param request "app" with
          | None -> Response.bad_request "app required"
          | Some app ->
              Policy.revoke_write policy app;
              ok ("write revoked from " ^ app))
      | "module" -> (
          match (Request.param request "slot", Request.param request "module")
          with
          | Some slot, Some module_id ->
              Policy.choose_module policy ~slot ~module_id;
              ok (Printf.sprintf "slot %s -> %s" slot module_id)
          | _ -> Response.bad_request "slot and module required")
      | "pin" -> (
          match (Request.param request "app", Request.param request "version")
          with
          | Some app, Some version ->
              Policy.pin_version policy ~app ~version;
              ok (Printf.sprintf "pinned %s at %s" app version)
          | _ -> Response.bad_request "app and version required")
      | "require_vetted" ->
          Policy.set_require_vetted policy
            (Request.param request "value" = Some "on");
          ok "integrity protection preference saved"
      | "read_protect" ->
          let tag = Platform.enable_read_protection platform account in
          ok ("read protection enabled: " ^ W5_difc.Tag.name tag)
      | "grant_read" -> (
          match Request.param request "app" with
          | None -> Response.bad_request "app required"
          | Some app ->
              Policy.grant_read policy app;
              ok ("read granted to " ^ app))
      | other -> Response.bad_request ("unknown settings action: " ^ other))

let handle_invite platform request =
  with_login platform request (fun account ->
      match (Request.param request "to", Request.param request "app") with
      | Some to_user, Some app -> (
          let suggest_write = Request.param request "write" = Some "on" in
          match
            Invite.send (invites_of platform) platform
              ~from_user:account.Account.user ~to_user ~app ~suggest_write ()
          with
          | Error e -> Response.bad_request e
          | Ok invite ->
              Response.html
                (Html.page ~title:"invited"
                   (Html.text ("invitation sent: " ^ invite.Invite.invite_id))))
      | _ -> Response.bad_request "to and app required")

let handle_invites_list platform request =
  with_login platform request (fun account ->
      let pending =
        Invite.pending (invites_of platform) ~to_user:account.Account.user
      in
      let lines =
        List.map
          (fun (i : Invite.t) ->
            Printf.sprintf "%s: %s invites you to %s%s" i.Invite.invite_id
              i.Invite.from_user i.Invite.app
              (if i.Invite.suggest_write then " (with write access)" else ""))
          pending
      in
      Response.html
        (Html.page ~title:"invitations" (Html.ul (List.map Html.escape lines))))

let handle_invite_answer platform request ~accept =
  with_login platform request (fun account ->
      match Request.param request "id" with
      | None -> Response.bad_request "id required"
      | Some invite_id -> (
          let registry = invites_of platform in
          let result =
            if accept then
              Invite.accept registry platform ~invite_id
                ~to_user:account.Account.user
            else
              Invite.decline registry ~invite_id ~to_user:account.Account.user
          in
          match result with
          | Error e -> Response.bad_request e
          | Ok () ->
              Response.html
                (Html.page ~title:"invitation"
                   (Html.text (if accept then "accepted" else "declined")))))

let handle_source platform request =
  match Request.param request "app" with
  | None -> Response.bad_request "app required"
  | Some app -> (
      let version = Request.param request "version" in
      match
        App_registry.source_of (Platform.registry platform) ~id:app ?version ()
      with
      | None -> Response.not_found (app ^ " (not open source)")
      | Some text ->
          Response.html
            (Html.page ~title:("source of " ^ app)
               (Html.element "pre" (Html.text text))))

let handle_group_create platform request =
  with_login platform request (fun account ->
      match Request.param request "name" with
      | None -> Response.bad_request "name required"
      | Some name -> (
          match Group.create platform ~founder:account ~name with
          | Error e -> Response.bad_request e
          | Ok group ->
              Response.html
                (Html.page ~title:"group"
                   (Html.text ("created group " ^ Group.name group)))))

let handle_group_member platform request ~add =
  with_login platform request (fun account ->
      match (Request.param request "name", Request.param request "user") with
      | Some name, Some user -> (
          match Group.find platform ~name with
          | None -> Response.bad_request ("no such group: " ^ name)
          | Some group ->
              if Group.founder group <> account.Account.user then
                Response.forbidden "only the founder manages membership"
              else
                let result =
                  if add then Group.add_member platform group ~user
                  else Group.remove_member platform group ~user
                in
                (match result with
                | Error e -> Response.bad_request e
                | Ok () ->
                    Response.html
                      (Html.page ~title:"group"
                         (Html.text
                            (user ^ (if add then " added to " else " removed from ")
                            ^ name)))))
      | _ -> Response.bad_request "name and user required")

let handle_me platform request =
  with_login platform request (fun account ->
      let rows =
        List.map
          (fun (k, v) ->
            Html.element "b" (Html.text k) ^ ": "
            ^ Html.text (if v = "" then "(none)" else v))
          (Policy.summary account.Account.policy)
      in
      Response.html
        (Html.page
           ~title:("settings for " ^ account.Account.user)
           (Html.element "h1" (Html.text account.Account.user) ^ Html.ul rows)))

let handle_audit platform request =
  let int_param name =
    Option.bind (Request.param request name) int_of_string_opt
  in
  (* structured filters ride the indexed query path:
     /audit?pid=7&kind=flow_checked&from=10&to=99 *)
  let entries =
    Audit.query
      (Kernel.audit (Platform.kernel platform))
      ?pid:(int_param "pid")
      ?kind:(Request.param request "kind")
      ?seq_from:(int_param "from") ?seq_to:(int_param "to")
      ~denials_only:true ()
  in
  let lines =
    List.map (fun e -> Format.asprintf "%a" Audit.pp_entry e) entries
  in
  (* optional substring filter, e.g. /audit?filter=fs.write *)
  let lines =
    match Request.param request "filter" with
    | None -> lines
    | Some needle ->
        let contains hay =
          let hn = String.length hay and nn = String.length needle in
          let rec scan i =
            i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
          in
          nn = 0 || scan 0
        in
        List.filter contains lines
  in
  Response.html
    (Html.page ~title:"audit: recent denials"
       (Html.ul (List.map Html.escape lines)))

(* Per-client throttling applies to every application dispatch,
   whether reached by path or by vanity host. *)
let throttled platform ~viewer request =
  match Platform.rate_limit platform with
  | None -> false
  | Some limiter ->
      let key =
        match viewer with
        | Some (a : Account.t) -> "user:" ^ a.Account.user
        | None -> "client:" ^ request.Request.client
      in
      not
        (Rate_limit.allow limiter ~key
           ~now:(Kernel.tick (Platform.kernel platform)))

(* Routing resolves either to a provider front-end page (handled
   inline — these are trusted, cheap, and never spawn a process) or to
   an application dispatch, which the caller runs synchronously
   ({!handler}) or schedules ({!submit}/{!conclude}). Throttling and
   the enablement check happen here, so both paths share them. *)
type routed =
  | Page of Response.t
  | Dispatch of { app_id : string; version : string option }

let not_enabled_page app_id =
  (* One-click adoption: show the invitation instead of silently
     running code the user never chose. *)
  Response.html
    (Html.page ~title:"enable?"
       (Printf.sprintf
          "app %s is not enabled for you; POST /enable?app=%s to accept \
           the invitation"
          (Html.escape app_id) (Html.escape app_id)))

let route_to_app platform request ~viewer ~app_id =
  if throttled platform ~viewer request then
    Page (Response.too_many_requests "rate limit exceeded")
  else
    match viewer with
    | Some account when not (Policy.app_enabled account.Account.policy app_id)
      ->
        Page (not_enabled_page app_id)
    | Some _ | None ->
        Dispatch { app_id; version = Request.param request "version" }

let route_request platform request ~viewer ~dns_route =
  match dns_route with
  | Some app_id -> route_to_app platform request ~viewer ~app_id
  | None -> (
      match request.Request.uri.Uri.segments with
      | [] -> Page (home platform)
      | [ "signup" ] -> Page (handle_signup platform request)
      | [ "login" ] -> Page (handle_login platform request)
      | [ "logout" ] -> Page (handle_logout platform request)
      | [ "enable" ] -> Page (handle_enable platform request)
      | [ "invite" ] -> Page (handle_invite platform request)
      | [ "invites" ] -> Page (handle_invites_list platform request)
      | [ "invite_accept" ] ->
          Page (handle_invite_answer platform request ~accept:true)
      | [ "invite_decline" ] ->
          Page (handle_invite_answer platform request ~accept:false)
      | [ "settings" ] -> Page (handle_settings platform request)
      | [ "me" ] -> Page (handle_me platform request)
      | [ "group_create" ] -> Page (handle_group_create platform request)
      | [ "group_add" ] -> Page (handle_group_member platform request ~add:true)
      | [ "group_remove" ] ->
          Page (handle_group_member platform request ~add:false)
      | [ "source" ] -> Page (handle_source platform request)
      | [ "audit" ] -> Page (handle_audit platform request)
      | "app" :: dev :: name :: _rest ->
          route_to_app platform request ~viewer ~app_id:(dev ^ "/" ^ name)
      | _ -> Page (Response.not_found request.Request.uri.Uri.path))

(* The telemetry route label: the application id or the front-end page
   name — a closed set bounded by the registry, never a raw path (raw
   paths could smuggle user-chosen bytes into series names; the
   registry cardinality cap is the backstop). *)
let route_label request ~dns_route =
  match dns_route with
  | Some app_id -> "vhost:" ^ app_id
  | None -> (
      match request.Request.uri.Uri.segments with
      | [] -> "home"
      | "app" :: dev :: name :: _ -> "app:" ^ dev ^ "/" ^ name
      | segment :: _ -> segment)

(* Virtual hosts: a Host header naming a registered vanity host routes
   straight to its application, whatever the path. *)
let dns_route_of platform request =
  match (Platform.dns platform, Headers.get request.Request.headers "host")
  with
  | Some dns, Some host -> (
      match Dns.resolve dns ~host with
      | Some (Dns.App app_id) -> Some app_id
      | Some Dns.Front_end | Some (Dns.Cname _) | None -> None)
  | _ -> None

(* Request telemetry, shared by the synchronous handler and the
   scheduled conclude path: counter, latency histogram, SLO ledger.
   Route labels are a closed set (see [route_label]); [t0]/[t1] bound
   the request on the logical clock. *)
let record_request platform ~route ~t0 ~t1 response =
  let metrics = W5_os.Kernel.metrics (Platform.kernel platform) in
  let status = string_of_int (Response.status_code response.Response.status) in
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter metrics "w5_gateway_requests_total"
       ~help:"HTTP requests by route and status")
    ~labels:[ ("route", route); ("status", status) ];
  W5_obs.Metrics.observe
    (W5_obs.Perf.latency metrics "w5_gateway_request_ticks"
       ~help:"Logical ticks consumed per request, by route")
    ~labels:[ ("route", route) ]
    (t1 - t0);
  W5_obs.Health.Slo.observe (slo_of platform) ~route ~tick:t1
    ~status:(Response.status_code response.Response.status)

let handler platform request =
  let kernel = Platform.kernel platform in
  let tracer = W5_os.Kernel.tracer kernel in
  let viewer = viewer_of platform request in
  let dns_route = dns_route_of platform request in
  let route = route_label request ~dns_route in
  let t0 = Kernel.tick kernel in
  W5_obs.Tracer.start_span tracer ~tick:t0 ("gateway:" ^ route);
  let response =
    match
      (match route_request platform request ~viewer ~dns_route with
      | Page r -> r
      | Dispatch { app_id; version } ->
          dispatch_app platform ~viewer ~app_id ?version request)
    with
    | response -> response
    | exception exn ->
        W5_obs.Tracer.end_span tracer ~tick:(Kernel.tick kernel);
        raise exn
  in
  let status = string_of_int (Response.status_code response.Response.status) in
  W5_obs.Tracer.annotate tracer [ ("status", status) ];
  W5_obs.Tracer.end_span tracer ~tick:(Kernel.tick kernel);
  record_request platform ~route ~t0 ~t1:(Kernel.tick kernel) response;
  response

(* ---- scheduled admission: submit now, conclude after a drain ---- *)

type pending = {
  p_route : string;
  p_viewer : Account.t option;
  p_submit_tick : int;
  p_state : pending_state;
}

and pending_state =
  | Done of Response.t * int  (** finished at submit time, at this tick *)
  | In_flight of Proc.t

let submit platform request =
  let kernel = Platform.kernel platform in
  let viewer = viewer_of platform request in
  let dns_route = dns_route_of platform request in
  let route = route_label request ~dns_route in
  let t0 = Kernel.tick kernel in
  let state =
    match route_request platform request ~viewer ~dns_route with
    | Page r -> Done (r, Kernel.tick kernel)
    | Dispatch { app_id; version } -> (
        match spawn_app platform ~viewer ~app_id ?version request with
        | Error r -> Done (r, Kernel.tick kernel)
        | Ok proc -> In_flight proc)
  in
  { p_route = route; p_viewer = viewer; p_submit_tick = t0; p_state = state }

let in_flight pending =
  match pending.p_state with
  | In_flight proc -> Proc.is_alive proc
  | Done _ -> false

let conclude platform pending =
  let kernel = Platform.kernel platform in
  let tracer = W5_os.Kernel.tracer kernel in
  let response, t1 =
    match pending.p_state with
    | Done (r, t) -> (r, t)
    | In_flight proc ->
        (* normally the scheduler already drove it to completion; a
           conclude without a drain degrades to the synchronous path *)
        Kernel.run_proc kernel proc;
        let t1 =
          match proc.Proc.finished_tick with
          | Some t -> t
          | None -> Kernel.tick kernel
        in
        (conclude_app platform ~viewer:pending.p_viewer proc, t1)
  in
  (* One balanced span per request, emitted at conclusion with the
     submit→finish bounds: slices interleave, spans must not. *)
  if W5_obs.Tracer.enabled tracer then begin
    W5_obs.Tracer.start_span tracer ~tick:pending.p_submit_tick
      ~fields:
        [ ("status",
           string_of_int (Response.status_code response.Response.status)) ]
      ("gateway:" ^ pending.p_route);
    W5_obs.Tracer.end_span tracer ~tick:t1
  end;
  record_request platform ~route:pending.p_route ~t0:pending.p_submit_tick ~t1
    response;
  response
