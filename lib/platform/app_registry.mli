(** The application and module registry (§2 "Developers").

    Developers upload {e versions} of {e apps}. A version carries its
    handler (the server-side code), its source form — open source, or
    a closed binary that is "executable but not readable" — and its
    declared dependencies, which feed the code-search ranking
    ({!W5_rank}) and the paper's two dependency-edge kinds: library
    imports and embedded links to other apps.

    Any developer can {!fork} any app whose source is open: the fork
    gets its own id under the new developer, remembers its origin, and
    existing users can switch to it "by checking a box". *)

open W5_difc
open W5_os

(** What the gateway passes to a running application besides its
    kernel context.

    [module_for_slot] exposes the requesting user's module choices
    ("use developer A's photo cropping module"); [run_module] executes
    another registered module {e inline, in the caller's own process}
    — same labels, same quotas — and returns its response body. Inline
    execution is the IFC-sound analogue of linking a library: whatever
    the module reads taints the caller. *)
type env = {
  viewer : string option;  (** authenticated requesting user, if any *)
  request : W5_http.Request.t;
  self_id : string;        (** the app id being executed, e.g. ["devA/photos"] *)
  module_for_slot : string -> string option;
  run_module :
    Kernel.ctx -> module_id:string -> W5_http.Request.t ->
    (string, string) result;
}

type handler = Kernel.ctx -> env -> unit

type source =
  | Open_source of string  (** reviewable source text *)
  | Closed_binary          (** uploaded binary: executable, not readable *)

type version = {
  v : string;
  handler : handler;
  source : source;
  imports : string list;   (** app ids this version links against *)
  embeds : string list;    (** app ids whose URLs its HTML embeds *)
}

type app = {
  id : string;             (** ["<developer>/<name>"] *)
  dev : Principal.t;
  app_name : string;
  mutable versions : version list;  (** newest first *)
  forked_from : string option;
  mutable installs : int;  (** users who enabled it — popularity metric *)
}

type t

val create : unit -> t

val publish :
  t -> dev:Principal.t -> name:string -> version:string ->
  ?source:source -> ?imports:string list -> ?embeds:string list ->
  handler -> (app, string) result
(** Create the app on first publish, append a version on later ones.
    Fails if the same developer reuses a version string, or if [name]
    exists under this developer with another developer principal. *)

val fork :
  t -> new_dev:Principal.t -> from_id:string -> ?from_version:string ->
  name:string -> unit -> (app, string) result
(** Copy an open-source version into a new app owned by [new_dev]
    (version ["1.0-fork"]). Closed binaries cannot be forked. *)

val find : t -> string -> app option
val resolve : t -> id:string -> ?version:string -> unit -> (app * version) option
(** Latest version unless [version] is given. *)

val list_ids : t -> string list

val apps : t -> app list
(** Every registered app, sorted by id — the registry walk the static
    analyzer and the provider dashboard share. *)

val record_install : t -> string -> unit
val installs : t -> string -> int

val import_edges : t -> (string * string) list
(** [(importer, imported)] across latest versions. *)

val embed_edges : t -> (string * string) list

val source_of : t -> id:string -> ?version:string -> unit -> string option
(** The reviewable source text, if open source — what a user or editor
    audits. The platform guarantees the audited text is the code that
    runs (§2): both live in the same version record. *)
