(** The HTTP front-end (§2 "Providers"): DNS/HTTP face of the
    meta-application.

    The gateway authenticates the user from the session cookie,
    resolves the requested application, spawns a least-privilege
    process for it, runs it to completion, and pushes whatever it
    responded through the {!Perimeter}. Provider-written routes
    (signup, login, settings, the app directory, the audit viewer) are
    part of the trusted computing base; everything under [/app/…] is
    developer code behind the perimeter.

    Routes:
    - [GET /] — home page and app directory
    - [POST /signup] (user, pass), [POST /login], [GET /logout]
    - [POST /enable?app=ID] — one-click "accept an invitation"
    - [POST /invite?to=U&app=ID&write=on], [GET /invites],
      [POST /invite_accept?id=I], [POST /invite_decline?id=I]
    - [GET/POST /settings?…] — policy front-end (declassifier choice,
      write delegation, module choice, version pinning, JavaScript
      opt-in, read protection, integrity protection)
    - [GET /me] — the logged-in user's policy dashboard (data-free)
    - [POST /group_create?name=G], [POST /group_add?name=G&user=U],
      [POST /group_remove?name=G&user=U] — founder-managed circles
    - [GET /source?app=ID] — audit an open-source app's code
    - [GET /audit?filter=S] — the developer's data-free denial log
    - [ANY /app/<dev>/<name>[/…]] — dispatch to developer code
      ([?version=] or a pinned version selects older releases)

    When the platform has a DNS zone ({!Platform.enable_dns}), a
    [Host:] header naming a registered vanity host routes directly to
    its application regardless of the path. [/app/…] requests are
    token-bucket throttled per client when the provider configured
    {!Platform.set_rate_limit}. *)

open W5_http

val handler : Platform.t -> Request.t -> Response.t
(** The perimeter-facing server; plug directly into {!Client.make}. *)

val slo_of : Platform.t -> W5_obs.Health.Slo.t
(** This platform's per-route SLO/error-budget ledger. {!handler}
    feeds it on every request (route label and status code only —
    the same closed vocabulary as the request counters); [w5 health]
    renders it. Created on first use, default window/objective. *)

val dispatch_app :
  Platform.t -> viewer:Account.t option -> app_id:string ->
  ?version:string -> Request.t -> Response.t
(** The app-execution path by itself, for tests and the silo-baseline
    comparison. *)

(** {1 Scheduled admission}

    The concurrent-traffic face of the gateway: {!submit} performs
    admission — authentication, routing, throttling, vetting, process
    spawn — without running the application, so thousands of requests
    can be in flight before a {!W5_os.Sched} drain interleaves them;
    {!conclude} then reads each process's outcome and pushes it
    through the perimeter exactly as {!handler} would have. Provider
    front-end pages (trusted, cheap, no process) complete at submit
    time. Request metrics, latency (admission tick to the process's
    finish tick), SLO spend, and one balanced trace span per request
    are all recorded at conclusion. *)

type pending
(** An admitted request awaiting its outcome. *)

val submit : Platform.t -> Request.t -> pending

val in_flight : pending -> bool
(** Still waiting on a live process (false once concluded-at-submit,
    exited, or killed). *)

val conclude : Platform.t -> pending -> Response.t
(** Resolve the request. If its process somehow has not run yet (no
    drain happened), it is run synchronously first, so
    [submit |> conclude] without a scheduler equals {!handler}. *)
