open W5_difc
open W5_os

type env = {
  viewer : string option;
  request : W5_http.Request.t;
  self_id : string;
  module_for_slot : string -> string option;
  run_module :
    Kernel.ctx -> module_id:string -> W5_http.Request.t ->
    (string, string) result;
}

type handler = Kernel.ctx -> env -> unit

type source =
  | Open_source of string
  | Closed_binary

type version = {
  v : string;
  handler : handler;
  source : source;
  imports : string list;
  embeds : string list;
}

type app = {
  id : string;
  dev : Principal.t;
  app_name : string;
  mutable versions : version list;
  forked_from : string option;
  mutable installs : int;
}

type t = { apps : (string, app) Hashtbl.t }

let create () = { apps = Hashtbl.create 64 }
let app_id ~dev ~name = Principal.name dev ^ "/" ^ name

let publish t ~dev ~name ~version ?(source = Closed_binary) ?(imports = [])
    ?(embeds = []) handler =
  let id = app_id ~dev ~name in
  let v = { v = version; handler; source; imports; embeds } in
  match Hashtbl.find_opt t.apps id with
  | None ->
      let app =
        { id; dev; app_name = name; versions = [ v ]; forked_from = None; installs = 0 }
      in
      Hashtbl.replace t.apps id app;
      Ok app
  | Some app ->
      if not (Principal.equal app.dev dev) then
        Error (id ^ ": owned by another developer")
      else if List.exists (fun existing -> existing.v = version) app.versions
      then Error (id ^ ": version " ^ version ^ " already published")
      else begin
        app.versions <- v :: app.versions;
        Ok app
      end

let find t id = Hashtbl.find_opt t.apps id

let resolve t ~id ?version () =
  match Hashtbl.find_opt t.apps id with
  | None -> None
  | Some app -> (
      match version with
      | None -> (
          match app.versions with
          | [] -> None
          | latest :: _ -> Some (app, latest))
      | Some wanted ->
          Option.map
            (fun v -> (app, v))
            (List.find_opt (fun v -> v.v = wanted) app.versions))

let fork t ~new_dev ~from_id ?from_version ~name () =
  match resolve t ~id:from_id ?version:from_version () with
  | None -> Error (from_id ^ ": no such app/version")
  | Some (_, version) -> (
      match version.source with
      | Closed_binary -> Error (from_id ^ ": closed binary, cannot fork")
      | Open_source _ ->
          let id = app_id ~dev:new_dev ~name in
          if Hashtbl.mem t.apps id then Error (id ^ ": already exists")
          else begin
            let app =
              {
                id;
                dev = new_dev;
                app_name = name;
                versions = [ { version with v = "1.0-fork" } ];
                forked_from = Some from_id;
                installs = 0;
              }
            in
            Hashtbl.replace t.apps id app;
            Ok app
          end)

let list_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.apps [] |> List.sort String.compare

let apps t =
  Hashtbl.fold (fun _ app acc -> app :: acc) t.apps []
  |> List.sort (fun a b -> String.compare a.id b.id)

let record_install t id =
  match Hashtbl.find_opt t.apps id with
  | None -> ()
  | Some app -> app.installs <- app.installs + 1

let installs t id =
  match Hashtbl.find_opt t.apps id with None -> 0 | Some app -> app.installs

let latest_edges t project =
  Hashtbl.fold
    (fun id app acc ->
      match app.versions with
      | [] -> acc
      | latest :: _ -> List.map (fun target -> (id, target)) (project latest) @ acc)
    t.apps []
  |> List.sort compare

let import_edges t = latest_edges t (fun v -> v.imports)
let embed_edges t = latest_edges t (fun v -> v.embeds)

let source_of t ~id ?version () =
  match resolve t ~id ?version () with
  | Some (_, { source = Open_source text; _ }) -> Some text
  | Some (_, { source = Closed_binary; _ }) | None -> None
