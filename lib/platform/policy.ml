open W5_difc

type t = {
  mutable export_rules : (Tag.t * string) list;
  mutable enabled_apps : string list;
  mutable pinned : (string * string) list;
  mutable modules : (string * string) list;
  mutable write_delegates : string list;
  mutable read_grants : string list;
  mutable allow_js : bool;
  mutable require_vetted : bool;
}

let create () =
  {
    export_rules = [];
    enabled_apps = [];
    pinned = [];
    modules = [];
    write_delegates = [];
    read_grants = [];
    allow_js = false;
    require_vetted = false;
  }

let authorize_declassifier t ~tag ~gate =
  t.export_rules <-
    (tag, gate) :: List.filter (fun (tg, _) -> not (Tag.equal tg tag)) t.export_rules

let revoke_declassifier t ~tag =
  t.export_rules <- List.filter (fun (tg, _) -> not (Tag.equal tg tag)) t.export_rules

let declassifier_for t ~tag =
  List.find_map
    (fun (tg, gate) -> if Tag.equal tg tag then Some gate else None)
    t.export_rules

let export_rules t = t.export_rules

let add_unique item items = if List.mem item items then items else item :: items

let enable_app t app = t.enabled_apps <- add_unique app t.enabled_apps
let disable_app t app = t.enabled_apps <- List.filter (( <> ) app) t.enabled_apps
let app_enabled t app = List.mem app t.enabled_apps
let enabled_apps t = t.enabled_apps

let pin_version t ~app ~version =
  t.pinned <- (app, version) :: List.remove_assoc app t.pinned

let unpin_version t ~app = t.pinned <- List.remove_assoc app t.pinned
let pinned_version t ~app = List.assoc_opt app t.pinned

let choose_module t ~slot ~module_id =
  t.modules <- (slot, module_id) :: List.remove_assoc slot t.modules

let module_for t ~slot = List.assoc_opt slot t.modules

let delegate_write t app = t.write_delegates <- add_unique app t.write_delegates
let revoke_write t app = t.write_delegates <- List.filter (( <> ) app) t.write_delegates
let write_delegated t app = List.mem app t.write_delegates

let grant_read t app = t.read_grants <- add_unique app t.read_grants
let revoke_read t app = t.read_grants <- List.filter (( <> ) app) t.read_grants
let read_granted t app = List.mem app t.read_grants
let write_delegates t = List.sort compare t.write_delegates
let read_grants t = List.sort compare t.read_grants

let set_require_vetted t b = t.require_vetted <- b
let require_vetted t = t.require_vetted
let set_allow_javascript t b = t.allow_js <- b
let allow_javascript t = t.allow_js

let summary t =
  let join = String.concat ", " in
  [
    ("enabled apps", join (List.rev t.enabled_apps));
    ( "export rules",
      join
        (List.map
           (fun (tag, gate) -> Tag.name tag ^ " -> " ^ gate)
           t.export_rules) );
    ("write delegated to", join (List.rev t.write_delegates));
    ("read granted to", join (List.rev t.read_grants));
    ( "pinned versions",
      join (List.map (fun (app, v) -> app ^ "@" ^ v) t.pinned) );
    ( "module choices",
      join (List.map (fun (slot, m) -> slot ^ " -> " ^ m) t.modules) );
    ("javascript", (if t.allow_js then "allowed" else "stripped"));
    ("integrity protection", (if t.require_vetted then "on" else "off"));
  ]
