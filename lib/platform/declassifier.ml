open W5_difc
open W5_os
open W5_store

type logic =
  Kernel.ctx -> owner:string -> viewer:string option -> data:string ->
  string option

let gate_name ~owner ~name = "declass/" ^ owner ^ "/" ^ name

(* Wire format between the perimeter and a gate: a Record with
   [viewer] (empty string = anonymous) and [data]. *)
let encode_arg ~viewer ~data =
  Record.encode
    (Record.of_fields
       [ ("viewer", Option.value viewer ~default:""); ("data", data) ])

let decode_arg arg =
  match Record.decode arg with
  | Error _ -> None
  | Ok r ->
      let viewer =
        match Record.get_or r "viewer" ~default:"" with
        | "" -> None
        | v -> Some v
      in
      Some (viewer, Record.get_or r "data" ~default:"")

let owner_secrecy_tags (account : Account.t) =
  account.Account.secret_tag
  :: (match account.Account.read_tag with Some rt -> [ rt ] | None -> [])

let install platform ~account ~name logic =
  let owner = account.Account.user in
  let gate = gate_name ~owner ~name in
  (* The gate's whole privilege: declassify the owner's tags, absorb
     the owner's read-protected data. Nothing else. *)
  let caps =
    List.fold_left
      (fun caps tag ->
        Capability.Set.add
          (Capability.make tag Capability.Minus)
          (Capability.Set.add (Capability.make tag Capability.Plus) caps))
      Capability.Set.empty
      (owner_secrecy_tags account)
  in
  let entry ctx arg =
    match decode_arg arg with
    | None -> ()
    | Some (viewer, data) -> (
        match logic ctx ~owner ~viewer ~data with
        | None -> () (* refusal: no response at all *)
        | Some out ->
            List.iter
              (fun tag ->
                ignore (Syscall.declassify_self ctx ~context:gate tag))
              (owner_secrecy_tags account);
            ignore (Syscall.respond ctx out))
  in
  Kernel.register_gate (Platform.kernel platform) ~name:gate
    ~owner:account.Account.principal ~caps ~entry;
  gate

let install_and_authorize platform ~account ~name logic =
  let gate = install platform ~account ~name logic in
  List.iter
    (fun tag ->
      Policy.authorize_declassifier account.Account.policy ~tag ~gate)
    (owner_secrecy_tags account);
  gate

let everyone _ctx ~owner:_ ~viewer:_ ~data = Some data
let nobody _ctx ~owner:_ ~viewer:_ ~data:_ = None

let owner_only _ctx ~owner ~viewer ~data =
  match viewer with Some v when v = owner -> Some data | Some _ | None -> None

let friends_only ctx ~owner ~viewer ~data =
  match viewer with
  | None -> None
  | Some v when v = owner -> Some data
  | Some v -> (
      match
        Syscall.read_file_taint ctx ("/users/" ^ owner ^ "/friends")
      with
      | Error _ -> None
      | Ok raw -> (
          match Record.decode raw with
          | Error _ -> None
          | Ok r -> if List.mem v (Record.get_list r "friends") then Some data else None))

let group ~members _ctx ~owner:_ ~viewer ~data =
  match viewer with
  | Some v when List.mem v members -> Some data
  | Some _ | None -> None

let watermarked ~stamp inner ctx ~owner ~viewer ~data =
  Option.map (fun out -> out ^ stamp) (inner ctx ~owner ~viewer ~data)

(* ---- marked-span transformations ---- *)

let secret_open = "<span class=\"w5-secret\">"
let secret_close = "</span><!--/w5-secret-->"
let secret_span content = secret_open ^ content ^ secret_close

let find_sub haystack needle from =
  let hn = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > hn then None
    else if String.sub haystack i nn = needle then Some i
    else scan (i + 1)
  in
  scan from

let contains_secret_span data = find_sub data secret_open 0 <> None

let redact_spans ?(replacement = "\xe2\x96\x88\xe2\x96\x88\xe2\x96\x88") data =
  let buf = Buffer.create (String.length data) in
  let rec go pos =
    match find_sub data secret_open pos with
    | None -> Buffer.add_substring buf data pos (String.length data - pos)
    | Some start -> (
        Buffer.add_substring buf data pos (start - pos);
        Buffer.add_string buf replacement;
        match find_sub data secret_close (start + String.length secret_open) with
        | None -> () (* unterminated: drop the tail *)
        | Some close -> go (close + String.length secret_close))
  in
  go 0;
  Buffer.contents buf

let redacting ?replacement inner ctx ~owner ~viewer ~data =
  Option.map (redact_spans ?replacement) (inner ctx ~owner ~viewer ~data)

let require_no_secrets inner ctx ~owner ~viewer ~data =
  match inner ctx ~owner ~viewer ~data with
  | Some out when not (contains_secret_span out) -> Some out
  | Some _ | None -> None
