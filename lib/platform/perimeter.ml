open W5_difc
open W5_os

type refusal =
  | No_rule of Tag.t
  | Refused_by of { tag : Tag.t; gate : string }
  | Gate_failed of { tag : Tag.t; gate : string; error : string }
  | Unknown_tag of Tag.t

let pp_refusal fmt = function
  | No_rule tag ->
      Format.fprintf fmt "no declassifier authorized for %a" Tag.pp tag
  | Refused_by { tag; gate } ->
      Format.fprintf fmt "declassifier %s refused export of %a" gate Tag.pp tag
  | Gate_failed { tag; gate; error } ->
      Format.fprintf fmt "declassifier %s failed on %a: %s" gate Tag.pp tag
        error
  | Unknown_tag tag -> Format.fprintf fmt "unowned tag %a" Tag.pp tag

let refusal_to_string r = Format.asprintf "%a" pp_refusal r

let viewer_owns viewer tag =
  match viewer with
  | Some account -> Account.owns_tag account tag
  | None -> false

let foreign_tags ~viewer (labels : Flow.labels) =
  Label.filter (fun t -> not (viewer_owns viewer t)) labels.Flow.secrecy

(* Ask [gate] to clear [tag] from the payload: run it from a transient
   perimeter process carrying the payload's current labels, so the
   gate (which inherits the caller's labels) sees exactly the taint it
   must clear. *)
let clear_tag platform ~viewer ~tag ~gate (data, labels) =
  let viewer_name =
    Option.map (fun (a : Account.t) -> a.Account.user) viewer
  in
  let arg = Declassifier.encode_arg ~viewer:viewer_name ~data in
  let invoked =
    Platform.with_ctx platform ~name:("perimeter:" ^ Tag.name tag) ~labels
      (fun ctx ->
        match Kernel.invoke_gate (Platform.kernel platform)
                ~caller:ctx.Kernel.proc ~name:gate ~arg
        with
        | Error _ as e -> e
        | Ok child -> Ok child.Proc.response)
  in
  match invoked with
  | Error e ->
      Error (Gate_failed { tag; gate; error = Os_error.to_string e })
  | Ok None -> Error (Refused_by { tag; gate })
  | Ok (Some (out, out_labels)) ->
      if Label.mem tag out_labels.Flow.secrecy then
        Error (Refused_by { tag; gate })
      else Ok (out, out_labels)

let export platform ?(source = 0) ~viewer ~data ~labels () =
  let kernel = Platform.kernel platform in
  let destination =
    match viewer with
    | Some (a : Account.t) -> a.Account.user ^ "'s browser"
    | None -> "anonymous client"
  in
  let t0 = Kernel.tick kernel in
  let finish decision =
    let verdict = match decision with Ok () -> "allow" | Error _ -> "deny" in
    W5_obs.Metrics.inc
      (W5_obs.Metrics.counter
         (Kernel.metrics kernel)
         "w5_exports_total"
         ~help:"Perimeter export attempts by decision")
      ~labels:[ ("decision", verdict) ];
    (* Export latency in logical ticks: declassifier gate invocations
       drive the clock, so a deny after three gate hops is visibly
       slower than a clean allow. *)
    W5_obs.Metrics.observe
      (W5_obs.Perf.latency
         (Kernel.metrics kernel)
         "w5_perimeter_export_ticks"
         ~help:"Logical ticks consumed per perimeter export check, by decision")
      ~labels:[ ("decision", verdict) ]
      (Kernel.tick kernel - t0);
    W5_obs.Tracer.event (Kernel.tracer kernel) ~tick:(Kernel.tick kernel)
      ~fields:
        [
          ("decision", verdict);
          ("secrecy", string_of_int (Label.cardinal labels.Flow.secrecy));
        ]
      "perimeter.export";
    Kernel.record kernel ~pid:source
      (Audit.Export_attempted { destination; labels; decision })
  in
  let rec clear_all (data, current_labels) budget =
    match Label.choose_opt (foreign_tags ~viewer current_labels) with
    | None -> Ok data
    | Some _ when budget = 0 ->
        (* Defensive: a misbehaving gate that keeps adding tags must
           not loop the perimeter forever. *)
        Error
          (Gate_failed
             {
               tag = Option.get (Label.choose_opt current_labels.Flow.secrecy);
               gate = "?";
               error = "perimeter iteration budget exhausted";
             })
    | Some tag -> (
        match Platform.owner_of_tag platform tag with
        | None -> Error (Unknown_tag tag)
        | Some owner -> (
            match
              Policy.declassifier_for owner.Account.policy ~tag
            with
            | None -> Error (No_rule tag)
            | Some gate -> (
                match
                  clear_tag platform ~viewer ~tag ~gate (data, current_labels)
                with
                | Error _ as e -> e
                | Ok next -> clear_all next (budget - 1))))
  in
  let budget = (2 * Label.cardinal labels.Flow.secrecy) + 4 in
  match clear_all (data, labels) budget with
  | Ok out ->
      finish (Ok ());
      Ok out
  | Error refusal ->
      finish (Error (Flow.Secrecy_violation (foreign_tags ~viewer labels)));
      Error refusal
