(** Shared groups: data owned by a circle rather than one user.

    A group mints its own {e restricted} secrecy tag. Restriction
    (§3.1 read protection) means non-members cannot even taint-read
    group content; members receive the [t+] capability when they join
    (the gateway adds it to their app processes via
    {!Platform.app_caps_for}'s read sweep — see {!member_caps}).
    Export goes through the group's own declassifier, which releases
    group-tainted pages to current members only.

    The group tag's policy lives on the {e founder's} account (the
    perimeter resolves tag → owner → policy), so the founder's policy
    object carries the group's export rule; membership changes take
    effect immediately because the declassifier re-reads the member
    list on every export. *)

open W5_difc

type t

val create :
  Platform.t -> founder:Account.t -> name:string -> (t, string) result
(** Mint the group tag (restricted), create [/groups/<name>/] labeled
    with it, install the members-only declassifier and point the
    founder's export rule for the tag at it. The founder is the first
    member. Fails if the name is taken. *)

val find : Platform.t -> name:string -> t option

val all : Platform.t -> t list
(** Every group on this platform, sorted by name. *)

val name : t -> string
val tag : t -> Tag.t
val founder : t -> string
val members : t -> string list
val is_member : t -> user:string -> bool
val dir : t -> string
(** ["/groups/<name>"]. *)

val add_member : Platform.t -> t -> user:string -> (unit, string) result
(** Only meaningful names (existing accounts); idempotent. *)

val remove_member : Platform.t -> t -> user:string -> (unit, string) result
(** The founder cannot be removed. Departed members lose both the
    read capability and the declassifier's blessing at once. *)

val member_caps : Platform.t -> user:string -> Capability.Set.t
(** The [t+] capabilities for every group [user] belongs to — folded
    into app processes by the gateway. *)

val post :
  Platform.t -> t -> author:Account.t -> id:string -> body:string ->
  (unit, W5_os.Os_error.t) result
(** Write a post into the group directory under the group's label
    (author must be a member). *)

val read_posts :
  Platform.t -> t -> reader:Account.t -> ((string * string) list, W5_os.Os_error.t) result
(** All posts, oldest id first, read with the reader's membership
    capability; denied for non-members at the read itself. *)
