open W5_os

type app_stats = {
  app_id : string;
  installs : int;
  denials : int;
  quota_kills : int;
}

type report = {
  users : int;
  apps : int;
  requests_served : int;
  live_processes : int;
  total_processes_spawned : int;
  audit_entries : int;
  total_denials : int;
  export_denials : int;
  sessions_active : int;
  files : int;
  per_app : app_stats list;
}

let collect platform =
  let kernel = Platform.kernel platform in
  let registry = Platform.registry platform in
  let log = Kernel.audit kernel in
  (* map still-live pids to the app that owns them: app processes are
     named by their app id at spawn *)
  let pid_app = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if App_registry.find registry p.Proc.proc_name <> None then
        Hashtbl.replace pid_app p.Proc.pid p.Proc.proc_name)
    (Kernel.processes kernel);
  let denials_by_app = Hashtbl.create 16 in
  let kills_by_app = Hashtbl.create 16 in
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value (Hashtbl.find_opt table key) ~default:0)
  in
  let total_denials = ref 0 and export_denials = ref 0 in
  let total_spawned = ref 0 in
  (* Audit.iter walks oldest-first without materializing the entry
     list — the log can hold tens of thousands of records. *)
  Audit.iter log
    ~f:(fun (entry : Audit.entry) ->
      match entry.Audit.event with
      | Audit.Spawned _ -> incr total_spawned
      | Audit.Flow_checked { decision = Error _; _ }
      | Audit.Label_changed { decision = Error _; _ } -> (
          incr total_denials;
          match Hashtbl.find_opt pid_app entry.Audit.pid with
          | Some app -> bump denials_by_app app
          | None -> ())
      | Audit.Export_attempted { decision = Error _; _ } ->
          incr total_denials;
          incr export_denials
      | Audit.Quota_hit _ -> (
          match Hashtbl.find_opt pid_app entry.Audit.pid with
          | Some app -> bump kills_by_app app
          | None -> ())
      | Audit.Flow_checked _ | Audit.Label_changed _
      | Audit.Export_attempted _ | Audit.Declassified _ | Audit.Tainted _
      | Audit.Object_labeled _ | Audit.Sync_applied _ | Audit.Sync_fault _
      | Audit.Sync_recovered _ | Audit.Gate_invoked _
      | Audit.Killed _ | Audit.App_note _ ->
          ());
  let per_app =
    List.map
      (fun app_id ->
        {
          app_id;
          installs = App_registry.installs registry app_id;
          denials =
            Option.value (Hashtbl.find_opt denials_by_app app_id) ~default:0;
          quota_kills =
            Option.value (Hashtbl.find_opt kills_by_app app_id) ~default:0;
        })
      (App_registry.list_ids registry)
    |> List.sort (fun a b ->
           match Int.compare b.denials a.denials with
           | 0 -> String.compare a.app_id b.app_id
           | c -> c)
  in
  {
    users = List.length (Platform.accounts platform);
    apps = List.length (App_registry.list_ids registry);
    requests_served = Platform.requests_served platform;
    live_processes = Kernel.live_process_count kernel;
    total_processes_spawned = !total_spawned;
    audit_entries = Audit.length log;
    total_denials = !total_denials;
    export_denials = !export_denials;
    sessions_active = W5_http.Session.active (Platform.sessions platform);
    files = Fs.total_files (Kernel.fs kernel);
    per_app;
  }

let render report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "W5 provider report";
  line "------------------";
  line "users: %d  apps: %d  active sessions: %d" report.users report.apps
    report.sessions_active;
  line "requests served: %d  processes: %d live / %d spawned"
    report.requests_served report.live_processes report.total_processes_spawned;
  line "filesystem nodes: %d  audit entries: %d" report.files
    report.audit_entries;
  line "denials: %d total (%d at the perimeter)" report.total_denials
    report.export_denials;
  line "";
  line "%-24s %9s %8s %6s" "app" "installs" "denials" "kills";
  List.iter
    (fun s ->
      line "%-24s %9d %8d %6d" s.app_id s.installs s.denials s.quota_kills)
    report.per_app;
  Buffer.contents buf

let suspicious_apps ?(threshold = 3) report =
  List.filter_map
    (fun s -> if s.denials >= threshold then Some s.app_id else None)
    report.per_app
