module SS = Set.Make (String)

type t = {
  succ : (string, SS.t) Hashtbl.t;
  pred : (string, SS.t) Hashtbl.t;
}

let create () = { succ = Hashtbl.create 64; pred = Hashtbl.create 64 }

let find tbl node = Option.value (Hashtbl.find_opt tbl node) ~default:SS.empty

let add_node t node =
  if not (Hashtbl.mem t.succ node) then begin
    Hashtbl.replace t.succ node SS.empty;
    Hashtbl.replace t.pred node SS.empty
  end

let add_edge t ~src ~dst =
  add_node t src;
  add_node t dst;
  Hashtbl.replace t.succ src (SS.add dst (find t.succ src));
  Hashtbl.replace t.pred dst (SS.add src (find t.pred dst))

let nodes t =
  Hashtbl.fold (fun node _ acc -> node :: acc) t.succ []
  |> List.sort String.compare

let node_count t = Hashtbl.length t.succ

let edge_count t =
  Hashtbl.fold (fun _ s acc -> acc + SS.cardinal s) t.succ 0

let remove_node t node =
  Hashtbl.remove t.succ node;
  Hashtbl.remove t.pred node

let successors t node = SS.elements (find t.succ node)
let predecessors t node = SS.elements (find t.pred node)
let out_degree t node = SS.cardinal (find t.succ node)
let in_degree t node = SS.cardinal (find t.pred node)
let mem t node = Hashtbl.mem t.succ node

let of_edges edges =
  let t = create () in
  List.iter (fun (src, dst) -> add_edge t ~src ~dst) edges;
  t

let union a b =
  let t = create () in
  let copy g =
    List.iter
      (fun node ->
        add_node t node;
        List.iter (fun dst -> add_edge t ~src:node ~dst) (successors g node))
      (nodes g)
  in
  copy a;
  copy b;
  t
