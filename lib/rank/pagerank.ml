type scores = (string * float) list

let run ?(damping = 0.85) ?(epsilon = 1e-10) ?(max_iterations = 100) graph =
  let nodes = Array.of_list (Depgraph.nodes graph) in
  let n = Array.length nodes in
  if n = 0 then ([||], [||], 0)
  else begin
    let index = Hashtbl.create n in
    Array.iteri (fun i node -> Hashtbl.replace index node i) nodes;
    let succs =
      Array.map
        (fun node ->
          (* A link may point at an id absent from the node set (a
             dangling endpoint); drop it rather than crash, matching
             [score_of]'s lenient default for unknown nodes. *)
          Depgraph.successors graph node
          |> List.filter_map (fun s -> Hashtbl.find_opt index s)
          |> Array.of_list)
        nodes
    in
    let rank = Array.make n (1.0 /. float_of_int n) in
    let next = Array.make n 0.0 in
    let iterations = ref 0 in
    let rec iterate remaining =
      if remaining = 0 then ()
      else begin
        incr iterations;
        Array.fill next 0 n 0.0;
        (* Dangling mass is shared uniformly. *)
        let dangling = ref 0.0 in
        Array.iteri
          (fun i out ->
            if Array.length out = 0 then dangling := !dangling +. rank.(i)
            else
              let share = rank.(i) /. float_of_int (Array.length out) in
              Array.iter (fun j -> next.(j) <- next.(j) +. share) out)
          succs;
        let base =
          ((1.0 -. damping) +. (damping *. !dangling)) /. float_of_int n
        in
        let delta = ref 0.0 in
        for i = 0 to n - 1 do
          let v = base +. (damping *. next.(i)) in
          delta := !delta +. abs_float (v -. rank.(i));
          next.(i) <- v
        done;
        Array.blit next 0 rank 0 n;
        if !delta > epsilon then iterate (remaining - 1)
      end
    in
    iterate max_iterations;
    (nodes, rank, !iterations)
  end

let compute ?damping ?epsilon ?max_iterations graph =
  let nodes, rank, _ = run ?damping ?epsilon ?max_iterations graph in
  let pairs = Array.to_list (Array.mapi (fun i node -> (node, rank.(i))) nodes) in
  List.sort
    (fun (n1, s1) (n2, s2) ->
      match Float.compare s2 s1 with
      | 0 -> String.compare n1 n2
      | c -> c)
    pairs

let score_of scores node =
  Option.value (List.assoc_opt node scores) ~default:0.0

let iterations_to_converge ?damping ?epsilon graph =
  let _, _, iterations = run ?damping ?epsilon ~max_iterations:10_000 graph in
  iterations
