type scores = {
  authority : (string * float) list;
  hub : (string * float) list;
}

let compute ?(epsilon = 1e-10) ?(max_iterations = 100) graph =
  let nodes = Array.of_list (Depgraph.nodes graph) in
  let n = Array.length nodes in
  if n = 0 then { authority = []; hub = [] }
  else begin
    let index = Hashtbl.create n in
    Array.iteri (fun i node -> Hashtbl.replace index node i) nodes;
    let succs =
      Array.map
        (fun node ->
          (* Drop dangling endpoints instead of raising, as in
             [authority_of]/[hub_of]'s lenient default. *)
          Depgraph.successors graph node
          |> List.filter_map (fun s -> Hashtbl.find_opt index s)
          |> Array.of_list)
        nodes
    in
    let auth = Array.make n 1.0 and hub = Array.make n 1.0 in
    let next_auth = Array.make n 0.0 and next_hub = Array.make n 0.0 in
    let normalize v =
      let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
      if norm > 0.0 then Array.iteri (fun i x -> v.(i) <- x /. norm) v
    in
    let rec iterate remaining =
      if remaining = 0 then ()
      else begin
        Array.fill next_auth 0 n 0.0;
        Array.fill next_hub 0 n 0.0;
        (* authority: sum of hub scores of importers; hub: sum of
           authority scores of imports *)
        Array.iteri
          (fun i out ->
            Array.iter
              (fun j ->
                next_auth.(j) <- next_auth.(j) +. hub.(i);
                next_hub.(i) <- next_hub.(i) +. auth.(j))
              out)
          succs;
        normalize next_auth;
        normalize next_hub;
        let delta =
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. abs_float (next_auth.(i) -. auth.(i));
            acc := !acc +. abs_float (next_hub.(i) -. hub.(i))
          done;
          !acc
        in
        Array.blit next_auth 0 auth 0 n;
        Array.blit next_hub 0 hub 0 n;
        if delta > epsilon then iterate (remaining - 1)
      end
    in
    iterate max_iterations;
    let ranked values =
      Array.to_list (Array.mapi (fun i node -> (node, values.(i))) nodes)
      |> List.sort (fun (n1, s1) (n2, s2) ->
             match Float.compare s2 s1 with
             | 0 -> String.compare n1 n2
             | c -> c)
    in
    { authority = ranked auth; hub = ranked hub }
  end

let authority_of scores node =
  Option.value (List.assoc_opt node scores.authority) ~default:0.0

let hub_of scores node = Option.value (List.assoc_opt node scores.hub) ~default:0.0
