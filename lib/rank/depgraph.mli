(** Directed dependency graphs over module identifiers.

    §3.2: "code fragment A can depend on code fragment B in two ways"
    — importing it as a library, or embedding a URL that invokes it.
    Both kinds collapse to edges here; {!Pagerank} does not care. *)

type t

val create : unit -> t
val add_node : t -> string -> unit
val add_edge : t -> src:string -> dst:string -> unit
(** Idempotent; adds both endpoints as nodes. Self-loops are kept. *)

val nodes : t -> string list
(** Sorted. *)

val node_count : t -> int
val edge_count : t -> int
val successors : t -> string -> string list
val predecessors : t -> string -> string list
val out_degree : t -> string -> int
val in_degree : t -> string -> int
val mem : t -> string -> bool

val remove_node : t -> string -> unit
(** Drop [node] from the node set and forget its own adjacency rows.
    O(1): references to [node] inside {e other} nodes' successor and
    predecessor sets are left dangling — the situation of a link graph
    whose target was deleted after its inbound links were recorded.
    {!Pagerank} and {!Hits} drop dangling endpoints; {!successors} may
    still return them. *)

val of_edges : (string * string) list -> t

val union : t -> t -> t
(** A fresh graph with the nodes and edges of both. *)
