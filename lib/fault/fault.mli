(** Deterministic fault injection for federation (the "unreliable
    network between providers" the paper's multi-provider story — §4,
    users re-homing data across competing providers — has to survive).

    A {!t} is a finite, seeded schedule of faults. Code with an
    injection point calls {!consult} with a structural site name
    (operation + file); the plan answers with the fault to simulate at
    this step, if any. Every plan is finite — after {!exhausted}
    becomes true the system under test runs fault-free, which is what
    makes "eventually converges" a provable property rather than a
    hope.

    Determinism: a plan is a pure function of its constructor
    arguments. It draws from a private generator ({!of_seed}), never
    from [Stdlib.Random] or the wall clock, so a failing schedule
    replays byte-for-byte from its seed ([w5 sync --faults SEED]).

    The consumers are the federation layer's injection points:
    [Sync.sync] (message loss, duplication, delays, provider crashes
    around the apply step), [Migrate.import_bundle]/[export_bundle]
    and [Peer.link_user]. *)

type action =
  | Drop  (** the message (export request or apply) is lost; the
              caller retries with backoff *)
  | Delay of int  (** delivery is late by this many logical ticks;
                      counts against the per-link round budget *)
  | Duplicate  (** the apply is delivered twice — the second delivery
                   must be a no-op (idempotence keyed on content and
                   {!Vector_clock}s) *)
  | Crash_before_apply
      (** the receiving provider dies after persisting the write-ahead
          intent but before applying the write *)
  | Crash_after_apply
      (** the receiving provider dies after applying the write but
          before acknowledging it (intent not yet cleared) *)

exception Crashed of string
(** Raised at an injection point to simulate the provider process
    dying mid-operation. Federation entry points catch it at their
    boundary and surface an error; in-flight state is recovered from
    the write-ahead intent on the next run. *)

val action_name : action -> string
(** ["drop"], ["delay"], ["duplicate"], ["crash_before_apply"],
    ["crash_after_apply"] — the audit/metrics vocabulary. *)

val pp_action : Format.formatter -> action -> unit

type t

val none : unit -> t
(** The empty plan: never faults. (A function — plans count their
    consultation steps, so each link gets its own.) *)

val scripted : ?label:string -> (int * action) list -> t
(** Exact placement for unit tests: fire [action] at the given
    consultation step (0-based). Steps already passed fire at the next
    consultation rather than being skipped. *)

val of_seed :
  ?drops:int -> ?delays:int -> ?duplicates:int -> ?crashes:int ->
  seed:int -> unit -> t
(** A finite random schedule: the requested number of each fault kind
    placed at distinct steps within a horizon proportional to the
    fault count. Defaults: 4 drops, 2 delays, 1 duplicate, 1 crash. *)

val consult : t -> op:string -> file:string -> action option
(** One injection point consultation. Advances the plan's step counter
    and pops the scheduled fault for this step, if any. [op]/[file]
    are recorded for {!fired} — they are structural names, never user
    bytes. *)

val pending : t -> int
(** Faults not yet fired. *)

val exhausted : t -> bool
(** [pending t = 0]: from here on the plan is a no-op. *)

val steps_taken : t -> int
(** How many injection points have consulted this plan. *)

val describe : t -> string
(** The constructor parameters, e.g. ["seed=7 drops=4 ..."] — printed
    by [w5 sync --faults] so a run names its own reproduction. *)

val fired : t -> (int * string * action) list
(** Faults already injected, oldest first: (step, site, action). *)

val schedule : t -> (int * action) list
(** The faults still to come, ascending by step. Exposed so tests can
    assert plan determinism (same seed, same schedule). *)

val render_fired : t -> string
(** {!fired} as indented lines for CLI output. *)
