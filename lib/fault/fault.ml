type action =
  | Drop
  | Delay of int
  | Duplicate
  | Crash_before_apply
  | Crash_after_apply

exception Crashed of string

let action_name = function
  | Drop -> "drop"
  | Delay _ -> "delay"
  | Duplicate -> "duplicate"
  | Crash_before_apply -> "crash_before_apply"
  | Crash_after_apply -> "crash_after_apply"

let pp_action fmt = function
  | Delay n -> Format.fprintf fmt "delay(%d)" n
  | a -> Format.pp_print_string fmt (action_name a)

type t = {
  mutable schedule : (int * action) list;  (* ascending injection steps *)
  mutable step : int;
  mutable fired : (int * string * action) list;  (* newest first *)
  descr : string;
}

let none () = { schedule = []; step = 0; fired = []; descr = "none" }

let scripted ?(label = "scripted") entries =
  let schedule = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  { schedule; step = 0; fired = []; descr = label }

(* A private LCG so plans are deterministic regardless of any use of
   Stdlib.Random elsewhere in the process. 30-bit state; plenty for
   schedule placement. *)
let make_rng seed =
  let state = ref (((abs seed * 2) + 1) land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

let of_seed ?(drops = 4) ?(delays = 2) ?(duplicates = 1) ?(crashes = 1) ~seed
    () =
  let rng = make_rng seed in
  let actions =
    List.concat
      [
        List.init (max 0 drops) (fun _ -> Drop);
        List.init (max 0 delays) (fun _ -> Delay (1 + rng 4));
        List.init (max 0 duplicates) (fun _ -> Duplicate);
        List.init (max 0 crashes) (fun _ ->
            if rng 2 = 0 then Crash_before_apply else Crash_after_apply);
      ]
  in
  let total = List.length actions in
  let horizon = max 8 (total * 5) in
  (* distinct injection steps, then a random pairing of steps to
     actions: both draws come from the seeded generator only *)
  let steps = Hashtbl.create total in
  let rec draw () =
    let s = rng horizon in
    if Hashtbl.mem steps s then draw ()
    else begin
      Hashtbl.add steps s ();
      s
    end
  in
  let placed = List.map (fun action -> (draw (), action)) actions in
  let schedule = List.sort (fun (a, _) (b, _) -> compare a b) placed in
  {
    schedule;
    step = 0;
    fired = [];
    descr =
      Printf.sprintf "seed=%d drops=%d delays=%d duplicates=%d crashes=%d"
        seed drops delays duplicates crashes;
  }

let consult t ~op ~file =
  let step = t.step in
  t.step <- step + 1;
  match t.schedule with
  | (s, action) :: rest when s <= step ->
      t.schedule <- rest;
      t.fired <- (step, op ^ ":" ^ file, action) :: t.fired;
      Some action
  | _ -> None

let pending t = List.length t.schedule
let exhausted t = t.schedule = []
let steps_taken t = t.step
let describe t = t.descr

let fired t = List.rev t.fired

let schedule t = t.schedule

let render_fired t =
  String.concat "\n"
    (List.map
       (fun (step, site, action) ->
         Format.asprintf "  step %-4d %-32s %a" step site pp_action action)
       (fired t))
