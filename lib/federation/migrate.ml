open W5_difc
open W5_os
open W5_platform
module Fault = W5_fault.Fault

type entry = {
  rel_path : string;
  content : string;
}

type bundle = entry list

(* Reuse the sync agent's privilege model: the user's own grants. *)
let transfer_caps (account : Account.t) =
  let tags =
    account.Account.secret_tag
    :: (match account.Account.read_tag with Some rt -> [ rt ] | None -> [])
  in
  List.fold_left
    (fun caps tag ->
      let caps =
        if Capability.Set.can_drop tag account.Account.caps then
          Capability.Set.add (Capability.make tag Capability.Minus) caps
        else caps
      in
      if Capability.Set.can_add tag account.Account.caps then
        Capability.Set.add (Capability.make tag Capability.Plus) caps
      else caps)
    Capability.Set.empty tags

(* Consult [faults] at [op]:[file] outside any syscall context (a
   crash must surface as an error to the caller, not be swallowed by
   with_ctx): Drop retries [attempt] up to 3 times, a crash aborts,
   delays and duplicates fall through to the idempotent operation. *)
let rec faulty ?faults ~op ~file attempt =
  match faults with
  | None -> Ok ()
  | Some plan -> (
      match Fault.consult plan ~op ~file with
      | None | Some (Fault.Delay _) | Some Fault.Duplicate -> Ok ()
      | Some Fault.Drop when attempt < 3 -> faulty ?faults ~op ~file (attempt + 1)
      | Some Fault.Drop -> Error (Os_error.Invalid (op ^ " " ^ file ^ ": lost"))
      | Some (Fault.Crash_before_apply | Fault.Crash_after_apply) ->
          Error (Os_error.Invalid ("crash: " ^ op ^ " " ^ file)))

let export_bundle ?faults platform (account : Account.t) =
  match faulty ?faults ~op:"migrate.export" ~file:account.Account.user 1 with
  | Error _ as e -> e
  | Ok () ->
  let home = Platform.user_dir account.Account.user in
  Platform.with_ctx platform
    ~name:("migrate.export:" ^ account.Account.user)
    ~caps:(transfer_caps account)
    (fun ctx ->
      let declassify_all () =
        List.iter
          (fun tag ->
            ignore
              (Syscall.declassify_self ctx ~context:"federation.migrate" tag))
          (account.Account.secret_tag
          :: (match account.Account.read_tag with Some rt -> [ rt ] | None -> []))
      in
      let rec walk path acc =
        match acc with
        | Error _ as e -> e
        | Ok entries -> (
            match Syscall.stat ctx path with
            | Error _ as e -> e
            | Ok st -> (
                match st.Fs.kind with
                | Fs.Regular -> (
                    match Syscall.read_file_taint ctx path with
                    | Error _ as e -> e
                    | Ok content ->
                        (* shed the taint now; if the grants cannot
                           clear it the residue check below aborts *)
                        declassify_all ();
                        let residue = (Syscall.my_labels ctx).Flow.secrecy in
                        if not (Label.is_empty residue) then
                          Error
                            (Os_error.Denied (Flow.Secrecy_violation residue))
                        else
                          let rel =
                            String.sub path
                              (String.length home + 1)
                              (String.length path - String.length home - 1)
                          in
                          Ok ({ rel_path = rel; content } :: entries))
                | Fs.Directory -> (
                    (* stay tainted through the listing (strict
                       readdir needs it); files declassify on exit *)
                    match Syscall.add_taint ctx st.Fs.labels.Flow.secrecy with
                    | Error _ as e -> e
                    | Ok () -> (
                        match Syscall.readdir ctx path with
                        | Error _ as e -> e
                        | Ok names ->
                            List.fold_left
                              (fun acc name -> walk (path ^ "/" ^ name) acc)
                              (Ok entries) names))))
      in
      Result.map
        (fun entries ->
          List.sort (fun a b -> String.compare a.rel_path b.rel_path) entries)
        (walk home (Ok [])))

let import_bundle ?faults platform (account : Account.t) bundle =
  let written = ref 0 in
  let rec ensure_dirs rel =
    match String.rindex_opt rel '/' with
    | None -> Ok ()
    | Some i -> (
        let dir = String.sub rel 0 i in
        match ensure_dirs dir with
        | Error _ as e -> e
        | Ok () -> (
            match Platform.user_mkdir platform account ~dir with
            | Ok () | Error (Os_error.Already_exists _) -> Ok ()
            | Error _ as e -> e))
  in
  let import_one acc { rel_path; content } =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
        (* per-entry delivery: a crash mid-bundle leaves a partial
           import; a rerun overwrites idempotently and completes it *)
        match faulty ?faults ~op:"migrate.import" ~file:rel_path 1 with
        | Error _ as e -> e
        | Ok () ->
        match ensure_dirs rel_path with
        | Error _ as e -> e
        | Ok () -> (
            let result =
              Platform.with_ctx platform
                ~name:("migrate.import:" ^ rel_path)
                ~owner:account.Account.principal
                ~labels:
                  (Flow.make
                     ~integrity:(Label.singleton account.Account.write_tag)
                     ())
                ~caps:account.Account.caps
                (fun ctx ->
                  let path = Platform.user_file account.Account.user rel_path in
                  if Syscall.file_exists ctx path then
                    Syscall.write_file ctx path ~data:content
                  else
                    Syscall.create_file ctx path
                      ~labels:(Account.data_labels account)
                      ~data:content)
            in
            match result with
            | Error _ as e -> e
            | Ok () ->
                (* import writes bypass Obj_store; invalidate any
                   store index over the written path *)
                W5_store.Index.note_external_write
                  (Platform.kernel platform)
                  ~path:(Platform.user_file account.Account.user rel_path);
                incr written;
                Ok ()))
  in
  Result.map (fun () -> !written) (List.fold_left import_one (Ok ()) bundle)

let migrate_account ?faults ~from_platform ~from_account ~to_platform
    ~to_account () =
  let kf = Platform.kernel from_platform in
  let tracer_from = W5_os.Kernel.tracer kf in
  let clock_from () = W5_os.Kernel.tick kf in
  W5_obs.Tracer.with_span tracer_from ~clock:clock_from
    ~fields:[ ("user", from_account.Account.user) ]
    "migrate.account"
    (fun () ->
      match
        W5_obs.Tracer.with_span tracer_from ~clock:clock_from "migrate.export"
          (fun () -> export_bundle ?faults from_platform from_account)
      with
      | Error _ as e -> e
      | Ok bundle -> (
          let import () = import_bundle ?faults to_platform to_account bundle in
          (* the import runs on the destination provider's kernel; the
             carried context keeps both halves one trace *)
          let kt = Platform.kernel to_platform in
          let origin = Principal.name (Platform.provider from_platform) in
          match
            W5_obs.Tracer.context tracer_from ~origin ~tick:(clock_from ())
          with
          | None -> import ()
          | Some context ->
              W5_obs.Tracer.with_remote_span (W5_os.Kernel.tracer kt)
                ~clock:(fun () -> W5_os.Kernel.tick kt)
                ~context
                ~fields:[ ("entries", string_of_int (List.length bundle)) ]
                "migrate.import" import))

(* The bundle file format reuses the record escaping: one entry per
   line, [path=content], both escaped. *)
let encode_bundle bundle =
  W5_store.Record.encode
    (W5_store.Record.of_fields
       (List.map (fun { rel_path; content } -> (rel_path, content)) bundle))

let publish_takeout_app platform ~dev =
  let handler ctx (env : App_registry.env) =
    match env.App_registry.viewer with
    | None -> ignore (Syscall.respond ctx "please log in")
    | Some user -> (
        match Platform.find_account platform user with
        | None -> ignore (Syscall.respond ctx "no such account")
        | Some account -> (
            match export_bundle platform account with
            | Error e ->
                ignore
                  (Syscall.respond ctx
                     ("takeout failed: " ^ Os_error.to_string e))
            | Ok bundle -> ignore (Syscall.respond ctx (encode_bundle bundle))))
  in
  App_registry.publish (Platform.registry platform) ~dev ~name:"takeout"
    ~version:"1.0"
    ~source:
      (App_registry.Open_source
         "takeout: the viewer's whole home directory as a portable bundle")
    handler

let decode_bundle data =
  Result.map
    (fun record ->
      List.map
        (fun (rel_path, content) -> { rel_path; content })
        (W5_store.Record.fields record))
    (W5_store.Record.decode data)
