(** Provider meshes: "one can imagine more elaborate systems, wherein
    providers have explicit peering arrangements with other providers"
    (§3.3).

    A mesh is a set of named providers with pairwise synchronization
    links per linked user. A gossip round runs every pairwise link
    once; because each link is convergent, repeated rounds drive the
    whole mesh to a fixed point (for n providers, at most
    ceil(log2 n) + 1 rounds when edits stop). *)

open W5_platform

type t

val create : ?health:W5_obs.Health.t -> unit -> t
(** [health] supplies the peer-health model the mesh folds every
    link's round outcomes into (a fresh default-windowed one
    otherwise). *)

val add_provider : t -> name:string -> Platform.t -> (unit, string) result
(** Names must be unique within the mesh. *)

val health : t -> W5_obs.Health.t
(** The mesh's health model: one (observer, peer) row per link, the
    observer being each link's home side. Fed by {!sync_round} —
    round outcomes, fault/retry/timeout tallies and {!Sync.lag} — and
    rendered by [w5 health]. *)

val providers : t -> (string * Platform.t) list
val provider : t -> name:string -> Platform.t option

val link_user :
  ?faults:W5_fault.Fault.t ->
  t -> user:string -> files:string list -> (unit, string) result
(** Create pairwise links for [user] across every provider holding the
    account. Fails if fewer than two providers know the user.
    [faults] is consulted at ["peer.link"] per pair (a dropped
    handshake retries; a crash fails the linking) and installed on
    every created link, so one seeded plan drives the whole mesh. *)

val linked_users : t -> string list

val user_links : t -> string -> (Sync.link list, string) result
(** The user's pairwise links in creation order — what a scripted
    scenario tunes per-link fault plans on. *)

val sync_round : t -> user:string -> (int, string) result
(** Run every pairwise link once; returns the number of records that
    moved or merged. *)

val sync_until_converged :
  ?max_rounds:int -> t -> user:string -> (int, string) result
(** Gossip until a round moves nothing (returns the number of rounds
    used, including the final empty one). [max_rounds] defaults to 10. *)

val converged : t -> user:string -> bool
