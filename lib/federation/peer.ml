open W5_platform
module Fault = W5_fault.Fault

type t = {
  mutable sides : (string * Platform.t) list;  (* insertion order *)
  links : (string, Sync.link list) Hashtbl.t;  (* user -> pairwise links *)
}

let create () = { sides = []; links = Hashtbl.create 8 }

let add_provider t ~name platform =
  if List.mem_assoc name t.sides then Error (name ^ ": provider exists")
  else begin
    t.sides <- t.sides @ [ (name, platform) ];
    Ok ()
  end

let providers t = t.sides
let provider t ~name = List.assoc_opt name t.sides

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let link_user ?faults t ~user ~files =
  let holding =
    List.filter
      (fun (_, platform) -> Platform.find_account platform user <> None)
      t.sides
  in
  if List.length holding < 2 then
    Error (user ^ ": needs an account on at least two providers")
  else
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | ((name_a, pa), (name_b, pb)) :: rest -> (
          let a = { Sync.platform = pa; provider_name = name_a } in
          let b = { Sync.platform = pb; provider_name = name_b } in
          let pair = name_a ^ "~" ^ name_b in
          (* the link handshake is a message too: it can be lost (a
             couple of retries) or arrive while a provider is down *)
          let rec handshake attempt =
            match faults with
            | None -> Sync.establish ~a ~b ~user ~files ()
            | Some plan -> (
                match Fault.consult plan ~op:"peer.link" ~file:pair with
                | Some Fault.Drop when attempt < 3 -> handshake (attempt + 1)
                | Some Fault.Drop -> Error (pair ^ ": link handshake lost")
                | Some (Fault.Crash_before_apply | Fault.Crash_after_apply) ->
                    Error ("crash: peer.link " ^ pair)
                | Some (Fault.Delay _ | Fault.Duplicate) | None ->
                    Sync.establish ?faults ~a ~b ~user ~files ())
          in
          match handshake 1 with
          | Error _ as e -> e
          | Ok link -> build (link :: acc) rest)
    in
    match build [] (pairs holding) with
    | Error _ as e -> e
    | Ok links ->
        Hashtbl.replace t.links user links;
        Ok ()

let linked_users t =
  Hashtbl.fold (fun user _ acc -> user :: acc) t.links []
  |> List.sort String.compare

let user_links t user =
  match Hashtbl.find_opt t.links user with
  | Some links -> Ok links
  | None -> Error (user ^ ": not linked")

let sync_round t ~user =
  match user_links t user with
  | Error _ as e -> e
  | Ok links ->
      List.fold_left
        (fun acc link ->
          match acc with
          | Error _ as e -> e
          | Ok moved -> (
              match Sync.sync link with
              | Error _ as e -> e
              | Ok stats ->
                  Ok
                    (moved + stats.Sync.a_to_b + stats.Sync.b_to_a
                   + stats.Sync.merged)))
        (Ok 0) links

let converged t ~user =
  match user_links t user with
  | Error _ -> false
  | Ok links -> List.for_all Sync.converged links

let sync_until_converged ?(max_rounds = 10) t ~user =
  let rec go round =
    if round > max_rounds then Error "did not converge"
    else
      match sync_round t ~user with
      | Error _ as e -> e
      | Ok 0 -> Ok round
      | Ok _ -> go (round + 1)
  in
  go 1
