open W5_platform
open W5_os
module Fault = W5_fault.Fault
module Tracer = W5_obs.Tracer
module Health = W5_obs.Health

type t = {
  mutable sides : (string * Platform.t) list;  (* insertion order *)
  links : (string, Sync.link list) Hashtbl.t;  (* user -> pairwise links *)
  health : Health.t;
}

let create ?health () =
  {
    sides = [];
    links = Hashtbl.create 8;
    health = (match health with Some h -> h | None -> Health.create ());
  }

let health t = t.health

let add_provider t ~name platform =
  if List.mem_assoc name t.sides then Error (name ^ ": provider exists")
  else begin
    t.sides <- t.sides @ [ (name, platform) ];
    Ok ()
  end

let providers t = t.sides
let provider t ~name = List.assoc_opt name t.sides

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let link_user ?faults t ~user ~files =
  let holding =
    List.filter
      (fun (_, platform) -> Platform.find_account platform user <> None)
      t.sides
  in
  if List.length holding < 2 then
    Error (user ^ ": needs an account on at least two providers")
  else
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | ((name_a, pa), (name_b, pb)) :: rest -> (
          let a = { Sync.platform = pa; provider_name = name_a } in
          let b = { Sync.platform = pb; provider_name = name_b } in
          let pair = name_a ^ "~" ^ name_b in
          let ka = Platform.kernel pa and kb = Platform.kernel pb in
          let tracer_a = Kernel.tracer ka in
          (* the link handshake is a message too: it can be lost (a
             couple of retries) or arrive while a provider is down *)
          let rec handshake attempt =
            match faults with
            | None -> Sync.establish ~a ~b ~user ~files ()
            | Some plan -> (
                match Fault.consult plan ~op:"peer.link" ~file:pair with
                | Some Fault.Drop when attempt < 3 ->
                    Tracer.event tracer_a ~tick:(Kernel.tick ka)
                      "peer.link.fault"
                      ~fields:
                        [ ("action", "drop");
                          ("attempt", string_of_int attempt) ];
                    handshake (attempt + 1)
                | Some Fault.Drop -> Error (pair ^ ": link handshake lost")
                | Some (Fault.Crash_before_apply | Fault.Crash_after_apply) ->
                    Error ("crash: peer.link " ^ pair)
                | Some (Fault.Delay _ | Fault.Duplicate) | None ->
                    Sync.establish ?faults ~a ~b ~user ~files ())
          in
          let result =
            Tracer.with_span tracer_a
              ~clock:(fun () -> Kernel.tick ka)
              ~fields:[ ("peer", name_b); ("pair", pair) ]
              "peer.link"
              (fun () ->
                match handshake 1 with
                | Error _ as e -> e
                | Ok link ->
                    (* the accepting side logs the handshake under the
                       carried context — the first cross-provider edge
                       of the trace *)
                    (match
                       Tracer.context tracer_a ~origin:name_a
                         ~tick:(Kernel.tick ka)
                     with
                    | None -> ()
                    | Some context ->
                        Tracer.with_remote_span (Kernel.tracer kb)
                          ~clock:(fun () -> Kernel.tick kb)
                          ~context
                          ~fields:[ ("peer", name_a) ]
                          "peer.link.accept" ignore);
                    Ok link)
          in
          match result with
          | Error _ as e -> e
          | Ok link -> build (link :: acc) rest)
    in
    match build [] (pairs holding) with
    | Error _ as e -> e
    | Ok links ->
        Hashtbl.replace t.links user links;
        Ok ()

let linked_users t =
  Hashtbl.fold (fun user _ acc -> user :: acc) t.links []
  |> List.sort String.compare

let user_links t user =
  match Hashtbl.find_opt t.links user with
  | Some links -> Ok links
  | None -> Error (user ^ ": not linked")

(* Fold one link's round outcome into the mesh's health model. Each
   link's home (side A) is the observer: health is per-viewpoint, not
   symmetric, because each side only witnesses its own rounds. *)
let observe_link t link outcome =
  let a, b = Sync.sides link in
  let observer = a.Sync.provider_name and peer = b.Sync.provider_name in
  let tick = Kernel.tick (Platform.kernel a.Sync.platform) in
  (match outcome with
  | Ok (stats : Sync.stats) ->
      Health.observe_round t.health ~observer ~peer ~tick ~ok:true
        ~retries:stats.Sync.retried ~faults:stats.Sync.faulted
        ~timed_out:(stats.Sync.timed_out > 0)
        ~recovered:stats.Sync.recovered
  | Error _ ->
      (* a crashed round: the peer interaction failed outright *)
      Health.observe_round t.health ~observer ~peer ~tick ~ok:false ~retries:0
        ~faults:1 ~timed_out:false ~recovered:0);
  Health.note_lag t.health ~observer ~peer ~lag:(Sync.lag link)

let sync_round t ~user =
  match user_links t user with
  | Error _ as e -> e
  | Ok links ->
      List.fold_left
        (fun acc link ->
          match acc with
          | Error _ as e -> e
          | Ok moved -> (
              let result = Sync.sync link in
              observe_link t link result;
              match result with
              | Error _ as e -> e
              | Ok stats ->
                  Ok
                    (moved + stats.Sync.a_to_b + stats.Sync.b_to_a
                   + stats.Sync.merged)))
        (Ok 0) links

let converged t ~user =
  match user_links t user with
  | Error _ -> false
  | Ok links -> List.for_all Sync.converged links

let sync_until_converged ?(max_rounds = 10) t ~user =
  let rec go round =
    if round > max_rounds then Error "did not converge"
    else
      match sync_round t ~user with
      | Error _ as e -> e
      | Ok 0 -> Ok round
      | Ok _ -> go (round + 1)
  in
  go 1
