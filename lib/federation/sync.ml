open W5_difc
open W5_os
open W5_store
open W5_platform

type side = {
  platform : Platform.t;
  provider_name : string;
}

type mode =
  | Bidirectional
  | Mirror_a_to_b

type link = {
  side_a : side;
  side_b : side;
  link_mode : mode;
  link_user : string;
  mutable sync_files : string list;
  mutable sync_dirs : string list;
  seen : (string, Vector_clock.t) Hashtbl.t;
}

type stats = {
  a_to_b : int;
  b_to_a : int;
  merged : int;
  unchanged : int;
}

(* The privileges the user "gives to the data transfer application":
   declassification over their secrecy tags (and absorption for the
   restricted read tag). Only capabilities the account actually holds
   can be passed on — a user who stripped their own grants transfers
   nothing. Write authority is exercised separately via
   Platform.write_user_record. *)
let transfer_caps (account : Account.t) =
  let tags =
    account.Account.secret_tag
    :: (match account.Account.read_tag with Some rt -> [ rt ] | None -> [])
  in
  List.fold_left
    (fun caps tag ->
      let caps =
        if Capability.Set.can_drop tag account.Account.caps then
          Capability.Set.add (Capability.make tag Capability.Minus) caps
        else caps
      in
      if Capability.Set.can_add tag account.Account.caps then
        Capability.Set.add (Capability.make tag Capability.Plus) caps
      else caps)
    Capability.Set.empty tags

let export_record platform (account : Account.t) ~file =
  let path = Platform.user_file account.Account.user file in
  Platform.with_ctx platform
    ~name:("sync.export:" ^ path)
    ~caps:(transfer_caps account)
    (fun ctx ->
      match Syscall.stat ctx path with
      | Error _ as e -> e
      | Ok st -> (
          match Syscall.read_file_taint ctx path with
          | Error _ as e -> e
          | Ok data -> (
              List.iter
                (fun tag ->
                  ignore
                    (Syscall.declassify_self ctx ~context:"federation.sync" tag))
                (account.Account.secret_tag
                :: (match account.Account.read_tag with
                   | Some rt -> [ rt ]
                   | None -> []));
              (* The agent only hands data off the platform once its
                 label is provably exportable. *)
              let residue = (Syscall.my_labels ctx).Flow.secrecy in
              if not (Label.is_empty residue) then
                Error (Os_error.Denied (Flow.Secrecy_violation residue))
              else
                match Record.decode data with
                | Error m -> Error (Os_error.Invalid m)
                | Ok record -> Ok (record, st.Fs.version))))

let version_of platform (account : Account.t) ~file =
  let path = Platform.user_file account.Account.user file in
  match
    Platform.with_ctx platform ~name:("sync.stat:" ^ path) (fun ctx ->
        Syscall.stat ctx path)
  with
  | Ok st -> st.Fs.version
  | Error _ -> 0

let establish ?(mode = Bidirectional) ~a ~b ~user ~files () =
  match (Platform.find_account a.platform user, Platform.find_account b.platform user) with
  | None, _ -> Error (user ^ ": no account on " ^ a.provider_name)
  | _, None -> Error (user ^ ": no account on " ^ b.provider_name)
  | Some _, Some _ ->
      Ok
        {
          side_a = a;
          side_b = b;
          link_mode = mode;
          link_user = user;
          sync_files = files;
          sync_dirs = [];
          seen = Hashtbl.create 16;
        }

let add_file link file =
  if not (List.mem file link.sync_files) then
    link.sync_files <- link.sync_files @ [ file ]

let add_directory link dir =
  if not (List.mem dir link.sync_dirs) then
    link.sync_dirs <- link.sync_dirs @ [ dir ]

let directories link = link.sync_dirs
let files link = link.sync_files
let user link = link.link_user

(* Entries of /users/<u>/<dir> on one platform, [] if absent. *)
let dir_entries platform (account : Account.t) ~dir =
  let path = Platform.user_file account.Account.user dir in
  match
    Platform.with_ctx platform ~name:("sync.ls:" ^ path)
      ~caps:(transfer_caps account) (fun ctx ->
        match Syscall.stat ctx path with
        | Error _ as e -> e
        | Ok st -> (
            match
              Syscall.add_taint ctx st.Fs.labels.Flow.secrecy
            with
            | Error _ as e -> e
            | Ok () -> Syscall.readdir ctx path))
  with
  | Ok names -> names
  | Error _ -> []

(* Importing "photos/p1" needs "photos" to exist on the target. *)
let ensure_parent_dir platform (account : Account.t) ~file =
  match String.index_opt file '/' with
  | None -> Ok ()
  | Some i -> (
      let dir = String.sub file 0 i in
      match Platform.user_mkdir platform account ~dir with
      | Ok () -> Ok ()
      | Error (Os_error.Already_exists _) -> Ok ()
      | Error _ as e -> e)

let current_clock link ~file =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  Vector_clock.set
    (Vector_clock.set Vector_clock.zero ~node:link.side_a.provider_name
       (version_of link.side_a.platform account_a ~file))
    ~node:link.side_b.provider_name
    (version_of link.side_b.platform account_b ~file)

let seen_clock link ~file =
  Option.value (Hashtbl.find_opt link.seen file) ~default:Vector_clock.zero

let sync_file link ~file =
  let a = link.side_a and b = link.side_b in
  let account_a = Platform.account_exn a.platform link.link_user in
  let account_b = Platform.account_exn b.platform link.link_user in
  let current = current_clock link ~file in
  let seen = seen_clock link ~file in
  let va = Vector_clock.get current ~node:a.provider_name in
  let vb = Vector_clock.get current ~node:b.provider_name in
  let seen_a = Vector_clock.get seen ~node:a.provider_name in
  let seen_b = Vector_clock.get seen ~node:b.provider_name in
  let a_changed = va > seen_a in
  let b_changed = vb > seen_b in
  (* a file the link has synchronized before that is now absent was
     deleted on that side — not "never existed" *)
  let deleted_a = va = 0 && seen_a > 0 in
  let deleted_b = vb = 0 && seen_b > 0 in
  let remember () =
    Hashtbl.replace link.seen file (current_clock link ~file)
  in
  (* Sync writes bypass Obj_store, so any store index over the target
     path must be told (a no-op for the usual /users/... targets; the
     fs version stamp would catch it regardless). *)
  let invalidate_index platform (account : Account.t) =
    Index.note_external_write
      (Platform.kernel platform)
      ~path:(Platform.user_file account.Account.user file)
  in
  (* Provider name of a side, for audit attribution of sync writes. *)
  let name_of platform =
    if platform == a.platform then a.provider_name else b.provider_name
  in
  let audit_sync ~on ~peer (account : Account.t) ~direction =
    Kernel.record (Platform.kernel on) ~pid:0
      (Audit.Sync_applied
         {
           peer;
           path = Platform.user_file account.Account.user file;
           direction;
         })
  in
  let copy ~src_platform ~src_account ~dst_platform ~dst_account =
    match export_record src_platform src_account ~file with
    | Error e -> Error (Os_error.to_string e)
    | Ok (record, _) -> (
        (* Skip the write when the destination already matches: a
           rewrite would bump its version and look like a fresh edit
           to every *other* link of a mesh, ping-ponging forever. *)
        let already_there =
          match export_record dst_platform dst_account ~file with
          | Ok (existing, _) -> Record.equal existing record
          | Error _ -> false
        in
        if already_there then begin
          remember ();
          Ok `Same
        end
        else
          match
            Result.map_error Os_error.to_string
              (ensure_parent_dir dst_platform dst_account ~file)
          with
          | Error _ as e -> e
          | Ok () -> (
              match
                Platform.write_user_record dst_platform dst_account ~file
                  record
              with
              | Error e -> Error (Os_error.to_string e)
              | Ok () ->
                  invalidate_index dst_platform dst_account;
                  audit_sync ~on:dst_platform ~peer:(name_of src_platform)
                    dst_account ~direction:"pull";
                  audit_sync ~on:src_platform ~peer:(name_of dst_platform)
                    src_account ~direction:"push";
                  remember ();
                  Ok `Copied))
  in
  let outcome_of_copy direction = function
    | `Same -> `Unchanged
    | `Copied -> direction
  in
  let delete_on platform account =
    match Platform.delete_user_file platform account ~file with
    | Ok () ->
        invalidate_index platform account;
        remember ();
        Ok ()
    | Error e -> Error (Os_error.to_string e)
  in
  if deleted_a || deleted_b then begin
    if deleted_a && deleted_b then begin
      remember ();
      Ok `Unchanged
    end
    else if deleted_a && b_changed then
      (* concurrent edit vs delete: the edit wins, the file comes back *)
      Result.map (outcome_of_copy `B_to_a)
        (copy ~src_platform:b.platform ~src_account:account_b
           ~dst_platform:a.platform ~dst_account:account_a)
    else if deleted_b && a_changed then
      Result.map (outcome_of_copy `A_to_b)
        (copy ~src_platform:a.platform ~src_account:account_a
           ~dst_platform:b.platform ~dst_account:account_b)
    else if deleted_a then
      Result.map (fun () -> `A_to_b) (delete_on b.platform account_b)
    else Result.map (fun () -> `B_to_a) (delete_on a.platform account_a)
  end
  else if (not a_changed) && not b_changed then Ok `Unchanged
  else if link.link_mode = Mirror_a_to_b then begin
    (* one-way: B is a replica; whatever happened, it tracks A *)
    if va = 0 then Ok `Unchanged
    else
      match
        copy ~src_platform:a.platform ~src_account:account_a
          ~dst_platform:b.platform ~dst_account:account_b
      with
      | Error _ as e -> e
      | Ok `Same -> Ok `Unchanged
      | Ok `Copied -> Ok `A_to_b
  end
  else
    let outcome_of = outcome_of_copy in
    if a_changed && not b_changed then
      if va = 0 then Ok `Unchanged
      else
        Result.map (outcome_of `A_to_b)
          (copy ~src_platform:a.platform ~src_account:account_a
             ~dst_platform:b.platform ~dst_account:account_b)
    else if b_changed && not a_changed then
      if vb = 0 then Ok `Unchanged
      else
        Result.map (outcome_of `B_to_a)
          (copy ~src_platform:b.platform ~src_account:account_b
             ~dst_platform:a.platform ~dst_account:account_a)
    else if va = 0 then
      (* changed on both but absent on A: plain copy B->A *)
      Result.map (outcome_of `B_to_a)
        (copy ~src_platform:b.platform ~src_account:account_b
           ~dst_platform:a.platform ~dst_account:account_a)
    else if vb = 0 then
      Result.map (outcome_of `A_to_b)
        (copy ~src_platform:a.platform ~src_account:account_a
           ~dst_platform:b.platform ~dst_account:account_b)
    else
      (* concurrent edits: merge and write back to both replicas *)
      match export_record a.platform account_a ~file with
    | Error e -> Error (Os_error.to_string e)
    | Ok (ra, _) -> (
        match export_record b.platform account_b ~file with
        | Error e -> Error (Os_error.to_string e)
        | Ok (rb, _) ->
            if Record.equal ra rb then begin
              remember ();
              Ok `Unchanged
            end
            else
              let merged = Conflict.merge ra rb in
              let write platform account =
                match ensure_parent_dir platform account ~file with
                | Error _ as e -> e
                | Ok () ->
                    Result.map
                      (fun () -> invalidate_index platform account)
                      (Platform.write_user_record platform account ~file merged)
              in
              (match (write a.platform account_a, write b.platform account_b) with
              | Ok (), Ok () ->
                  audit_sync ~on:a.platform ~peer:b.provider_name account_a
                    ~direction:"merge";
                  audit_sync ~on:b.platform ~peer:a.provider_name account_b
                    ~direction:"merge";
                  remember ();
                  Ok `Merged
              | Error e, _ | _, Error e -> Error (Os_error.to_string e)))

let expanded_files link =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  let from_dirs =
    List.concat_map
      (fun dir ->
        let names =
          List.sort_uniq String.compare
            (dir_entries link.side_a.platform account_a ~dir
            @ dir_entries link.side_b.platform account_b ~dir)
        in
        List.map (fun name -> dir ^ "/" ^ name) names)
      link.sync_dirs
  in
  link.sync_files @ from_dirs

(* Sync telemetry lands on side A's kernel registry: the link runs as
   an agent of that platform, and a one-sided home avoids double
   counting. Outcomes are direction/verdict names only. *)
let meter_round link stats =
  let metrics = Kernel.metrics (Platform.kernel link.side_a.platform) in
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter metrics "w5_sync_rounds_total"
       ~help:"Completed federation sync rounds");
  let outcomes = W5_obs.Metrics.counter metrics "w5_sync_outcomes_total"
      ~help:"Per-file sync outcomes by direction or merge"
  in
  let bump outcome by =
    if by > 0 then
      W5_obs.Metrics.inc outcomes ~labels:[ ("outcome", outcome) ] ~by
  in
  bump "a_to_b" stats.a_to_b;
  bump "b_to_a" stats.b_to_a;
  bump "merged" stats.merged;
  bump "unchanged" stats.unchanged

let sync link =
  let result =
    List.fold_left
      (fun acc file ->
        match acc with
        | Error _ as e -> e
        | Ok stats -> (
            match sync_file link ~file with
            | Error e -> Error (file ^ ": " ^ e)
            | Ok `Unchanged -> Ok { stats with unchanged = stats.unchanged + 1 }
            | Ok `A_to_b -> Ok { stats with a_to_b = stats.a_to_b + 1 }
            | Ok `B_to_a -> Ok { stats with b_to_a = stats.b_to_a + 1 }
            | Ok `Merged -> Ok { stats with merged = stats.merged + 1 }))
      (Ok { a_to_b = 0; b_to_a = 0; merged = 0; unchanged = 0 })
      (expanded_files link)
  in
  (match result with Ok stats -> meter_round link stats | Error _ -> ());
  result

let converged link =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  List.for_all
    (fun file ->
      match
        ( export_record link.side_a.platform account_a ~file,
          export_record link.side_b.platform account_b ~file )
      with
      | Ok (ra, _), Ok (rb, _) -> Record.equal ra rb
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)
    (expanded_files link)
