open W5_difc
open W5_os
open W5_store
open W5_platform
module Fault = W5_fault.Fault

type side = {
  platform : Platform.t;
  provider_name : string;
}

type mode =
  | Bidirectional
  | Mirror_a_to_b

type link = {
  side_a : side;
  side_b : side;
  link_mode : mode;
  link_user : string;
  mutable sync_files : string list;
  mutable sync_dirs : string list;
  seen : (string, Vector_clock.t) Hashtbl.t;
  mutable seen_dirty : bool;
  mutable faults : Fault.t;
  mutable max_attempts : int;
  mutable backoff_cap : int;   (* logical ticks *)
  mutable round_budget : int;  (* logical ticks of retry/delay per round *)
}

type stats = {
  a_to_b : int;
  b_to_a : int;
  merged : int;
  unchanged : int;
  retried : int;
  timed_out : int;
  recovered : int;
  faulted : int;
}

(* Per-round mutable tallies threaded through the per-file logic. *)
type counters = {
  mutable c_retried : int;
  mutable c_timed_out : int;
  mutable c_faulted : int;
}

(* Durable link state lives in a dot-directory of the user's home on
   the relevant side, written with the user's own authority so it
   carries the user's labels like any other record. It is never part
   of the sync worklist (only [sync_files] and [sync_dirs] expansions
   are). *)
let state_dir = ".sync"
let seen_file ~peer = state_dir ^ "/seen-" ^ peer
let intent_file ~peer = state_dir ^ "/intent-from-" ^ peer

(* The privileges the user "gives to the data transfer application":
   declassification over their secrecy tags (and absorption for the
   restricted read tag). Only capabilities the account actually holds
   can be passed on — a user who stripped their own grants transfers
   nothing. Write authority is exercised separately via
   Platform.write_user_record. *)
let transfer_caps (account : Account.t) =
  let tags =
    account.Account.secret_tag
    :: (match account.Account.read_tag with Some rt -> [ rt ] | None -> [])
  in
  List.fold_left
    (fun caps tag ->
      let caps =
        if Capability.Set.can_drop tag account.Account.caps then
          Capability.Set.add (Capability.make tag Capability.Minus) caps
        else caps
      in
      if Capability.Set.can_add tag account.Account.caps then
        Capability.Set.add (Capability.make tag Capability.Plus) caps
      else caps)
    Capability.Set.empty tags

let export_record platform (account : Account.t) ~file =
  let path = Platform.user_file account.Account.user file in
  Platform.with_ctx platform
    ~name:("sync.export:" ^ path)
    ~caps:(transfer_caps account)
    (fun ctx ->
      match Syscall.stat ctx path with
      | Error _ as e -> e
      | Ok st -> (
          match Syscall.read_file_taint ctx path with
          | Error _ as e -> e
          | Ok data -> (
              List.iter
                (fun tag ->
                  ignore
                    (Syscall.declassify_self ctx ~context:"federation.sync" tag))
                (account.Account.secret_tag
                :: (match account.Account.read_tag with
                   | Some rt -> [ rt ]
                   | None -> []));
              (* The agent only hands data off the platform once its
                 label is provably exportable. *)
              let residue = (Syscall.my_labels ctx).Flow.secrecy in
              if not (Label.is_empty residue) then
                Error (Os_error.Denied (Flow.Secrecy_violation residue))
              else
                match Record.decode data with
                | Error m -> Error (Os_error.Invalid m)
                | Ok record -> Ok (record, st.Fs.version))))

let version_of platform (account : Account.t) ~file =
  let path = Platform.user_file account.Account.user file in
  match
    Platform.with_ctx platform ~name:("sync.stat:" ^ path) (fun ctx ->
        Syscall.stat ctx path)
  with
  | Ok st -> st.Fs.version
  | Error _ -> 0

(* ---- durable seen clocks --------------------------------------------- *)

let load_seen seen platform (account : Account.t) ~peer =
  match Platform.read_user_record platform account ~file:(seen_file ~peer) with
  | Error _ -> ()
  | Ok record ->
      List.iter
        (fun (file, encoded) ->
          let clock = Vector_clock.decode encoded in
          if not (Vector_clock.equal clock Vector_clock.zero) then
            Hashtbl.replace seen file clock)
        (Record.fields record)

let persist_seen link =
  let account = Platform.account_exn link.side_a.platform link.link_user in
  ignore (Platform.user_mkdir link.side_a.platform account ~dir:state_dir);
  let fields =
    Hashtbl.fold
      (fun file clock acc -> (file, Vector_clock.encode clock) :: acc)
      link.seen []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  ignore
    (Platform.write_user_record link.side_a.platform account
       ~file:(seen_file ~peer:link.side_b.provider_name)
       (Record.of_fields fields))

let establish ?(mode = Bidirectional) ?faults ~a ~b ~user ~files () =
  match (Platform.find_account a.platform user, Platform.find_account b.platform user) with
  | None, _ -> Error (user ^ ": no account on " ^ a.provider_name)
  | _, None -> Error (user ^ ": no account on " ^ b.provider_name)
  | Some account_a, Some _ ->
      let seen = Hashtbl.create 16 in
      (* a restarted agent resumes from the durable clocks: deletions
         keep propagating, re-applied writes stay no-ops *)
      load_seen seen a.platform account_a ~peer:b.provider_name;
      Ok
        {
          side_a = a;
          side_b = b;
          link_mode = mode;
          link_user = user;
          sync_files = files;
          sync_dirs = [];
          seen;
          seen_dirty = false;
          faults = (match faults with Some f -> f | None -> Fault.none ());
          max_attempts = 4;
          backoff_cap = 8;
          round_budget = 64;
        }

let set_faults link plan = link.faults <- plan
let faults link = link.faults

let configure ?max_attempts ?backoff_cap ?round_budget link =
  Option.iter (fun n -> link.max_attempts <- max n 1) max_attempts;
  Option.iter (fun n -> link.backoff_cap <- max n 1) backoff_cap;
  Option.iter (fun n -> link.round_budget <- max n 1) round_budget

let add_file link file =
  if not (List.mem file link.sync_files) then
    link.sync_files <- link.sync_files @ [ file ]

let add_directory link dir =
  if not (List.mem dir link.sync_dirs) then
    link.sync_dirs <- link.sync_dirs @ [ dir ]

let directories link = link.sync_dirs
let files link = link.sync_files
let user link = link.link_user

(* Entries of /users/<u>/<dir> on one platform, [] if absent. *)
let dir_entries platform (account : Account.t) ~dir =
  let path = Platform.user_file account.Account.user dir in
  match
    Platform.with_ctx platform ~name:("sync.ls:" ^ path)
      ~caps:(transfer_caps account) (fun ctx ->
        match Syscall.stat ctx path with
        | Error _ as e -> e
        | Ok st -> (
            match
              Syscall.add_taint ctx st.Fs.labels.Flow.secrecy
            with
            | Error _ as e -> e
            | Ok () -> Syscall.readdir ctx path))
  with
  | Ok names -> names
  | Error _ -> []

(* Importing "photos/p1" needs "photos" to exist on the target. *)
let ensure_parent_dir platform (account : Account.t) ~file =
  match String.index_opt file '/' with
  | None -> Ok ()
  | Some i -> (
      let dir = String.sub file 0 i in
      match Platform.user_mkdir platform account ~dir with
      | Ok () -> Ok ()
      | Error (Os_error.Already_exists _) -> Ok ()
      | Error _ as e -> e)

let current_clock link ~file =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  Vector_clock.set
    (Vector_clock.set Vector_clock.zero ~node:link.side_a.provider_name
       (version_of link.side_a.platform account_a ~file))
    ~node:link.side_b.provider_name
    (version_of link.side_b.platform account_b ~file)

let seen_clock link ~file =
  Option.value (Hashtbl.find_opt link.seen file) ~default:Vector_clock.zero

(* ---- fault plumbing -------------------------------------------------- *)

(* Telemetry and audit for faults land on side A's kernel: the link
   runs as an agent of that platform (see [meter_round]). *)
let home_kernel link = Platform.kernel link.side_a.platform
let home_tracer link = Kernel.tracer (home_kernel link)
let home_tick link = Kernel.tick (home_kernel link)
let sides link = (link.side_a, link.side_b)

let note_fault link ~file ~action ~attempt =
  let account = Platform.account_exn link.side_a.platform link.link_user in
  Kernel.record (home_kernel link) ~pid:0
    (Audit.Sync_fault
       {
         path = Platform.user_file account.Account.user file;
         action = Fault.action_name action;
         attempt;
       });
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics (home_kernel link))
       "w5_sync_faults_total"
       ~help:"Federation transport faults hit (injected or observed)")
    ~labels:
      [
        ("action", Fault.action_name action);
        ("peer", link.side_b.provider_name);
      ];
  W5_obs.Tracer.event (home_tracer link) ~tick:(home_tick link) "sync.fault"
    ~fields:
      [
        ("action", Fault.action_name action);
        ("attempt", string_of_int attempt);
        ("file", file);
      ]

(* Bracket a delivery leg in a span on the kernel that executes it: a
   plain child span when that kernel is the link's home side, a remote
   continuation carrying the handoff {!W5_obs.Trace_context} when it
   is the peer — the breadcrumb Trace_merge later reattaches. *)
let traced link platform ~op ~file f =
  let home = home_kernel link in
  let k = Platform.kernel platform in
  let fields = [ ("op", op); ("file", file) ] in
  if k == home then
    W5_obs.Tracer.with_span (Kernel.tracer k)
      ~clock:(fun () -> Kernel.tick k)
      ~fields ("sync." ^ op) f
  else
    match
      W5_obs.Tracer.context (Kernel.tracer home)
        ~origin:link.side_a.provider_name ~tick:(Kernel.tick home)
    with
    | None -> f ()
    | Some context ->
        W5_obs.Tracer.with_remote_span (Kernel.tracer k)
          ~clock:(fun () -> Kernel.tick k)
          ~context ~fields ("sync." ^ op) f

(* Backoff and delay are logical ticks on both kernels — no wall
   clock anywhere, so a faulty run replays identically from its
   seed. *)
let advance_ticks link n =
  for _ = 1 to n do
    Kernel.advance_clock (Platform.kernel link.side_a.platform);
    Kernel.advance_clock (Platform.kernel link.side_b.platform)
  done

(* One fault-aware delivery leg. Consults the plan at [op]:[file];
   dropped deliveries retry with capped exponential backoff until
   [max_attempts] or the round's tick budget runs out; a delay that
   exceeds the budget abandons the delivery for this round (the link
   timeout). Crashes are the caller's business — they must persist a
   write-ahead intent first — so they are surfaced, not raised here.
   [run ~dup] performs the real operation ([dup] = deliver twice). *)
let deliver link ~counters ~budget ~op ~file
    (run :
      dup:bool ->
      crash:[ `No | `Before | `After ] ->
      ('a, string) result) : [ `Done of ('a, string) result | `Timed_out ] =
  let timed_out () =
    counters.c_timed_out <- counters.c_timed_out + 1;
    W5_obs.Tracer.event (home_tracer link) ~tick:(home_tick link)
      "sync.timeout"
      ~fields:[ ("op", op); ("file", file) ];
    `Timed_out
  in
  let rec go attempt =
    if attempt > link.max_attempts then timed_out ()
    else
      match Fault.consult link.faults ~op ~file with
      | None -> `Done (run ~dup:false ~crash:`No)
      | Some action -> (
          note_fault link ~file ~action ~attempt;
          counters.c_faulted <- counters.c_faulted + 1;
          match action with
          | Fault.Drop ->
              let pause = min link.backoff_cap (1 lsl (attempt - 1)) in
              if !budget < pause then timed_out ()
              else begin
                budget := !budget - pause;
                advance_ticks link pause;
                counters.c_retried <- counters.c_retried + 1;
                W5_obs.Tracer.event (home_tracer link) ~tick:(home_tick link)
                  "sync.retry"
                  ~fields:
                    [
                      ("attempt", string_of_int (attempt + 1));
                      ("backoff", string_of_int pause);
                      ("file", file);
                    ];
                go (attempt + 1)
              end
          | Fault.Delay n ->
              if !budget < n then timed_out ()
              else begin
                budget := !budget - n;
                advance_ticks link n;
                `Done (run ~dup:false ~crash:`No)
              end
          | Fault.Duplicate -> `Done (run ~dup:true ~crash:`No)
          | Fault.Crash_before_apply -> `Done (run ~dup:false ~crash:`Before)
          | Fault.Crash_after_apply -> `Done (run ~dup:false ~crash:`After))
  in
  go 1

(* ---- write-ahead intents --------------------------------------------- *)

let write_intent platform (account : Account.t) ~peer ~file ~phase record =
  ignore (Platform.user_mkdir platform account ~dir:state_dir);
  ignore
    (Platform.write_user_record platform account ~file:(intent_file ~peer)
       (Record.of_fields
          [
            ("file", file);
            ("peer", peer);
            ("phase", phase);
            ("payload", Record.encode record);
          ]))

let clear_intent platform (account : Account.t) ~peer =
  ignore (Platform.delete_user_file platform account ~file:(intent_file ~peer))

(* Replay one side's pending intent, if any: complete the write the
   crash interrupted (phase "pending") or just finish the bookkeeping
   (phase "applied"), then clear the intent. The regular diff pass
   afterwards sees content-equal replicas and moves on without a
   duplicate merge. *)
let recover_side ~platform ~(account : Account.t) ~peer =
  match Platform.read_user_record platform account ~file:(intent_file ~peer) with
  | Error _ -> 0
  | Ok intent ->
      let file = Record.get_or intent "file" ~default:"" in
      let phase = Record.get_or intent "phase" ~default:"pending" in
      let recovered =
        if file = "" then 0
        else begin
          (if phase = "pending" then
             match Option.map Record.decode (Record.get intent "payload") with
             | Some (Ok payload) ->
                 let already =
                   match Platform.read_user_record platform account ~file with
                   | Ok existing -> Record.equal existing payload
                   | Error _ -> false
                 in
                 if not already then begin
                   ignore (ensure_parent_dir platform account ~file);
                   ignore
                     (Platform.write_user_record platform account ~file payload);
                   Index.note_external_write (Platform.kernel platform)
                     ~path:(Platform.user_file account.Account.user file)
                 end
             | Some (Error _) | None -> ());
          Kernel.record (Platform.kernel platform) ~pid:0
            (Audit.Sync_recovered
               {
                 peer;
                 path = Platform.user_file account.Account.user file;
                 phase;
               });
          1
        end
      in
      clear_intent platform account ~peer;
      recovered

let recover link =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  let n =
    recover_side ~platform:link.side_a.platform ~account:account_a
      ~peer:link.side_b.provider_name
    + recover_side ~platform:link.side_b.platform ~account:account_b
        ~peer:link.side_a.provider_name
  in
  if n > 0 then begin
    W5_obs.Metrics.inc
      (W5_obs.Metrics.counter
         (Kernel.metrics (home_kernel link))
         "w5_sync_recoveries_total"
         ~help:"Write-ahead sync intents replayed after a crash")
      ~labels:[ ("peer", link.side_b.provider_name) ]
      ~by:n;
    W5_obs.Tracer.event (home_tracer link) ~tick:(home_tick link)
      "sync.recover"
      ~fields:[ ("intents", string_of_int n) ]
  end;
  n

(* ---- the per-file synchronization ------------------------------------ *)

let sync_file link ~counters ~budget ~file =
  let a = link.side_a and b = link.side_b in
  let account_a = Platform.account_exn a.platform link.link_user in
  let account_b = Platform.account_exn b.platform link.link_user in
  let current = current_clock link ~file in
  let seen = seen_clock link ~file in
  let va = Vector_clock.get current ~node:a.provider_name in
  let vb = Vector_clock.get current ~node:b.provider_name in
  let seen_a = Vector_clock.get seen ~node:a.provider_name in
  let seen_b = Vector_clock.get seen ~node:b.provider_name in
  let a_changed = va > seen_a in
  let b_changed = vb > seen_b in
  (* a file the link has synchronized before that is now absent was
     deleted on that side — not "never existed" *)
  let deleted_a = va = 0 && seen_a > 0 in
  let deleted_b = vb = 0 && seen_b > 0 in
  let remember () =
    Hashtbl.replace link.seen file (current_clock link ~file);
    link.seen_dirty <- true
  in
  (* Sync writes bypass Obj_store, so any store index over the target
     path must be told (a no-op for the usual /users/... targets; the
     fs version stamp would catch it regardless). *)
  let invalidate_index platform (account : Account.t) =
    Index.note_external_write
      (Platform.kernel platform)
      ~path:(Platform.user_file account.Account.user file)
  in
  (* Provider name of a side, for audit attribution of sync writes. *)
  let name_of platform =
    if platform == a.platform then a.provider_name else b.provider_name
  in
  let audit_sync ~on ~peer (account : Account.t) ~direction =
    Kernel.record (Platform.kernel on) ~pid:0
      (Audit.Sync_applied
         {
           peer;
           path = Platform.user_file account.Account.user file;
           direction;
         })
  in
  (* Fault-aware export leg: the request can be dropped (retried) or
     crash the exporting provider — nothing durable is in flight yet,
     so a crash here needs no intent. *)
  let export_leg platform account =
    deliver link ~counters ~budget ~op:"export" ~file
      (fun ~dup:_ ~crash ->
        traced link platform ~op:"export" ~file (fun () ->
            if crash <> `No then raise (Fault.Crashed ("export:" ^ file));
            Result.map_error Os_error.to_string
              (export_record platform account ~file)))
  in
  (* Fault-aware apply leg with the write-ahead protocol: intent
     before the write, cleared after; the two crash points leave the
     intent at the phase recovery needs to see. [dup] delivers the
     write twice — the second delivery is a no-op because the bytes
     already match. *)
  let apply_leg ~dst_platform ~dst_account ~src_name record =
    deliver link ~counters ~budget ~op:"apply" ~file
      (fun ~dup ~crash ->
        traced link dst_platform ~op:"apply" ~file @@ fun () ->
        let do_write () =
          match ensure_parent_dir dst_platform dst_account ~file with
          | Error e -> Error (Os_error.to_string e)
          | Ok () -> (
              match
                Platform.write_user_record dst_platform dst_account ~file
                  record
              with
              | Error e -> Error (Os_error.to_string e)
              | Ok () ->
                  invalidate_index dst_platform dst_account;
                  Ok ())
        in
        match crash with
        | `Before ->
            write_intent dst_platform dst_account ~peer:src_name ~file
              ~phase:"pending" record;
            raise (Fault.Crashed ("apply:" ^ file))
        | `After ->
            write_intent dst_platform dst_account ~peer:src_name ~file
              ~phase:"pending" record;
            (match do_write () with
            | Ok () ->
                write_intent dst_platform dst_account ~peer:src_name ~file
                  ~phase:"applied" record
            | Error _ -> ());
            raise (Fault.Crashed ("apply:" ^ file))
        | `No -> (
            write_intent dst_platform dst_account ~peer:src_name ~file
              ~phase:"pending" record;
            match do_write () with
            | Error _ as e ->
                clear_intent dst_platform dst_account ~peer:src_name;
                e
            | Ok () ->
                (* duplicate delivery: apply again; idempotent because
                   the destination already holds these bytes (the
                   rewrite is skipped, its version does not move) *)
                (if dup then
                   match
                     Platform.read_user_record dst_platform dst_account ~file
                   with
                   | Ok existing when Record.equal existing record -> ()
                   | Ok _ | Error _ -> ignore (do_write ()));
                clear_intent dst_platform dst_account ~peer:src_name;
                Ok ()))
  in
  let copy ~src_platform ~src_account ~dst_platform ~dst_account =
    match export_leg src_platform src_account with
    | `Timed_out -> `Timed_out
    | `Done (Error e) -> `Done (Error e)
    | `Done (Ok (record, _)) -> (
        (* Skip the write when the destination already matches: a
           rewrite would bump its version and look like a fresh edit
           to every *other* link of a mesh, ping-ponging forever. *)
        let already_there =
          match export_record dst_platform dst_account ~file with
          | Ok (existing, _) -> Record.equal existing record
          | Error _ -> false
        in
        if already_there then begin
          remember ();
          `Done (Ok `Same)
        end
        else
          match
            apply_leg ~dst_platform ~dst_account ~src_name:(name_of src_platform)
              record
          with
          | `Timed_out -> `Timed_out
          | `Done (Error _ as e) -> `Done e
          | `Done (Ok ()) ->
              audit_sync ~on:dst_platform ~peer:(name_of src_platform)
                dst_account ~direction:"pull";
              audit_sync ~on:src_platform ~peer:(name_of dst_platform)
                src_account ~direction:"push";
              remember ();
              `Done (Ok `Copied))
  in
  let outcome_of_copy direction = function
    | `Same -> `Unchanged
    | `Copied -> direction
  in
  let finish direction = function
    | `Timed_out -> Ok `Timed_out
    | `Done (Error _ as e) -> e
    | `Done (Ok verdict) -> Ok (outcome_of_copy direction verdict)
  in
  (* Deletions are idempotent messages: deleting an already-absent
     file acknowledges fine, so crash-rerun and duplicate delivery
     need no intent record. *)
  let delete_on platform account =
    deliver link ~counters ~budget ~op:"delete" ~file
      (fun ~dup ~crash ->
        traced link platform ~op:"delete" ~file @@ fun () ->
        if crash <> `No then raise (Fault.Crashed ("delete:" ^ file));
        let unlink () =
          match Platform.delete_user_file platform account ~file with
          | Ok () | Error (Os_error.Not_found _) -> Ok ()
          | Error e -> Error (Os_error.to_string e)
        in
        match unlink () with
        | Error _ as e -> e
        | Ok () ->
            if dup then ignore (unlink ());
            invalidate_index platform account;
            remember ();
            Ok ())
  in
  let finish_delete direction = function
    | `Timed_out -> Ok `Timed_out
    | `Done (Error _ as e) -> e
    | `Done (Ok ()) -> Ok direction
  in
  if deleted_a || deleted_b then begin
    if deleted_a && deleted_b then begin
      remember ();
      Ok `Unchanged
    end
    else if deleted_a && b_changed then
      (* concurrent edit vs delete: the edit wins, the file comes back *)
      finish `B_to_a
        (copy ~src_platform:b.platform ~src_account:account_b
           ~dst_platform:a.platform ~dst_account:account_a)
    else if deleted_b && a_changed then
      finish `A_to_b
        (copy ~src_platform:a.platform ~src_account:account_a
           ~dst_platform:b.platform ~dst_account:account_b)
    else if deleted_a then finish_delete `A_to_b (delete_on b.platform account_b)
    else finish_delete `B_to_a (delete_on a.platform account_a)
  end
  else if (not a_changed) && not b_changed then Ok `Unchanged
  else if link.link_mode = Mirror_a_to_b then begin
    (* one-way: B is a replica; whatever happened, it tracks A *)
    if va = 0 then Ok `Unchanged
    else
      match
        copy ~src_platform:a.platform ~src_account:account_a
          ~dst_platform:b.platform ~dst_account:account_b
      with
      | `Timed_out -> Ok `Timed_out
      | `Done (Error _ as e) -> e
      | `Done (Ok `Same) -> Ok `Unchanged
      | `Done (Ok `Copied) -> Ok `A_to_b
  end
  else if a_changed && not b_changed then
    if va = 0 then Ok `Unchanged
    else
      finish `A_to_b
        (copy ~src_platform:a.platform ~src_account:account_a
           ~dst_platform:b.platform ~dst_account:account_b)
  else if b_changed && not a_changed then
    if vb = 0 then Ok `Unchanged
    else
      finish `B_to_a
        (copy ~src_platform:b.platform ~src_account:account_b
           ~dst_platform:a.platform ~dst_account:account_a)
  else if va = 0 then
    (* changed on both but absent on A: plain copy B->A *)
    finish `B_to_a
      (copy ~src_platform:b.platform ~src_account:account_b
         ~dst_platform:a.platform ~dst_account:account_a)
  else if vb = 0 then
    finish `A_to_b
      (copy ~src_platform:a.platform ~src_account:account_a
         ~dst_platform:b.platform ~dst_account:account_b)
  else
    (* concurrent edits: merge and write back to both replicas, each
       apply its own fault-aware delivery *)
    match export_leg a.platform account_a with
    | `Timed_out -> Ok `Timed_out
    | `Done (Error _ as e) -> e
    | `Done (Ok (ra, _)) -> (
        match export_leg b.platform account_b with
        | `Timed_out -> Ok `Timed_out
        | `Done (Error _ as e) -> e
        | `Done (Ok (rb, _)) ->
            if Record.equal ra rb then begin
              remember ();
              Ok `Unchanged
            end
            else
              let merged = Conflict.merge ra rb in
              let write platform account ~src_name =
                apply_leg ~dst_platform:platform ~dst_account:account
                  ~src_name merged
              in
              (match
                 write a.platform account_a ~src_name:b.provider_name
               with
              | `Timed_out -> Ok `Timed_out
              | `Done (Error _ as e) -> e
              | `Done (Ok ()) -> (
                  match
                    write b.platform account_b ~src_name:a.provider_name
                  with
                  | `Timed_out -> Ok `Timed_out
                  | `Done (Error _ as e) -> e
                  | `Done (Ok ()) ->
                      audit_sync ~on:a.platform ~peer:b.provider_name account_a
                        ~direction:"merge";
                      audit_sync ~on:b.platform ~peer:a.provider_name account_b
                        ~direction:"merge";
                      remember ();
                      Ok `Merged)))

let expanded_files link =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  let from_dirs =
    List.concat_map
      (fun dir ->
        let names =
          List.sort_uniq String.compare
            (dir_entries link.side_a.platform account_a ~dir
            @ dir_entries link.side_b.platform account_b ~dir)
        in
        List.map (fun name -> dir ^ "/" ^ name) names)
      link.sync_dirs
  in
  (* dedupe, first occurrence wins: a file named in [sync_files] that
     also appears under a [sync_dirs] expansion must be worked once,
     or the round's stats double-count it *)
  let worked = Hashtbl.create 16 in
  List.filter
    (fun file ->
      if Hashtbl.mem worked file then false
      else begin
        Hashtbl.add worked file ();
        true
      end)
    (link.sync_files @ from_dirs)

(* Sync telemetry lands on side A's kernel registry: the link runs as
   an agent of that platform, and a one-sided home avoids double
   counting. Outcomes are direction/verdict names only. *)
(* Every sync counter carries the peer's provider name: a mesh home
   kernel runs one link per peer, and an unlabeled total cannot say
   *which* peer is dropping messages. Provider names are a closed set
   well under the registry cardinality cap. *)
let meter_round link stats =
  let metrics = Kernel.metrics (home_kernel link) in
  let peer = ("peer", link.side_b.provider_name) in
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter metrics "w5_sync_rounds_total"
       ~help:"Completed federation sync rounds")
    ~labels:[ peer ];
  let outcomes = W5_obs.Metrics.counter metrics "w5_sync_outcomes_total"
      ~help:"Per-file sync outcomes by direction or merge"
  in
  let bump outcome by =
    if by > 0 then
      W5_obs.Metrics.inc outcomes ~labels:[ ("outcome", outcome); peer ] ~by
  in
  bump "a_to_b" stats.a_to_b;
  bump "b_to_a" stats.b_to_a;
  bump "merged" stats.merged;
  bump "unchanged" stats.unchanged;
  bump "timed_out" stats.timed_out;
  if stats.retried > 0 then
    W5_obs.Metrics.inc
      (W5_obs.Metrics.counter metrics "w5_sync_retries_total"
         ~help:"Delivery retries after dropped federation messages")
      ~labels:[ peer ] ~by:stats.retried

let meter_crash link =
  W5_obs.Metrics.inc
    (W5_obs.Metrics.counter
       (Kernel.metrics (home_kernel link))
       "w5_sync_crashes_total"
       ~help:"Sync rounds aborted by a provider crash")
    ~labels:[ ("peer", link.side_b.provider_name) ]

(* Round latency in side A's logical ticks: retries, backoff pauses,
   and per-file kernel crossings all drive that clock, so a faulty
   round is visibly slower than a clean one. Labeled by outcome (a
   closed set) so crashed rounds don't skew the happy-path quantiles. *)
let observe_round_ticks link ~t0 ~outcome =
  W5_obs.Metrics.observe
    (W5_obs.Perf.latency
       (Kernel.metrics (home_kernel link))
       "w5_sync_round_ticks"
       ~help:"Logical ticks consumed per federation sync round, by outcome")
    ~labels:[ ("outcome", outcome) ]
    (Kernel.tick (home_kernel link) - t0)

let sync_body link =
  let t0 = Kernel.tick (home_kernel link) in
  (* crash-restart recovery first: replay any write-ahead intent a
     previous round left behind *)
  let recovered = recover link in
  let counters = { c_retried = 0; c_timed_out = 0; c_faulted = 0 } in
  let budget = ref link.round_budget in
  let tracer = home_tracer link in
  let result =
    try
      List.fold_left
        (fun acc file ->
          match acc with
          | Error _ as e -> e
          | Ok stats -> (
              match
                W5_obs.Tracer.with_span tracer
                  ~clock:(fun () -> home_tick link)
                  ~fields:[ ("file", file) ]
                  "sync.file"
                  (fun () -> sync_file link ~counters ~budget ~file)
              with
              | Error e -> Error (file ^ ": " ^ e)
              | Ok `Unchanged -> Ok { stats with unchanged = stats.unchanged + 1 }
              | Ok `A_to_b -> Ok { stats with a_to_b = stats.a_to_b + 1 }
              | Ok `B_to_a -> Ok { stats with b_to_a = stats.b_to_a + 1 }
              | Ok `Merged -> Ok { stats with merged = stats.merged + 1 }
              | Ok `Timed_out ->
                  Ok { stats with timed_out = stats.timed_out + 1 }))
        (Ok
           {
             a_to_b = 0;
             b_to_a = 0;
             merged = 0;
             unchanged = 0;
             retried = 0;
             timed_out = 0;
             recovered;
             faulted = 0;
           })
        (expanded_files link)
    with Fault.Crashed site ->
      meter_crash link;
      Error ("crash: " ^ site)
  in
  match result with
  | Ok stats ->
      let stats =
        { stats with retried = counters.c_retried;
          timed_out = counters.c_timed_out;
          faulted = counters.c_faulted }
      in
      meter_round link stats;
      observe_round_ticks link ~t0 ~outcome:"ok";
      (* refresh the durable clocks only when something moved them *)
      if link.seen_dirty then begin
        persist_seen link;
        link.seen_dirty <- false
      end;
      Ok stats
  | Error _ as e ->
      observe_round_ticks link ~t0 ~outcome:"error";
      e

let sync link =
  let tracer = home_tracer link in
  W5_obs.Tracer.with_span tracer
    ~clock:(fun () -> home_tick link)
    ~fields:[ ("peer", link.side_b.provider_name) ]
    "sync.round"
    (fun () ->
      let result = sync_body link in
      W5_obs.Tracer.annotate tracer
        [ ("outcome", match result with Ok _ -> "ok" | Error _ -> "error") ];
      result)

(* How far the durable seen clocks trail the replicas right now:
   version steps acknowledged by neither side's last round — 0 once a
   clean round has converged, growing while faults keep a peer from
   acknowledging. *)
let lag link =
  List.fold_left
    (fun acc file ->
      let current = current_clock link ~file in
      let seen = seen_clock link ~file in
      let step node =
        max 0 (Vector_clock.get current ~node - Vector_clock.get seen ~node)
      in
      acc + step link.side_a.provider_name + step link.side_b.provider_name)
    0 (expanded_files link)

let converged link =
  let account_a = Platform.account_exn link.side_a.platform link.link_user in
  let account_b = Platform.account_exn link.side_b.platform link.link_user in
  List.for_all
    (fun file ->
      match
        ( export_record link.side_a.platform account_a ~file,
          export_record link.side_b.platform account_b ~file )
      with
      | Ok (ra, _), Ok (rb, _) -> Record.equal ra rb
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)
    (expanded_files link)
