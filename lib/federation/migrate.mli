(** Whole-account portability: the anti-silo headline of §1.

    On today's Web, "a new photo sharing application would require a
    user to retrieve her collection from an existing provider and
    upload it to the new one" — item by item, site by site. Under W5
    the user's data is hers: with the same privileges she would give a
    sync agent (declassification to read everything out, write
    authority to put it back), her entire home directory moves in one
    operation.

    {!export_bundle} walks [/users/<u>/], declassifying each file with
    the user-granted capabilities — files whose taint the grants cannot
    clear abort the export (nothing silently leaks or is silently
    dropped). {!import_bundle} recreates the tree on the target
    platform under the target account's own fresh labels. The bundle
    has a stable textual {!encode_bundle} form — the "download my
    data" file. *)

open W5_platform

type entry = {
  rel_path : string;  (** relative to the user's home, e.g. ["photos/p1"] *)
  content : string;
}

type bundle = entry list

val export_bundle :
  ?faults:W5_fault.Fault.t ->
  Platform.t -> Account.t -> (bundle, W5_os.Os_error.t) result
(** Deterministic order (lexicographic by path). Directories are
    implied by paths. [faults] is consulted at ["migrate.export"]
    before the walk: a dropped request retries, a crash aborts with
    [Invalid]. *)

val import_bundle :
  ?faults:W5_fault.Fault.t ->
  Platform.t -> Account.t -> bundle -> (int, W5_os.Os_error.t) result
(** Create-or-overwrite each entry under the account's labels
    (intermediate directories are created as needed); returns how many
    entries were written. [faults] is consulted at ["migrate.import"]
    per entry — a crash mid-bundle leaves a partial import on the
    target; because entries overwrite idempotently, rerunning the
    import completes it without duplicates. *)

val migrate_account :
  ?faults:W5_fault.Fault.t ->
  from_platform:Platform.t -> from_account:Account.t ->
  to_platform:Platform.t -> to_account:Account.t ->
  unit -> (int, W5_os.Os_error.t) result
(** {!export_bundle} then {!import_bundle}: the whole move, no manual
    re-upload. *)

val encode_bundle : bundle -> string
val decode_bundle : string -> (bundle, string) result
(** [decode_bundle (encode_bundle b) = Ok b]. *)

val publish_takeout_app :
  Platform.t -> dev:W5_difc.Principal.t ->
  (App_registry.app, string) Stdlib.result
(** "Download my data" as just another W5 application: publishes
    ["<dev>/takeout"], whose page is the logged-in viewer's own
    {!encode_bundle}. The export machinery (and hence the user's own
    grants) does the reading; the boilerplate policy lets the result
    out because it is going to its owner. Provider-authored: the
    handler is part of the trusted base, like a declassifier. *)
