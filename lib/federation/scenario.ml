open W5_os
open W5_store
open W5_platform
open W5_http
module Fault = W5_fault.Fault
module Tracer = W5_obs.Tracer
module Health = W5_obs.Health

let providers = [ "east"; "west"; "south" ]
let user = "alice"
let canaries = [ "CANARY-alice-END"; "CANARY-relocated-END" ]

type outcome = {
  mesh : Peer.t;
  spans : (string * W5_obs.Span.t list) list;
  health_now : string -> int;
  slo : Health.Slo.t;
  slo_now : int;
  round_notes : string list;
}

let kernel_of mesh name =
  match Peer.provider mesh ~name with
  | Some platform -> Platform.kernel platform
  | None -> invalid_arg (name ^ ": not in the scenario mesh")

(* Drain every provider's completed traces into the accumulator and
   clear the rings, so a long scenario never evicts mid-story (the
   per-kernel ring holds 16 roots; a round produces a handful). Span
   ids survive the clear, so drained spans stay unique and mergeable. *)
let drain mesh acc =
  List.iter
    (fun (name, platform) ->
      let tracer = Kernel.tracer (Platform.kernel platform) in
      let spans = Tracer.traces tracer in
      Tracer.clear tracer;
      let prev = try Hashtbl.find acc name with Not_found -> [] in
      Hashtbl.replace acc name (prev @ spans))
    (Peer.providers mesh)

let write_profile platform ~fields =
  let account = Platform.account_exn platform user in
  Platform.write_user_record platform account ~file:"profile"
    (Record.of_fields fields)

(* The shared harness: build the 3-provider mesh, plant the canary,
   install [plan_for] on each link (keyed "a~b"), run [rounds] gossip
   rounds draining traces between them. Crashed rounds are part of the
   story — the next round recovers — so errors are recorded, not
   propagated. *)
let run_mesh ~plan_for ~rounds () =
  let health =
    (* generous hysteresis so the verdict is stable however many ticks
       the tail of the scenario consumes *)
    Health.create ~window:1024 ~recover_after:256 ~unreachable_after:4096 ()
  in
  let mesh = Peer.create ~health () in
  let acc : (string, W5_obs.Span.t list) Hashtbl.t = Hashtbl.create 4 in
  let add_provider name =
    let platform = Platform.create () in
    (match Peer.add_provider mesh ~name platform with
    | Ok () -> ()
    | Error e -> invalid_arg e);
    (match Platform.signup platform ~user ~password:"pw" with
    | Ok _ -> ()
    | Error e -> invalid_arg e);
    Tracer.set_enabled (Kernel.tracer (Platform.kernel platform)) true
  in
  List.iter add_provider providers;
  let east = Option.get (Peer.provider mesh ~name:"east") in
  let west = Option.get (Peer.provider mesh ~name:"west") in
  (* the user's data, with a canary so tests can prove no telemetry
     view ever carries user bytes *)
  (match
     write_profile east
       ~fields:[ ("name", user); ("bio", List.nth canaries 0) ]
   with
  | Ok () -> ()
  | Error e -> invalid_arg (W5_os.Os_error.to_string e));
  (match Peer.link_user mesh ~user ~files:[ "profile" ] with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  (* per-link fault plans: the mesh installed none, the script decides
     which edges are unreliable *)
  (match Peer.user_links mesh user with
  | Error e -> invalid_arg e
  | Ok links ->
      List.iter
        (fun link ->
          let a, b = Sync.sides link in
          match plan_for (a.Sync.provider_name ^ "~" ^ b.Sync.provider_name)
          with
          | Some plan -> Sync.set_faults link plan
          | None -> ())
        links);
  drain mesh acc;
  let notes = ref [] in
  let note line = notes := line :: !notes in
  for round = 1 to rounds do
    (* round 2 brings a concurrent edit into the faulty window *)
    if round = 2 then
      ignore
        (write_profile west
           ~fields:
             [ ("name", user); ("bio", List.nth canaries 1);
               ("home", "west") ]);
    (match Peer.sync_round mesh ~user with
    | Ok moved -> note (Printf.sprintf "round %d: ok, moved %d" round moved)
    | Error e -> note (Printf.sprintf "round %d: %s" round e));
    drain mesh acc
  done;
  let spans =
    List.map
      (fun name ->
        (name, try Hashtbl.find acc name with Not_found -> []))
      providers
  in
  (mesh, spans, List.rev !notes)

(* The byte-reproducible script behind `w5 trace --federated` and
   `w5 health`. Signup seeds a default profile on every provider, so
   the first east~south round takes the concurrent-edit merge path,
   which consults the fault plan six times: export_a(0), export_b(1,
   2, 3 — two drops, two visible retries with backoff), apply_a(4),
   apply_b(5 — crash after the apply, leaving a write-ahead intent
   that round 2 replays as sync.recover). east~west and west~south
   run clean. *)
let scripted_plan = function
  | "east~south" ->
      Some
        (Fault.scripted ~label:"east~south script"
           [ (1, Fault.Drop); (2, Fault.Drop); (5, Fault.Crash_after_apply) ])
  | _ -> None

(* Deterministic SLO traffic on east's gateway: the front page serves,
   a broken app (its handler never responds) burns error budget. *)
let drive_gateway east =
  let registry = Platform.registry east in
  (match
     App_registry.publish registry
       ~dev:(W5_difc.Principal.make W5_difc.Principal.Developer "probe")
       ~name:"oops" ~version:"1.0"
       ~source:(App_registry.Open_source "oops: a handler that never responds")
       (fun _ctx _env -> ())
   with
  | Ok _ -> ()
  | Error e -> invalid_arg e);
  for _ = 1 to 3 do
    ignore (Gateway.handler east (Request.make Request.GET "/"))
  done;
  for _ = 1 to 2 do
    ignore (Gateway.handler east (Request.make Request.GET "/app/probe/oops"))
  done

let run () =
  let mesh, spans, round_notes = run_mesh ~plan_for:scripted_plan ~rounds:4 () in
  let east = Option.get (Peer.provider mesh ~name:"east") in
  drive_gateway east;
  (* gateway spans are east-local noise for the federated story; the
     sync spans were drained before the traffic ran *)
  Tracer.clear (Kernel.tracer (Platform.kernel east));
  {
    mesh;
    spans;
    health_now = (fun name -> Kernel.tick (kernel_of mesh name));
    slo = Gateway.slo_of east;
    slo_now = Kernel.tick (Platform.kernel east);
    round_notes;
  }

let run_seeded ~seed =
  let plan_for = function
    | "east~south" -> Some (Fault.of_seed ~seed ())
    | "west~south" -> Some (Fault.of_seed ~seed:(seed + 1) ())
    | _ -> None
  in
  let mesh, spans, round_notes = run_mesh ~plan_for ~rounds:6 () in
  {
    mesh;
    spans;
    health_now = (fun name -> Kernel.tick (kernel_of mesh name));
    slo = Health.Slo.create ();
    slo_now = 0;
    round_notes;
  }
