(** Cross-provider synchronization via import/export declassifiers
    (§3.3): "create import/export declassifiers that synchronize user
    data between two W5 providers. If an end-user deemed such
    applications trustworthy, it would give its privileges to data
    transfer applications on both platforms."

    A {!link} represents exactly that grant, for one user across two
    platforms: on each side the transfer agent holds the user's
    declassification capability (to export a record off the platform)
    and the user's write capability (to import the peer's copy).
    {!export_record} genuinely exercises the export privilege — it
    reads with taint, declassifies with the granted [t-], and refuses
    to hand anything over while {!W5_difc.Flow.export_blockers} is
    non-empty — so a user who never granted the capability cannot be
    synchronized, trust notwithstanding.

    Change detection uses per-file version vectors ({!Vector_clock}
    keyed by provider name, fed from filesystem versions); concurrent
    edits merge through {!Conflict}. Synchronization is convergent:
    after [sync] with no new writes, both replicas are equal and a
    second [sync] is a no-op.

    {2 Failure model}

    The transport between providers is unreliable, and either provider
    can crash mid-transfer. A link tolerates both, deterministically
    (injected faults come from a seeded {!W5_fault.Fault} plan; time
    is the kernels' logical clock — no wall clock anywhere):

    - {e dropped} deliveries retry with capped exponential backoff
      (logical ticks) up to a per-link attempt limit; a delivery that
      exhausts its attempts or the round's tick budget is abandoned
      for the round ([timed_out] in {!stats}) and retried next round;
    - {e duplicated} deliveries are no-ops: re-applying bytes the
      destination already holds is skipped, so the replica's version
      does not move and no spurious merge ever happens;
    - {e crashes} around the apply are covered by a write-ahead intent
      record persisted in the destination user's home before the
      write. {!recover} (run automatically at the start of every
      {!sync}) replays a pending intent and clears it, after which the
      normal diff pass finds content-equal replicas and moves on.

    Durable state (the intent and the link's seen clocks) lives under
    [.sync/] in the user's home, written with the user's own authority
    — it carries the user's labels like every other record, so crash
    recovery never weakens the flow policy. *)

open W5_store
open W5_platform
open W5_os

type side = {
  platform : Platform.t;
  provider_name : string;
}

(** Synchronization direction. *)
type mode =
  | Bidirectional  (** the default: edits flow both ways, conflicts merge *)
  | Mirror_a_to_b
      (** one-way backup: side B tracks side A; edits on B are
          overwritten at the next round (the paper's "mirrored across
          provider boundaries" in its simplest form) *)

type link

type stats = {
  a_to_b : int;    (** records copied from side A to side B *)
  b_to_a : int;
  merged : int;    (** concurrent edits resolved *)
  unchanged : int;
  retried : int;   (** deliveries re-sent after a dropped message *)
  timed_out : int; (** files abandoned this round (attempts/budget spent) *)
  recovered : int; (** write-ahead intents replayed before the round *)
  faulted : int;   (** injected/observed transport faults hit this round *)
}

val establish :
  ?mode:mode -> ?faults:W5_fault.Fault.t ->
  a:side -> b:side -> user:string -> files:string list ->
  unit -> (link, string) result
(** Both platforms must already have the account (the user "linked
    accounts"). [files] are the top-level record files to mirror
    (e.g. [["profile"; "friends"]]); more can be added later.
    [faults] installs a fault plan from the start (default: none).
    Durable seen clocks persisted by an earlier link between the same
    sides are loaded, so a restarted agent resumes where it left
    off. *)

val set_faults : link -> W5_fault.Fault.t -> unit
(** Replace the link's fault plan (e.g. a fresh seeded plan per test
    case). *)

val faults : link -> W5_fault.Fault.t

val configure :
  ?max_attempts:int -> ?backoff_cap:int -> ?round_budget:int -> link -> unit
(** Tune the retry policy: [max_attempts] deliveries per message
    (default 4), backoff of [2^(attempt-1)] logical ticks capped at
    [backoff_cap] (default 8), and at most [round_budget] ticks of
    backoff + injected delay per round (default 64) — the per-link
    timeout. All floors at 1. *)

val add_file : link -> string -> unit

val add_directory : link -> string -> unit
(** Mirror a whole subdirectory of the user's home (e.g. ["photos"]).
    At each {!sync} the union of both replicas' entries is expanded
    into per-file synchronization; files created on either side after
    the link was established are picked up automatically. A file
    named both explicitly and via a directory expansion is worked
    once per round. *)

val directories : link -> string list
val files : link -> string list
val user : link -> string

val sides : link -> side * side
(** (side A, side B) — side A is the link's "home": its kernel owns
    the round's metrics, audit records and trace root. *)

val lag : link -> int
(** Vector-clock lag: version steps of either replica the link's
    durable seen clocks have not acknowledged, summed over the
    worklist. 0 once a clean round has converged; grows while faults
    keep deliveries from completing — the health model's
    "is my peer keeping up" input. *)

val export_record :
  Platform.t -> Account.t -> file:string ->
  (Record.t * int, Os_error.t) result
(** Read + declassify one record with the user-granted privileges;
    returns the record and the filesystem version. Fails with a
    denial if the grant is missing or insufficient. *)

val seen_clock : link -> file:string -> Vector_clock.t
(** The version vector the link last acknowledged for [file]
    ({!Vector_clock.zero} if never synchronized) — what convergence
    tests compare against both replicas' current versions. *)

val intent_file : peer:string -> string
(** Home-relative path of the write-ahead intent record a transfer
    {e from} [peer] persists on the destination before applying —
    where tests inspect the on-disk state a crash left behind. *)

val recover : link -> int
(** Replay and clear any write-ahead intent a crashed round left on
    either side; returns how many intents were recovered. Runs
    automatically at the start of {!sync}; exposed for tests and for
    operators restarting an agent without an immediate round. *)

val sync : link -> (stats, string) result
(** One bidirectional round. Idempotent once converged. Injected
    crashes surface as [Error "crash: ..."] — the simulated provider
    died mid-round; the next [sync] call is the restart and begins by
    running {!recover}. *)

val converged : link -> bool
(** Are all mirrored records byte-equal right now? *)
