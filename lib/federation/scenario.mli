(** The scripted 3-provider faulty-sync scenario.

    One deterministic story shared by [w5 trace --federated],
    [w5 health], the golden tests and the README walkthrough: three
    providers (east, west, south) hold the same user; the east~west
    edge is reliable while east~south drops a delivery twice in round
    1 (retries with backoff) and then crashes after the round's final
    apply (write-ahead recovery in round 2). Everything runs on logical
    clocks with scripted fault plans, so every run is byte-identical —
    the golden files pin the whole merged trace and health report.

    The user's records contain planted canary strings ({!canaries});
    tests sweep every rendering for them to prove the telemetry story
    carries no user bytes. *)

type outcome = {
  mesh : Peer.t;
  spans : (string * W5_obs.Span.t list) list;
      (** per provider, drained after every round, oldest first — the
          {!W5_obs.Trace_merge.merge} input. *)
  health_now : string -> int;
      (** observer name → that provider's current tick, for
          {!W5_obs.Health.report}. *)
  slo : W5_obs.Health.Slo.t;  (** east's gateway ledger *)
  slo_now : int;              (** east's tick for the SLO window *)
  round_notes : string list;  (** one line per gossip round *)
}

val providers : string list
(** [["east"; "west"; "south"]]. *)

val user : string

val canaries : string list
(** User bytes planted in the synchronized records — must never appear
    in any telemetry rendering. *)

val run : unit -> outcome
(** The scripted run: 4 gossip rounds plus deterministic gateway
    traffic on east (3 front-page hits, 2 calls to a published app
    whose handler never responds — spent error budget). *)

val run_seeded : seed:int -> outcome
(** The property-test variant: same mesh and story shape, but the
    south-facing links run {!W5_fault.Fault.of_seed} plans derived
    from [seed] over 6 rounds (no gateway traffic). Deterministic per
    seed. *)
