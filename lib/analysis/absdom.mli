(** The analyzer's abstract label domain: finite sets of tag {e
    names}.

    The static analyzer cannot reason about {!W5_difc.Tag.t} values
    directly — tag identities are minted at runtime, while the
    analyzer wants to talk about a configuration ("user0001.secret",
    "group:book-club") independently of any particular run. The
    abstraction is the name map [alpha(tag) = Tag.name tag] lifted to
    labels; this module is the image lattice: sets of names ordered by
    inclusion, with union as join.

    Soundness of the abstraction (proved as QCheck laws shared with
    {!W5_difc.Label} in the test suite): [alpha] is a join-homomorphism
    and monotone —
    [of_label (Label.union a b) = lub (of_label a) (of_label b)] and
    [Label.subset a b] implies [subset (of_label a) (of_label b)].
    When tag names are unique (the platform's convention: names embed
    the owning user), [alpha] is an order-isomorphism onto its image
    and the implications are equivalences; with colliding names the
    abstract domain merely over-approximates, which is the safe
    direction for the analyzer. *)

type t

val bot : t
(** The empty label — abstract [Label.empty]. *)

val singleton : string -> t
val of_names : string list -> t
val of_label : W5_difc.Label.t -> t
(** The abstraction function [alpha]. *)

val mem : string -> t -> bool
val subset : t -> t -> bool
val lub : t -> t -> t
(** Join (set union) — abstract [Label.union], the absorb operation. *)

val glb : t -> t -> t
(** Meet (set intersection) — abstract [Label.inter]. *)

val equal : t -> t -> bool
val is_bot : t -> bool
val cardinal : t -> int

val names : t -> string list
(** Sorted member names. *)

val pp : Format.formatter -> t -> unit
