(** The whole-platform static flow graph (the tentpole of `w5 vet`).

    {!capture} folds every piece of configuration that determines what
    can ever cross the perimeter — account tags and capability sets,
    per-user {!W5_platform.Policy} tables (export rules, app
    enablement, read grants, write delegations), the
    {!W5_platform.App_registry} with its import/embed edges and
    open-vs-closed source, {!W5_os.Kernel} gate registrations
    (declassifiers), and {!W5_platform.Group} memberships — into one
    immutable snapshot over tag {e names} ({!Absdom}).

    The model deliberately over-approximates the runtime:

    - any process may taint itself with any non-restricted secrecy tag
      (self-tainting is always allowed), so the Tag → App edge set is
      dense and only {e restricted} tags carry precision;
    - a restricted tag reaches an app if {e any} viewer/grant
      combination could supply the [t+] capability (read grants are
      per-app; a group tag reaches every app as long as the group has
      a member who might be the viewer);
    - a tag reaches the public network if the owner-direct boilerplate
      applies (always, toward the owner) or its policy routes it
      through a registered gate holding [t-] for it.

    Everything the snapshot exposes is keyed and sorted by name so
    reports render deterministically. *)

open W5_difc
open W5_platform

(** The role a tag plays in the platform's naming conventions. *)
type tag_kind =
  | Secret     (** a user's [<u>.secret] tag *)
  | Read       (** a user's restricted [<u>.read] tag *)
  | Group_tag  (** a group's restricted [group:<name>] tag *)
  | Write      (** a user's [<u>.write] integrity tag *)
  | Other      (** anything else that showed up in a policy or gate *)

type tag_info = {
  tag : Tag.t;
  tag_name : string;
  secrecy : bool;       (** belongs to the secrecy lattice *)
  restricted : bool;
  kind : tag_kind;
  owner : string option;  (** account answering for its export policy *)
  rule : string option;   (** gate the owner's policy routes it through *)
}

type app_info = {
  app_id : string;
  version : string;        (** latest published version *)
  open_source : bool;
  imports : string list;
  embeds : string list;
  enabled_by : string list;
  installs : int;
  vetted : bool;
}

type gate_info = {
  gate : string;
  gate_owner : string;          (** owning principal's name *)
  adds : string list;           (** secrecy tags it holds [t+] for *)
  drops : string list;          (** secrecy tags it holds [t-] for *)
  authorized_for : string list; (** tags some policy routes through it *)
}

type group_info = {
  group_name : string;
  group_tag : string;
  founder : string;
  group_members : string list;
}

type t

val capture : Platform.t -> t
(** Read-only walk of the platform; the platform is not mutated and
    no processes are spawned. Capture the snapshot {e after} all
    configuration changes and {e before} the workload whose audit log
    you intend to check — the soundness claim is about runs whose
    configuration the snapshot saw. *)

val enforcing : t -> bool
val users : t -> string list
val tags : t -> tag_info list
(** Sorted by name; likewise [apps] by id and [gates] by name. *)

val apps : t -> app_info list
val gates : t -> gate_info list
val groups : t -> group_info list

val foreign_minus : t -> (string * string) list
(** [(account, tag)] pairs where an account's capability set carries
    [t-] for a secrecy tag owned by {e another} account — a hole in
    the "declassification lives only in gates" story. *)

val find_tag : t -> string -> tag_info option
val find_gate : t -> string -> gate_info option
val is_app : t -> string -> bool

(** Who performed a runtime action, as classified from the audit log. *)
type holder = App of string | Gate of string | Tcb

(** A three-valued judgment: [Predicted] means the static graph
    contains the edge; [Unpredicted] is a soundness alarm; [Unknown]
    means the tag was minted after the snapshot (counted separately —
    the snapshot cannot speak about it either way). *)
type verdict = Predicted | Unpredicted | Unknown

val can_carry : t -> holder -> string -> verdict
(** May a process of this class ever absorb the named secrecy tag? *)

val may_drop : t -> holder -> string -> verdict
(** May it declassify the tag away? Apps never can; gates only for
    tags in their registered capability set. *)

val may_export : t -> tag:string -> viewer:string option -> verdict
(** May data tainted with [tag] cross the perimeter toward [viewer]?
    Owner-direct boilerplate, or an authorized gate holding [t-]. *)

val absorbable : t -> app:string -> Absdom.t
(** All {e known} secrecy tags reachable by the app — the dense
    non-restricted set plus whatever restricted grants apply. *)

(** Where a secrecy tag's export story ends. *)
type disposition =
  | Owner_only                 (** no rule: only the owner ever sees it *)
  | Via_gate of string         (** routed through a working gate *)
  | Broken of { gate : string; missing : bool }
      (** routed through a gate that is unregistered ([missing]) or
          lacks [t-] for the tag — every export will fail *)

val disposition : t -> tag_info -> disposition

val to_dot : t -> string
(** The static flow graph in Graphviz DOT (same dialect as
    {!W5_obs.Provenance.to_dot}): tags (ellipses; dashed when
    restricted), gates (hexagons), apps (boxes; filled when closed
    source), the public network sink, policy/grant/import edges.
    Dense non-restricted Tag → App edges are elided — a legend node
    says so — because they hold for every pair. *)
