open W5_os

type cell = Syscall.Spec.cell =
  | Subject_secrecy
  | Subject_integrity
  | Subject_caps
  | Object_labels
  | Dir_summary
  | Peer_labels
  | Peer_caps

type write_kind = Syscall.Spec.write_kind = Merge | Assign | Retract

let cell_name = Syscall.Spec.cell_name
let write_kind_name = Syscall.Spec.write_kind_name
let specs = Syscall.Spec.all
let find_spec = Syscall.Spec.find

(* Cross-process aliasing: can a cell named in process A's footprint
   denote the same state as a cell named in process B's? Object and
   directory cells are shared naming (the filesystem is global, and a
   directory node is itself a labeled object, so Object_labels may
   denote a node whose Dir_summary another op consults). A process's
   own Subject_* state is exactly some other process's Peer_* state —
   that is the aliasing that makes cap.grant or spawn interfere with
   the grantee's own label ops. Subject_* against Subject_* of a
   *different* process never aliases: each process owns its cells. *)
let may_alias a b =
  match (a, b) with
  | Object_labels, Object_labels
  | Dir_summary, Dir_summary
  | Object_labels, Dir_summary
  | Dir_summary, Object_labels -> true
  | (Subject_secrecy | Subject_integrity), Peer_labels
  | Peer_labels, (Subject_secrecy | Subject_integrity) -> true
  | Subject_caps, Peer_caps | Peer_caps, Subject_caps -> true
  | Peer_labels, Peer_labels | Peer_caps, Peer_caps -> true
  | _ -> false

(* Write-kind commutativity, the projection of Flow.updates_commute
   onto kinds alone (tag-set operands are not statically known, so
   the Merge/Retract disjointness case conservatively reports false).
   A QCheck law checks this against Flow.updates_commute: whenever
   the kind-level judgment says true, the update-level one must too. *)
let commutes a b =
  match (a, b) with
  | Merge, Merge | Retract, Retract -> true
  | _ -> false

let touches_cell cell (spec : Syscall.Spec.t) =
  List.exists (fun c -> may_alias c cell) spec.Syscall.Spec.reads
  || List.exists (fun (c, _) -> may_alias c cell) spec.Syscall.Spec.writes

let writes_label_state (spec : Syscall.Spec.t) = spec.Syscall.Spec.writes <> []

let write_kinds_on cell (spec : Syscall.Spec.t) =
  List.filter_map
    (fun (c, k) -> if may_alias c cell then Some k else None)
    spec.Syscall.Spec.writes

type conflict = {
  cell : cell;  (** the cell of [a] that the conflict is on *)
  a_op : string;
  b_op : string;
  a_writes : bool;
  b_writes : bool;
  benign : bool;
      (** both sides write and every write-kind pair commutes *)
}

(* All cell-level conflicts between two ops run by *different*
   processes: some cell of [a]'s footprint aliases a cell of [b]'s,
   and at least one side writes its cell. Read/read pairs are not
   conflicts. *)
let conflicts (a : Syscall.Spec.t) (b : Syscall.Spec.t) =
  let cells_of (s : Syscall.Spec.t) =
    List.sort_uniq Stdlib.compare
      (s.Syscall.Spec.reads @ List.map fst s.Syscall.Spec.writes)
  in
  List.filter_map
    (fun cell ->
      let a_kinds = write_kinds_on cell a in
      let b_kinds = write_kinds_on cell b in
      let a_writes = a_kinds <> [] in
      let b_writes =
        b_kinds <> []
        (* b writing any aliasing cell counts even if b never reads it *)
      in
      let b_touches = touches_cell cell b in
      if not b_touches then None
      else if (not a_writes) && not b_writes then None
      else
        let benign =
          a_writes && b_writes
          && List.for_all
               (fun ka -> List.for_all (fun kb -> commutes ka kb) b_kinds)
               a_kinds
        in
        Some
          {
            cell;
            a_op = a.Syscall.Spec.op;
            b_op = b.Syscall.Spec.op;
            a_writes;
            b_writes;
            benign;
          })
    (cells_of a)
