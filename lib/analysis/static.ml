open W5_difc
open W5_os
open W5_platform

type tag_kind = Secret | Read | Group_tag | Write | Other

type tag_info = {
  tag : Tag.t;
  tag_name : string;
  secrecy : bool;
  restricted : bool;
  kind : tag_kind;
  owner : string option;
  rule : string option;
}

type app_info = {
  app_id : string;
  version : string;
  open_source : bool;
  imports : string list;
  embeds : string list;
  enabled_by : string list;
  installs : int;
  vetted : bool;
}

type gate_info = {
  gate : string;
  gate_owner : string;
  adds : string list;
  drops : string list;
  authorized_for : string list;
}

type group_info = {
  group_name : string;
  group_tag : string;
  founder : string;
  group_members : string list;
}

type t = {
  s_enforcing : bool;
  s_users : string list;
  s_tags : tag_info list;
  s_apps : app_info list;
  s_gates : gate_info list;
  s_groups : group_info list;
  s_foreign_minus : (string * string) list;
  tag_tbl : (string, tag_info) Hashtbl.t;
  app_tbl : (string, app_info) Hashtbl.t;
  gate_tbl : (string, gate_info) Hashtbl.t;
  group_by_tag : (string, group_info) Hashtbl.t;
  (* read-protected tag name -> apps its owner granted read access *)
  grants_tbl : (string, string list) Hashtbl.t;
}

let enforcing t = t.s_enforcing
let users t = t.s_users
let tags t = t.s_tags
let apps t = t.s_apps
let gates t = t.s_gates
let groups t = t.s_groups
let foreign_minus t = t.s_foreign_minus
let find_tag t name = Hashtbl.find_opt t.tag_tbl name
let find_gate t name = Hashtbl.find_opt t.gate_tbl name
let is_app t id = Hashtbl.mem t.app_tbl id

(* ---- capture --------------------------------------------------------- *)

let secrecy_only label =
  List.filter (fun tag -> Tag.kind tag = Tag.Secrecy) (Label.to_list label)

let sorted_names tags = List.sort_uniq compare (List.map Tag.name tags)

let capture platform =
  let kernel = Platform.kernel platform in
  let accounts =
    List.sort
      (fun (a : Account.t) b -> compare a.Account.user b.Account.user)
      (Platform.accounts platform)
  in
  let users = List.map (fun (a : Account.t) -> a.Account.user) accounts in
  (* Tags, deduplicated by name (first registration wins; the
     platform's naming conventions keep names unique). *)
  let tag_tbl : (string, tag_info) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let rule_for (account : Account.t option) tag =
    match account with
    | None -> None
    | Some a -> Policy.declassifier_for a.Account.policy ~tag
  in
  let add_tag ?owner ~kind tag =
    let name = Tag.name tag in
    if not (Hashtbl.mem tag_tbl name) then begin
      let info =
        {
          tag;
          tag_name = name;
          secrecy = Tag.kind tag = Tag.Secrecy;
          restricted = Tag.restricted tag;
          kind;
          owner =
            Option.map (fun (a : Account.t) -> a.Account.user) owner;
          rule = rule_for owner tag;
        }
      in
      Hashtbl.replace tag_tbl name info;
      order := name :: !order
    end
  in
  List.iter
    (fun (a : Account.t) ->
      add_tag ~owner:a ~kind:Secret a.Account.secret_tag;
      add_tag ~owner:a ~kind:Write a.Account.write_tag;
      match a.Account.read_tag with
      | Some rt -> add_tag ~owner:a ~kind:Read rt
      | None -> ())
    accounts;
  let group_list =
    List.map
      (fun g ->
        {
          group_name = Group.name g;
          group_tag = Tag.name (Group.tag g);
          founder = Group.founder g;
          group_members = Group.members g;
        })
      (Group.all platform)
  in
  List.iter
    (fun g ->
      add_tag
        ?owner:(Platform.find_account platform (Group.founder g))
        ~kind:Group_tag (Group.tag g))
    (Group.all platform);
  (* Strays: tags only visible through a policy rule or a gate's
     capability set. *)
  let add_stray tag =
    add_tag ?owner:(Platform.owner_of_tag platform tag) ~kind:Other tag
  in
  List.iter
    (fun (a : Account.t) ->
      List.iter (fun (tag, _) -> add_stray tag)
        (Policy.export_rules a.Account.policy))
    accounts;
  let gate_names = Kernel.gate_names kernel in
  List.iter
    (fun name ->
      match Kernel.gate_caps kernel name with
      | None -> ()
      | Some caps ->
          List.iter add_stray (secrecy_only (Capability.Set.addable caps));
          List.iter add_stray (secrecy_only (Capability.Set.droppable caps)))
    gate_names;
  (* Gate table, with per-gate authorizations folded from every
     account's export rules. *)
  let authorized : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Account.t) ->
      List.iter
        (fun (tag, gate) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt authorized gate) in
          Hashtbl.replace authorized gate (Tag.name tag :: prev))
        (Policy.export_rules a.Account.policy))
    accounts;
  let gate_list =
    List.filter_map
      (fun name ->
        match Kernel.gate_caps kernel name with
        | None -> None
        | Some caps ->
            Some
              {
                gate = name;
                gate_owner =
                  (match Kernel.gate_owner kernel name with
                  | Some p -> Principal.name p
                  | None -> "?");
                adds = sorted_names (secrecy_only (Capability.Set.addable caps));
                drops =
                  sorted_names (secrecy_only (Capability.Set.droppable caps));
                authorized_for =
                  List.sort_uniq compare
                    (Option.value ~default:[] (Hashtbl.find_opt authorized name));
              })
      (List.sort compare gate_names)
  in
  (* Apps: latest version of everything in the registry. *)
  let registry = Platform.registry platform in
  let enabled : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Account.t) ->
      List.iter
        (fun app ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt enabled app) in
          Hashtbl.replace enabled app (a.Account.user :: prev))
        (Policy.enabled_apps a.Account.policy))
    accounts;
  let app_list =
    List.filter_map
      (fun (app : App_registry.app) ->
        match App_registry.resolve registry ~id:app.App_registry.id () with
        | None -> None
        | Some (_, v) ->
            Some
              {
                app_id = app.App_registry.id;
                version = v.App_registry.v;
                open_source =
                  (match v.App_registry.source with
                  | App_registry.Open_source _ -> true
                  | App_registry.Closed_binary -> false);
                imports = v.App_registry.imports;
                embeds = v.App_registry.embeds;
                enabled_by =
                  List.sort compare
                    (Option.value ~default:[]
                       (Hashtbl.find_opt enabled app.App_registry.id));
                installs = app.App_registry.installs;
                vetted = Platform.is_vetted platform app.App_registry.id;
              })
      (App_registry.apps registry)
  in
  (* Read grants: restricted read tag -> apps its owner granted. *)
  let grants_tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Account.t) ->
      match a.Account.read_tag with
      | Some rt ->
          Hashtbl.replace grants_tbl (Tag.name rt)
            (Policy.read_grants a.Account.policy)
      | None -> ())
    accounts;
  (* Foreign declassification privilege held outside any gate. *)
  let foreign_minus =
    List.concat_map
      (fun (a : Account.t) ->
        List.filter_map
          (fun tag ->
            match Platform.owner_of_tag platform tag with
            | Some owner when owner.Account.user <> a.Account.user ->
                Some (a.Account.user, Tag.name tag)
            | Some _ | None -> None)
          (secrecy_only (Capability.Set.droppable a.Account.caps)))
      accounts
    |> List.sort_uniq compare
  in
  let tag_list =
    (* every name in [order] was inserted into [tag_tbl] alongside its
       push, so find_opt never actually drops anything *)
    List.sort
      (fun a b -> compare a.tag_name b.tag_name)
      (List.filter_map (Hashtbl.find_opt tag_tbl) (List.rev !order))
  in
  let app_tbl = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace app_tbl a.app_id a) app_list;
  let gate_tbl = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace gate_tbl g.gate g) gate_list;
  let group_by_tag = Hashtbl.create 8 in
  List.iter (fun g -> Hashtbl.replace group_by_tag g.group_tag g) group_list;
  {
    s_enforcing = Kernel.enforcing kernel;
    s_users = users;
    s_tags = tag_list;
    s_apps = app_list;
    s_gates = gate_list;
    s_groups = group_list;
    s_foreign_minus = foreign_minus;
    tag_tbl;
    app_tbl;
    gate_tbl;
    group_by_tag;
    grants_tbl;
  }

(* ---- judgments ------------------------------------------------------- *)

type holder = App of string | Gate of string | Tcb
type verdict = Predicted | Unpredicted | Unknown

let can_carry t holder name =
  if not t.s_enforcing then Predicted
  else
    match find_tag t name with
    | None -> Unknown
    | Some ti ->
        if not ti.restricted then Predicted
        else (
          match holder with
          | Tcb -> Predicted
          | Gate g -> (
              match find_gate t g with
              | None -> Unknown
              | Some gi ->
                  if List.mem name gi.adds then Predicted else Unpredicted)
          | App a -> (
              match Hashtbl.find_opt t.group_by_tag name with
              | Some g when g.group_members <> [] ->
                  (* any member may be the viewer, and member caps flow
                     into whatever app serves them *)
                  Predicted
              | Some _ -> Unpredicted
              | None -> (
                  match Hashtbl.find_opt t.grants_tbl name with
                  | Some granted when List.mem a granted -> Predicted
                  | Some _ | None -> Unpredicted)))

let may_drop t holder name =
  if not t.s_enforcing then Predicted
  else
    match holder with
    | Tcb -> Predicted
    | Gate g -> (
        match find_gate t g with
        | None -> Unknown
        | Some gi -> if List.mem name gi.drops then Predicted else Unpredicted)
    | App _ -> (
        (* application code never receives t-; a successful drop by an
           app is exactly the leak the analyzer exists to catch *)
        match find_tag t name with
        | None -> Unknown
        | Some _ -> Unpredicted)

let may_export t ~tag ~viewer =
  match find_tag t tag with
  | None -> Unknown
  | Some ti ->
      if not t.s_enforcing then Predicted
      else if
        match (ti.owner, viewer) with
        | Some owner, Some v -> owner = v
        | _ -> false
      then Predicted
      else (
        match ti.rule with
        | None -> Unpredicted
        | Some gate -> (
            match find_gate t gate with
            | None -> Unpredicted
            | Some gi ->
                if List.mem tag gi.drops then Predicted else Unpredicted))

let absorbable t ~app =
  List.fold_left
    (fun acc ti ->
      if ti.secrecy && can_carry t (App app) ti.tag_name = Predicted then
        Absdom.lub acc (Absdom.singleton ti.tag_name)
      else acc)
    Absdom.bot t.s_tags

type disposition =
  | Owner_only
  | Via_gate of string
  | Broken of { gate : string; missing : bool }

let disposition t ti =
  match ti.rule with
  | None -> Owner_only
  | Some gate -> (
      match find_gate t gate with
      | None -> Broken { gate; missing = true }
      | Some gi ->
          if List.mem ti.tag_name gi.drops then Via_gate gate
          else Broken { gate; missing = false })

(* ---- DOT rendering --------------------------------------------------- *)

let to_dot t =
  let module Dot = W5_obs.Dot in
  let tag_id name = "t_" ^ Dot.ident name in
  let gate_id name = "g_" ^ Dot.ident name in
  let app_id name = "a_" ^ Dot.ident name in
  let secrecy_tags = List.filter (fun ti -> ti.secrecy) t.s_tags in
  let tag_nodes =
    List.map
      (fun ti ->
        let broken =
          match disposition t ti with Broken _ -> true | _ -> false
        in
        let attrs =
          [ ("shape", "ellipse") ]
          @ (if ti.restricted then [ ("style", "dashed") ] else [])
          @ if broken then [ ("color", "red") ] else []
        in
        Dot.node (tag_id ti.tag_name) ~label:ti.tag_name ~attrs)
      secrecy_tags
  in
  let gate_nodes =
    List.map
      (fun gi ->
        Dot.node (gate_id gi.gate) ~label:gi.gate
          ~attrs:[ ("shape", "hexagon") ])
      t.s_gates
  in
  let app_nodes =
    List.map
      (fun ai ->
        let attrs =
          ("shape", "box")
          ::
          (if ai.open_source then []
           else [ ("style", "filled"); ("fillcolor", "lightgray") ])
        in
        Dot.node (app_id ai.app_id) ~label:ai.app_id ~attrs)
      t.s_apps
  in
  let rule_edges =
    List.filter_map
      (fun ti ->
        match disposition t ti with
        | Owner_only -> None
        | Via_gate gate ->
            Some
              (Dot.edge (tag_id ti.tag_name) (gate_id gate)
                 ~attrs:[ ("label", "policy") ])
        | Broken { gate; missing } ->
            let label = if missing then "broken: no gate" else "broken: no t-" in
            let dst =
              if missing then tag_id ti.tag_name (* self loop on red node *)
              else gate_id gate
            in
            Some
              (Dot.edge (tag_id ti.tag_name) dst
                 ~attrs:
                   [ ("label", label); ("color", "red"); ("fontcolor", "red") ]))
      secrecy_tags
  in
  let export_edges =
    List.filter_map
      (fun gi ->
        if gi.drops = [] then None
        else
          Some
            (Dot.edge (gate_id gi.gate) "public"
               ~attrs:[ ("label", "declassify") ]))
      t.s_gates
  in
  let grant_edges =
    List.concat_map
      (fun ti ->
        if not ti.restricted then []
        else
          match Hashtbl.find_opt t.grants_tbl ti.tag_name with
          | None -> []
          | Some granted ->
              List.filter_map
                (fun app ->
                  if is_app t app then
                    Some
                      (Dot.edge (tag_id ti.tag_name) (app_id app)
                         ~attrs:[ ("label", "t+ grant"); ("style", "dashed") ])
                  else None)
                granted)
      secrecy_tags
  in
  let dep_edges =
    List.concat_map
      (fun ai ->
        List.map
          (fun target ->
            Dot.edge (app_id ai.app_id) (app_id target)
              ~attrs:[ ("label", "imports"); ("style", "dotted") ])
          (List.filter (is_app t) ai.imports)
        @ List.map
            (fun target ->
              Dot.edge (app_id ai.app_id) (app_id target)
                ~attrs:[ ("label", "embeds"); ("style", "dotted") ])
            (List.filter (is_app t) ai.embeds))
      t.s_apps
  in
  let legend =
    Dot.node "_legend"
      ~label:
        "every app may absorb every non-restricted tag\n\
         (dense edges elided); restricted tags shown dashed"
      ~attrs:[ ("shape", "note"); ("style", "dashed") ]
  in
  Dot.digraph "w5_static_flow"
    ((Dot.node "public" ~label:"public network"
        ~attrs:[ ("shape", "doublecircle") ]
     :: tag_nodes)
    @ gate_nodes @ app_nodes @ rule_edges @ export_edges @ grant_edges
    @ dep_edges @ [ legend ])
