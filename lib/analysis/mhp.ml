open W5_os

(* {1 The preemption model}

   PR 9's scheduler suspends a process only when a syscall dispatch
   crosses [Kernel.preempt_point] at entry — never mid-syscall — and
   gate children run nested inside their caller's dispatch, so a gate
   body is atomic with respect to the interleaving. Both facts are
   exported by [Sched] as introspection constants and consumed here
   rather than restated: if the scheduler changes, the model follows
   or the differential-soundness replay turns red. *)

type context = Direct | Gate_body

type step = { ctx : context; op : string }

type program = {
  name : string;
  multiplicity : int;
      (** how many concurrent instances of this archetype may run;
          >= 2 means the program may interleave with itself *)
  steps : step list;
}

type model = {
  programs : program list;
  specs : Syscall.Spec.t list;
  gate_atomic : bool;
      (** from {!Sched.gate_children_atomic}: whether [Gate_body]
          steps are shielded from preemption *)
  entry_only : bool;
      (** from {!Sched.entry_preemption_only}: preemption happens only
          at dispatch entry, so a step's interior is atomic *)
}

let make ?(gate_atomic = Sched.gate_children_atomic)
    ?(entry_only = Sched.entry_preemption_only) programs =
  { programs; specs = Syscall.Spec.all; gate_atomic; entry_only }

let spec_of model op =
  match List.find_opt (fun s -> s.Syscall.Spec.op = op) model.specs with
  | Some s -> Some s
  | None -> None

(* May the scheduler take the CPU away immediately *before* [step]
   runs? Only if the op's dispatch crosses the entry preemption point
   at audit depth 0 — which a gate-body step never does when gate
   children are atomic. Ops whose spec declares [entry_preempt =
   false] (probe-only) are not preemption points at all. *)
let preempt_before model step =
  match spec_of model step.op with
  | None -> false
  | Some spec ->
      spec.Syscall.Spec.entry_preempt
      && (step.ctx = Direct || not model.gate_atomic)

(* {2 May-happen-in-parallel}

   Two steps of different processes may interleave iff the scheduler
   can transfer control between them. With entry-only preemption a
   foreign step can intrude between two steps [i] and [j] of the same
   program exactly when some step in (i, j] is preemptible at entry —
   the CPU is handed over just before that step runs. *)

let may_intrude_between model steps_between_exclusive_then_target =
  List.exists (preempt_before model) steps_between_exclusive_then_target

(* {2 Exhaustive interleaving oracle}

   For tiny configurations (2–3 program instances, a handful of steps
   each) enumerate every schedule the preemption model admits. Used by
   the test suite as ground truth for the static analysis: every
   adjacent cross-instance step pair observable in some schedule must
   be one the analysis considered possible, and vice versa on the
   small configs. *)

type instance = { i_prog : program; i_id : int }

type schedule = (instance * step) list

let instances model =
  List.concat_map
    (fun p -> List.init p.multiplicity (fun i -> { i_prog = p; i_id = i }))
    model.programs

let max_oracle_states = 2_000_000

let interleavings model =
  let insts = Array.of_list (instances model) in
  let n = Array.length insts in
  if n > 3 then
    invalid_arg "Mhp.interleavings: oracle is for <= 3 instances";
  let steps = Array.map (fun i -> Array.of_list i.i_prog.steps) insts in
  let total = Array.fold_left (fun a s -> a + Array.length s) 0 steps in
  if total > 18 then
    invalid_arg "Mhp.interleavings: oracle is for <= 18 total steps";
  let idx = Array.make n 0 in
  let out = ref [] in
  let states = ref 0 in
  (* [running] is the instance currently holding the CPU (-1 at the
     very start, before anyone ran). A switch away from [running] to
     another instance is legal only when [running] is finished or its
     *next* step is preemptible at entry — exactly the scheduler's
     hand-over points. *)
  let rec go running acc =
    incr states;
    if !states > max_oracle_states then
      invalid_arg "Mhp.interleavings: state budget exceeded";
    if Array.for_all2 (fun i s -> i >= Array.length s) idx steps then
      out := List.rev acc :: !out
    else
      for c = 0 to n - 1 do
        if idx.(c) < Array.length steps.(c) then begin
          let step = steps.(c).(idx.(c)) in
          let legal =
            running = -1 || running = c
            || idx.(running) >= Array.length steps.(running)
            ||
            (* the running instance is parked just before its next
               step; that step must be a preemption point for the
               scheduler to have taken the CPU away *)
            preempt_before model steps.(running).(idx.(running))
          in
          if legal then begin
            idx.(c) <- idx.(c) + 1;
            go c ((insts.(c), step) :: acc);
            idx.(c) <- idx.(c) - 1
          end
        end
      done
  in
  go (-1) [];
  !out

(* Cross-instance adjacent pairs observable in at least one admitted
   schedule: the oracle-side notion of "these two ops can interleave".
   Returned as (op of earlier step, op of later step, contexts). *)
let observable_adjacencies model =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun sched ->
      let rec walk = function
        | (ia, sa) :: ((ib, sb) :: _ as rest) ->
            if not (ia.i_prog.name = ib.i_prog.name && ia.i_id = ib.i_id) then
              Hashtbl.replace tbl (sa.op, sa.ctx, sb.op, sb.ctx) ();
            walk rest
        | _ -> ()
      in
      walk sched)
    (interleavings model);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
