open W5_difc
open W5_os

(* severities and the exit-code contract live in Severity, shared with
   `w5 vet --concurrency`, `w5 health`, and the soak CLI *)
type severity = Severity.t = Critical | High | Warning | Info

type finding =
  | Enforcement_off
  | Unguarded_export of { tag : string; holder : string }
  | Broken_rule of { tag : string; gate : string; missing : bool }
  | Foreign_gate of { tag : string; gate : string; gate_owner : string }
  | No_rule of { tag : string }
  | Overbroad_gate of { gate : string; extra : string list }
  | Dead_gate of { gate : string }
  | Closed_cycle of { cycle_members : string list }
  | Dangling_edge of { app : string; edge : string; target : string }

let severity_of = function
  | Enforcement_off | Unguarded_export _ -> Critical
  | Broken_rule _ | Foreign_gate _ -> High
  | No_rule _ | Overbroad_gate _ | Closed_cycle _ -> Warning
  | Dead_gate _ | Dangling_edge _ -> Info

(* report-local rank: 0 = worst, for sorting findings worst-first *)
let severity_rank s = Severity.rank Critical - Severity.rank s
let severity_name = Severity.name

let kind_of = function
  | Enforcement_off -> "enforcement_off"
  | Unguarded_export _ -> "unguarded_export"
  | Broken_rule _ -> "broken_rule"
  | Foreign_gate _ -> "foreign_gate"
  | No_rule _ -> "no_rule"
  | Overbroad_gate _ -> "overbroad_gate"
  | Dead_gate _ -> "dead_gate"
  | Closed_cycle _ -> "closed_cycle"
  | Dangling_edge _ -> "dangling_edge"

let message = function
  | Enforcement_off ->
      "information-flow enforcement is disabled platform-wide: every tag can \
       reach the public network unchecked"
  | Unguarded_export { tag; holder } ->
      Printf.sprintf
        "%s holds declassification privilege (t-) for foreign tag %s — data \
         can cross the perimeter with no declassifier decision"
        holder tag
  | Broken_rule { tag; gate; missing } ->
      if missing then
        Printf.sprintf
          "policy routes %s through gate %s, which is not registered: every \
           export of the tag will fail"
          tag gate
      else
        Printf.sprintf
          "policy routes %s through gate %s, which lacks t- for it: every \
           export of the tag will fail"
          tag gate
  | Foreign_gate { tag; gate; gate_owner } ->
      Printf.sprintf
        "exports of %s are decided by gate %s owned by %s, not the tag's \
         owner — the tag is effectively public to whatever that code approves"
        tag gate gate_owner
  | No_rule { tag } ->
      Printf.sprintf
        "%s has no authorized declassifier: the data is reachable by apps \
         but every export toward a non-owner will be denied"
        tag
  | Overbroad_gate { gate; extra } ->
      Printf.sprintf
        "gate %s holds t- for %s beyond any policy authorization"
        gate
        (String.concat ", " extra)
  | Dead_gate { gate } ->
      Printf.sprintf
        "gate %s is registered but no policy routes any tag through it" gate
  | Closed_cycle { cycle_members } ->
      Printf.sprintf
        "dependency cycle through closed-binary code: %s"
        (String.concat " -> " cycle_members)
  | Dangling_edge { app; edge; target } ->
      Printf.sprintf "%s %ss %s, which is not in the registry" app edge target

(* ---- strongly connected components (Tarjan) -------------------------- *)

let sccs ~nodes ~successors =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  (* invariant-keyed lookup: [strongconnect] assigns index and lowlink
     to a node before ever reading them back, so a miss here is a bug
     in the traversal itself, not an input condition *)
  let tarjan_get tbl v =
    match Hashtbl.find_opt tbl v with
    | Some x -> x
    | None -> invalid_arg "Vet.sccs: unvisited node in Tarjan lookup"
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (tarjan_get lowlink v) (tarjan_get lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (tarjan_get lowlink v) (tarjan_get index w)))
      (successors v);
    if tarjan_get lowlink v = tarjan_get index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !components

(* ---- findings -------------------------------------------------------- *)

let analyze st =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  if not (Static.enforcing st) then emit Enforcement_off;
  List.iter
    (fun (holder, tag) -> emit (Unguarded_export { tag; holder = "account:" ^ holder }))
    (Static.foreign_minus st);
  let secrecy_tags =
    List.filter (fun ti -> ti.Static.secrecy) (Static.tags st)
  in
  List.iter
    (fun (ti : Static.tag_info) ->
      match Static.disposition st ti with
      | Static.Broken { gate; missing } ->
          emit (Broken_rule { tag = ti.Static.tag_name; gate; missing })
      | Static.Via_gate gate -> (
          match (Static.find_gate st gate, ti.Static.owner) with
          | Some gi, Some owner when gi.Static.gate_owner <> owner ->
              emit
                (Foreign_gate
                   {
                     tag = ti.Static.tag_name;
                     gate;
                     gate_owner = gi.Static.gate_owner;
                   })
          | _ -> ())
      | Static.Owner_only ->
          if ti.Static.owner <> None then
            emit (No_rule { tag = ti.Static.tag_name }))
    secrecy_tags;
  List.iter
    (fun (gi : Static.gate_info) ->
      if gi.Static.authorized_for = [] then
        emit (Dead_gate { gate = gi.Static.gate })
      else
        let extra =
          List.filter
            (fun tag -> not (List.mem tag gi.Static.authorized_for))
            gi.Static.drops
        in
        if extra <> [] then emit (Overbroad_gate { gate = gi.Static.gate; extra }))
    (Static.gates st);
  (* Import/embed cycles through closed binaries. *)
  let apps = Static.apps st in
  let nodes = List.map (fun a -> a.Static.app_id) apps in
  let succ_tbl = Hashtbl.create 64 in
  List.iter
    (fun (a : Static.app_info) ->
      Hashtbl.replace succ_tbl a.Static.app_id
        (List.filter (Static.is_app st)
           (List.sort_uniq compare (a.Static.imports @ a.Static.embeds))))
    apps;
  let successors v = Option.value ~default:[] (Hashtbl.find_opt succ_tbl v) in
  let closed id =
    match List.find_opt (fun a -> a.Static.app_id = id) apps with
    | Some a -> not a.Static.open_source
    | None -> false
  in
  List.iter
    (fun component ->
      let cyclic =
        match component with
        | [] -> false
        | [ v ] -> List.mem v (successors v)
        | _ -> true
      in
      if cyclic && List.exists closed component then
        emit (Closed_cycle { cycle_members = List.sort compare component }))
    (sccs ~nodes ~successors);
  List.iter
    (fun (a : Static.app_info) ->
      let dangling edge targets =
        List.iter
          (fun target ->
            if not (Static.is_app st target) then
              emit (Dangling_edge { app = a.Static.app_id; edge; target }))
          targets
      in
      dangling "import" a.Static.imports;
      dangling "embed" a.Static.embeds)
    apps;
  List.stable_sort
    (fun a b -> compare (severity_rank (severity_of a)) (severity_rank (severity_of b)))
    (List.rev !findings)

(* ---- runtime differential pass --------------------------------------- *)

type violation = {
  v_seq : int;
  v_pid : int;
  v_holder : string;
  v_kind : string;
  v_tag : string;
}

type runtime = {
  checked : int;
  predicted : int;
  unknown : int;
  violations : violation list;
}

let holder_name = function
  | Static.App a -> "app:" ^ a
  | Static.Gate g -> "gate:" ^ g
  | Static.Tcb -> "tcb"

let fold_audit st log =
  let classes : (int, Static.holder) Hashtbl.t = Hashtbl.create 256 in
  let holder_of pid =
    Option.value ~default:Static.Tcb (Hashtbl.find_opt classes pid)
  in
  let checked = ref 0 and predicted = ref 0 and unknown = ref 0 in
  let violations = ref [] in
  let note (entry : Audit.entry) kind tag verdict =
    incr checked;
    match verdict with
    | Static.Predicted -> incr predicted
    | Static.Unknown -> incr unknown
    | Static.Unpredicted ->
        violations :=
          {
            v_seq = entry.Audit.seq;
            v_pid = entry.Audit.pid;
            v_holder = holder_name (holder_of entry.Audit.pid);
            v_kind = kind;
            v_tag = tag;
          }
          :: !violations
  in
  Audit.iter log ~f:(fun entry ->
      match entry.Audit.event with
      | Audit.Spawned { child; name; _ } ->
          let cls =
            if Static.is_app st name then Static.App name
            else holder_of entry.Audit.pid
          in
          Hashtbl.replace classes child cls
      | Audit.Gate_invoked { gate; child } ->
          Hashtbl.replace classes child (Static.Gate gate)
      | Audit.Tainted { added; _ } -> (
          match holder_of entry.Audit.pid with
          | Static.Tcb -> ()
          | holder ->
              Label.iter
                (fun tag ->
                  let name = Tag.name tag in
                  note entry "taint" name (Static.can_carry st holder name))
                added)
      | Audit.Declassified { tag; _ } -> (
          match holder_of entry.Audit.pid with
          | Static.Tcb -> ()
          | holder ->
              let name = Tag.name tag in
              note entry "declassify" name (Static.may_drop st holder name))
      | Audit.Label_changed { old_labels; new_labels; decision = Ok () } -> (
          match holder_of entry.Audit.pid with
          | Static.Tcb -> ()
          | holder ->
              let added =
                Label.diff new_labels.Flow.secrecy old_labels.Flow.secrecy
              in
              let dropped =
                Label.diff old_labels.Flow.secrecy new_labels.Flow.secrecy
              in
              Label.iter
                (fun tag ->
                  let name = Tag.name tag in
                  note entry "relabel" name (Static.can_carry st holder name))
                added;
              Label.iter
                (fun tag ->
                  let name = Tag.name tag in
                  note entry "relabel" name (Static.may_drop st holder name))
                dropped)
      | Audit.Export_attempted { destination; labels; decision = Ok () } ->
          let viewer =
            if destination = "anonymous client" then None
            else
              let suffix = "'s browser" in
              if String.ends_with ~suffix destination then
                Some
                  (String.sub destination 0
                     (String.length destination - String.length suffix))
              else None
          in
          Label.iter
            (fun tag ->
              let name = Tag.name tag in
              note entry "export" name (Static.may_export st ~tag:name ~viewer))
            labels.Flow.secrecy
      | Audit.Label_changed _ | Audit.Export_attempted _ | Audit.Flow_checked _
      | Audit.Object_labeled _ | Audit.Sync_applied _ | Audit.Sync_fault _
      | Audit.Sync_recovered _ | Audit.Killed _ | Audit.Quota_hit _
      | Audit.App_note _ ->
          ());
  {
    checked = !checked;
    predicted = !predicted;
    unknown = !unknown;
    violations = List.rev !violations;
  }

(* ---- reports --------------------------------------------------------- *)

type report = {
  static : Static.t;
  findings : finding list;
  runtime : runtime option;
}

let report ?runtime st = { static = st; findings = analyze st; runtime }

let max_severity r =
  let unsound =
    match r.runtime with Some rt -> rt.violations <> [] | None -> false
  in
  List.fold_left
    (fun acc f -> Some (Option.fold ~none:(severity_of f)
                          ~some:(Severity.max_sev (severity_of f)) acc))
    (if unsound then Some Critical else None)
    r.findings

let exit_code r = Severity.exit_code (max_severity r)

let disposition_string st (ti : Static.tag_info) =
  if not ti.Static.secrecy then "integrity"
  else
    match Static.disposition st ti with
    | Static.Owner_only -> "owner-only"
    | Static.Via_gate gate -> "via " ^ gate
    | Static.Broken { gate; missing } ->
        if missing then "broken: " ^ gate ^ " missing"
        else "broken: " ^ gate ^ " lacks t-"

let count_severity findings sev =
  List.length (List.filter (fun f -> severity_of f = sev) findings)

(* ---- JSON ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let js s = "\"" ^ json_escape s ^ "\""
let jbool b = if b then "true" else "false"
let jlist items = "[" ^ String.concat ", " items ^ "]"
let jstrings items = jlist (List.map js items)

let to_json r =
  let st = r.static in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let array_block name render items next =
    if items = [] then line "  %s: [],%s" (js name) next
    else begin
      line "  %s: [" (js name);
      let n = List.length items in
      List.iteri
        (fun i item ->
          line "    {%s}%s" (render item) (if i = n - 1 then "" else ","))
        items;
      line "  ],%s" next
    end
  in
  line "{";
  line "  \"schema\": \"w5.vet/1\",";
  line "  \"enforcing\": %s," (jbool (Static.enforcing st));
  let fs = r.findings in
  line "  \"summary\": {";
  line "    \"users\": %d, \"apps\": %d, \"gates\": %d, \"tags\": %d, \"groups\": %d,"
    (List.length (Static.users st))
    (List.length (Static.apps st))
    (List.length (Static.gates st))
    (List.length (Static.tags st))
    (List.length (Static.groups st));
  line "    \"critical\": %d, \"high\": %d, \"warning\": %d, \"info\": %d"
    (count_severity fs Critical) (count_severity fs High)
    (count_severity fs Warning) (count_severity fs Info);
  line "  },";
  array_block "apps"
    (fun (a : Static.app_info) ->
      String.concat ", "
        [
          Printf.sprintf "\"id\": %s" (js a.Static.app_id);
          Printf.sprintf "\"version\": %s" (js a.Static.version);
          Printf.sprintf "\"open_source\": %s" (jbool a.Static.open_source);
          Printf.sprintf "\"vetted\": %s" (jbool a.Static.vetted);
          Printf.sprintf "\"installs\": %d" a.Static.installs;
          Printf.sprintf "\"imports\": %s" (jstrings a.Static.imports);
          Printf.sprintf "\"embeds\": %s" (jstrings a.Static.embeds);
          Printf.sprintf "\"enabled_by\": %s" (jstrings a.Static.enabled_by);
        ])
    (Static.apps st) "";
  array_block "tags"
    (fun (ti : Static.tag_info) ->
      String.concat ", "
        [
          Printf.sprintf "\"name\": %s" (js ti.Static.tag_name);
          Printf.sprintf "\"restricted\": %s" (jbool ti.Static.restricted);
          Printf.sprintf "\"owner\": %s"
            (match ti.Static.owner with None -> "null" | Some o -> js o);
          Printf.sprintf "\"disposition\": %s" (js (disposition_string st ti));
        ])
    (Static.tags st) "";
  array_block "gates"
    (fun (gi : Static.gate_info) ->
      String.concat ", "
        [
          Printf.sprintf "\"name\": %s" (js gi.Static.gate);
          Printf.sprintf "\"owner\": %s" (js gi.Static.gate_owner);
          Printf.sprintf "\"clears\": %s" (jstrings gi.Static.drops);
          Printf.sprintf "\"absorbs\": %s" (jstrings gi.Static.adds);
          Printf.sprintf "\"authorized_for\": %s"
            (jstrings gi.Static.authorized_for);
        ])
    (Static.gates st) "";
  array_block "findings"
    (fun f ->
      String.concat ", "
        [
          Printf.sprintf "\"severity\": %s" (js (severity_name (severity_of f)));
          Printf.sprintf "\"kind\": %s" (js (kind_of f));
          Printf.sprintf "\"message\": %s" (js (message f));
        ])
    r.findings "";
  (match r.runtime with
  | None -> line "  \"runtime\": null"
  | Some rt ->
      line "  \"runtime\": {";
      line "    \"checked\": %d, \"predicted\": %d, \"unknown\": %d," rt.checked
        rt.predicted rt.unknown;
      if rt.violations = [] then line "    \"violations\": []"
      else begin
        line "    \"violations\": [";
        let n = List.length rt.violations in
        List.iteri
          (fun i v ->
            line "      {\"seq\": %d, \"pid\": %d, \"holder\": %s, \"kind\": %s, \"tag\": %s}%s"
              v.v_seq v.v_pid (js v.v_holder) (js v.v_kind) (js v.v_tag)
              (if i = n - 1 then "" else ","))
          rt.violations;
        line "    ]"
      end;
      line "  }");
  line "}";
  Buffer.contents b

(* ---- text ------------------------------------------------------------ *)

let to_text r =
  let st = r.static in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "w5 vet — static label-flow analysis";
  line "platform: %d users, %d apps, %d gates, %d tags, %d groups; enforcement %s"
    (List.length (Static.users st))
    (List.length (Static.apps st))
    (List.length (Static.gates st))
    (List.length (Static.tags st))
    (List.length (Static.groups st))
    (if Static.enforcing st then "on" else "OFF");
  line "";
  (match r.findings with
  | [] -> line "findings: none"
  | fs ->
      line "findings (%d):" (List.length fs);
      List.iter
        (fun f -> line "  [%s] %s" (severity_name (severity_of f)) (message f))
        fs);
  line "";
  line "tags:";
  List.iter
    (fun (ti : Static.tag_info) ->
      if ti.Static.secrecy then
        line "  %-28s %s%s" ti.Static.tag_name (disposition_string st ti)
          (if ti.Static.restricted then "  (restricted)" else ""))
    (Static.tags st);
  line "";
  line "gates:";
  List.iter
    (fun (gi : Static.gate_info) ->
      line "  %-32s clears {%s}  authorized for {%s}" gi.Static.gate
        (String.concat ", " gi.Static.drops)
        (String.concat ", " gi.Static.authorized_for))
    (Static.gates st);
  (match r.runtime with
  | None -> ()
  | Some rt ->
      line "";
      line "runtime (audit log vs. static graph):";
      line "  %d flow edges checked: %d predicted, %d on post-snapshot tags, %d UNPREDICTED"
        rt.checked rt.predicted rt.unknown
        (List.length rt.violations);
      List.iter
        (fun v ->
          line "  !! #%d pid=%d %s %s %s" v.v_seq v.v_pid v.v_holder v.v_kind
            v.v_tag)
        rt.violations);
  Buffer.contents b

(* ---- metrics --------------------------------------------------------- *)

(* Finding counts by severity — label values are the closed severity
   set, so no user byte can leak through the exposition (the canary
   sweep in the test suite asserts this). *)
let export_metrics registry r =
  let g =
    W5_obs.Metrics.gauge registry "w5_vet_findings_total"
      ~help:"Vet findings by severity at the last analysis"
  in
  List.iter
    (fun s ->
      W5_obs.Metrics.set g
        ~labels:[ ("severity", Severity.name s) ]
        (count_severity r.findings s))
    Severity.all
