type t = Critical | High | Warning | Info

let rank = function Critical -> 3 | High -> 2 | Warning -> 1 | Info -> 0

let name = function
  | Critical -> "critical"
  | High -> "high"
  | Warning -> "warning"
  | Info -> "info"

let all = [ Critical; High; Warning; Info ]
let compare a b = Int.compare (rank a) (rank b)
let max_sev a b = if rank a >= rank b then a else b

let worst sevs =
  List.fold_left
    (fun acc s ->
      match acc with None -> Some s | Some a -> Some (max_sev a s))
    None sevs

(* The one exit-code contract every judging CLI shares (`w5 vet`,
   `w5 vet --concurrency`, `w5 health`, `w5 soak`): exit 1 stays
   reserved for tool errors, so findings start at 2. *)
let exit_code = function
  | None | Some Info -> 0
  | Some Warning -> 2
  | Some High -> 3
  | Some Critical -> 4

let of_health_severity = function
  | 0 -> None
  | 1 | 2 -> Some Warning
  | _ -> Some High
