(** Race/TOCTOU detector over the may-happen-in-parallel model.

    [analyze] walks the archetype programs of a {!Mhp.model} and
    reports, in the established vet style (ranked findings, severity
    exit codes):

    - {b stale flow checks} ([High]): a step whose declared dependency
      is not revalidated inside its own dispatch, with the check
      separated from the act by a preemption point and a foreign MHP
      writer able to rewrite the cell in between — the classic
      check-then-act TOCTOU;
    - {b atomicity holes} ([Critical]): a gate-body step writing label
      state while preemption can reach inside the gate region (never
      under the real scheduler, whose gate children are atomic — the
      detector stays live for hypothetical models);
    - {b benign commutes} ([Info]): conflicting write/write pairs
      proven order-independent by the join-semilattice laws
      ({!Footprint.commutes}).

    [fold_audit] is the differential-soundness half: replay a real
    scheduler/soak audit log and require every observed cross-thread
    label conflict to lie on the model's predicted surface. *)

type finding =
  | Stale_flow_check of {
      program : string;
      check_op : string;
      act_op : string;
      cell : Footprint.cell;
      writer_program : string;
      writer_op : string;
    }
  | Atomicity_hole of {
      program : string;
      op : string;
      cell : Footprint.cell;
    }
  | Benign_commute of {
      cell : Footprint.cell;
      prog_a : string;
      op_a : string;
      prog_b : string;
      op_b : string;
      kind_a : Footprint.write_kind;
      kind_b : Footprint.write_kind;
    }

val severity_of : finding -> Severity.t
val kind_of : finding -> string
val message : finding -> string

type report = {
  model : Mhp.model;
  findings : finding list;
  pairs_examined : int;
  pairs_ordered : int;
  pairs_revalidated : int;
}

val analyze : Mhp.model -> report
val worst : report -> Severity.t option
val exit_code : report -> int

val mhp_steps :
  Mhp.model -> Mhp.step array -> int -> Mhp.step array -> int -> bool
(** Can step [i] of one instance and step [j] of a distinct instance
    end up adjacent in some admitted schedule (either order)? Exposed
    so the exhaustive-oracle test can compare this judgment against
    {!Mhp.interleavings} directly. *)

val predicted_cells : Mhp.model -> Footprint.cell list
(** The cells on which the model admits any cross-instance conflict —
    the predicted interference surface. *)

val model_of_static : Static.t -> Mhp.model
(** Archetype programs (app handler, declassifier gate body, owner
    session) with multiplicities taken from the snapshot, under the
    real scheduler's preemption constants. *)

val seed_toctou : Mhp.model -> Mhp.model
(** The deliberately-broken variant for CI: adds a cached-writer
    program whose [fs.write] spec is nerfed to revalidate nothing —
    the shape of a response cache trusting a pre-preemption check.
    [analyze] must report a [Stale_flow_check] (exit 3) on it. *)

(** {2 Differential replay} *)

type replay = {
  events_seen : int;
  threads_seen : int;
  interleavings_observed : int;
  conflicts_observed : int;
  unpredicted : string list;
  atomic_violations : string list;
}

val fold_audit : Mhp.model -> W5_os.Audit.log -> replay
(** Replay an audit log: gate children are folded into their caller's
    thread; each same-thread gap with foreign events inside is an
    observed interleaving; label conflicts between the intruder and
    the gap ends must be on {!predicted_cells}' surface, and nothing
    may intrude between two gate-atomic events. *)

val replay_worst : replay -> Severity.t option
val replay_exit_code : replay -> int

(** {2 Rendering and metrics} *)

val to_text : report -> string
val to_json : report -> string
(** Schema ["w5.interfere/1"]; deterministic field order. *)

val to_dot : report -> string
val replay_to_text : replay -> string

val export_metrics : W5_obs.Metrics.t -> report -> unit
(** Publish [w5_interfere_findings_total{severity}] gauges — label
    values are the closed severity set, never user data. *)
