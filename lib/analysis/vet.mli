(** Findings over a {!Static} snapshot, the runtime differential
    soundness pass, and the `w5 vet` report renderers. *)

(** Ranked worst-first. [Critical] means data can cross the perimeter
    with no declassifier decision at all; [High] means an export path
    is misconfigured in a way that either fails every request or
    hands the decision to foreign code; [Warning] flags latent policy
    gaps; [Info] is hygiene. Re-exported from {!Severity}, the shared
    home of the severity→exit-code contract. *)
type severity = Severity.t = Critical | High | Warning | Info

type finding =
  | Enforcement_off
      (** the kernel is not enforcing flows — the perimeter is open *)
  | Unguarded_export of { tag : string; holder : string }
      (** a non-gate capability set carries [t-] for a foreign tag *)
  | Broken_rule of { tag : string; gate : string; missing : bool }
      (** policy routes the tag through a gate that is unregistered
          ([missing]) or lacks [t-] — every export will fail *)
  | Foreign_gate of { tag : string; gate : string; gate_owner : string }
      (** the authorized gate is owned by a different principal: the
          tag is effectively public to whatever that code approves *)
  | No_rule of { tag : string }
      (** an owned, reachable tag with no declassifier: every export
          toward a non-owner is denied at runtime *)
  | Overbroad_gate of { gate : string; extra : string list }
      (** the gate holds [t-] for tags no policy routes through it *)
  | Dead_gate of { gate : string }
      (** registered but authorized for nothing *)
  | Closed_cycle of { cycle_members : string list }
      (** an import/embed cycle passing through a closed binary —
          unauditable mutual dependence *)
  | Dangling_edge of { app : string; edge : string; target : string }
      (** an import/embed names an app the registry does not know *)

val severity_of : finding -> severity
val message : finding -> string

val analyze : Static.t -> finding list
(** All findings, ranked most severe first (stable within severity). *)

(** {1 Differential soundness: runtime vs. static} *)

type violation = {
  v_seq : int;     (** audit sequence number of the offending entry *)
  v_pid : int;
  v_holder : string;  (** ["app:<id>"], ["gate:<name>"] or ["tcb"] *)
  v_kind : string;    (** ["taint"], ["declassify"], ["relabel"], ["export"] *)
  v_tag : string;
}

type runtime = {
  checked : int;    (** runtime flow edges compared against the graph *)
  predicted : int;
  unknown : int;    (** edges on tags minted after the snapshot *)
  violations : violation list;  (** must be empty: static ⊇ dynamic *)
}

val fold_audit : Static.t -> W5_os.Audit.log -> runtime
(** Classify every pid from [Spawned]/[Gate_invoked] events (an app
    process is spawned under its app id; descendants inherit; a gate
    invocation reclassifies the child), then check each observed flow
    edge — taint absorptions, declassifications, successful relabels,
    allowed exports — against the static judgments. TCB-classified
    processes are skipped except at the perimeter, where every allowed
    export is checked regardless of who carried it. *)

(** {1 Reports} *)

type report = {
  static : Static.t;
  findings : finding list;
  runtime : runtime option;
}

val report : ?runtime:runtime -> Static.t -> report

val max_severity : report -> severity option
(** [None] when there are no findings and no runtime violations; a
    runtime violation counts as [Critical]. *)

val exit_code : report -> int
(** Severity-based process exit status: 0 clean or [Info] only,
    2 [Warning], 3 [High], 4 [Critical] or runtime unsoundness. *)

val to_text : report -> string
val to_json : report -> string
(** Deterministic (sorted, nameless-of-runtime-ids) rendering — the CI
    golden file is a byte-for-byte diff of this output. *)

val export_metrics : W5_obs.Metrics.t -> report -> unit
(** Publish [w5_vet_findings_total{severity}] gauges. Label values are
    the closed severity set — never tag, app, or user names — so no
    user byte can leak through the metrics exposition (asserted by the
    canary sweep in the test suite). *)
