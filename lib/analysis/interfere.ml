open W5_os
open W5_obs

(* {1 Findings} *)

type finding =
  | Stale_flow_check of {
      program : string;
      check_op : string;
      act_op : string;
      cell : Footprint.cell;
      writer_program : string;
      writer_op : string;
    }
  | Atomicity_hole of {
      program : string;
      op : string;
      cell : Footprint.cell;
    }
  | Benign_commute of {
      cell : Footprint.cell;
      prog_a : string;
      op_a : string;
      prog_b : string;
      op_b : string;
      kind_a : Footprint.write_kind;
      kind_b : Footprint.write_kind;
    }

let severity_of = function
  | Stale_flow_check _ -> Severity.High
  | Atomicity_hole _ -> Severity.Critical
  | Benign_commute _ -> Severity.Info

let kind_of = function
  | Stale_flow_check _ -> "stale_flow_check"
  | Atomicity_hole _ -> "atomicity_hole"
  | Benign_commute _ -> "benign_commute"

let message = function
  | Stale_flow_check { program; check_op; act_op; cell; writer_program;
                       writer_op } ->
      Printf.sprintf
        "%s: %s checks %s, then %s acts on it without revalidating across \
         a preemption point; %s/%s can rewrite it in between"
        program check_op
        (Footprint.cell_name cell)
        act_op writer_program writer_op
  | Atomicity_hole { program; op; cell } ->
      Printf.sprintf
        "%s: gate-body %s writes %s but gate children are not \
         preemption-shielded"
        program op
        (Footprint.cell_name cell)
  | Benign_commute { cell; prog_a; op_a; prog_b; op_b; kind_a; kind_b } ->
      Printf.sprintf "%s/%s and %s/%s both write %s but %s/%s commute"
        prog_a op_a prog_b op_b
        (Footprint.cell_name cell)
        (Footprint.write_kind_name kind_a)
        (Footprint.write_kind_name kind_b)

(* {1 The analysis} *)

type report = {
  model : Mhp.model;
  findings : finding list;  (** worst first, then by message *)
  pairs_examined : int;
      (** cross-instance step pairs the MHP model says can interleave *)
  pairs_ordered : int;
      (** conflicting write/write pairs that do not commute — safe only
          because each dispatch is atomic, so they serialize *)
  pairs_revalidated : int;
      (** read/write pairs where the reader's op revalidates the cell
          inside its own dispatch, closing the check-to-act window *)
}

let worst report =
  Severity.worst (List.map severity_of report.findings)

let exit_code report = Severity.exit_code (worst report)

(* step position helpers over one program's step array *)
let can_handoff_after model steps i =
  i + 1 >= Array.length steps || Mhp.preempt_before model steps.(i + 1)

let can_park_at model steps j =
  j = 0 || Mhp.preempt_before model steps.(j)

(* Can step [i] of an [a]-instance and step [j] of a distinct
   [b]-instance end up adjacent in some admitted schedule (either
   order)? This is exactly the oracle's hand-over rule: the CPU
   leaves an instance only when its next step is preemptible (or it
   finished), and lands on an instance parked at its first step or a
   preemptible one. *)
let mhp_steps model a_steps i b_steps j =
  (can_handoff_after model a_steps i && can_park_at model b_steps j)
  || (can_handoff_after model b_steps j && can_park_at model a_steps i)

let cross_instance (a : Mhp.program) (b : Mhp.program) =
  a.Mhp.name <> b.Mhp.name || a.Mhp.multiplicity >= 2

let analyze (model : Mhp.model) =
  let programs = Array.of_list model.Mhp.programs in
  let steps_of p = Array.of_list p.Mhp.steps in
  let spec_of (s : Mhp.step) = Mhp.spec_of model s.Mhp.op in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let pairs_examined = ref 0 in
  let pairs_ordered = ref 0 in
  let pairs_revalidated = ref 0 in
  (* Atomicity holes: a gate-body step that writes label state while
     preemption can reach inside the gate region. *)
  Array.iter
    (fun (p : Mhp.program) ->
      List.iter
        (fun (s : Mhp.step) ->
          if s.Mhp.ctx = Mhp.Gate_body && Mhp.preempt_before model s then
            match spec_of s with
            | None -> ()
            | Some spec ->
                List.iter
                  (fun (cell, _) ->
                    emit (Atomicity_hole { program = p.Mhp.name; op = s.Mhp.op; cell }))
                  spec.Syscall.Spec.writes)
        p.Mhp.steps)
    programs;
  (* Stale flow checks: within one program, a dependency consumed at
     step [j] that is not revalidated there, checked at some earlier
     step [i], with a preemption point in between and a foreign
     MHP writer for the cell. *)
  Array.iter
    (fun (p : Mhp.program) ->
      let steps = steps_of p in
      Array.iteri
        (fun j (sj : Mhp.step) ->
          match spec_of sj with
          | None -> ()
          | Some spec_j ->
              let unrevalidated =
                List.filter
                  (fun c ->
                    not (List.mem c spec_j.Syscall.Spec.revalidates))
                  spec_j.Syscall.Spec.depends
              in
              List.iter
                (fun cell ->
                  (* earliest earlier step reading an alias of [cell]
                     is the check the action implicitly trusts *)
                  let check = ref None in
                  Array.iteri
                    (fun i (si : Mhp.step) ->
                      if i < j && !check = None then
                        match spec_of si with
                        | Some spec_i
                          when List.exists
                                 (fun c -> Footprint.may_alias c cell)
                                 spec_i.Syscall.Spec.reads ->
                            check := Some (i, si)
                        | _ -> ())
                    steps;
                  match !check with
                  | None -> ()
                  | Some (i, si) ->
                      let between =
                        Array.to_list (Array.sub steps (i + 1) (j - i))
                      in
                      if Mhp.may_intrude_between model between then
                        (* every foreign MHP writer of an alias *)
                        Array.iter
                          (fun (q : Mhp.program) ->
                            if cross_instance p q then
                              let q_steps = steps_of q in
                              Array.iteri
                                (fun jq (sq : Mhp.step) ->
                                  if can_park_at model q_steps jq then
                                    match spec_of sq with
                                    | Some spec_q
                                      when List.exists
                                             (fun (c, _) ->
                                               Footprint.may_alias c cell)
                                             spec_q.Syscall.Spec.writes ->
                                        emit
                                          (Stale_flow_check
                                             {
                                               program = p.Mhp.name;
                                               check_op = si.Mhp.op;
                                               act_op = sj.Mhp.op;
                                               cell;
                                               writer_program = q.Mhp.name;
                                               writer_op = sq.Mhp.op;
                                             })
                                    | _ -> ())
                                q_steps)
                          programs)
                unrevalidated)
        steps)
    programs;
  (* The cross-instance conflict surface: every MHP step pair with a
     footprint conflict, classified. *)
  let n = Array.length programs in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let pa = programs.(a) and pb = programs.(b) in
      if cross_instance pa pb then begin
        let sa = steps_of pa and sb = steps_of pb in
        Array.iteri
          (fun i (si : Mhp.step) ->
            Array.iteri
              (fun j (sj : Mhp.step) ->
                (* same program: unordered pairs once *)
                if (a <> b || j >= i) && mhp_steps model sa i sb j then
                  match (spec_of si, spec_of sj) with
                  | Some spec_i, Some spec_j ->
                      List.iter
                        (fun (c : Footprint.conflict) ->
                          incr pairs_examined;
                          if c.Footprint.benign then begin
                            match
                              ( Footprint.write_kinds_on c.Footprint.cell
                                  spec_i,
                                Footprint.write_kinds_on c.Footprint.cell
                                  spec_j )
                            with
                            | ka :: _, kb :: _ ->
                                emit
                                  (Benign_commute
                                     {
                                       cell = c.Footprint.cell;
                                       prog_a = pa.Mhp.name;
                                       op_a = si.Mhp.op;
                                       prog_b = pb.Mhp.name;
                                       op_b = sj.Mhp.op;
                                       kind_a = ka;
                                       kind_b = kb;
                                     })
                            | _ -> ()
                          end
                          else if
                            c.Footprint.a_writes && c.Footprint.b_writes
                          then incr pairs_ordered
                          else incr pairs_revalidated)
                        (Footprint.conflicts spec_i spec_j)
                  | _ -> ())
              sb)
          sa
      end
    done
  done;
  let dedup l =
    List.sort_uniq Stdlib.compare l
  in
  let ranked =
    List.stable_sort
      (fun x y ->
        match
          Int.compare
            (Severity.rank (severity_of y))
            (Severity.rank (severity_of x))
        with
        | 0 -> String.compare (message x) (message y)
        | c -> c)
      (dedup !findings)
  in
  {
    model;
    findings = ranked;
    pairs_examined = !pairs_examined;
    pairs_ordered = !pairs_ordered;
    pairs_revalidated = !pairs_revalidated;
  }

(* The cells on which the model admits any cross-instance conflict:
   the predicted interference surface the differential replay checks
   observed conflicts against. *)
let predicted_cells (model : Mhp.model) =
  let cells = ref [] in
  let programs = Array.of_list model.Mhp.programs in
  let steps_of p = Array.of_list p.Mhp.steps in
  let n = Array.length programs in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let pa = programs.(a) and pb = programs.(b) in
      if cross_instance pa pb then
        let sa = steps_of pa and sb = steps_of pb in
        Array.iteri
          (fun i (si : Mhp.step) ->
            Array.iteri
              (fun j (sj : Mhp.step) ->
                if (a <> b || j >= i) && mhp_steps model sa i sb j then
                  match (Mhp.spec_of model si.Mhp.op, Mhp.spec_of model sj.Mhp.op) with
                  | Some spec_i, Some spec_j ->
                      List.iter
                        (fun (c : Footprint.conflict) ->
                          cells := c.Footprint.cell :: !cells)
                        (Footprint.conflicts spec_i spec_j)
                  | _ -> ())
              sb)
          sa
    done
  done;
  List.sort_uniq Stdlib.compare !cells

(* {1 Archetype model from a static snapshot}

   Three straight-line program shapes cover what the showcase platform
   actually runs: an app request handler (reads, tainting reads, IPC,
   appends, a gate call, a response), a declassifier gate body, and an
   owner session doing policy surgery (relabels, grants, label sets).
   Multiplicities come from the snapshot so bigger platforms widen the
   self-interference surface. *)

let model_of_static st =
  let napps = List.length (Static.apps st) in
  let ngates = List.length (Static.gates st) in
  let nusers = List.length (Static.users st) in
  let clamp lo hi v = max lo (min hi v) in
  let app =
    {
      Mhp.name = "app";
      multiplicity = clamp 2 8 napps;
      steps =
        List.map
          (fun op -> { Mhp.ctx = Mhp.Direct; op })
          [ "fs.stat"; "fs.read"; "fs.read_taint"; "ipc.recv"; "label.taint";
            "fs.create"; "fs.append"; "gate.invoke"; "proc.respond" ];
    }
  in
  let gate =
    {
      Mhp.name = "declassifier-gate";
      multiplicity = clamp 1 4 ngates;
      steps =
        List.map
          (fun op -> { Mhp.ctx = Mhp.Gate_body; op })
          [ "label.declassify"; "proc.respond" ];
    }
  in
  let owner =
    {
      Mhp.name = "owner-session";
      multiplicity = clamp 1 4 nusers;
      steps =
        List.map
          (fun op -> { Mhp.ctx = Mhp.Direct; op })
          [ "fs.stat"; "fs.relabel"; "cap.grant"; "label.set" ];
    }
  in
  Mhp.make (app :: (if ngates > 0 then [ gate ] else []) @ [ owner ])

(* The deliberately-broken variant CI proves the detector against: a
   writer whose object-labels dependency is *not* revalidated inside
   its dispatch — the exact shape a response/permission cache would
   have if it trusted a pre-preemption flow check (ROADMAP item 3's
   cache, done wrong). *)
let seed_toctou (model : Mhp.model) =
  let specs =
    List.map
      (fun (s : Syscall.Spec.t) ->
        if s.Syscall.Spec.op = "fs.write" then
          { s with Syscall.Spec.revalidates = [] }
        else s)
      model.Mhp.specs
  in
  let cached_writer =
    {
      Mhp.name = "cached-writer";
      multiplicity = 2;
      steps =
        List.map
          (fun op -> { Mhp.ctx = Mhp.Direct; op })
          [ "fs.stat"; "fs.write" ];
    }
  in
  {
    model with
    Mhp.specs;
    Mhp.programs = model.Mhp.programs @ [ cached_writer ];
  }

(* {1 Differential replay}

   Replay a real (PR 9) scheduler/soak audit log against the model:
   every observed cross-thread conflict on a label cell must be on the
   model's predicted interference surface, and nothing may intrude
   into a gate-atomic region. A conflict observed that the static
   model called impossible is a soundness alarm. *)

type replay = {
  events_seen : int;
  threads_seen : int;
  interleavings_observed : int;
      (** same-thread gaps with at least one foreign event inside *)
  conflicts_observed : int;
      (** cross-thread same-instance label conflicts in those gaps *)
  unpredicted : string list;
      (** observed conflicts off the predicted surface (soundness
          alarms) — deduplicated descriptions *)
  atomic_violations : string list;
      (** foreign events inside a gate-atomic region *)
}

let replay_worst r =
  if r.unpredicted <> [] || r.atomic_violations <> [] then
    Some Severity.Critical
  else None

let replay_exit_code r = Severity.exit_code (replay_worst r)

(* cell instances observed at runtime: objects are keyed by path,
   subject label state by pid *)
type inst = Obj of string | Subj of int

type access = { a_inst : inst; a_write : Footprint.write_kind option }

let accesses_of pid (ev : Audit.event) : access list =
  match ev with
  | Audit.Tainted { subject; _ } ->
      { a_inst = Subj pid; a_write = Some Footprint.Merge }
      :: (match subject with
         | Audit.File p -> [ { a_inst = Obj p; a_write = None } ]
         | Audit.Peer q -> [ { a_inst = Subj q; a_write = None } ]
         | _ -> [])
  | Audit.Declassified _ ->
      [ { a_inst = Subj pid; a_write = Some Footprint.Retract } ]
  | Audit.Label_changed { decision = Ok (); _ } ->
      [ { a_inst = Subj pid; a_write = Some Footprint.Assign } ]
  | Audit.Label_changed { decision = Error _; _ } ->
      [ { a_inst = Subj pid; a_write = None } ]
  | Audit.Object_labeled { path; _ } ->
      [ { a_inst = Obj path; a_write = Some Footprint.Assign } ]
  | Audit.Flow_checked { subject; _ } ->
      { a_inst = Subj pid; a_write = None }
      :: (match subject with
         | Audit.File p -> [ { a_inst = Obj p; a_write = None } ]
         | Audit.Peer q -> [ { a_inst = Subj q; a_write = None } ]
         | _ -> [])
  | Audit.Export_attempted _ -> [ { a_inst = Subj pid; a_write = None } ]
  | Audit.Spawned { child; _ } ->
      [ { a_inst = Subj child; a_write = Some Footprint.Assign } ]
  | _ -> []

let fold_audit (model : Mhp.model) log =
  let predicted = predicted_cells model in
  let covers_subject =
    (* a subject/peer-labels conflict is predicted if any peer-aliased
       or subject cell is on the surface *)
    List.exists
      (fun c ->
        match c with
        | Footprint.Peer_labels | Footprint.Subject_secrecy
        | Footprint.Subject_integrity | Footprint.Peer_caps
        | Footprint.Subject_caps -> true
        | _ -> false)
      predicted
  and covers_object =
    List.exists
      (fun c ->
        match c with
        | Footprint.Object_labels | Footprint.Dir_summary -> true
        | _ -> false)
      predicted
  in
  (* thread assignment: a gate child belongs to its caller's thread
     (and is gate-atomic); everything else is its own thread *)
  let thread_of_pid = Hashtbl.create 64 in
  let gate_pids = Hashtbl.create 16 in
  let thread_of pid =
    match Hashtbl.find_opt thread_of_pid pid with
    | Some t -> t
    | None -> pid
  in
  let entries = Audit.entries log in
  List.iter
    (fun (e : Audit.entry) ->
      match e.Audit.event with
      | Audit.Gate_invoked { child; _ } ->
          Hashtbl.replace thread_of_pid child (thread_of e.Audit.pid);
          Hashtbl.replace gate_pids child ()
      | _ -> ())
    entries;
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let tid = Array.map (fun (e : Audit.entry) -> thread_of e.Audit.pid) arr in
  let atomic =
    Array.map
      (fun (e : Audit.entry) ->
        Hashtbl.mem gate_pids e.Audit.pid
        ||
        match e.Audit.event with
        | Audit.Gate_invoked _ -> true
        | _ -> false)
      arr
  in
  let threads = Hashtbl.create 64 in
  Array.iter (fun t -> Hashtbl.replace threads t ()) tid;
  let interleavings = ref 0 in
  let conflicts = ref 0 in
  let unpredicted = ref [] in
  let atomic_violations = ref [] in
  let note_unpredicted d =
    if not (List.mem d !unpredicted) then unpredicted := d :: !unpredicted
  in
  let note_violation d =
    if not (List.mem d !atomic_violations) then
      atomic_violations := d :: !atomic_violations
  in
  (* walk each thread's consecutive event pairs; examine the foreign
     events inside each gap *)
  let last_of_thread = Hashtbl.create 64 in
  for j = 0 to n - 1 do
    let t = tid.(j) in
    (match Hashtbl.find_opt last_of_thread t with
    | Some i when j > i + 1 ->
        (* the gap (i, j) contains only foreign events *)
        let foreign = ref false in
        for k = i + 1 to j - 1 do
          if tid.(k) <> t then begin
            foreign := true;
            (* intrusion into a gate-atomic adjacency is a violation:
               batches flush contiguously, so this never fires on a
               real log *)
            if atomic.(i) && atomic.(j) then
              note_violation
                (Printf.sprintf
                   "foreign pid %d event inside gate-atomic region of \
                    thread %d (seq %d..%d)"
                   arr.(k).Audit.pid t arr.(i).Audit.seq arr.(j).Audit.seq);
            (* conflicts between the intruder and either gap end *)
            List.iter
              (fun (own : Audit.entry) ->
                let own_acc =
                  accesses_of own.Audit.pid own.Audit.event
                in
                let for_acc =
                  accesses_of arr.(k).Audit.pid arr.(k).Audit.event
                in
                List.iter
                  (fun (oa : access) ->
                    List.iter
                      (fun (fa : access) ->
                        if
                          oa.a_inst = fa.a_inst
                          && (oa.a_write <> None || fa.a_write <> None)
                        then begin
                          incr conflicts;
                          let ok =
                            match oa.a_inst with
                            | Obj _ -> covers_object
                            | Subj _ -> covers_subject
                          in
                          if not ok then
                            note_unpredicted
                              (match oa.a_inst with
                              | Obj p ->
                                  Printf.sprintf
                                    "object label conflict on %s not on \
                                     the predicted surface"
                                    p
                              | Subj pid ->
                                  Printf.sprintf
                                    "subject label conflict on pid %d not \
                                     on the predicted surface"
                                    pid)
                        end)
                      for_acc)
                  own_acc)
              [ arr.(i); arr.(j) ]
          end
        done;
        if !foreign then incr interleavings
    | _ -> ());
    Hashtbl.replace last_of_thread t j
  done;
  {
    events_seen = n;
    threads_seen = Hashtbl.length threads;
    interleavings_observed = !interleavings;
    conflicts_observed = !conflicts;
    unpredicted = List.rev !unpredicted;
    atomic_violations = List.rev !atomic_violations;
  }

(* {1 Rendering} *)

let severity_counts findings =
  List.map
    (fun s ->
      ( s,
        List.length
          (List.filter (fun f -> severity_of f = s) findings) ))
    Severity.all

let program_summary (p : Mhp.program) =
  Printf.sprintf "%s (x%d, %d steps)" p.Mhp.name p.Mhp.multiplicity
    (List.length p.Mhp.steps)

let to_text report =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "static interference analysis (preemption-aware vet)";
  line "  scheduler model: entry-preemption-only=%b gate-children-atomic=%b"
    report.model.Mhp.entry_only report.model.Mhp.gate_atomic;
  line "  programs: %s"
    (String.concat ", "
       (List.map program_summary report.model.Mhp.programs));
  line "  conflict surface: %d MHP pairs (%d serialized writes, %d revalidated reads)"
    report.pairs_examined report.pairs_ordered report.pairs_revalidated;
  line "";
  (match report.findings with
  | [] -> line "no findings."
  | fs ->
      line "findings (%d):" (List.length fs);
      List.iter
        (fun f ->
          line "  [%s] %s: %s"
            (Severity.name (severity_of f))
            (kind_of f) (message f))
        fs);
  Buffer.contents b

(* hand-rolled JSON, same dialect as Vet's renderer: deterministic
   field order, no dependency *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let js s = "\"" ^ json_escape s ^ "\""

let to_json report =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "{";
  line "  \"schema\": \"w5.interfere/1\",";
  line "  \"scheduler\": {";
  line "    \"entry_preemption_only\": %b," report.model.Mhp.entry_only;
  line "    \"gate_children_atomic\": %b" report.model.Mhp.gate_atomic;
  line "  },";
  line "  \"programs\": [";
  let nprogs = List.length report.model.Mhp.programs in
  List.iteri
    (fun i (p : Mhp.program) ->
      line "    {\"name\": %s, \"multiplicity\": %d, \"steps\": [%s]}%s"
        (js p.Mhp.name) p.Mhp.multiplicity
        (String.concat ", "
           (List.map
              (fun (s : Mhp.step) ->
                js
                  ((match s.Mhp.ctx with
                   | Mhp.Direct -> ""
                   | Mhp.Gate_body -> "gate:")
                  ^ s.Mhp.op))
              p.Mhp.steps))
        (if i = nprogs - 1 then "" else ","))
    report.model.Mhp.programs;
  line "  ],";
  line "  \"surface\": {\"pairs\": %d, \"ordered\": %d, \"revalidated\": %d},"
    report.pairs_examined report.pairs_ordered report.pairs_revalidated;
  line "  \"counts\": {%s},"
    (String.concat ", "
       (List.map
          (fun (s, c) -> Printf.sprintf "%s: %d" (js (Severity.name s)) c)
          (severity_counts report.findings)));
  line "  \"findings\": [";
  let nf = List.length report.findings in
  List.iteri
    (fun i f ->
      line "    {\"severity\": %s, \"kind\": %s, \"message\": %s}%s"
        (js (Severity.name (severity_of f)))
        (js (kind_of f))
        (js (message f))
        (if i = nf - 1 then "" else ","))
    report.findings;
  line "  ],";
  line "  \"exit_code\": %d" (exit_code report);
  Buffer.add_string b "}";
  Buffer.contents b

let to_dot report =
  let pid name = Dot.ident ("prog_" ^ name) in
  let nodes =
    List.map
      (fun (p : Mhp.program) ->
        Dot.node
          ~attrs:[ ("shape", "box") ]
          (pid p.Mhp.name)
          ~label:(program_summary p))
      report.model.Mhp.programs
  in
  let edge_of f =
    match f with
    | Stale_flow_check { program; writer_program; cell; _ } ->
        Some
          (Dot.edge
             ~attrs:
               [ ("color", "red");
                 ("label", Footprint.cell_name cell) ]
             (pid writer_program)
             (pid program))
    | Atomicity_hole { program; cell; _ } ->
        Some
          (Dot.edge
             ~attrs:
               [ ("color", "red");
                 ("style", "bold");
                 ("label", Footprint.cell_name cell) ]
             (pid program) (pid program))
    | Benign_commute { prog_a; prog_b; cell; _ } ->
        Some
          (Dot.edge
             ~attrs:
               [ ("style", "dashed");
                 ("color", "gray50");
                 ("label", Footprint.cell_name cell) ]
             (pid prog_a) (pid prog_b))
  in
  let edges =
    List.sort_uniq String.compare (List.filter_map edge_of report.findings)
  in
  Dot.digraph "interference" (nodes @ edges)

let replay_to_text (r : replay) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "differential replay against the static interference model";
  line "  events=%d threads=%d interleaved-gaps=%d observed-conflicts=%d"
    r.events_seen r.threads_seen r.interleavings_observed
    r.conflicts_observed;
  (match (r.unpredicted, r.atomic_violations) with
  | [], [] -> line "  every observed conflict was on the predicted surface."
  | u, a ->
      List.iter (fun d -> line "  [critical] unpredicted: %s" d) u;
      List.iter (fun d -> line "  [critical] atomicity: %s" d) a);
  Buffer.contents b

(* {1 Metrics} *)

let export_metrics registry report =
  let g =
    Metrics.gauge registry "w5_interfere_findings_total"
      ~help:"Interference findings by severity at the last analysis"
  in
  List.iter
    (fun (s, c) ->
      Metrics.set g ~labels:[ ("severity", Severity.name s) ] c)
    (severity_counts report.findings)
