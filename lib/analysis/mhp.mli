(** May-happen-in-parallel model over the scheduler's preemption
    points.

    Programs here are {e archetypes}: short straight-line sequences of
    syscall steps standing for the platform's process shapes (an app
    request handler, a declassifier gate body, an owner session). The
    model combines them with the preemption placement facts exported
    by {!W5_os.Sched} ([entry_preemption_only],
    [gate_children_atomic]) and the per-op [entry_preempt] flags of
    the syscall spec table to decide where the scheduler can transfer
    control — and therefore which step pairs of different process
    instances can end up adjacent in a real interleaving. *)

type context =
  | Direct  (** an ordinary dispatch at audit depth 0 *)
  | Gate_body  (** runs nested inside a caller's gate invocation *)

type step = { ctx : context; op : string }

type program = { name : string; multiplicity : int; steps : step list }

type model = {
  programs : program list;
  specs : W5_os.Syscall.Spec.t list;
  gate_atomic : bool;
  entry_only : bool;
}

val make :
  ?gate_atomic:bool -> ?entry_only:bool -> program list -> model
(** Defaults come from {!W5_os.Sched.gate_children_atomic} and
    {!W5_os.Sched.entry_preemption_only}; tests override them to
    model hypothetical schedulers. *)

val spec_of : model -> string -> W5_os.Syscall.Spec.t option

val preempt_before : model -> step -> bool
(** Can the scheduler take the CPU immediately before this step runs?
    True iff the op's spec declares an entry preemption point and the
    step is not shielded by gate-child atomicity. *)

val may_intrude_between : model -> step list -> bool
(** Given the steps strictly after a check up to and including a
    guarded action, can a foreign step intrude in between? True iff
    any of them is preemptible at entry. *)

(** {2 Exhaustive oracle (tiny configs only)} *)

type instance = { i_prog : program; i_id : int }
type schedule = (instance * step) list

val instances : model -> instance list

val interleavings : model -> schedule list
(** Every schedule the preemption model admits, for at most 3
    instances and 18 total steps ([invalid_arg] beyond — the oracle
    is ground truth for tests, not a production path). *)

val observable_adjacencies :
  model -> (string * context * string * context) list
(** Cross-instance adjacent step pairs observable in at least one
    admitted schedule, deduplicated. *)
