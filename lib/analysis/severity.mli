(** Finding severities and the shared severity→exit-code contract.

    `w5 vet`, `w5 vet --concurrency`, `w5 health`, and the soak CLI
    all judge something and carry the worst finding in their exit
    code. This module is the single home of that mapping — previously
    each command restated it — and a unit test pins the 0/2/3/4
    contract. Exit 1 stays reserved for tool errors (cmdliner parse
    failures, uncaught exceptions), so findings start at 2. *)

type t = Critical | High | Warning | Info

val rank : t -> int
(** [Info] = 0 rising to [Critical] = 3; use for sorting. *)

val name : t -> string
(** Lowercase wire name ("critical" … "info") — used by report
    renderers and metric label values, so it is a closed set. *)

val all : t list
(** Every severity, worst first. *)

val compare : t -> t -> int
val max_sev : t -> t -> t

val worst : t list -> t option
(** The worst severity present, [None] for an empty list. *)

val exit_code : t option -> int
(** The shared contract: no finding or worst [Info] → 0, [Warning] →
    2, [High] → 3, [Critical] → 4. *)

val of_health_severity : int -> t option
(** Adapter for {!W5_obs.Health.severity}'s integer scale: 0 → [None]
    (healthy), 1–2 → [Warning] (degraded), anything worse → [High]. *)
