(** Footprint algebra over the syscall spec table.

    Re-exports {!W5_os.Syscall.Spec}'s cell and write-kind vocabulary
    and adds the two judgments the interference analysis needs:
    cross-process {e aliasing} (which cell names can denote the same
    state when held by different processes) and write-kind
    {e commutativity} (which write pairs are order-independent by the
    join-semilattice laws). *)

type cell = W5_os.Syscall.Spec.cell =
  | Subject_secrecy
  | Subject_integrity
  | Subject_caps
  | Object_labels
  | Dir_summary
  | Peer_labels
  | Peer_caps

type write_kind = W5_os.Syscall.Spec.write_kind = Merge | Assign | Retract

val cell_name : cell -> string
val write_kind_name : write_kind -> string

val specs : W5_os.Syscall.Spec.t list
val find_spec : string -> W5_os.Syscall.Spec.t option

val may_alias : cell -> cell -> bool
(** Can [a] in one process's footprint denote the same state as [b]
    in another's? Object/dir cells are globally shared; a process's
    [Subject_*] is some other process's [Peer_*]; two different
    processes' [Subject_*] cells never alias. Reflexivity only holds
    for shared cells — by design: [may_alias Subject_secrecy
    Subject_secrecy = false] because the two processes each own their
    copy. *)

val commutes : write_kind -> write_kind -> bool
(** Kind-level projection of {!W5_difc.Flow.updates_commute}:
    [Merge]/[Merge] and [Retract]/[Retract] commute, everything
    involving [Assign] (and the operand-dependent [Merge]/[Retract]
    case) conservatively does not. *)

val touches_cell : cell -> W5_os.Syscall.Spec.t -> bool
val writes_label_state : W5_os.Syscall.Spec.t -> bool
val write_kinds_on : cell -> W5_os.Syscall.Spec.t -> write_kind list

type conflict = {
  cell : cell;
  a_op : string;
  b_op : string;
  a_writes : bool;
  b_writes : bool;
  benign : bool;
}

val conflicts : W5_os.Syscall.Spec.t -> W5_os.Syscall.Spec.t -> conflict list
(** Cell-level conflicts between two ops run by different processes:
    pairs where a cell of the first aliases a cell of the second and
    at least one side writes. [benign] marks write/write pairs whose
    kinds all commute. *)
