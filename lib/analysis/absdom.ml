module S = Set.Make (String)

type t = S.t

let bot = S.empty
let singleton = S.singleton
let of_names = S.of_list

let of_label label =
  W5_difc.Label.fold
    (fun tag acc -> S.add (W5_difc.Tag.name tag) acc)
    label S.empty

let mem = S.mem
let subset = S.subset
let lub = S.union
let glb = S.inter
let equal = S.equal
let is_bot = S.is_empty
let cardinal = S.cardinal
let names t = S.elements t

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (names t))
