(** Seeded population of a platform: users, friend graphs, content,
    declassifiers — the synthetic stand-in for the real user bases the
    paper's scenarios assume (DESIGN.md §2, substitution table).

    All generation is driven by an {!Rng.t}, so the same seed yields
    the same society on every run. *)

open W5_platform

type society = {
  platform : Platform.t;
  users : string list;
  social_id : string;   (** app id of the published social app *)
  photo_id : string;
  blog_id : string;
}

val user_name : int -> string
(** ["user0000"], ["user0001"], … *)

val build :
  ?seed:int -> ?enforcing:bool -> users:int -> friends_per_user:int ->
  photos_per_user:int -> blog_posts_per_user:int -> unit -> society
(** Boot a platform; publish the social, photo and blog apps under a
    ["core"] developer; sign everybody up; enable the apps and
    delegate write for everyone; wire a random friend graph (made
    symmetric); seed photos and blog posts through the real app
    handlers over HTTP; and install a friends-only declassifier for
    every user. *)

val build_showcase : ?seed:int -> ?users:int -> unit -> society
(** [build], then the rest of the configuration surface the static
    analyzer models: the full legitimate app suite (messages, calendar,
    polls, dating, groups, mashup, recommend, the closed-binary
    chameleon) plus third-party map/crop modules, a provider vetted
    list, per-user module choices, one integrity-protected user, one
    read-protected user (declassifier reinstalled and read grants
    issued so nothing breaks), and a three-member group with posts.
    This is the platform `w5 vet` analyzes and the one the committed
    golden report describes — keep it deterministic. *)

val login : society -> string -> W5_http.Client.t
(** A browser logged in as the user. *)

val random_friend_graph :
  Rng.t -> users:string list -> friends_per_user:int ->
  (string * string list) list
(** Symmetric adjacency (each listed edge appears in both rows). *)

val fill_dependency_graph :
  ?seed:int -> Platform.t -> modules:int -> imports_per_module:int ->
  string list
(** Publish [modules] trivial modules with a random import structure —
    the synthetic corpus for the code-search experiments (E5). Returns
    the app ids. *)
