open W5_difc
open W5_http
open W5_platform

type society = {
  platform : Platform.t;
  users : string list;
  social_id : string;
  photo_id : string;
  blog_id : string;
}

let user_name i = Printf.sprintf "user%04d" i
let password user = user ^ "-pw"

let login society user =
  let client = Client.make ~name:user (Gateway.handler society.platform) in
  let response =
    Client.post client "/login" ~form:[ ("user", user); ("pass", password user) ]
  in
  if not (Response.is_success response) then
    invalid_arg ("populate: login failed for " ^ user);
  client

let random_friend_graph rng ~users ~friends_per_user =
  let adjacency = Hashtbl.create (List.length users) in
  let add a b =
    let current = Option.value (Hashtbl.find_opt adjacency a) ~default:[] in
    if (not (List.mem b current)) && a <> b then
      Hashtbl.replace adjacency a (b :: current)
  in
  List.iter
    (fun user ->
      let wanted = friends_per_user in
      let candidates = List.filter (fun u -> u <> user) users in
      List.iter
        (fun friend_name ->
          add user friend_name;
          add friend_name user)
        (Rng.sample rng wanted candidates))
    users;
  List.map
    (fun user ->
      ( user,
        List.sort String.compare
          (Option.value (Hashtbl.find_opt adjacency user) ~default:[]) ))
    users

let ensure label = function
  | Ok _ -> ()
  | Error e -> invalid_arg ("populate: " ^ label ^ ": " ^ e)

let ensure_status label response =
  if not (Response.is_success response) then
    invalid_arg
      (Printf.sprintf "populate: %s: HTTP %d %s" label
         (Response.status_code response.Response.status)
         response.Response.body)

let build ?(seed = 42) ?enforcing ~users:user_count ~friends_per_user
    ~photos_per_user ~blog_posts_per_user () =
  let rng = Rng.create ~seed in
  let platform = Platform.create ?enforcing () in
  let dev = Principal.make Principal.Developer "core" in
  ensure "social" (Result.map (fun _ -> ()) (W5_apps.Social_app.publish platform ~dev));
  ensure "photos" (Result.map (fun _ -> ()) (W5_apps.Photo_app.publish platform ~dev));
  ensure "blog" (Result.map (fun _ -> ()) (W5_apps.Blog_app.publish platform ~dev));
  let social_id = "core/social"
  and photo_id = "core/photos"
  and blog_id = "core/blog" in
  let users = List.init user_count user_name in
  List.iter
    (fun user ->
      ensure ("signup " ^ user)
        (Result.map (fun _ -> ())
           (Platform.signup platform ~user ~password:(password user)));
      List.iter
        (fun app ->
          ensure ("enable " ^ app) (Platform.enable_app platform ~user ~app);
          let account = Platform.account_exn platform user in
          Policy.delegate_write account.Account.policy app)
        [ social_id; photo_id; blog_id ])
    users;
  let society = { platform; users; social_id; photo_id; blog_id } in
  (* Wire the friend graph and seed content through the real HTTP
     surface, exactly as a browser would. *)
  let graph = random_friend_graph rng ~users ~friends_per_user in
  List.iter
    (fun (user, friends) ->
      let client = login society user in
      List.iter
        (fun friend_name ->
          ensure_status
            (user ^ " befriends " ^ friend_name)
            (Client.post client ("/app/" ^ social_id)
               ~form:[ ("action", "add_friend"); ("friend", friend_name) ]))
        friends;
      List.iter
        (fun i ->
          ensure_status
            (user ^ " uploads photo")
            (Client.post client ("/app/" ^ photo_id)
               ~form:
                 [
                   ("action", "upload");
                   ("id", Printf.sprintf "p%02d" i);
                   ("data", "photo-" ^ Rng.string rng ~length:24);
                 ]))
        (List.init photos_per_user Fun.id);
      List.iter
        (fun i ->
          ensure_status (user ^ " posts blog")
            (Client.post client ("/app/" ^ blog_id)
               ~form:
                 [
                   ("action", "post");
                   ("id", Printf.sprintf "b%02d" i);
                   ("title", "post " ^ string_of_int i);
                   ("body", Rng.string rng ~length:48);
                 ]))
        (List.init blog_posts_per_user Fun.id);
      let account = Platform.account_exn platform user in
      ignore
        (Declassifier.install_and_authorize platform ~account ~name:"friends"
           Declassifier.friends_only))
    graph;
  society

(* The platform `w5 vet` ships as its worked example: the society from
   [build] plus the whole legitimate application suite, one group, one
   read-protected user, module choices and a vetted-software list —
   every configuration feature the static analyzer models, wired so
   the golden report is clean. Tests and the CLI share this builder so
   the committed report stays byte-for-byte reproducible. *)
let build_showcase ?(seed = 42) ?(users = 6) () =
  let society =
    build ~seed ~users ~friends_per_user:3 ~photos_per_user:2
      ~blog_posts_per_user:1 ()
  in
  let platform = society.platform in
  let core = Principal.make Principal.Developer "core" in
  let publish label r = ensure label (Result.map (fun _ -> ()) r) in
  publish "messages" (W5_apps.Message_app.publish platform ~dev:core);
  publish "calendar" (W5_apps.Calendar_app.publish platform ~dev:core);
  publish "polls" (W5_apps.Poll_app.publish platform ~dev:core);
  publish "dating" (W5_apps.Dating_app.publish platform ~dev:core);
  publish "groups" (W5_apps.Group_app.publish platform ~dev:core);
  publish "mashup" (W5_apps.Mashup_app.publish platform ~dev:core);
  publish "recommend" (W5_apps.Recommend_app.publish platform ~dev:core);
  publish "chameleon" (W5_apps.Chameleon_app.publish platform ~dev:core);
  publish "gmaps/render"
    (W5_apps.Mashup_app.publish_map_module platform
       ~dev:(Principal.make Principal.Developer "gmaps")
       ~name:"render" ~evil:false);
  publish "devA/crop"
    (W5_apps.Photo_app.publish_crop_module platform
       ~dev:(Principal.make Principal.Developer "devA")
       ~name:"crop" ~style:`Head);
  publish "devB/crop"
    (W5_apps.Photo_app.publish_crop_module platform
       ~dev:(Principal.make Principal.Developer "devB")
       ~name:"crop" ~style:`Frame);
  (* The provider's vetted list covers the suite, so integrity
     protection is satisfiable. *)
  List.iter
    (Platform.add_vetted platform)
    [
      "core/social"; "core/photos"; "core/blog"; "core/messages";
      "core/calendar"; "core/polls"; "core/dating"; "core/groups";
      "core/mashup"; "core/recommend"; "gmaps/render"; "devA/crop";
      "devB/crop";
    ];
  List.iter
    (fun user ->
      List.iter
        (fun app -> ensure ("enable " ^ app) (Platform.enable_app platform ~user ~app))
        [ "core/messages"; "core/recommend" ])
    society.users;
  (match society.users with
  | u0 :: u1 :: u2 :: _ ->
      let a0 = Platform.account_exn platform u0 in
      let a1 = Platform.account_exn platform u1 in
      (* u0: module choices, mashup, integrity protection. *)
      ensure "enable mashup" (Platform.enable_app platform ~user:u0 ~app:"core/mashup");
      Policy.choose_module a0.Account.policy ~slot:"map.render"
        ~module_id:"gmaps/render";
      Policy.choose_module a0.Account.policy ~slot:"photo.crop"
        ~module_id:"devA/crop";
      Policy.set_require_vetted a0.Account.policy true;
      (* u1: read protection, with the declassifier reinstalled so the
         new restricted tag stays exportable, and read grants so the
         core apps can keep serving the protected files. *)
      ignore (Platform.enable_read_protection platform a1);
      ignore
        (Declassifier.install_and_authorize platform ~account:a1 ~name:"friends"
           Declassifier.friends_only);
      List.iter
        (Policy.grant_read a1.Account.policy)
        [ society.social_id; society.photo_id; society.blog_id ];
      (* One group founded by u0 with u1 and u2 aboard. *)
      (match Group.create platform ~founder:a0 ~name:"book-club" with
      | Error e -> invalid_arg ("populate: group: " ^ e)
      | Ok group ->
          ensure "group member u1" (Group.add_member platform group ~user:u1);
          ensure "group member u2" (Group.add_member platform group ~user:u2);
          List.iter
            (fun user ->
              ensure ("enable groups for " ^ user)
                (Platform.enable_app platform ~user ~app:"core/groups"))
            [ u0; u1; u2 ];
          let post author id body =
            match Group.post platform group ~author ~id ~body with
            | Ok () -> ()
            | Error e ->
                invalid_arg
                  ("populate: group post: " ^ W5_os.Os_error.to_string e)
          in
          post a0 "0001" "first meeting: chapter one";
          post a1 "0002" "minutes from the reading")
  | _ -> invalid_arg "populate: showcase needs at least 3 users");
  society

let fill_dependency_graph ?(seed = 7) platform ~modules ~imports_per_module =
  let rng = Rng.create ~seed in
  let registry = Platform.registry platform in
  let ids = List.init modules (fun i -> Printf.sprintf "m%04d" i) in
  let dev i = Principal.make Principal.Developer ("dev" ^ string_of_int i) in
  let handler ctx _env = ignore (W5_os.Syscall.respond ctx "ok") in
  List.iteri
    (fun i name ->
      (* Preferential-attachment-ish: earlier modules attract more
         imports, giving the graph a popularity skew to rank. *)
      let earlier = List.filteri (fun j _ -> j < i) ids in
      let imports =
        if earlier = [] then []
        else
          List.init (min imports_per_module i) (fun _ ->
              let pool = List.length earlier in
              let j = min (Rng.int rng pool) (Rng.int rng pool) in
              "dev" ^ string_of_int j ^ "/" ^ List.nth earlier j)
      in
      ensure name
        (Result.map
           (fun _ -> ())
           (App_registry.publish registry ~dev:(dev i) ~name ~version:"1.0"
              ~source:(App_registry.Open_source ("module " ^ name))
              ~imports handler)))
    ids;
  List.mapi (fun i name -> "dev" ^ string_of_int i ^ "/" ^ name) ids
