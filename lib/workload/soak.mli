(** The gateway soak harness: sustained concurrent load, asserted.

    A {!run} builds a seeded society, plants a canary in every user's
    profile, logs everyone in, and then drives a seeded action trace
    through the gateway's scheduled-admission path
    ({!W5_platform.Gateway.submit}): every request of a wave is
    admitted — authenticated, routed, throttled, spawned — before a
    {!W5_os.Sched} drain interleaves all the in-flight application
    processes, after which every request is concluded through the
    perimeter. The result is the paper's premise made testable: many
    untrusted apps serving many users {e simultaneously}, with DIFC
    enforcement exercised under interleaving rather than one request
    at a time.

    Everything is deterministic — society, trace, interleaving, ticks —
    so the rendered summary is goldenable and two runs with the same
    seed produce byte-identical audit logs and store state. *)

open W5_platform

type config = {
  seed : int;
  users : int;
  requests : int;
  waves : int;  (** the trace is split into this many admission waves *)
  mix : Trace.mix;
  quantum : int;  (** scheduler ticks per slice *)
  rate : (int * int) option;
      (** token-bucket throttling as [(capacity, refill_per_tick)];
          [None] leaves the provider unthrottled *)
}

val default_config : config
(** seed 42, 50 users, 1200 requests in a single wave (≥ 1000 in
    flight at once), read-heavy mix, default quantum, no rate limit. *)

type summary = {
  s_seed : int;
  s_users : int;
  s_requests : int;
  s_waves : int;
  s_quantum : int;
  s_submitted : int;
  s_ok : int;  (** HTTP 200/302 *)
  s_forbidden : int;  (** HTTP 403: flows correctly refused *)
  s_throttled : int;  (** HTTP 429 *)
  s_failed : int;  (** anything else *)
  s_peak_in_flight : int;
      (** most requests simultaneously awaiting their process *)
  s_slices : int;
  s_preemptions : int;
  s_completed : int;
  s_killed : int;
  s_max_runq : int;
  s_canary_leaks : int;
      (** responses carrying a canary of a user who never befriended
          the viewer — must be 0 *)
  s_unlabeled_canaries : int;
      (** bottom-labeled files containing any canary — must be 0 *)
  s_audit_entries : int;
  s_final_tick : int;
  s_digest : string;  (** {!fingerprint_digest} of the final state *)
}

val run :
  ?between_waves:(int -> Populate.society -> unit) ->
  config -> Populate.society * summary
(** Execute the soak. [between_waves] runs after each wave concludes
    (fault injection, mid-run kills, probes); the society is returned
    so callers can keep interrogating the platform. *)

val render : summary -> string
(** Deterministic multi-line text for goldens ([w5 soak]). *)

(** {1 Determinism and leak probes} *)

val canary : string -> string
(** ["CANARY-<user>-END"] — the marker {!run} plants in each profile. *)

val canary_owners : string -> string list
(** Owners of every canary marker occurring in a body, one linear
    scan. *)

val unlabeled_canary_paths : Platform.t -> needles:string list -> string list
(** Paths of bottom-secrecy files whose bytes contain any needle —
    the "no unlabeled copy anywhere" sweep, shared with test_soak. *)

val store_image : Platform.t -> string
(** Every store file with its labels and bytes (tag ids renumbered,
    same normalization as {!fingerprint}) — no audit entries and no
    ticks, so it compares final {e state} across runs whose schedules
    legitimately differ (interleaved vs. sequential). *)

val fingerprint : Platform.t -> string
(** The full observable state: every audit entry, then every store
    file with its labels and bytes — with all [#N] tokens (tag ids,
    audit sequence numbers) renumbered by first occurrence, so two
    same-seed runs compare byte-equal even inside one process, where
    the global tag counter would otherwise offset the ids. *)

val fingerprint_digest : Platform.t -> string
(** MD5 hex of {!fingerprint} — the summary-sized determinism
    witness. *)
