open W5_http
open W5_platform

type config = {
  seed : int;
  users : int;
  requests : int;
  waves : int;
  mix : Trace.mix;
  quantum : int;
  rate : (int * int) option;
}

let default_config =
  {
    seed = 42;
    users = 50;
    requests = 1200;
    waves = 1;
    mix = Trace.read_heavy;
    quantum = W5_os.Sched.default_quantum;
    rate = None;
  }

type summary = {
  s_seed : int;
  s_users : int;
  s_requests : int;
  s_waves : int;
  s_quantum : int;
  s_submitted : int;
  s_ok : int;
  s_forbidden : int;
  s_throttled : int;
  s_failed : int;
  s_peak_in_flight : int;
  s_slices : int;
  s_preemptions : int;
  s_completed : int;
  s_killed : int;
  s_max_runq : int;
  s_canary_leaks : int;
  s_unlabeled_canaries : int;
  s_audit_entries : int;
  s_final_tick : int;
  s_digest : string;
}

(* ---- canaries ---- *)

let canary user = "CANARY-" ^ user ^ "-END"

(* One left-to-right scan per body: every [CANARY-<owner>-END] planted
   marker found in [body] yields its owner. Linear in the body, not in
   (bodies x users), which is what makes sweeping thousands of
   responses cheap. *)
let canary_owners body =
  let marker = "CANARY-" and stop = "-END" in
  let bn = String.length body
  and mn = String.length marker
  and sn = String.length stop in
  let rec find_stop i =
    if i + sn > bn then None
    else if String.sub body i sn = stop then Some i
    else find_stop (i + 1)
  in
  let rec scan i acc =
    if i + mn > bn then List.rev acc
    else if String.sub body i mn = marker then
      match find_stop (i + mn) with
      | None -> List.rev acc
      | Some j ->
          scan (j + sn) (String.sub body (i + mn) (j - i - mn) :: acc)
    else scan (i + 1) acc
  in
  scan 0 []

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec scan i =
    i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let walk_fs platform f =
  let fs = W5_os.Kernel.fs (Platform.kernel platform) in
  let rec walk path =
    match W5_os.Fs.stat fs path with
    | Error _ -> ()
    | Ok st -> (
        match st.W5_os.Fs.kind with
        | W5_os.Fs.Directory -> (
            match W5_os.Fs.readdir fs path with
            | Error _ -> ()
            | Ok (names, _) ->
                List.iter
                  (fun name ->
                    walk
                      (if path = "/" then "/" ^ name else path ^ "/" ^ name))
                  names)
        | W5_os.Fs.Regular -> (
            match W5_os.Fs.read fs path with
            | Error _ -> ()
            | Ok (data, labels) -> f path data labels))
  in
  walk "/"

let unlabeled_canary_paths platform ~needles =
  let bad = ref [] in
  walk_fs platform (fun path data labels ->
      if
        W5_difc.Label.is_empty labels.W5_difc.Flow.secrecy
        && List.exists (contains data) needles
      then bad := path :: !bad);
  List.rev !bad

(* ---- determinism fingerprint ----

   Audit text plus a full store image. Tag ids come from a
   process-global counter (W5_difc.Tag), so two same-seed runs inside
   one process differ exactly by a constant id offset; renumbering
   every [#N] token by first occurrence cancels it (audit sequence
   numbers and pids are per-kernel and renumber consistently too).
   Two separate processes produce byte-identical raw text anyway —
   the normalization only widens where the comparison can run. *)

let renumber text =
  let buf = Buffer.create (String.length text) in
  let seen = Hashtbl.create 256 in
  let n = String.length text in
  let is_digit c = c >= '0' && c <= '9' in
  (* Only tag ids need renumbering, and they always follow the tag
     name ("s:alice#12"). A '#' at line start is an audit sequence
     number — already identical across same-seed runs, and renumbering
     it could collide with a tag id in one run but not the other. *)
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || is_digit c || c = '_' || c = '-' || c = ':' || c = '.'
  in
  let rec go i =
    if i >= n then ()
    else if
      text.[i] = '#'
      && i + 1 < n
      && is_digit text.[i + 1]
      && i > 0
      && is_name_char text.[i - 1]
    then begin
      let j = ref (i + 1) in
      while !j < n && is_digit text.[!j] do incr j done;
      let tok = String.sub text (i + 1) (!j - i - 1) in
      let id =
        match Hashtbl.find_opt seen tok with
        | Some id -> id
        | None ->
            let id = Hashtbl.length seen in
            Hashtbl.replace seen tok id;
            id
      in
      Buffer.add_char buf '#';
      Buffer.add_string buf (string_of_int id);
      go !j
    end
    else begin
      Buffer.add_char buf text.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let store_image platform =
  let buf = Buffer.create 65536 in
  walk_fs platform (fun path data labels ->
      Buffer.add_string buf
        (Format.asprintf "%s [%a] %s\n" path W5_difc.Flow.pp_labels labels data));
  renumber (Buffer.contents buf)

let fingerprint platform =
  let buf = Buffer.create 65536 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" W5_os.Audit.pp_entry e))
    (W5_os.Audit.entries (W5_os.Kernel.audit (Platform.kernel platform)));
  walk_fs platform (fun path data labels ->
      Buffer.add_string buf
        (Format.asprintf "%s [%a] %s\n" path W5_difc.Flow.pp_labels labels data));
  renumber (Buffer.contents buf)

let fingerprint_digest platform = Digest.to_hex (Digest.string (fingerprint platform))

(* ---- the run ---- *)

let plant_canaries society =
  let platform = society.Populate.platform in
  List.iter
    (fun user ->
      let account = Platform.account_exn platform user in
      match
        Platform.write_user_record platform account ~file:"profile"
          (W5_store.Record.of_fields [ ("user", user); ("canary", canary user) ])
      with
      | Ok () -> ()
      | Error _ -> ())
    society.Populate.users

(* Requests are built directly (not through {!Client}) because submit
   needs raw {!Request.t} values: one per action, carrying the user's
   real session cookie, exactly what the synchronous replay sends. *)
let request_of society ~cookie_of action =
  let social = "/app/" ^ society.Populate.social_id in
  let photos = "/app/" ^ society.Populate.photo_id in
  let blog = "/app/" ^ society.Populate.blog_id in
  let get viewer path params =
    ( viewer,
      Request.make ~headers:(cookie_of viewer) ~client:viewer Request.GET
        (Uri.with_query path params) )
  in
  let post viewer path form =
    ( viewer,
      Request.make ~headers:(cookie_of viewer) ~client:viewer ~body:form
        Request.POST path )
  in
  match action with
  | Trace.View_profile { viewer; target } ->
      get viewer social [ ("user", target) ]
  | Trace.List_photos { viewer; target } ->
      get viewer photos [ ("action", "list"); ("user", target) ]
  | Trace.Read_blog { viewer; target } ->
      get viewer blog [ ("action", "read"); ("user", target) ]
  | Trace.Upload_photo { viewer; id } ->
      post viewer photos
        [ ("action", "upload"); ("id", id); ("data", "pix-" ^ id) ]
  | Trace.Post_blog { viewer; id } ->
      post viewer blog
        [ ("action", "post"); ("id", id); ("title", id); ("body", "b") ]
  | Trace.Add_friend { viewer; friend_name } ->
      post viewer social [ ("action", "add_friend"); ("friend", friend_name) ]

let friends_of platform user =
  let account = Platform.account_exn platform user in
  match Platform.read_user_record platform account ~file:"friends" with
  | Ok r -> W5_store.Record.get_list r "friends"
  | Error _ -> []

let split_waves n xs =
  let xs = Array.of_list xs in
  let total = Array.length xs in
  let n = max 1 n in
  List.init n (fun w ->
      let lo = w * total / n and hi = (w + 1) * total / n in
      Array.to_list (Array.sub xs lo (hi - lo)))

let run ?(between_waves = fun _ _ -> ()) cfg =
  let society =
    Populate.build ~seed:cfg.seed ~users:cfg.users ~friends_per_user:3
      ~photos_per_user:1 ~blog_posts_per_user:1 ()
  in
  let platform = society.Populate.platform in
  (match cfg.rate with
  | None -> ()
  | Some (capacity, refill_per_tick) ->
      Platform.set_rate_limit platform
        (Some (Rate_limit.create ~capacity ~refill_per_tick ())));
  plant_canaries society;
  (* log every user in once, up front, so the measured stream is pure
     application traffic *)
  let jars = Hashtbl.create cfg.users in
  List.iter
    (fun user ->
      let client = Populate.login society user in
      let header =
        match W5_http.Client.cookies client with
        | [] -> Headers.empty
        | jar ->
            Headers.set Headers.empty "Cookie"
              (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) jar))
      in
      Hashtbl.replace jars user header)
    society.Populate.users;
  let cookie_of user =
    match Hashtbl.find_opt jars user with
    | Some h -> h
    | None -> Headers.empty
  in
  let rng = Rng.create ~seed:(cfg.seed + 1) in
  let actions =
    Trace.generate rng ~society ~mix:cfg.mix ~length:cfg.requests
  in
  let sched =
    W5_os.Sched.create ~quantum:cfg.quantum
      ~policy:(W5_os.Sched.Seeded cfg.seed)
      (Platform.kernel platform)
  in
  let submitted = ref 0
  and ok = ref 0
  and forbidden = ref 0
  and throttled = ref 0
  and failed = ref 0
  and peak = ref 0
  and observations = ref [] in
  List.iteri
    (fun w wave ->
      (* admission: every request of the wave is routed, throttled and
         spawned before any application code runs *)
      let pendings =
        List.map
          (fun action ->
            let viewer, request = request_of society ~cookie_of action in
            incr submitted;
            (viewer, Gateway.submit platform request))
          wave
      in
      let in_flight =
        List.length (List.filter (fun (_, p) -> Gateway.in_flight p) pendings)
      in
      if in_flight > !peak then peak := in_flight;
      (* interleave all in-flight application processes *)
      W5_os.Sched.drain sched;
      (* conclusion in admission order: perimeter export, telemetry *)
      List.iter
        (fun (viewer, pending) ->
          let response = Gateway.conclude platform pending in
          (match Response.status_code response.Response.status with
          | 200 | 302 -> incr ok
          | 403 -> incr forbidden
          | 429 -> incr throttled
          | _ -> incr failed);
          observations := (viewer, response.Response.body) :: !observations)
        pendings;
      between_waves w society)
    (split_waves cfg.waves actions);
  (* canary sweep: nobody may have observed a canary belonging to a
     user who never befriended them *)
  let leaks = ref 0 in
  List.iter
    (fun (viewer, body) ->
      List.iter
        (fun owner ->
          if
            owner <> viewer
            && not (List.mem viewer (friends_of platform owner))
          then incr leaks)
        (canary_owners body))
    !observations;
  let bare =
    unlabeled_canary_paths platform
      ~needles:(List.map canary society.Populate.users)
  in
  let stats = W5_os.Sched.stats sched in
  let kernel = Platform.kernel platform in
  ( society,
    {
      s_seed = cfg.seed;
      s_users = cfg.users;
      s_requests = cfg.requests;
      s_waves = max 1 cfg.waves;
      s_quantum = cfg.quantum;
      s_submitted = !submitted;
      s_ok = !ok;
      s_forbidden = !forbidden;
      s_throttled = !throttled;
      s_failed = !failed;
      s_peak_in_flight = !peak;
      s_slices = stats.W5_os.Sched.slices;
      s_preemptions = stats.W5_os.Sched.preemptions;
      s_completed = stats.W5_os.Sched.completed;
      s_killed = stats.W5_os.Sched.killed;
      s_max_runq = stats.W5_os.Sched.max_depth;
      s_canary_leaks = !leaks;
      s_unlabeled_canaries = List.length bare;
      s_audit_entries =
        List.length (W5_os.Audit.entries (W5_os.Kernel.audit kernel));
      s_final_tick = W5_os.Kernel.tick kernel;
      s_digest = fingerprint_digest platform;
    } )

let render s =
  String.concat "\n"
    [
      "w5 soak summary";
      Printf.sprintf "config: seed=%d users=%d requests=%d waves=%d quantum=%d"
        s.s_seed s.s_users s.s_requests s.s_waves s.s_quantum;
      Printf.sprintf
        "requests: submitted=%d ok=%d forbidden=%d throttled=%d failed=%d"
        s.s_submitted s.s_ok s.s_forbidden s.s_throttled s.s_failed;
      Printf.sprintf "concurrency: peak_in_flight=%d max_runq=%d"
        s.s_peak_in_flight s.s_max_runq;
      Printf.sprintf
        "scheduler: slices=%d preemptions=%d completed=%d killed=%d"
        s.s_slices s.s_preemptions s.s_completed s.s_killed;
      Printf.sprintf "safety: canary_leaks=%d unlabeled_canaries=%d"
        s.s_canary_leaks s.s_unlabeled_canaries;
      Printf.sprintf "audit: entries=%d final_tick=%d" s.s_audit_entries
        s.s_final_tick;
      Printf.sprintf "digest: %s" s.s_digest;
      "";
    ]
