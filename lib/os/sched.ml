open W5_obs

type policy = Fifo | Seeded of int

let policy_label = function Fifo -> "fifo" | Seeded _ -> "seeded"

(* Cooperative preemption via OCaml 5 effects: the kernel's preempt
   hook performs [Yield] at a syscall-dispatch boundary; the per-slice
   deep handler captures the continuation and hands the CPU back to
   the scheduler. No domains, no threads — interleaving is a pure
   function of (policy, seed, workload), which is what makes same-seed
   runs byte-identical. *)
type _ Effect.t += Yield : unit Effect.t

type slice_result =
  | Completed
  | Yielded of (unit, slice_result) Effect.Deep.continuation

type slot = {
  s_proc : Proc.t;
  mutable s_resume : resume;
}

and resume =
  | Start of Kernel.body
  | Suspended of (unit, slice_result) Effect.Deep.continuation

type stats = {
  slices : int;
  preemptions : int;
  completed : int;
  killed : int;
  max_depth : int;
}

type t = {
  sk : Kernel.t;
  policy : policy;
  quantum : int;
  mutable rng : int64;
  (* Circular run queue. [Fifo] pops the head (true round-robin);
     [Seeded] pops a pseudo-random logical index in O(1) by swapping
     the victim with the head first — order past the swap point is
     perturbed, which a random-pick policy cannot observe. *)
  mutable buf : slot option array;
  mutable head : int;
  mutable len : int;
  (* pid of the process currently inside a slice (-1 when idle): the
     preempt hook must ignore kernel crossings by any other process
     (e.g. a body run synchronously outside the scheduler) because
     only the sliced process has a handler installed. *)
  mutable current : int;
  mutable slice_start : int;
  mutable st_slices : int;
  mutable st_preempt : int;
  mutable st_completed : int;
  mutable st_killed : int;
  mutable st_max_depth : int;
  m_slices : Metrics.metric;
  m_preempt : Metrics.metric;
  m_depth : Metrics.metric;
  m_slice_ticks : Metrics.metric;
}

let default_quantum = 4

let create ?(quantum = default_quantum) ?(policy = Fifo) kernel =
  let m = Kernel.metrics kernel in
  {
    sk = kernel;
    policy;
    quantum = max 1 quantum;
    rng = (match policy with Seeded s -> Int64.of_int s | Fifo -> 0L);
    buf = Array.make 64 None;
    head = 0;
    len = 0;
    current = -1;
    slice_start = 0;
    st_slices = 0;
    st_preempt = 0;
    st_completed = 0;
    st_killed = 0;
    st_max_depth = 0;
    m_slices =
      Metrics.counter m "w5_sched_slices_total"
        ~help:"Scheduler slices (context switches) by policy";
    m_preempt =
      Metrics.counter m "w5_sched_preemptions_total"
        ~help:"Slices ended by quantum expiry rather than completion";
    m_depth =
      Metrics.histogram m "w5_sched_runq_depth"
        ~help:"Run-queue depth observed at each slice start";
    m_slice_ticks =
      Perf.latency m "w5_sched_slice_ticks"
        ~help:"Logical-clock ticks consumed per scheduler slice";
  }

(* splitmix64 — same generator as W5_workload.Rng, inlined here so
   lib/os does not depend on the workload layer. *)
let next_rand t =
  let open Int64 in
  t.rng <- add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* keep it a nonnegative OCaml int: to_int keeps the low 63 bits,
     so mask to 62 before converting *)
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

let capacity t = Array.length t.buf

let grow t =
  let n = capacity t in
  let nbuf = Array.make (2 * n) None in
  for j = 0 to t.len - 1 do
    nbuf.(j) <- t.buf.((t.head + j) mod n)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push t slot =
  if t.len = capacity t then grow t;
  t.buf.((t.head + t.len) mod capacity t) <- Some slot;
  t.len <- t.len + 1

let pop_at t i =
  let n = capacity t in
  let pi = (t.head + i) mod n in
  (* indices below [len] are always populated; an empty slot here
     means the circular-buffer bookkeeping itself is broken *)
  match t.buf.(pi) with
  | None -> invalid_arg "Sched.pop_at: empty slot inside run queue"
  | Some slot ->
      t.buf.(pi) <- t.buf.(t.head);
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod n;
      t.len <- t.len - 1;
      slot

let queue_depth t = t.len
let quantum t = t.quantum
let policy t = t.policy

(* {2 Preemption-model introspection}

   Constants the static interference analysis (lib/analysis) builds
   its may-happen-in-parallel model from. They are facts about the
   code in this file; the differential-soundness tests replay real
   scheduler audit logs against a model derived from them, so if
   either ever changes without the analysis following, the replay
   fails. *)

(* [hook] performs Yield only from inside [Kernel.preempt_point],
   which syscall dispatch crosses exactly once, at entry, before the
   audit batch opens — there are no mid-syscall preemption points. *)
let entry_preemption_only = true

(* A gate child runs nested inside the caller's dispatch (audit depth
   >= 1) and under a pid different from [t.current]; both conditions
   independently keep [hook] from firing, so a gate body can never be
   torn by this scheduler. *)
let gate_children_atomic = true

let stats t =
  {
    slices = t.st_slices;
    preemptions = t.st_preempt;
    completed = t.st_completed;
    killed = t.st_killed;
    max_depth = t.st_max_depth;
  }

let handler =
  Effect.Deep.
    {
      retc = (fun () -> Completed);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, slice_result) Effect.Deep.continuation) ->
                  Yielded k)
          | _ -> None);
    }

(* Pull every process spawned since the last admission point off the
   kernel run queue. Bodies that were already executed synchronously
   (e.g. Platform.with_ctx runs its context body immediately) arrive
   here in a non-[Runnable] state and are skipped. *)
let admit t =
  let rec loop () =
    match Kernel.take_pending t.sk with
    | None -> ()
    | Some (proc, body) ->
        (match proc.Proc.state with
        | Proc.Runnable -> push t { s_proc = proc; s_resume = Start body }
        | Proc.Running | Proc.Exited | Proc.Killed _ -> ());
        loop ()
  in
  loop ()

let pick t =
  if t.len = 0 then None
  else
    let i = match t.policy with Fifo -> 0 | Seeded _ -> next_rand t mod t.len in
    Some (pop_at t i)

(* A process killed while suspended (possible if a test kills it by
   hand between slices) still holds a frozen stack; discontinue it so
   its Fun.protect finalizers — the audit-batch flush among them —
   run before the slot is dropped. *)
let discard_dead slot =
  match slot.s_resume with
  | Start _ -> ()
  | Suspended cont -> ( try ignore (Effect.Deep.discontinue cont Exit) with _ -> ())

let run_slice t slot =
  let k = t.sk in
  let proc = slot.s_proc in
  match proc.Proc.state with
  | Proc.Exited | Proc.Killed _ -> discard_dead slot
  | Proc.Runnable | Proc.Running ->
      let depth = t.len + 1 in
      if depth > t.st_max_depth then t.st_max_depth <- depth;
      Metrics.observe t.m_depth depth;
      Metrics.inc t.m_slices ~labels:[ ("policy", policy_label t.policy) ];
      t.st_slices <- t.st_slices + 1;
      (* the context switch itself costs one tick, like a dispatch *)
      Kernel.advance_clock k;
      t.current <- proc.Proc.pid;
      t.slice_start <- Kernel.tick k;
      let run () =
        match slot.s_resume with
        | Start body ->
            proc.Proc.state <- Proc.Running;
            Effect.Deep.match_with
              (fun () -> body { Kernel.kernel = k; proc })
              () handler
        | Suspended cont -> Effect.Deep.continue cont ()
      in
      let tracer = Kernel.tracer k in
      let result =
        try
          if Tracer.enabled tracer then
            Tracer.with_span tracer
              ~clock:(fun () -> Kernel.tick k)
              ~fields:[ ("pid", string_of_int proc.Proc.pid) ]
              "sched.slice" run
          else run ()
        with exn ->
          Kernel.fail_proc k proc exn;
          Completed
      in
      t.current <- -1;
      Metrics.observe t.m_slice_ticks (Kernel.tick k - t.slice_start);
      (match result with
      | Completed -> (
          match proc.Proc.state with
          | Proc.Killed _ -> t.st_killed <- t.st_killed + 1
          | Proc.Running | Proc.Runnable | Proc.Exited ->
              Kernel.finish_proc k proc;
              t.st_completed <- t.st_completed + 1)
      | Yielded cont ->
          t.st_preempt <- t.st_preempt + 1;
          Metrics.inc t.m_preempt ~labels:[ ("policy", policy_label t.policy) ];
          slot.s_resume <- Suspended cont;
          push t slot)

let hook t proc =
  if
    proc.Proc.pid = t.current
    && Kernel.tick t.sk - t.slice_start >= t.quantum
  then Effect.perform Yield

let drain t =
  Kernel.set_preempt_hook t.sk (Some (hook t));
  Fun.protect
    ~finally:(fun () -> Kernel.set_preempt_hook t.sk None)
    (fun () ->
      let rec loop () =
        admit t;
        match pick t with
        | None -> ()
        | Some slot ->
            run_slice t slot;
            loop ()
      in
      loop ())

let run ?quantum ?policy kernel =
  let t = create ?quantum ?policy kernel in
  drain t;
  stats t
