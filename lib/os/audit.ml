open W5_difc

type subject =
  | No_subject
  | File of string
  | Peer of int
  | Gate of string

type event =
  | Flow_checked of {
      op : string;
      src : Flow.labels;
      dst : Flow.labels;
      decision : (unit, Flow.denial) result;
      subject : subject;
    }
  | Label_changed of {
      old_labels : Flow.labels;
      new_labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Export_attempted of {
      destination : string;
      labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Declassified of { tag : Tag.t; context : string }
  | Tainted of { op : string; subject : subject; added : Label.t }
  | Object_labeled of { op : string; path : string; labels : Flow.labels }
  | Sync_applied of { peer : string; path : string; direction : string }
  | Sync_fault of { path : string; action : string; attempt : int }
  | Sync_recovered of { peer : string; path : string; phase : string }
  | Spawned of { child : int; name : string; labels : Flow.labels }
  | Gate_invoked of { gate : string; child : int }
  | Killed of { reason : string }
  | Quota_hit of Resource.kind
  | App_note of string

type entry = {
  seq : int;
  tick : int;
  pid : int;
  event : event;
}

type log = {
  mutable seq : int;
  mutable items : entry list;  (* newest first *)
  mutable count : int;
  capacity : int option;
}

let create ?capacity () = { seq = 0; items = []; count = 0; capacity }

let truncate log =
  match log.capacity with
  | Some cap when log.count > 2 * cap ->
      (* amortized truncation: keep the newest [cap] entries *)
      log.items <- List.filteri (fun i _ -> i < cap) log.items;
      log.count <- cap
  | Some _ | None -> ()

let push log ~tick ~pid event =
  log.seq <- log.seq + 1;
  log.items <- { seq = log.seq; tick; pid; event } :: log.items;
  log.count <- log.count + 1

let record log ~tick ~pid event =
  push log ~tick ~pid event;
  truncate log

let record_batch log events =
  List.iter (fun (tick, pid, event) -> push log ~tick ~pid event) events;
  truncate log

let length log = log.count
let evicted log = log.seq - log.count
let entries log = List.rev log.items

(* Oldest-first traversal without building the reversed list; the log
   is bounded (see [create]) so the non-tail recursion is fine. *)
let fold log ~init ~f =
  List.fold_right (fun entry acc -> f acc entry) log.items init

let iter log ~f = fold log ~init:() ~f:(fun () entry -> f entry)
let find log ~f = List.rev (List.filter f log.items)

let is_denial entry =
  match entry.event with
  | Flow_checked { decision = Error _; _ }
  | Label_changed { decision = Error _; _ }
  | Export_attempted { decision = Error _; _ } ->
      true
  | Flow_checked _ | Label_changed _ | Export_attempted _ | Declassified _
  | Tainted _ | Object_labeled _ | Sync_applied _ | Sync_fault _
  | Sync_recovered _ | Spawned _ | Gate_invoked _ | Killed _ | Quota_hit _
  | App_note _ ->
      false

let event_kind = function
  | Flow_checked _ -> "flow_checked"
  | Label_changed _ -> "label_changed"
  | Export_attempted _ -> "export_attempted"
  | Declassified _ -> "declassified"
  | Tainted _ -> "tainted"
  | Object_labeled _ -> "object_labeled"
  | Sync_applied _ -> "sync_applied"
  | Sync_fault _ -> "sync_fault"
  | Sync_recovered _ -> "sync_recovered"
  | Spawned _ -> "spawned"
  | Gate_invoked _ -> "gate_invoked"
  | Killed _ -> "killed"
  | Quota_hit _ -> "quota_hit"
  | App_note _ -> "app_note"

let query log ?pid ?kind ?seq_from ?seq_to ?(denials_only = false) () =
  find log ~f:(fun e ->
      (match pid with None -> true | Some p -> e.pid = p)
      && (match kind with None -> true | Some k -> event_kind e.event = k)
      && (match seq_from with None -> true | Some s -> e.seq >= s)
      && (match seq_to with None -> true | Some s -> e.seq <= s)
      && ((not denials_only) || is_denial e))

let denials log = find log ~f:is_denial
let for_pid log pid = find log ~f:(fun e -> e.pid = pid)

let clear log =
  log.seq <- 0;
  log.items <- [];
  log.count <- 0

let pp_subject fmt = function
  | No_subject -> ()
  | File path -> Format.fprintf fmt " on %s" path
  | Peer pid -> Format.fprintf fmt " with #%d" pid
  | Gate gate -> Format.fprintf fmt " via gate %s" gate

let pp_decision fmt = function
  | Ok () -> Format.pp_print_string fmt "ALLOW"
  | Error d -> Format.fprintf fmt "DENY(%a)" Flow.pp_denial d

let pp_event fmt = function
  | Flow_checked { op; src; dst; decision; subject } ->
      Format.fprintf fmt "flow %s%a [%a] -> [%a]: %a" op pp_subject subject
        Flow.pp_labels src Flow.pp_labels dst pp_decision decision
  | Label_changed { old_labels; new_labels; decision } ->
      Format.fprintf fmt "relabel [%a] -> [%a]: %a" Flow.pp_labels old_labels
        Flow.pp_labels new_labels pp_decision decision
  | Export_attempted { destination; labels; decision } ->
      Format.fprintf fmt "export to %s [%a]: %a" destination Flow.pp_labels
        labels pp_decision decision
  | Declassified { tag; context } ->
      Format.fprintf fmt "declassify %a (%s)" Tag.pp tag context
  | Tainted { op; subject; added } ->
      Format.fprintf fmt "taint %s%a +%a" op pp_subject subject Label.pp added
  | Object_labeled { op; path; labels } ->
      Format.fprintf fmt "label %s %s [%a]" op path Flow.pp_labels labels
  | Sync_applied { peer; path; direction } ->
      Format.fprintf fmt "sync %s %s %s" direction peer path
  | Sync_fault { path; action; attempt } ->
      Format.fprintf fmt "sync fault %s %s attempt=%d" action path attempt
  | Sync_recovered { peer; path; phase } ->
      Format.fprintf fmt "sync recovered %s %s phase=%s" peer path phase
  | Spawned { child; name; labels } ->
      Format.fprintf fmt "spawn #%d %s [%a]" child name Flow.pp_labels labels
  | Gate_invoked { gate; child } ->
      Format.fprintf fmt "gate %s -> #%d" gate child
  | Killed { reason } -> Format.fprintf fmt "killed: %s" reason
  | Quota_hit k -> Format.fprintf fmt "quota hit: %a" Resource.pp_kind k
  | App_note s -> Format.fprintf fmt "note: %s" s

let pp_entry fmt (e : entry) =
  Format.fprintf fmt "#%d t=%d pid=%d %a" e.seq e.tick e.pid pp_event e.event
