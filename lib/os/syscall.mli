(** The syscall API — everything application code may do.

    This is the single choke point where policy meets mechanism: every
    function charges the caller's resource quota, performs the
    relevant information-flow check, writes an audit record for
    security decisions, and only then touches the filesystem, the
    process table or a mailbox.

    Label-change conventions (the Flume defaults for a data-sharing
    platform):
    - {b raising secrecy} (adding a secrecy tag to one's own label) is
      always allowed — anyone may taint themselves;
    - {b dropping secrecy} requires the [t-] capability
      (declassification privilege);
    - {b raising integrity} (claiming a vouching) requires [t+]
      (endorsement privilege);
    - {b dropping integrity} is always allowed.

    All functions return [result]; quota exhaustion does not return —
    it raises {!Kernel.Quota_kill}, which the kernel turns into a
    process kill, so malicious code cannot catch its way around
    limits. *)

open W5_difc

type 'a r = ('a, Os_error.t) result

(** {1 Syscall footprints}

    One declarative record per operation, naming which label-state
    cells the op reads, writes (and how the write combines), which
    cells its action safety depends on, which of those it revalidates
    inside the same atomic dispatch, and whether it crosses the
    scheduler's entry preemption point. The static interference
    analysis (lib/analysis) consumes this table; it cannot drift from
    the implementation because the dispatcher itself is driven by the
    same records (op naming and preemption placement), and a test
    drives every op under a counting preempt hook to compare observed
    crossings against [entry_preempt]. *)
module Spec : sig
  (** One addressable piece of label state. [Subject_*] cells belong
      to the calling process, [Object_labels]/[Dir_summary] to
      filesystem nodes, [Peer_*] to another process touched through
      IPC, grants, or spawning. *)
  type cell =
    | Subject_secrecy
    | Subject_integrity
    | Subject_caps
    | Object_labels
    | Dir_summary
    | Peer_labels
    | Peer_caps

  (** How a write combines with the current cell value: [Merge] joins
      into it, [Retract] removes from it (the two semilattice
      directions — these commute with themselves), [Assign] replaces
      wholesale (commutes with nothing). *)
  type write_kind = Merge | Assign | Retract

  type t = {
    op : string;
    reads : cell list;
    writes : (cell * write_kind) list;
    depends : cell list;
        (** cells whose value the op's action safety rests on *)
    revalidates : cell list;
        (** the subset of [depends] re-checked inside the same atomic
            dispatch; a dependency not revalidated is TOCTOU bait *)
    entry_preempt : bool;
  }

  val cell_name : cell -> string
  val write_kind_name : write_kind -> string

  val all : t list
  (** Every operation the syscall layer dispatches, exactly once. *)

  val find : string -> t option
  (** Look up a spec by its [op] name. *)

  val label_absorb : t
  val tag_create : t
  val label_set : t
  val label_taint : t
  val label_declassify : t
  val label_endorse : t
  val label_drop_integrity : t
  val cap_grant : t
  val cap_drop : t
  val fs_mkdir : t
  val fs_create : t
  val fs_read : t
  val fs_read_taint : t
  val fs_write : t
  val fs_append : t
  val fs_unlink : t
  val fs_rename : t
  val fs_relabel : t
  val fs_readdir : t
  val fs_stat : t
  val fs_exists : t
  val ipc_send : t
  val ipc_recv : t
  val proc_spawn : t
  val gate_invoke : t
  val proc_respond : t
  val proc_consume : t
  val debug_note : t
end

(** {1 Introspection} *)

val pid : Kernel.ctx -> int
val my_labels : Kernel.ctx -> Flow.labels
val my_caps : Kernel.ctx -> Capability.Set.t
val my_owner : Kernel.ctx -> Principal.t
val usage : Kernel.ctx -> Resource.kind -> int

(** {1 Tags and labels} *)

val create_tag :
  Kernel.ctx -> ?name:string -> ?restricted:bool -> Tag.kind -> Tag.t r
(** Allocates a tag and grants the calling process dual privilege
    over it. *)

val set_labels : Kernel.ctx -> Flow.labels -> unit r
(** Replace the caller's labels, subject to the conventions above. *)

val add_taint : Kernel.ctx -> Label.t -> unit r
(** Join tags into the caller's secrecy label (always allowed). *)

val absorb_labels : Kernel.ctx -> Flow.labels -> unit r
(** Join a full label pair into the caller's (secrecy union, integrity
    meet) — the same absorption a tainting read performs, without the
    read. {e Restricted} secrecy tags still require [t+]; the store's
    query layer uses this to pre-absorb a collection's label summary
    so indexed and scanning evaluations taint identically. *)

val declassify_self : Kernel.ctx -> ?context:string -> Tag.t -> unit r
(** Drop one secrecy tag from the caller's label; requires [t-].
    [context] (default ["self"]) names the authority in the audit
    record — declassifier gates and the federation layer pass their
    own names so audit reports can attribute every drop. *)

val endorse_self : Kernel.ctx -> Tag.t -> unit r
(** Add one integrity tag to the caller's label; requires [t+]. *)

val drop_integrity : Kernel.ctx -> Tag.t -> unit r

val grant_cap : Kernel.ctx -> to_:int -> Capability.t -> unit r
(** Give a capability you own to another live process. The grant is a
    communication, so the ordinary flow check applies. *)

val drop_cap : Kernel.ctx -> Capability.t -> unit r

(** {1 Filesystem} *)

val mkdir : Kernel.ctx -> string -> labels:Flow.labels -> unit r
val create_file :
  Kernel.ctx -> string -> labels:Flow.labels -> data:string -> unit r
val read_file : Kernel.ctx -> string -> string r
(** Strict read: the file's labels must already flow to the caller. *)

val read_file_taint : Kernel.ctx -> string -> string r
(** Reading with automatic taint: the caller's secrecy label absorbs
    the file's (and the lookup path's), and its integrity label drops
    to the intersection. Never denied for label reasons. *)

val write_file : Kernel.ctx -> string -> data:string -> unit r
val append_file : Kernel.ctx -> string -> data:string -> unit r
val unlink : Kernel.ctx -> string -> unit r

val rename : Kernel.ctx -> src:string -> dst:string -> unit r
(** Move a node. Requires write authority over both parent directories
    (their contents change) and over the node itself (renaming a
    write-protected object is a mutation of it). *)

val set_file_labels : Kernel.ctx -> string -> labels:Flow.labels -> unit r
(** Relabel a file or directory. The caller must have write authority
    over the node (the ordinary write flow check), and the relabeling
    itself must be a change the caller could apply to its own labels:
    dropping a secrecy tag from the node requires [t-], raising the
    node's integrity requires [t+]. *)

val readdir : Kernel.ctx -> string -> string list r
val stat : Kernel.ctx -> string -> Fs.stat r
val file_exists : Kernel.ctx -> string -> bool

(** {1 IPC} *)

val send :
  Kernel.ctx -> to_:int -> ?grant:Capability.Set.t -> ?use_caps:bool ->
  string -> unit r
(** Deliver a message carrying the caller's current labels. Granted
    capabilities must be owned by the sender.

    [use_caps] (default [false]) makes the send behave like a Flume
    endpoint that exercises the sender's capabilities: tags the sender
    could drop ([t-]) do not block the flow, and the message is
    delivered {e without} them (each such implicit declassification is
    audited). A plain send never exercises privilege. *)

val recv : Kernel.ctx -> Proc.message option r
(** Dequeue the next mailbox message; the caller absorbs the message's
    secrecy taint and receives any granted capabilities. *)

(** {1 Processes and gates} *)

val spawn :
  Kernel.ctx -> name:string -> ?labels:Flow.labels ->
  ?caps:Capability.Set.t -> ?limits:Resource.limits -> Kernel.body ->
  Proc.t r
(** Spawn a child (defaults: the caller's labels, no capabilities,
    the platform's default app limits). The child is queued; it runs
    at the next {!Kernel.run}. *)

val invoke_gate : Kernel.ctx -> string -> arg:string -> (string * Flow.labels) option r
(** Call a named gate synchronously; returns the gate process's
    response, if it produced one, with the labels it carried. The
    caller absorbs the response's secrecy taint. *)

val respond : Kernel.ctx -> string -> unit r
(** Set the caller's response buffer (what the HTTP gateway will try
    to export). The buffer is labeled with the caller's labels at the
    time of the call. *)

val consume : Kernel.ctx -> cpu:int -> unit r
(** Charge CPU quota explicitly. The platform uses this to meter
    trusted-path work done on a process's behalf (e.g. inline module
    invocation), so recursion through platform helpers is bounded by
    the same quota as everything else. *)

val debug_note : Kernel.ctx -> string -> unit r
(** Append a data-free note to the audit log — the only debugging
    channel available to developers (§3.5). *)
