open W5_difc
open W5_obs

type gate = {
  g_owner : Principal.t;
  g_caps : Capability.Set.t;
  g_entry : ctx -> string -> unit;
}

and meters = {
  syscalls : Metrics.metric;
  flow_checks : Metrics.metric;
  flow_check_src_size : Metrics.metric;
  quota_units : Metrics.metric;
  quota_kills : Metrics.metric;
  spawns : Metrics.metric;
  gate_invocations : Metrics.metric;
  audit_events : Metrics.metric;
  syscall_ticks : Metrics.metric;
  trace_dropped : Metrics.metric;
}

and t = {
  k_id : int;
  k_fs : Fs.t;
  k_audit : Audit.log;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  pending : (Proc.t * body) Queue.t;
  bodies : (int, body) Hashtbl.t;
  gates : (string, gate) Hashtbl.t;
  mutable k_tick : int;
  mutable k_enforcing : bool;
  k_principal : Principal.t;
  k_metrics : Metrics.t;
  k_tracer : Tracer.t;
  k_meters : meters;
  (* Audit batching: while [k_audit_depth > 0] (inside a syscall
     dispatch), events queue here and are appended in one
     [Audit.record_batch] when the outermost dispatch ends — one
     capacity check per syscall instead of one per event. *)
  mutable k_audit_depth : int;
  k_audit_buf : (int * int * Audit.event) Queue.t;
  (* Installed by the scheduler (Sched) for the duration of a drain:
     called by the syscall layer at every dispatch entry so a running
     process can be preempted at kernel-crossing boundaries. *)
  mutable k_preempt : (Proc.t -> unit) option;
}

and ctx = {
  kernel : t;
  proc : Proc.t;
}

and body = ctx -> unit

exception Quota_kill of Resource.kind

(* ~128k entries at ~100B apiece is on the order of 10 MB: enough
   history for days of denial queries on a busy provider, small enough
   that a soak run's memory stays flat. Sequence numbers keep counting
   across eviction, so truncation is observable (Audit.create). *)
let default_audit_capacity = 65536

let make_meters m =
  {
    syscalls =
      Metrics.counter m "w5_syscalls_total"
        ~help:"Kernel crossings by operation";
    flow_checks =
      Metrics.counter m "w5_flow_checks_total"
        ~help:"DIFC flow judgments by operation and decision";
    flow_check_src_size =
      Metrics.histogram m "w5_flow_check_src_secrecy_size"
        ~help:"Source secrecy label cardinality at flow checks"
        ~buckets:[ 0; 1; 2; 4; 8; 16; 32; 64 ];
    quota_units =
      Metrics.counter m "w5_quota_units_total"
        ~help:"Resource units charged by kind";
    quota_kills =
      Metrics.counter m "w5_quota_kills_total"
        ~help:"Processes killed for exceeding a quota, by kind";
    spawns =
      Metrics.counter m "w5_proc_spawns_total" ~help:"Processes created";
    gate_invocations =
      Metrics.counter m "w5_gate_invocations_total"
        ~help:"Privilege-transfer gate calls by gate";
    audit_events =
      Metrics.counter m "w5_audit_events_total"
        ~help:"Audit log records by event kind";
    syscall_ticks =
      Perf.latency m "w5_syscall_ticks"
        ~help:"Logical-clock ticks consumed per syscall dispatch";
    trace_dropped =
      Metrics.counter m "w5_trace_dropped_total"
        ~help:"Completed traces evicted from the tracer ring";
  }

(* Kernels are per-provider singletons; a monotone id lets global
   side tables (e.g. the store's index registries) key per kernel
   without keeping the kernel itself alive in a map key. *)
let next_kernel_id = ref 0

let create ?(enforcing = true) ?(audit_capacity = default_audit_capacity) () =
  let k_metrics = Metrics.create () in
  incr next_kernel_id;
  let k =
    {
      k_id = !next_kernel_id;
      k_fs = Fs.create ();
      k_audit = Audit.create ~capacity:audit_capacity ();
      procs = Hashtbl.create 64;
      next_pid = 0;
      pending = Queue.create ();
      bodies = Hashtbl.create 64;
      gates = Hashtbl.create 16;
      k_tick = 0;
      k_enforcing = enforcing;
      k_principal = Principal.make Principal.Provider "kernel";
      k_metrics;
      k_tracer = Tracer.create ();
      k_meters = make_meters k_metrics;
      k_audit_depth = 0;
      k_audit_buf = Queue.create ();
      k_preempt = None;
    }
  in
  (* ring evictions surface as a counter, not only in the traces
     exposition footer *)
  Tracer.set_on_drop k.k_tracer (fun n ->
      Metrics.inc k.k_meters.trace_dropped ~by:n);
  k

let id k = k.k_id
let enforcing k = k.k_enforcing
let set_enforcing k b = k.k_enforcing <- b
let fs k = k.k_fs
let audit k = k.k_audit
let tick k = k.k_tick
let advance_clock k = k.k_tick <- k.k_tick + 1
let kernel_principal k = k.k_principal
let metrics k = k.k_metrics
let tracer k = k.k_tracer
let meters k = k.k_meters

let record k ~pid event =
  Metrics.inc k.k_meters.audit_events
    ~labels:[ ("event", Audit.event_kind event) ];
  if k.k_audit_depth > 0 then Queue.add (k.k_tick, pid, event) k.k_audit_buf
  else Audit.record k.k_audit ~tick:k.k_tick ~pid event

let flush_audit k =
  if not (Queue.is_empty k.k_audit_buf) then begin
    let items =
      List.rev (Queue.fold (fun acc e -> e :: acc) [] k.k_audit_buf)
    in
    Queue.clear k.k_audit_buf;
    Audit.record_batch k.k_audit items
  end

let with_audit_batch k f =
  k.k_audit_depth <- k.k_audit_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      k.k_audit_depth <- k.k_audit_depth - 1;
      if k.k_audit_depth = 0 then flush_audit k)
    f

(* The label algebra's memo caches (W5_difc.Memo) keep bare counters
   so lib/difc needn't depend on lib/obs; republishing them as gauges
   makes them visible in `w5 stats` / Prometheus scrapes. Cache names
   and counts only — never tag names or user bytes. *)
let sync_cache_metrics k =
  let m = k.k_metrics in
  let hits = Metrics.gauge m "w5_label_cache_hits_total"
      ~help:"Label-algebra memo cache hits by cache"
  and misses = Metrics.gauge m "w5_label_cache_misses_total"
      ~help:"Label-algebra memo cache misses by cache"
  and flushes = Metrics.gauge m "w5_label_cache_flushes_total"
      ~help:"Label-algebra memo cache cap flushes by cache"
  and size = Metrics.gauge m "w5_label_cache_size"
      ~help:"Label-algebra memo cache live entries by cache"
  and capacity = Metrics.gauge m "w5_label_cache_capacity"
      ~help:"Label-algebra memo cache entry cap by cache"
  in
  List.iter
    (fun (s : Memo.snapshot) ->
      let labels = [ ("cache", s.Memo.name) ] in
      Metrics.set hits ~labels s.Memo.hits;
      Metrics.set misses ~labels s.Memo.misses;
      Metrics.set flushes ~labels s.Memo.flushes;
      Metrics.set size ~labels s.Memo.size;
      Metrics.set capacity ~labels s.Memo.capacity)
    (Memo.snapshots ())

let set_preempt_hook k hook = k.k_preempt <- hook

(* Preemption points sit at syscall-dispatch entry, and only at audit
   depth 0: a nested dispatch (a gate child's syscalls inside the
   caller's open audit batch) must never suspend with the kernel-wide
   batch buffer half-filled, or another process's events would land in
   it. Depth-0 entries are exactly the boundaries where the kernel
   holds no per-call state. *)
let preempt_point k proc =
  match k.k_preempt with
  | Some hook when k.k_audit_depth = 0 -> hook proc
  | Some _ | None -> ()

let fresh_pid k =
  k.next_pid <- k.next_pid + 1;
  k.next_pid

let spawn k ?parent ~name ~owner ~labels ~caps ~limits body =
  let checked =
    match parent with
    | None -> Ok ()
    | Some p when not k.k_enforcing ->
        Result.map (fun () -> ())
          (Result.map_error
             (fun kind -> Os_error.Quota_exceeded kind)
             (Resource.charge p.Proc.usage p.Proc.limits Resource.Processes 1))
    | Some p -> (
        match Resource.charge p.Proc.usage p.Proc.limits Resource.Processes 1 with
        | Error kind -> Error (Os_error.Quota_exceeded kind)
        | Ok () ->
            if not (Capability.Set.subset caps p.Proc.caps) then
              Error
                (Os_error.Permission
                   "spawn: child capabilities exceed parent's")
            else
              Result.map_error
                (fun d -> Os_error.Denied d)
                (Flow.check_labels_change ~caps:p.Proc.caps
                   ~old_labels:p.Proc.labels ~new_labels:labels))
  in
  match checked with
  | Error _ as e -> e
  | Ok () ->
      let pid = fresh_pid k in
      let proc = Proc.make ~pid ~name ~owner ~labels ~caps ~limits in
      Hashtbl.replace k.procs pid proc;
      Hashtbl.replace k.bodies pid body;
      Queue.add (proc, body) k.pending;
      Metrics.inc k.k_meters.spawns;
      let actor = match parent with Some p -> p.Proc.pid | None -> 0 in
      record k ~pid:actor (Audit.Spawned { child = pid; name; labels });
      Ok proc

(* Completion and failure bookkeeping, shared between the synchronous
   [run_proc] below and the interleaved scheduler (Sched): both must
   stamp the finish tick and convert quota kills / stray exceptions
   into audited [Killed] states. *)
let finish_proc k proc =
  proc.Proc.state <- Proc.Exited;
  proc.Proc.finished_tick <- Some k.k_tick

let fail_proc k proc exn =
  (match exn with
  | Quota_kill kind ->
      Proc.kill proc ~reason:("quota: " ^ Resource.kind_to_string kind);
      Metrics.inc k.k_meters.quota_kills
        ~labels:[ ("kind", Resource.kind_to_string kind) ];
      record k ~pid:proc.Proc.pid (Audit.Quota_hit kind);
      record k ~pid:proc.Proc.pid
        (Audit.Killed { reason = "quota: " ^ Resource.kind_to_string kind })
  | exn ->
      let reason = "uncaught: " ^ Printexc.to_string exn in
      Proc.kill proc ~reason;
      record k ~pid:proc.Proc.pid (Audit.Killed { reason }));
  proc.Proc.finished_tick <- Some k.k_tick

let run_proc k proc =
  match proc.Proc.state with
  | Proc.Running | Proc.Exited | Proc.Killed _ -> ()
  | Proc.Runnable -> (
      match Hashtbl.find_opt k.bodies proc.Proc.pid with
      | None -> finish_proc k proc
      | Some body -> (
          proc.Proc.state <- Proc.Running;
          advance_clock k;
          try
            body { kernel = k; proc };
            finish_proc k proc
          with exn -> fail_proc k proc exn))

let run k =
  let rec drain () =
    match Queue.take_opt k.pending with
    | None -> ()
    | Some (proc, _) ->
        run_proc k proc;
        drain ()
  in
  drain ()

(* Admission interface for the interleaved scheduler: pull spawned
   processes off the kernel run queue without executing them. *)
let take_pending k = Queue.take_opt k.pending

let pending_count k = Queue.length k.pending

let find_proc k pid = Hashtbl.find_opt k.procs pid

let processes k =
  Hashtbl.fold (fun _ p acc -> p :: acc) k.procs []
  |> List.sort (fun a b -> Int.compare a.Proc.pid b.Proc.pid)

let reap k =
  let dead =
    Hashtbl.fold
      (fun pid p acc -> if Proc.is_alive p then acc else pid :: acc)
      k.procs []
  in
  List.iter
    (fun pid ->
      Hashtbl.remove k.procs pid;
      Hashtbl.remove k.bodies pid)
    dead;
  (* drop dead processes from the run queue too, or their records
     (and closures) stay reachable forever *)
  let live = Queue.create () in
  Queue.iter
    (fun ((proc, _) as entry) ->
      if Proc.is_alive proc then Queue.add entry live)
    k.pending;
  Queue.clear k.pending;
  Queue.transfer live k.pending;
  List.length dead

let process_count k = Hashtbl.length k.procs

let live_process_count k =
  Hashtbl.fold (fun _ p acc -> if Proc.is_alive p then acc + 1 else acc) k.procs 0

let register_gate k ~name ~owner ~caps ~entry =
  Hashtbl.replace k.gates name { g_owner = owner; g_caps = caps; g_entry = entry }

let gate_exists k name = Hashtbl.mem k.gates name

let gate_caps k name =
  Option.map (fun g -> g.g_caps) (Hashtbl.find_opt k.gates name)

let gate_owner k name =
  Option.map (fun g -> g.g_owner) (Hashtbl.find_opt k.gates name)

let gate_names k =
  Hashtbl.fold (fun name _ acc -> name :: acc) k.gates []
  |> List.sort String.compare

let invoke_gate k ~caller ~name ~arg =
  match Hashtbl.find_opt k.gates name with
  | None -> Error (Os_error.No_such_gate name)
  | Some gate -> (
      match
        Resource.charge caller.Proc.usage caller.Proc.limits
          Resource.Processes 1
      with
      | Error kind -> Error (Os_error.Quota_exceeded kind)
      | Ok () ->
          let pid = fresh_pid k in
          let proc =
            Proc.make ~pid
              ~name:("gate:" ^ name)
              ~owner:gate.g_owner ~labels:caller.Proc.labels ~caps:gate.g_caps
              ~limits:Resource.default_app_limits
          in
          Hashtbl.replace k.procs pid proc;
          let body ctx = gate.g_entry ctx arg in
          Hashtbl.replace k.bodies pid body;
          Metrics.inc k.k_meters.gate_invocations ~labels:[ ("gate", name) ];
          record k ~pid:caller.Proc.pid
            (Audit.Gate_invoked { gate = name; child = pid });
          Tracer.with_span k.k_tracer
            ~clock:(fun () -> k.k_tick)
            ("gate:" ^ name)
            (fun () -> run_proc k proc);
          Ok proc)
