(** The labeled filesystem — mechanism only.

    Every file and directory carries a {!W5_difc.Flow.labels} pair.
    This module implements the tree and path handling; all policy
    (flow checks against an acting process) lives in {!Syscall}, so
    there is exactly one place where security decisions are made.

    Paths are absolute, ["/"]-separated strings; ["/"] is the root
    directory. *)

open W5_difc

type t

type node_kind =
  | Regular
  | Directory

type stat = {
  kind : node_kind;
  labels : Flow.labels;
  size : int;          (** bytes for files, entry count for dirs *)
  version : int;       (** bumped on every write / entry change *)
}
(** A directory's [version] is bumped when an entry is added, removed
    or renamed, and also when an immediate child file's contents or
    labels change — so it covers the whole set of direct children. *)

val create : ?root_labels:Flow.labels -> unit -> t

val mkdir : t -> string -> labels:Flow.labels -> (unit, Os_error.t) result
val create_file :
  t -> string -> labels:Flow.labels -> data:string -> (unit, Os_error.t) result

val read : t -> string -> (string * Flow.labels, Os_error.t) result
val write : t -> string -> data:string -> (unit, Os_error.t) result
val append : t -> string -> data:string -> (unit, Os_error.t) result
val unlink : t -> string -> (unit, Os_error.t) result
(** Removes a file or an *empty* directory. *)

val rename : t -> src:string -> dst:string -> (unit, Os_error.t) result
(** Move a file or directory (with its subtree). [dst] must not exist;
    moving a directory into its own subtree is rejected. *)

val readdir : t -> string -> (string list * Flow.labels, Os_error.t) result
(** Entry names (sorted) plus the directory's labels. *)

val stat : t -> string -> (stat, Os_error.t) result
val set_labels : t -> string -> labels:Flow.labels -> (unit, Os_error.t) result
val exists : t -> string -> bool

val parent_labels : t -> string -> (Flow.labels, Os_error.t) result
(** Labels of the directory containing the path's last component. *)

val path_taint : t -> string -> (Flow.labels, Os_error.t) result
(** Join of the labels of every ancestor directory traversed to reach
    the path (excluding the node itself): the information revealed by
    a successful lookup. *)

val total_files : t -> int

val generation : t -> int
(** Bumped whenever the namespace changes out from under version
    counters (today: a successful {!restore_into}). Caches keyed on
    [(generation, dir version)] stay sound across restores. *)

val snapshot : t -> string
(** Serialize the whole tree — data, labels (by tag identity) and
    versions — into a deterministic text image. Together with
    {!restore_into} this is the provider's durability story: the
    simulated disk can be checkpointed and reloaded across a kernel
    restart within the same provider process (tag identities are
    provider state and persist with it; see DESIGN.md §2). *)

val restore_into : t -> string -> (unit, Os_error.t) result
(** Replace [t]'s contents with a {!snapshot} image. Labels referring
    to tags unknown to this provider are an error, not a silent drop —
    losing a label would declassify. *)

val dirname : string -> string
val basename : string -> string
val join_path : string -> string -> string
