(** The simulated W5 kernel.

    Holds the labeled filesystem, the process table, the audit log,
    the gate registry and a logical clock. The kernel is the trusted
    computing base of the simulation: applications only ever touch it
    through {!Syscall}.

    {b Gates} are the privilege-transfer mechanism (after Flume's
    setlabel files / HiStar gates): a gate bundles an entry point with
    a capability set; invoking it spawns a process that runs the entry
    point with the gate's capabilities rather than the caller's. This
    is how a declassifier obtains the [t-] capability for a user's
    secrecy tag without the calling application ever holding it. *)

open W5_difc

type t

(** The execution context handed to every process body: the kernel it
    runs on and its own process record. *)
type ctx = {
  kernel : t;
  proc : Proc.t;
}

type body = ctx -> unit

exception Quota_kill of Resource.kind
(** Raised inside a process body by the syscall layer when a resource
    limit is exceeded; caught by the kernel, which kills the process. *)

val default_audit_capacity : int
(** 65536. An entry is on the order of 100 bytes, so the default keeps
    the resident log under ~10 MB while still holding enough history
    for denial queries over a long trace. Long-running providers that
    accepted the seed's unbounded default would grow without bound
    over a soak run; truncation stays observable because sequence
    numbers keep counting (see {!Audit.create}). *)

val create : ?enforcing:bool -> ?audit_capacity:int -> unit -> t
(** A fresh kernel with an empty filesystem. [enforcing] (default
    [true]) turns the IFC checks on; with it off the mechanism runs
    but every check passes — this is the baseline arm of the overhead
    benchmark (P1), {e never} a production configuration.
    [audit_capacity] bounds the audit log (see {!Audit.create});
    defaults to {!default_audit_capacity} so the gateway/kernel wiring
    is memory-bounded out of the box. *)

(** {1 Telemetry}

    Every kernel carries a {!W5_obs.Metrics.t} registry and a
    {!W5_obs.Tracer.t}: the platform-provided visibility of §3.5,
    extended from the audit log to counters and request traces. All
    recorded facts are data-free (op names, decisions, label sizes,
    tick deltas) — never user bytes. *)

type meters = {
  syscalls : W5_obs.Metrics.metric;            (** [{op}] *)
  flow_checks : W5_obs.Metrics.metric;         (** [{op, decision}] *)
  flow_check_src_size : W5_obs.Metrics.metric; (** histogram, label sizes *)
  quota_units : W5_obs.Metrics.metric;         (** [{kind}] *)
  quota_kills : W5_obs.Metrics.metric;         (** [{kind}] *)
  spawns : W5_obs.Metrics.metric;
  gate_invocations : W5_obs.Metrics.metric;    (** [{gate}] *)
  audit_events : W5_obs.Metrics.metric;        (** [{event}] *)
  syscall_ticks : W5_obs.Metrics.metric;
      (** [{op}] latency histogram on {!W5_obs.Perf.tick_buckets}:
          logical-clock ticks consumed per syscall dispatch *)
  trace_dropped : W5_obs.Metrics.metric;
      (** completed traces evicted from the tracer ring
          ([w5_trace_dropped_total]), mirrored from
          {!W5_obs.Tracer.set_on_drop} so ring pressure is visible in
          the metrics exposition, not only in the traces footer *)
}
(** Pre-registered handles for the hot paths, so instrumentation does
    not pay a by-name lookup per syscall. *)

val metrics : t -> W5_obs.Metrics.t
val tracer : t -> W5_obs.Tracer.t
val meters : t -> meters

val id : t -> int
(** A process-wide unique id for this kernel instance, for keying
    per-kernel side tables (e.g. the store's secondary indexes). *)

val enforcing : t -> bool
val set_enforcing : t -> bool -> unit
val fs : t -> Fs.t
val audit : t -> Audit.log
val tick : t -> int
val advance_clock : t -> unit
val kernel_principal : t -> Principal.t

val spawn :
  t -> ?parent:Proc.t -> name:string -> owner:Principal.t ->
  labels:Flow.labels -> caps:Capability.Set.t -> limits:Resource.limits ->
  body -> (Proc.t, Os_error.t) result
(** Create a process and queue it. With [parent] set (the normal case
    for application code) the kernel checks that the child's
    capabilities are a subset of the parent's and that the child's
    labels are reachable from the parent's by a safe label change;
    parentless spawns are reserved for the platform itself. *)

val run_proc : t -> Proc.t -> unit
(** Execute the process body to completion now (if still runnable).
    Quota kills and uncaught application exceptions are converted to
    [Killed] states and audited; they do not escape. *)

val run : t -> unit
(** Drain the run queue, executing queued processes in FIFO order
    (processes spawned during the drain are executed too). *)

(** {1 Scheduler interface}

    The interleaved scheduler ({!module:Sched}) lives above the kernel:
    the kernel only exposes the hooks it needs — admission from the run
    queue, a preemption callback fired by the syscall layer, and the
    shared completion/failure bookkeeping. *)

val take_pending : t -> (Proc.t * body) option
(** Pull the next spawned-but-not-yet-run process (and its body) off
    the kernel run queue without executing it. Used by the scheduler
    for admission; mutually exclusive with {!run} over the same
    processes. *)

val pending_count : t -> int
(** Processes spawned but not yet admitted or run. *)

val set_preempt_hook : t -> (Proc.t -> unit) option -> unit
(** Install (or clear) the scheduler's preemption callback. While set,
    the syscall layer calls it at every dispatch entry via
    {!preempt_point}; the callback may suspend the calling process by
    performing an effect it handles. Only one scheduler drain may be
    active per kernel. *)

val preempt_point : t -> Proc.t -> unit
(** Fire the preemption hook, if installed — but only at audit depth 0,
    so an audit batch can never be suspended half-filled and have
    another process's events interleaved into it. The syscall layer
    calls this at dispatch entry; it is a no-op without a hook. *)

val finish_proc : t -> Proc.t -> unit
(** Mark a process [Exited] and stamp {!Proc.t.finished_tick}. *)

val fail_proc : t -> Proc.t -> exn -> unit
(** Convert a process-body exception into an audited kill:
    {!Quota_kill} becomes a quota kill (metric + [Quota_hit] +
    [Killed] records), anything else an [uncaught: ...] kill. Stamps
    the finish tick. Shared by {!run_proc} and the scheduler. *)

val find_proc : t -> int -> Proc.t option
val processes : t -> Proc.t list

val reap : t -> int
(** Drop exited and killed processes (and their bodies) from the
    process table; returns how many were collected. A long-running
    provider calls this periodically — the gateway does so
    automatically once the table exceeds a watermark. *)

val live_process_count : t -> int

val process_count : t -> int
(** Table size including dead-but-unreaped processes — the reap
    watermark reads this instead of materializing {!processes}. *)

val register_gate :
  t -> name:string -> owner:Principal.t -> caps:Capability.Set.t ->
  entry:(ctx -> string -> unit) -> unit
(** Registering overwrites any previous gate with the same name. *)

val gate_exists : t -> string -> bool
val gate_names : t -> string list

val gate_caps : t -> string -> Capability.Set.t option
(** The capability set a gate runs with — read-only introspection for
    auditors and the static analyzer; the entry point stays private. *)

val gate_owner : t -> string -> Principal.t option

val invoke_gate :
  t -> caller:Proc.t -> name:string -> arg:string ->
  (Proc.t, Os_error.t) result
(** Spawn a child carrying the {e caller's} labels but the {e gate's}
    capabilities, run it synchronously on [arg], and return it (its
    answer, if any, is in [child.Proc.response]). The caller is
    charged one process. *)

val record : t -> pid:int -> Audit.event -> unit
(** Append to the audit log at the current tick. Inside a
    {!with_audit_batch} scope the entry is buffered (with the tick and
    pid captured now) and appended when the scope closes. *)

val with_audit_batch : t -> (unit -> 'a) -> 'a
(** Run [f] with audit events buffered, then append them in one
    {!Audit.record_batch} — one capacity check per scope instead of
    one per event. Scopes nest (the buffer drains when the outermost
    one ends) and flush even if [f] raises, so a quota kill's own
    events still land before the kernel records the kill. Syscall
    dispatch wraps every syscall in one of these. *)

val sync_cache_metrics : t -> unit
(** Republish the label-algebra memo-cache counters
    ({!W5_difc.Memo.snapshots}) as [w5_label_cache_*] gauges in this
    kernel's registry, labeled by cache name. Call before exposition;
    the caches are process-global, so the gauges describe the process,
    not just this kernel. *)
