open W5_difc
module P = W5_obs.Provenance

let tag_names label = List.map Tag.name (Label.to_list label)

let denial_tags (d : Flow.denial) =
  match d with
  | Flow.Secrecy_violation l
  | Flow.Integrity_violation l
  | Flow.Unauthorized_add l
  | Flow.Unauthorized_drop l ->
      l

let subject_node pid (s : Audit.subject) =
  match s with
  | Audit.No_subject -> P.Process pid
  | Audit.File path -> P.Object path
  | Audit.Peer peer -> P.Process peer
  | Audit.Gate _ -> P.Process pid

(* Which way data moved through a checked operation: reads and
   absorptions pull the subject's taint into the process; writes,
   sends and grants push the process's taint at the subject. *)
let inbound_op op =
  match op with
  | "fs.read" | "fs.readdir" | "absorb" -> true
  | _ -> false

let edge_of_entry (e : Audit.entry) : P.edge option =
  let mk ~kind ~src ~dst ?(tags = []) ?denied ?detail () =
    Some { P.kind; src; dst; seq = e.Audit.seq; tick = e.Audit.tick;
           tags; denied; detail }
  in
  let self = P.Process e.Audit.pid in
  match e.Audit.event with
  | Audit.Tainted { op; subject; added } ->
      mk ~kind:op ~src:(subject_node e.Audit.pid subject) ~dst:self
        ~tags:(tag_names added) ()
  | Audit.Flow_checked { op; src = src_l; decision; subject; _ } ->
      let denied =
        match decision with
        | Ok () -> None
        | Error d -> Some (Flow.denial_to_string d)
      in
      let tags =
        match decision with
        | Error d when not (Label.is_empty (denial_tags d)) ->
            tag_names (denial_tags d)
        | _ -> tag_names src_l.Flow.secrecy
      in
      let other = subject_node e.Audit.pid subject in
      let src, dst = if inbound_op op then (other, self) else (self, other) in
      mk ~kind:op ~src ~dst ~tags ?denied ()
  | Audit.Label_changed { new_labels; decision; _ } ->
      let denied =
        match decision with
        | Ok () -> None
        | Error d -> Some (Flow.denial_to_string d)
      in
      mk ~kind:"relabel" ~src:self ~dst:self
        ~tags:(tag_names new_labels.Flow.secrecy) ?denied ()
  | Audit.Export_attempted { destination; labels; decision } ->
      let denied =
        match decision with
        | Ok () -> None
        | Error d -> Some (Flow.denial_to_string d)
      in
      mk ~kind:"export" ~src:self ~dst:(P.Remote destination)
        ~tags:(tag_names labels.Flow.secrecy) ?denied ()
  | Audit.Declassified { tag; context } ->
      mk ~kind:"declassify" ~src:self ~dst:self ~tags:[ Tag.name tag ]
        ~detail:context ()
  | Audit.Object_labeled { op; path; labels } ->
      mk ~kind:op ~src:self ~dst:(P.Object path)
        ~tags:(tag_names labels.Flow.secrecy) ()
  | Audit.Sync_applied { peer; path; direction } ->
      let remote = P.Remote peer and obj = P.Object path in
      let src, dst =
        if direction = "push" then (obj, remote) else (remote, obj)
      in
      mk ~kind:"sync" ~src ~dst ~detail:direction ()
  | Audit.Spawned { child; name; labels } ->
      mk ~kind:"spawn" ~src:self ~dst:(P.Process child)
        ~tags:(tag_names labels.Flow.secrecy) ~detail:name ()
  | Audit.Gate_invoked { gate; child } ->
      mk ~kind:"gate" ~src:self ~dst:(P.Process child) ~detail:gate ()
  | Audit.Sync_fault { path; action; attempt } ->
      (* retries are causal history too: a transfer that took three
         attempts shows its two lost deliveries on the chain *)
      mk ~kind:"sync.fault" ~src:(P.Object path) ~dst:(P.Object path)
        ~detail:(Printf.sprintf "%s attempt=%d" action attempt)
        ()
  | Audit.Sync_recovered { peer; path; phase } ->
      mk ~kind:"sync.recover" ~src:(P.Remote peer) ~dst:(P.Object path)
        ~detail:phase ()
  | Audit.Killed _ | Audit.Quota_hit _ | Audit.App_note _ -> None

let graph ?node_budget log =
  let g = P.create ?node_budget () in
  Audit.iter log ~f:(fun e ->
      (match e.Audit.event with
      | Audit.Spawned { child; name; _ } ->
          P.set_alias g (P.Process child) name
      | Audit.Gate_invoked { gate; child } ->
          P.set_alias g (P.Process child) gate
      | _ -> ());
      match edge_of_entry e with
      | None -> ()
      | Some edge -> P.add_edge g edge);
  g

let find_denial log ?seq ?pid () =
  match seq with
  | Some s -> (
      match Audit.query log ~seq_from:s ~seq_to:s () with
      | [ e ] when Audit.is_denial e -> Some e
      | _ -> None)
  | None -> (
      let denials = Audit.query log ?pid ~denials_only:true () in
      match List.rev denials with e :: _ -> Some e | [] -> None)

let explain g (entry : Audit.entry) =
  if not (Audit.is_denial entry) then
    Error
      (Printf.sprintf "audit entry #%d is not a denial (%s)" entry.Audit.seq
         (Audit.event_kind entry.Audit.event))
  else
    match P.find_edge g ~seq:entry.Audit.seq with
    | None ->
        Error
          (Printf.sprintf
             "audit entry #%d has no edge in the provenance graph%s"
             entry.Audit.seq
             (if P.truncated g then " (graph truncated at node budget)"
              else ""))
    | Some edge -> Ok (P.explain g edge)

let explain_text g entry =
  Result.map (fun chain -> P.render_chain g chain) (explain g entry)

let explain_dot g entry =
  Result.map (fun chain -> P.dot_of_chain g chain) (explain g entry)

(* The tags a filesystem object currently carries are the tags of its
   most recent labeling edge (fs.create / fs.mkdir / fs.relabel):
   relabels replace the label wholesale, so superseded labelings must
   not be reported as current. *)
let current_object_tags g node =
  let labeling =
    List.filter
      (fun (e : P.edge) ->
        match e.P.kind with
        | "fs.create" | "fs.mkdir" | "fs.relabel" -> true
        | _ -> false)
      (P.incoming g node)
  in
  match List.rev labeling with [] -> [] | last :: _ -> last.P.tags

let per_tag_history g node tags =
  List.map (fun tag -> (tag, P.tag_history g node ~tag))
    (List.sort_uniq String.compare tags)

let file_provenance g ~path =
  let node = P.Object path in
  per_tag_history g node (current_object_tags g node)

(* Replay the pid's label-affecting entries to recover its current
   secrecy tags: taints add, declassifications subtract, an allowed
   relabel rewrites the set. *)
let current_process_tags log ~pid =
  let module S = Set.Make (String) in
  let tags = ref S.empty in
  Audit.iter log ~f:(fun e ->
      if e.Audit.pid = pid then
        match e.Audit.event with
        | Audit.Tainted { added; _ } ->
            List.iter (fun t -> tags := S.add t !tags) (tag_names added)
        | Audit.Declassified { tag; _ } -> tags := S.remove (Tag.name tag) !tags
        | Audit.Label_changed { new_labels; decision = Ok (); _ } ->
            tags := S.of_list (tag_names new_labels.Flow.secrecy)
        | _ -> ());
  S.elements !tags

let process_provenance g log ~pid =
  per_tag_history g (P.Process pid) (current_process_tags log ~pid)

(* ---- audit-report ---------------------------------------------------- *)

let reason_name (d : Flow.denial) =
  match d with
  | Flow.Secrecy_violation _ -> "secrecy_violation"
  | Flow.Integrity_violation _ -> "integrity_violation"
  | Flow.Unauthorized_add _ -> "unauthorized_add"
  | Flow.Unauthorized_drop _ -> "unauthorized_drop"

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

(* counts descending, then key ascending: deterministic for goldens *)
let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, va) (kb, vb) ->
         match Int.compare vb va with 0 -> compare ka kb | c -> c)

let report log =
  let declass = Hashtbl.create 16 in     (* (context, tag) *)
  let denial_reasons = Hashtbl.create 8 in
  let denial_ops = Hashtbl.create 16 in
  let exports = Hashtbl.create 8 in      (* (destination, verdict) *)
  let sync_faults = Hashtbl.create 8 in  (* action *)
  let sync_recoveries = Hashtbl.create 8 in  (* phase *)
  let app_denials = Hashtbl.create 16 in
  let tainted_paths = Hashtbl.create 32 in
  let pid_names = Hashtbl.create 32 in
  let name_of pid =
    match Hashtbl.find_opt pid_names pid with
    | Some n -> n
    | None -> if pid = 0 then "kernel" else Printf.sprintf "pid %d" pid
  in
  let note_denial ~op pid (d : Flow.denial) =
    bump denial_reasons (reason_name d);
    bump denial_ops op;
    bump app_denials (name_of pid)
  in
  Audit.iter log ~f:(fun (e : Audit.entry) ->
      match e.Audit.event with
      | Audit.Spawned { child; name; _ } -> Hashtbl.replace pid_names child name
      | Audit.Gate_invoked { gate; child } ->
          Hashtbl.replace pid_names child gate
      | Audit.Declassified { tag; context } ->
          bump declass (context, Tag.name tag)
      | Audit.Flow_checked { op; decision = Error d; _ } ->
          note_denial ~op e.Audit.pid d
      | Audit.Label_changed { decision = Error d; _ } ->
          note_denial ~op:"relabel" e.Audit.pid d
      | Audit.Export_attempted { destination; decision; _ } -> (
          match decision with
          | Ok () -> bump exports (destination, "allow")
          | Error d ->
              bump exports (destination, "deny");
              note_denial ~op:"export" e.Audit.pid d)
      | Audit.Sync_fault { action; _ } -> bump sync_faults action
      | Audit.Sync_recovered { phase; _ } -> bump sync_recoveries phase
      | Audit.Tainted { subject = Audit.File path; _ } -> bump tainted_paths path
      | _ -> ());
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let section title rows render =
    line "%s" title;
    if rows = [] then line "  (none)"
    else List.iter (fun (k, v) -> line "  %s %d" (render k) v) rows
  in
  line "W5 audit report (%d entries retained, %d evicted)" (Audit.length log)
    (Audit.evicted log);
  line "";
  section "declassifications (by authority and tag):" (sorted_counts declass)
    (fun (context, tag) -> Printf.sprintf "%-40s %-24s" context tag);
  line "";
  section "denials (by reason):" (sorted_counts denial_reasons)
    (Printf.sprintf "%-40s");
  section "denials (by operation):" (sorted_counts denial_ops)
    (Printf.sprintf "%-40s");
  section "denials (by process):" (sorted_counts app_denials)
    (Printf.sprintf "%-40s");
  line "";
  section "exports (by destination and verdict):" (sorted_counts exports)
    (fun (dest, verdict) -> Printf.sprintf "%-40s %-8s" dest verdict);
  line "";
  (* federation health: only printed when the trace federated at all,
     so silo-only golden outputs are unchanged *)
  if Hashtbl.length sync_faults > 0 || Hashtbl.length sync_recoveries > 0
  then begin
    section "sync faults (by action):" (sorted_counts sync_faults)
      (Printf.sprintf "%-40s");
    section "sync recoveries (by intent phase):"
      (sorted_counts sync_recoveries) (Printf.sprintf "%-40s");
    line ""
  end;
  let top_paths =
    match sorted_counts tainted_paths with
    | xs when List.length xs > 10 -> List.filteri (fun i _ -> i < 10) xs
    | xs -> xs
  in
  section "most-tainting paths (top 10):" top_paths (Printf.sprintf "%-40s");
  Buffer.contents buf
