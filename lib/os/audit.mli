(** The kernel audit log (§3.5 "Debugging").

    W5 cannot hand core dumps to developers — a dump of a process that
    read private data *is* private data. Instead the kernel records
    every security decision as a structured, data-free event. A
    developer (or the provider) can query the log for their own
    processes' denials; the log stores labels and tag names but never
    user bytes. *)

open W5_difc

(** What happened. *)
type event =
  | Flow_checked of {
      op : string;               (** e.g. ["fs.read"], ["ipc.send"] *)
      src : Flow.labels;
      dst : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Label_changed of {
      old_labels : Flow.labels;
      new_labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Export_attempted of {
      destination : string;
      labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Declassified of { tag : Tag.t; context : string }
  | Spawned of { child : int; name : string }
  | Gate_invoked of { gate : string; child : int }
  | Killed of { reason : string }
  | Quota_hit of Resource.kind
  | App_note of string  (** a developer-supplied, data-free debug note *)

type entry = {
  seq : int;
  tick : int;       (** kernel logical clock at the time of the event *)
  pid : int;        (** acting process, 0 for the kernel itself *)
  event : event;
}

type log

val create : ?capacity:int -> unit -> log
(** [capacity] bounds the log for long-running providers: once
    exceeded, the oldest entries are discarded (sequence numbers keep
    counting, so truncation is observable). Unbounded by default. *)

val record : log -> tick:int -> pid:int -> event -> unit
val length : log -> int
val entries : log -> entry list
(** Oldest first. *)

val iter : log -> f:(entry -> unit) -> unit
(** Visit entries oldest first without materializing the {!entries}
    list — what the tracer and [denials]-style queries should use. *)

val fold : log -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Oldest-first fold, same allocation guarantee as {!iter}. *)

val find : log -> f:(entry -> bool) -> entry list
val denials : log -> entry list
(** Only the entries whose decision was a denial. *)

val for_pid : log -> int -> entry list
val clear : log -> unit

val event_kind : event -> string
(** Constructor name as a low-cardinality telemetry label, e.g.
    ["flow_checked"] — safe to export, unlike the payload. *)

val pp_entry : Format.formatter -> entry -> unit
