(** The kernel audit log (§3.5 "Debugging").

    W5 cannot hand core dumps to developers — a dump of a process that
    read private data *is* private data. Instead the kernel records
    every security decision as a structured, data-free event. A
    developer (or the provider) can query the log for their own
    processes' denials; the log stores labels, tag names and object
    {e identities} (paths, pids, destinations) but never user bytes.

    Entries carry enough causal identity — which file a flow check
    guarded, which peer an IPC absorbed tags from — for
    {!W5_os.Explain} to reconstruct a provenance graph from the log
    alone. *)

open W5_difc

(** The object a flow check or taint event was about. Identities only:
    a path or pid names {e where} data moved, never what it said. *)
type subject =
  | No_subject
  | File of string   (** a filesystem path *)
  | Peer of int      (** the other process in an IPC or gate exchange *)
  | Gate of string   (** a declassifier gate, by registered name *)

(** What happened. *)
type event =
  | Flow_checked of {
      op : string;               (** e.g. ["fs.read"], ["ipc.send"] *)
      src : Flow.labels;
      dst : Flow.labels;
      decision : (unit, Flow.denial) result;
      subject : subject;         (** what the check guarded *)
    }
  | Label_changed of {
      old_labels : Flow.labels;
      new_labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Export_attempted of {
      destination : string;
      labels : Flow.labels;
      decision : (unit, Flow.denial) result;
    }
  | Declassified of { tag : Tag.t; context : string }
      (** [context] names the authority under which the tag was
          dropped: a gate name, ["ipc.send"], ["federation.sync"]. *)
  | Tainted of { op : string; subject : subject; added : Label.t }
      (** A process absorbed new secrecy tags — the only way taint
          spreads, and therefore the edges provenance walks backward.
          [added] is the set of tags the process did not carry
          before. *)
  | Object_labeled of { op : string; path : string; labels : Flow.labels }
      (** A filesystem object was created or relabeled; records where
          each file's tags came from. *)
  | Sync_applied of { peer : string; path : string; direction : string }
      (** A federation round copied [path] to/from [peer]
          ([direction] is ["push"] or ["pull"]). *)
  | Sync_fault of { path : string; action : string; attempt : int }
      (** An injected (or, in a real deployment, observed) transport
          fault hit a federation transfer of [path]: [action] is the
          {!W5_fault.Fault.action_name} vocabulary and [attempt] the
          delivery attempt it disrupted — how [w5 explain] answers
          "why did this sync take 3 attempts". *)
  | Sync_recovered of { peer : string; path : string; phase : string }
      (** Crash-restart recovery replayed the write-ahead sync intent
          for [path]: [phase] is ["pending"] (the crash hit before the
          apply, the write was completed from the intent) or
          ["applied"] (the crash hit after the apply; only the
          bookkeeping was finished). *)
  | Spawned of { child : int; name : string; labels : Flow.labels }
      (** [labels] are the child's initial labels — the provenance
          root for everything the child later taints. *)
  | Gate_invoked of { gate : string; child : int }
  | Killed of { reason : string }
  | Quota_hit of Resource.kind
  | App_note of string  (** a developer-supplied, data-free debug note *)

type entry = {
  seq : int;
  tick : int;       (** kernel logical clock at the time of the event *)
  pid : int;        (** acting process, 0 for the kernel itself *)
  event : event;
}

type log

val create : ?capacity:int -> unit -> log
(** [capacity] bounds the log for long-running providers: once
    exceeded, the oldest entries are discarded (sequence numbers keep
    counting, so truncation is observable). Unbounded by default. *)

val record : log -> tick:int -> pid:int -> event -> unit

val record_batch : log -> (int * int * event) list -> unit
(** Append [(tick, pid, event)] entries, oldest first, paying the
    capacity bookkeeping once for the whole batch instead of per
    entry. Sequence numbers are assigned as if {!record} had been
    folded over the list; amortized truncation may fire at a
    different point than per-entry appends would, but always keeps at
    least the newest [capacity] entries. *)

val length : log -> int

val evicted : log -> int
(** How many entries truncation has discarded so far ([seq] of the
    newest entry minus {!length}). Every query below sees only the
    retained suffix: when [evicted] is non-zero, an empty result means
    "not in the retained window", not "never happened". *)

val entries : log -> entry list
(** Oldest first. *)

val iter : log -> f:(entry -> unit) -> unit
(** Visit entries oldest first without materializing the {!entries}
    list — what the tracer and [denials]-style queries should use. *)

val fold : log -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Oldest-first fold, same allocation guarantee as {!iter}. *)

val find : log -> f:(entry -> bool) -> entry list
(** Retained entries satisfying [f], oldest first. *)

val query :
  log ->
  ?pid:int ->
  ?kind:string ->
  ?seq_from:int ->
  ?seq_to:int ->
  ?denials_only:bool ->
  unit ->
  entry list
(** Filtered scan, oldest first; all filters conjoin. [kind] matches
    {!event_kind} strings. [seq_from]/[seq_to] are inclusive; asking
    for sequence numbers older than the retained window (see
    {!evicted}) yields fewer entries than the range implies, silently
    — callers that care should compare against [evicted]. *)

val denials : log -> entry list
(** Only the entries whose decision was a denial. *)

val for_pid : log -> int -> entry list
val clear : log -> unit

val is_denial : entry -> bool

val event_kind : event -> string
(** Constructor name as a low-cardinality telemetry label, e.g.
    ["flow_checked"] — safe to export, unlike the payload. *)

val pp_entry : Format.formatter -> entry -> unit
