open W5_difc

type message = {
  sender : int;
  msg_labels : Flow.labels;
  body : string;
  granted : Capability.Set.t;
}

type state =
  | Runnable
  | Running
  | Exited
  | Killed of string

type t = {
  pid : int;
  proc_name : string;
  owner : Principal.t;
  mutable labels : Flow.labels;
  mutable caps : Capability.Set.t;
  mailbox : message Queue.t;
  usage : Resource.usage;
  limits : Resource.limits;
  mutable state : state;
  mutable response : (string * Flow.labels) option;
  mutable finished_tick : int option;
}

let make ~pid ~name ~owner ~labels ~caps ~limits =
  {
    pid;
    proc_name = name;
    owner;
    labels;
    caps;
    mailbox = Queue.create ();
    usage = Resource.fresh_usage ();
    limits;
    state = Runnable;
    response = None;
    finished_tick = None;
  }

let is_alive p =
  match p.state with
  | Runnable | Running -> true
  | Exited | Killed _ -> false

let kill p ~reason = p.state <- Killed reason

let pp_state fmt = function
  | Runnable -> Format.pp_print_string fmt "runnable"
  | Running -> Format.pp_print_string fmt "running"
  | Exited -> Format.pp_print_string fmt "exited"
  | Killed r -> Format.fprintf fmt "killed(%s)" r

let pp fmt p =
  Format.fprintf fmt "proc#%d %s owner=%a %a state=%a" p.pid p.proc_name
    Principal.pp p.owner Flow.pp_labels p.labels pp_state p.state
