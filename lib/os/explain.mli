(** Reconstructing provenance from the audit log (§3.5 "Debugging").

    {!W5_obs.Provenance} is a generic graph; this module is the
    translation layer that knows the audit event vocabulary. It turns
    a log into a graph — every tag-moving event becomes an edge whose
    [seq]/[tick] cite the audit entry it came from — and answers the
    three questions the paper's debugging story needs:

    + {b explain}: why was this denied? ({!explain})
    + {b provenance}: how did this tag get onto this file or
      process? ({!file_provenance}, {!process_provenance})
    + {b audit-report}: what are the declassifiers and apps doing at
      the aggregate level? ({!report})

    Everything here is data-free: outputs name pids, paths, tags,
    destinations and audit sequence numbers, never user bytes. When
    the log has evicted old entries ({!Audit.evicted}) the graph is a
    suffix of the truth and chains may stop early; the renderers say
    so rather than inventing roots. *)

val graph : ?node_budget:int -> Audit.log -> W5_obs.Provenance.t
(** Build the provenance graph from the retained log, oldest entry
    first. Processes are aliased to their spawn names (and gate
    children to their gate names), so renderings read
    ["pid 7 (mal/thief)"]. [node_budget] is passed through to
    {!W5_obs.Provenance.create}. *)

val find_denial :
  Audit.log -> ?seq:int -> ?pid:int -> unit -> Audit.entry option
(** The denial to explain: the entry at [seq] if given (and actually a
    denial), otherwise the {e most recent} denial by [pid] if given,
    otherwise the most recent denial overall. *)

val explain :
  W5_obs.Provenance.t -> Audit.entry ->
  (W5_obs.Provenance.edge list, string) result
(** The causal chain ending at the given denial entry — how the
    offending tags reached the denied process, oldest edge first, the
    denial itself last. [Error] when the entry is not a denial or its
    edge fell outside the graph's node budget. *)

val explain_text : W5_obs.Provenance.t -> Audit.entry -> (string, string) result
(** {!explain} rendered one edge per line via
    {!W5_obs.Provenance.render_chain}. *)

val explain_dot : W5_obs.Provenance.t -> Audit.entry -> (string, string) result
(** The same chain as Graphviz DOT. *)

val file_provenance :
  W5_obs.Provenance.t -> path:string ->
  (string * W5_obs.Provenance.edge list) list
(** Per-tag history for a filesystem object: for each secrecy tag on
    the file's {e most recent} labeling event (create/relabel), the
    edges that carried the tag there, oldest first. Tags from
    superseded labelings are not reported — the file no longer
    carries them. *)

val process_provenance :
  W5_obs.Provenance.t -> Audit.log -> pid:int ->
  (string * W5_obs.Provenance.edge list) list
(** Per-tag history for a process: its current secrecy tags (replayed
    from the log: taints add, declassifications and allowed relabels
    rewrite) each with the edges that introduced them. *)

val report : Audit.log -> string
(** The provider-side rollup: declassifications by gate and tag,
    denials by reason and by operation, exports by destination,
    denials by app, most-tainted paths, and the log's eviction
    count. Deterministic (counts descending, names ascending) so it
    can be golden-tested. *)
