(** Deterministic interleaved scheduler.

    The kernel's {!Kernel.run} executes each queued process body to
    completion before the next starts, so "heavy traffic" degenerates
    to one request at a time. This module replaces that with seeded
    time-slicing over the same run queue: each runnable process gets a
    quantum of logical ticks; when a kernel crossing (syscall dispatch
    entry) finds the quantum spent, the process is suspended via an
    OCaml effect and requeued, and another process runs.

    {b Determinism.} There are no threads and no wall clock anywhere
    in the loop: the interleaving is a pure function of the policy,
    the seed, and the workload. Two runs with the same seed therefore
    produce byte-identical audit logs, traces, and store state — which
    is what makes concurrency testable at all (and is the property the
    [sched] QCheck suite pins down).

    {b Why preemption can't tear state.} Suspension happens only at
    syscall-dispatch {e entry}, and only at audit depth 0
    ({!Kernel.preempt_point}): the kernel holds no per-call state and
    no half-filled audit batch at those points, so a context switch
    can never interleave one process's audit events or label checks
    into another's. Gate children run nested inside their caller's
    dispatch (audit depth > 0) and are thus never preempted —
    privilege-transfer stays atomic. *)

type t

type policy =
  | Fifo  (** strict round-robin: pop the head, requeue at the tail *)
  | Seeded of int
      (** deterministic pseudo-random pick (splitmix64 over the seed):
          same seed, same interleaving, byte-identical logs *)

type stats = {
  slices : int;  (** context switches: slices started *)
  preemptions : int;  (** slices ended by quantum expiry *)
  completed : int;  (** processes run to normal exit *)
  killed : int;  (** processes killed (quota or uncaught exception) *)
  max_depth : int;  (** peak run-queue depth observed *)
}

val default_quantum : int
(** 4 ticks — a few syscalls per slice, small enough that a typical
    gateway request is preempted several times. *)

val create : ?quantum:int -> ?policy:policy -> Kernel.t -> t
(** A scheduler over [kernel]'s run queue. [quantum] (default
    {!default_quantum}, clamped to ≥ 1) is the tick budget per slice.
    Registers [w5_sched_*] metrics (slice counter, preemption counter,
    run-queue-depth histogram, per-slice tick latency) in the kernel's
    registry. *)

val drain : t -> unit
(** Admit everything on the kernel run queue and interleave until no
    runnable process remains. Processes spawned during the drain are
    admitted at the next slice boundary. Installs the kernel preempt
    hook for the duration (cleared even on raise); only one drain may
    be active per kernel at a time. *)

val queue_depth : t -> int
(** Suspended-or-admitted processes currently waiting for a slice. *)

val quantum : t -> int
(** The tick budget per slice this scheduler was created with. *)

val policy : t -> policy

(** {2 Preemption-model introspection}

    Facts about this scheduler's preemption placement, exported so the
    static interference analysis (lib/analysis) derives its
    may-happen-in-parallel model from the scheduler itself rather than
    restating it. The differential-soundness suite replays real
    scheduler audit logs against the derived model, so changing the
    scheduler without updating these constants (or vice versa) turns
    the replay red. *)

val entry_preemption_only : bool
(** [true]: the preempt hook fires only from {!Kernel.preempt_point},
    which dispatch crosses exactly once at syscall entry — never in
    the middle of a syscall body. *)

val gate_children_atomic : bool
(** [true]: a gate child runs nested inside its caller's dispatch
    (audit depth > 0, pid ≠ current), so neither it nor the enclosing
    privilege transfer can be preempted. *)

val stats : t -> stats
(** Cumulative counters since {!create}. *)

val run : ?quantum:int -> ?policy:policy -> Kernel.t -> stats
(** [create] + [drain] + [stats] in one shot — the scheduler-flavoured
    drop-in for {!Kernel.run}. *)
