(** Kernel process records.

    A process is the unit of isolation: it carries a secrecy/integrity
    label pair, a capability (ownership) set, a mailbox, resource
    counters, and an optional response buffer used by the HTTP
    gateway. All fields are mutated only by the kernel and the syscall
    layer. *)

open W5_difc

(** An IPC message. Messages carry the sender's labels at send time
    and may convey capabilities (checked at send). *)
type message = {
  sender : int;
  msg_labels : Flow.labels;
  body : string;
  granted : Capability.Set.t;
}

type state =
  | Runnable
  | Running
  | Exited
  | Killed of string

type t = {
  pid : int;
  proc_name : string;
  owner : Principal.t;
  mutable labels : Flow.labels;
  mutable caps : Capability.Set.t;
  mailbox : message Queue.t;
  usage : Resource.usage;
  limits : Resource.limits;
  mutable state : state;
  mutable response : (string * Flow.labels) option;
      (** What the process answered to the request that spawned it,
          together with the labels it carried at [respond] time. *)
  mutable finished_tick : int option;
      (** The kernel tick at which the process reached [Exited] or
          [Killed] — set by the kernel, so request latency can be
          measured from admission to completion even when the caller
          only looks at the process long after the scheduler moved
          on. *)
}

val make :
  pid:int -> name:string -> owner:Principal.t -> labels:Flow.labels ->
  caps:Capability.Set.t -> limits:Resource.limits -> t

val is_alive : t -> bool
val kill : t -> reason:string -> unit
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
