open W5_difc

type node_kind =
  | Regular
  | Directory

type node =
  | File of file
  | Dir of dir

and file = {
  mutable data : string;
  mutable f_labels : Flow.labels;
  mutable f_version : int;
}

and dir = {
  entries : (string, node) Hashtbl.t;
  mutable d_labels : Flow.labels;
  mutable d_version : int;
}

type t = {
  root : dir;
  mutable file_count : int;
  mutable generation : int;
}

type stat = {
  kind : node_kind;
  labels : Flow.labels;
  size : int;
  version : int;
}

let create ?(root_labels = Flow.bottom) () =
  {
    root = { entries = Hashtbl.create 64; d_labels = root_labels; d_version = 0 };
    file_count = 0;
    generation = 0;
  }

(* Path handling: "/a/b/c" -> ["a"; "b"; "c"]; empty components are
   dropped so "//a///b" normalizes like "/a/b". *)
let split_path path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let dirname path =
  match List.rev (split_path path) with
  | [] | [ _ ] -> "/"
  | _ :: rev_dirs -> "/" ^ String.concat "/" (List.rev rev_dirs)

let basename path =
  match List.rev (split_path path) with
  | [] -> "/"
  | last :: _ -> last

let join_path a b =
  if b = "" then a
  else if a = "" || a = "/" then "/" ^ String.concat "/" (split_path b)
  else a ^ "/" ^ String.concat "/" (split_path b)

let rec lookup_dir dir = function
  | [] -> Ok dir
  | comp :: rest -> (
      match Hashtbl.find_opt dir.entries comp with
      | None -> Error `Missing
      | Some (File _) -> Error `Not_dir
      | Some (Dir d) -> lookup_dir d rest)

let lookup fs path =
  match List.rev (split_path path) with
  | [] -> Ok (Dir fs.root)
  | last :: rdirs -> (
      match lookup_dir fs.root (List.rev rdirs) with
      | Error _ as e -> e
      | Ok dir -> (
          match Hashtbl.find_opt dir.entries last with
          | None -> Error `Missing
          | Some node -> Ok node))

let lookup_parent fs path =
  match List.rev (split_path path) with
  | [] -> Error `Missing (* the root has no parent entry *)
  | last :: rdirs ->
      Result.map (fun d -> (d, last)) (lookup_dir fs.root (List.rev rdirs))

let fs_error path = function
  | `Missing -> Os_error.Not_found path
  | `Not_dir -> Os_error.Not_a_directory path

let mkdir fs path ~labels =
  match lookup_parent fs path with
  | Error e -> Error (fs_error path e)
  | Ok (parent, name) ->
      if Hashtbl.mem parent.entries name then
        Error (Os_error.Already_exists path)
      else begin
        Hashtbl.replace parent.entries name
          (Dir { entries = Hashtbl.create 8; d_labels = labels; d_version = 0 });
        parent.d_version <- parent.d_version + 1;
        fs.file_count <- fs.file_count + 1;
        Ok ()
      end

let create_file fs path ~labels ~data =
  match lookup_parent fs path with
  | Error e -> Error (fs_error path e)
  | Ok (parent, name) ->
      if Hashtbl.mem parent.entries name then
        Error (Os_error.Already_exists path)
      else begin
        Hashtbl.replace parent.entries name
          (File { data; f_labels = labels; f_version = 1 });
        parent.d_version <- parent.d_version + 1;
        fs.file_count <- fs.file_count + 1;
        Ok ()
      end

let read fs path =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (Dir _) -> Error (Os_error.Is_a_directory path)
  | Ok (File f) -> Ok (f.data, f.f_labels)

(* Content writes also bump the parent directory's version: a dir's
   d_version thus covers its whole set of immediate children, so
   observers (e.g. the store's secondary indexes) can detect any
   mutation under a directory from a single stat. *)
let bump_parent fs path =
  match lookup_parent fs path with
  | Ok (parent, _) -> parent.d_version <- parent.d_version + 1
  | Error _ -> fs.root.d_version <- fs.root.d_version + 1

let write fs path ~data =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (Dir _) -> Error (Os_error.Is_a_directory path)
  | Ok (File f) ->
      f.data <- data;
      f.f_version <- f.f_version + 1;
      bump_parent fs path;
      Ok ()

let append fs path ~data =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (Dir _) -> Error (Os_error.Is_a_directory path)
  | Ok (File f) ->
      f.data <- f.data ^ data;
      f.f_version <- f.f_version + 1;
      bump_parent fs path;
      Ok ()

let unlink fs path =
  match lookup_parent fs path with
  | Error e -> Error (fs_error path e)
  | Ok (parent, name) -> (
      match Hashtbl.find_opt parent.entries name with
      | None -> Error (Os_error.Not_found path)
      | Some (Dir d) when Hashtbl.length d.entries > 0 ->
          Error (Os_error.Invalid (path ^ ": directory not empty"))
      | Some (Dir _ | File _) ->
          Hashtbl.remove parent.entries name;
          parent.d_version <- parent.d_version + 1;
          fs.file_count <- fs.file_count - 1;
          Ok ())

let rename fs ~src ~dst =
  let src_comps = split_path src and dst_comps = split_path dst in
  (* no-op and subtree cases: "/a" -> "/a/b/c" would orphan the tree *)
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
  in
  if src_comps = [] then Error (Os_error.Invalid "cannot rename the root")
  else if is_prefix src_comps dst_comps then
    Error (Os_error.Invalid (dst ^ ": inside " ^ src))
  else
    match lookup_parent fs src with
    | Error e -> Error (fs_error src e)
    | Ok (src_parent, src_name) -> (
        match Hashtbl.find_opt src_parent.entries src_name with
        | None -> Error (Os_error.Not_found src)
        | Some node -> (
            match lookup_parent fs dst with
            | Error e -> Error (fs_error dst e)
            | Ok (dst_parent, dst_name) ->
                if Hashtbl.mem dst_parent.entries dst_name then
                  Error (Os_error.Already_exists dst)
                else begin
                  Hashtbl.remove src_parent.entries src_name;
                  Hashtbl.replace dst_parent.entries dst_name node;
                  src_parent.d_version <- src_parent.d_version + 1;
                  dst_parent.d_version <- dst_parent.d_version + 1;
                  Ok ()
                end))

let readdir fs path =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (File _) -> Error (Os_error.Not_a_directory path)
  | Ok (Dir d) ->
      let names = Hashtbl.fold (fun name _ acc -> name :: acc) d.entries [] in
      Ok (List.sort String.compare names, d.d_labels)

let stat fs path =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (File f) ->
      Ok
        {
          kind = Regular;
          labels = f.f_labels;
          size = String.length f.data;
          version = f.f_version;
        }
  | Ok (Dir d) ->
      Ok
        {
          kind = Directory;
          labels = d.d_labels;
          size = Hashtbl.length d.entries;
          version = d.d_version;
        }

let set_labels fs path ~labels =
  match lookup fs path with
  | Error e -> Error (fs_error path e)
  | Ok (File f) ->
      f.f_labels <- labels;
      f.f_version <- f.f_version + 1;
      bump_parent fs path;
      Ok ()
  | Ok (Dir d) ->
      d.d_labels <- labels;
      d.d_version <- d.d_version + 1;
      Ok ()

let exists fs path = match lookup fs path with Ok _ -> true | Error _ -> false

let parent_labels fs path =
  if split_path path = [] then Ok fs.root.d_labels
  else
    match lookup_parent fs path with
    | Error e -> Error (fs_error (dirname path) e)
    | Ok (parent, _) -> Ok parent.d_labels

let path_taint fs path =
  (* Only secrecy accumulates along a lookup: seeing that the path
     resolves reveals the ancestors' contents, but vouches nothing. *)
  let comps = split_path path in
  let rec walk dir acc = function
    | [] | [ _ ] -> Ok (Flow.make ~secrecy:acc ())
    | comp :: rest -> (
        match Hashtbl.find_opt dir.entries comp with
        | None -> Error (Os_error.Not_found path)
        | Some (File _) -> Error (Os_error.Not_a_directory path)
        | Some (Dir d) -> walk d (Label.union acc d.d_labels.Flow.secrecy) rest)
  in
  walk fs.root fs.root.d_labels.Flow.secrecy comps

let total_files fs = fs.file_count
let generation fs = fs.generation

(* ---- snapshot / restore ----
   Line-oriented image; names and file data are hex-encoded so the
   format needs no quoting rules. Labels are stored as tag-id lists.

     D <hexname> <version> <s-ids> <i-ids> <child-count>
     F <hexname> <version> <s-ids> <i-ids> <hexdata>

   id lists are comma-separated, "-" when empty. The root is a [D]
   with the pseudo-name "/". *)

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd hex length"
  else
    let hex_val c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | _ -> Error "bad hex digit"
    in
    let buf = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else
        match (hex_val s.[i], hex_val s.[i + 1]) with
        | Ok hi, Ok lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let encode_label label =
  match Label.to_list label with
  | [] -> "-"
  | tags -> String.concat "," (List.map (fun t -> string_of_int (Tag.id t)) tags)

let decode_label s =
  if s = "-" then Ok Label.empty
  else
    let ids = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok acc
      | id_str :: rest -> (
          match Option.bind (int_of_string_opt id_str) Tag.of_id with
          | Some tag -> go (Label.add tag acc) rest
          | None -> Error ("unknown tag id " ^ id_str))
    in
    go Label.empty ids

let snapshot fs =
  let buf = Buffer.create 4096 in
  let emit_labels (l : Flow.labels) =
    encode_label l.Flow.secrecy ^ " " ^ encode_label l.Flow.integrity
  in
  let rec emit_dir name (d : dir) =
    let children =
      Hashtbl.fold (fun child_name node acc -> (child_name, node) :: acc) d.entries []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Buffer.add_string buf
      (Printf.sprintf "D %s %d %s %d\n" (hex_encode name) d.d_version
         (emit_labels d.d_labels) (List.length children));
    List.iter
      (fun (child_name, node) ->
        match node with
        | Dir child -> emit_dir child_name child
        | File f ->
            Buffer.add_string buf
              (Printf.sprintf "F %s %d %s %s\n" (hex_encode child_name)
                 f.f_version (emit_labels f.f_labels) (hex_encode f.data)))
      children
  in
  emit_dir "/" fs.root;
  Buffer.contents buf

let restore_into fs image =
  let lines = Array.of_list (String.split_on_char '\n' image) in
  let pos = ref 0 in
  let fail msg = Error (Os_error.Invalid ("fs image: " ^ msg)) in
  let parse_labels s_field i_field =
    match (decode_label s_field, decode_label i_field) with
    | Ok secrecy, Ok integrity -> Ok { Flow.secrecy; integrity }
    | Error e, _ | _, Error e -> Error (Os_error.Invalid ("fs image: " ^ e))
  in
  (* returns the parsed node and its (decoded) name *)
  let rec parse_entry () =
    if !pos >= Array.length lines then fail "truncated"
    else begin
      let line = lines.(!pos) in
      incr pos;
      match String.split_on_char ' ' line with
      | [ "F"; hexname; version; s_field; i_field; hexdata ] -> (
          match (hex_decode hexname, hex_decode hexdata, int_of_string_opt version) with
          | Ok name, Ok data, Some v -> (
              match parse_labels s_field i_field with
              | Error _ as e -> e
              | Ok labels ->
                  fs.file_count <- fs.file_count + 1;
                  Ok (name, File { data; f_labels = labels; f_version = v }))
          | Error e, _, _ | _, Error e, _ -> fail e
          | _, _, None -> fail "bad version")
      | [ "D"; hexname; version; s_field; i_field; count ] -> (
          match (hex_decode hexname, int_of_string_opt version, int_of_string_opt count) with
          | Ok name, Some v, Some n -> (
              match parse_labels s_field i_field with
              | Error _ as e -> e
              | Ok labels -> (
                  let entries = Hashtbl.create (max 8 n) in
                  let rec children remaining =
                    if remaining = 0 then Ok ()
                    else
                      match parse_entry () with
                      | Error _ as e -> e
                      | Ok (child_name, node) ->
                          Hashtbl.replace entries child_name node;
                          children (remaining - 1)
                  in
                  match children n with
                  | Error _ as e -> e
                  | Ok () ->
                      if name <> "/" then fs.file_count <- fs.file_count + 1;
                      Ok (name, Dir { entries; d_labels = labels; d_version = v })))
          | Error e, _, _ -> fail e
          | _, None, _ | _, _, None -> fail "bad version/count")
      | _ -> fail ("bad line: " ^ line)
    end
  in
  let saved_count = fs.file_count in
  fs.file_count <- 0;
  match parse_entry () with
  | Ok ("/", Dir d) ->
      Hashtbl.reset fs.root.entries;
      Hashtbl.iter (Hashtbl.replace fs.root.entries) d.entries;
      fs.root.d_labels <- d.d_labels;
      fs.root.d_version <- d.d_version;
      (* A restore replaces arbitrary subtrees without touching their
         version counters, so derived caches keyed on (generation,
         version) must be told the whole namespace changed. *)
      fs.generation <- fs.generation + 1;
      Ok ()
  | Ok _ ->
      fs.file_count <- saved_count;
      Error (Os_error.Invalid "fs image: root must be a directory named /")
  | Error e ->
      fs.file_count <- saved_count;
      Error e
